package randmod_test

import (
	"context"
	"fmt"

	randmod "repro"
)

// The end-to-end MBPTA flow: run a benchmark on the Random Modulo
// platform with a fresh hardware seed per run, then read off the pWCET.
func Example() {
	w, err := randmod.WorkloadByName("puwmod01")
	if err != nil {
		panic(err)
	}
	res, an, err := randmod.RunAndAnalyze(randmod.Campaign{
		Spec:       randmod.PaperPlatform(randmod.RM),
		Workload:   w,
		Runs:       100,
		MasterSeed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("runs:", len(res.Times))
	fmt.Println("pWCET@1e-15 above hwm:", an.PWCET15 > res.HWM())
	// Output:
	// runs: 100
	// pWCET@1e-15 above hwm: true
}

// Hardware cost of the two random-placement modules at the paper's
// 128-set design point (Table 1's ASIC half).
func Example_hardwareCost() {
	rep := randmod.HardwareASIC(128)
	fmt.Println("RM area is much smaller:", rep.AreaRatio > 5)
	fmt.Println("RM is faster:", rep.DelayGain > 0)
	// Output:
	// RM area is much smaller: true
	// RM is faster: true
}

// Comparing placements on the same workload: the deterministic platform
// gives one number per layout, the randomized platform gives a
// distribution per seed.
func Example_placementComparison() {
	w := randmod.SyntheticWorkload(4*1024, 10, 4)
	det, err := randmod.Campaign{
		Spec:       randmod.DeterministicPlatform(),
		Workload:   w,
		Runs:       3,
		MasterSeed: 1,
	}.Run()
	if err != nil {
		panic(err)
	}
	// All deterministic runs of the same layout are identical.
	fmt.Println("deterministic is constant:", det.Times[0] == det.Times[1] && det.Times[1] == det.Times[2])
	// Output:
	// deterministic is constant: true
}

// The Engine API: one shared worker pool running a batch of campaigns
// with deterministic results; cancellation and progress events ride on
// the same calls.
func Example_engineBatch() {
	eng := randmod.NewEngine(randmod.WithWorkers(4))
	w := randmod.SyntheticWorkload(8*1024, 5, 4)
	results, err := eng.RunBatch(context.Background(), []randmod.Request{
		{Name: "rm", Spec: randmod.PaperPlatform(randmod.RM), Workload: w, Runs: 50, MasterSeed: 3},
		{Name: "hrp", Spec: randmod.PaperPlatform(randmod.HRP), Workload: w, Runs: 50, MasterSeed: 3},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s: %d runs\n", r.Name, len(r.Times))
	}
	// Output:
	// rm: 50 runs
	// hrp: 50 runs
}
