// EEMBC-campaign example: the paper's Section 4 protocol on a subset of
// the EEMBC-Automotive-like suite, driven as ONE Engine batch. For each
// benchmark three campaigns are scheduled -- Random Modulo, hash-based
// random placement, and the deterministic modulo+LRU baseline with
// randomized memory layouts -- nine campaigns sharing one worker pool.
// Per-campaign results are bit-identical to running them one at a time;
// the batch only changes the wall clock. The table reports the
// Table-2-style i.i.d. statistics, the Figure-4(a) pWCET ratio, and the
// Figure-4(b) margin over the deterministic high-water mark.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const runs = 250
	benchmarks := []string{"a2time01", "cacheb01", "tblook01"}

	var reqs []randmod.Request
	for _, name := range benchmarks {
		w, err := randmod.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs,
			randmod.Request{
				Name: name + "/rm",
				Spec: randmod.PaperPlatform(randmod.RM), Workload: w,
				Runs: runs, MasterSeed: 7, Analyze: true,
			},
			randmod.Request{
				Name: name + "/hrp",
				Spec: randmod.PaperPlatform(randmod.HRP), Workload: w,
				Runs: runs, MasterSeed: 7, Analyze: true,
			},
			randmod.Request{
				Name: name + "/hwm",
				Spec: randmod.DeterministicPlatform(), Workload: w,
				Runs: 40, MasterSeed: 7, Baseline: true,
			})
	}

	eng := randmod.NewEngine()
	results, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %8s %8s %8s | %12s %12s %7s | %12s %7s\n",
		"bench", "WW", "KSp", "ETp", "pWCET(RM)", "pWCET(hRP)", "ratio", "hwm(DET)", "vs hwm")
	for i, name := range benchmarks {
		rm, hrp, det := results[3*i], results[3*i+1], results[3*i+2]
		fmt.Printf("%-10s %8.2f %8.2f %8.2f | %12.0f %12.0f %6.0f%% | %12.0f %+6.1f%%\n",
			name, rm.Analysis.WW.Stat, rm.Analysis.KS.P, rm.Analysis.ET.P,
			rm.Analysis.PWCET15, hrp.Analysis.PWCET15,
			100*(1-rm.Analysis.PWCET15/hrp.Analysis.PWCET15),
			det.HWM(), 100*(rm.Analysis.PWCET15/det.HWM()-1))
	}
	fmt.Println("\nratio column: how much tighter RM's pWCET is than hRP's (paper: 25-62%)")
	fmt.Println("vs hwm column: RM pWCET margin over the deterministic high-water mark")
	fmt.Println("               (paper: <= 7%, against the 20% industrial engineering margin)")
}
