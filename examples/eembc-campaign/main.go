// EEMBC-campaign example: the paper's Section 4 protocol on a subset of
// the EEMBC-Automotive-like suite. For each benchmark it runs three
// platforms -- Random Modulo, hash-based random placement, and the
// deterministic modulo+LRU baseline with randomized memory layouts -- and
// reports the Table-2-style i.i.d. statistics, the Figure-4(a) pWCET
// ratio, and the Figure-4(b) margin over the deterministic high-water
// mark.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const runs = 250
	benchmarks := []string{"a2time01", "cacheb01", "tblook01"}

	fmt.Printf("%-10s %8s %8s %8s | %12s %12s %7s | %12s %7s\n",
		"bench", "WW", "KSp", "ETp", "pWCET(RM)", "pWCET(hRP)", "ratio", "hwm(DET)", "vs hwm")
	for _, name := range benchmarks {
		w, err := randmod.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}

		_, rm, err := randmod.RunAndAnalyze(randmod.Campaign{
			Spec: randmod.PaperPlatform(randmod.RM), Workload: w,
			Runs: runs, MasterSeed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		_, hrp, err := randmod.RunAndAnalyze(randmod.Campaign{
			Spec: randmod.PaperPlatform(randmod.HRP), Workload: w,
			Runs: runs, MasterSeed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		det, err := randmod.HWMCampaign{
			Spec: randmod.DeterministicPlatform(), Workload: w,
			Runs: 40, MasterSeed: 7,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-10s %8.2f %8.2f %8.2f | %12.0f %12.0f %6.0f%% | %12.0f %+6.1f%%\n",
			name, rm.WW.Stat, rm.KS.P, rm.ET.P,
			rm.PWCET15, hrp.PWCET15, 100*(1-rm.PWCET15/hrp.PWCET15),
			det.HWM, 100*(rm.PWCET15/det.HWM-1))
	}
	fmt.Println("\nratio column: how much tighter RM's pWCET is than hRP's (paper: 25-62%)")
	fmt.Println("vs hwm column: RM pWCET margin over the deterministic high-water mark")
	fmt.Println("               (paper: <= 7%, against the 20% industrial engineering margin)")
}
