// Multicore example: the paper's 4-core platform shape. Each core has
// private RM L1 caches and its own partition of the L2 (so there is no
// storage interference), but all cores share the memory bus, which is
// arbitrated round-robin -- the time-composable multicore arrangement of
// the MBPTA literature the paper builds on (Section 2: "MBPTA has been
// evaluated on multicores comprising last-level caches and shared buses").
//
// The example sweeps hardware seeds for one benchmark alone and against
// three memory-hungry co-runners, showing the contention slowdown that
// the partitioned L2 bounds. The sweep fans out over a worker pool with
// randmod.ShardRunsContext -- the Engine-era primitive for custom
// execution contexts (here a 4-core sim.System instead of a single
// core) -- and Ctrl-C cancels it mid-sweep.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func platform() sim.Config {
	mk := func(name string, size int, pk placement.Kind, w cache.WritePolicy) cache.Config {
		return cache.Config{
			Name: name, SizeBytes: size, Ways: 4, LineBytes: 32,
			Placement: pk, Replacement: cache.Random, Write: w,
		}
	}
	return sim.Config{
		IL1: mk("IL1", 16*1024, placement.RM, cache.WriteThrough),
		DL1: mk("DL1", 16*1024, placement.RM, cache.WriteThrough),
		L2:  mk("L2", 128*1024, placement.HRP, cache.WriteBack),
	}
}

func main() {
	const seeds = 25
	subject, err := workload.ByName("canrdr01")
	if err != nil {
		log.Fatal(err)
	}
	hog := workload.Synthetic(160*1024, 8, 4) // streams through memory
	layout := workload.DefaultLayout()
	subjectTrace := subject.Build(layout)
	hogTrace := hog.Build(layout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// sweep collects the subject's cycle count over seeds-many hardware
	// seeds; each worker owns a private 4-core system, and every run
	// derives its seed from the run index, so the vector is bit-identical
	// for any pool size.
	sweep := func(traces []trace.Trace) []float64 {
		times := make([]float64, seeds)
		err := randmod.ShardRunsContext(ctx, 0, seeds,
			func() (*sim.System, error) { return sim.NewSystem(platform(), 4) },
			func(sys *sim.System, run int) error {
				sys.Reseed(prng.Derive(1, run))
				times[run] = float64(sys.RunAll(traces)[0].Cycles)
				return nil
			})
		if err != nil {
			log.Fatal(err)
		}
		return times
	}

	solo := sweep([]trace.Trace{subjectTrace, nil, nil, nil})
	contended := sweep([]trace.Trace{subjectTrace, hogTrace, hogTrace, hogTrace})

	fmt.Printf("subject workload: %s (%d accesses), %d hardware seeds\n",
		subject.Name, len(subjectTrace), seeds)
	fmt.Printf("co-runners:       3x synthetic 160KB streamers\n\n")
	fmt.Printf("solo      mean %10.0f  max %10.0f cycles\n", stats.Mean(solo), stats.Max(solo))
	fmt.Printf("contended mean %10.0f  max %10.0f cycles  (+%.1f%% from shared-bus interference)\n",
		stats.Mean(contended), stats.Max(contended),
		100*(stats.Mean(contended)/stats.Mean(solo)-1))
	fmt.Println("\nthe per-core L2 partition keeps cache *storage* free of interference;")
	fmt.Println("only bus bandwidth is shared, which MBPTA accounts for probabilistically.")
}
