// Multicore example: the paper's 4-core platform shape. Each core has
// private RM L1 caches and its own partition of the L2 (so there is no
// storage interference), but all cores share the memory bus, which is
// arbitrated round-robin -- the time-composable multicore arrangement of
// the MBPTA literature the paper builds on (Section 2: "MBPTA has been
// evaluated on multicores comprising last-level caches and shared buses").
//
// The example runs one benchmark alone and then against three memory-
// hungry co-runners, showing the contention slowdown that the partitioned
// L2 bounds.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func platform() sim.Config {
	mk := func(name string, size int, pk placement.Kind, w cache.WritePolicy) cache.Config {
		return cache.Config{
			Name: name, SizeBytes: size, Ways: 4, LineBytes: 32,
			Placement: pk, Replacement: cache.Random, Write: w,
		}
	}
	return sim.Config{
		IL1: mk("IL1", 16*1024, placement.RM, cache.WriteThrough),
		DL1: mk("DL1", 16*1024, placement.RM, cache.WriteThrough),
		L2:  mk("L2", 128*1024, placement.HRP, cache.WriteBack),
	}
}

func main() {
	subject, err := workload.ByName("canrdr01")
	if err != nil {
		log.Fatal(err)
	}
	hog := workload.Synthetic(160*1024, 8, 4) // streams through memory
	layout := workload.DefaultLayout()
	subjectTrace := subject.Build(layout)
	hogTrace := hog.Build(layout)

	solo, err := sim.NewSystem(platform(), 4)
	if err != nil {
		log.Fatal(err)
	}
	solo.Reseed(1)
	soloRes := solo.RunAll([]trace.Trace{subjectTrace, nil, nil, nil})

	contended, err := sim.NewSystem(platform(), 4)
	if err != nil {
		log.Fatal(err)
	}
	contended.Reseed(1)
	contRes := contended.RunAll([]trace.Trace{subjectTrace, hogTrace, hogTrace, hogTrace})

	fmt.Printf("subject workload: %s (%d accesses)\n", subject.Name, len(subjectTrace))
	fmt.Printf("co-runners:       3x synthetic 160KB streamers\n\n")
	fmt.Printf("solo      %10d cycles\n", soloRes[0].Cycles)
	fmt.Printf("contended %10d cycles  (+%.1f%% from shared-bus interference)\n",
		contRes[0].Cycles,
		100*(float64(contRes[0].Cycles)/float64(soloRes[0].Cycles)-1))
	fmt.Println("\nthe per-core L2 partition keeps cache *storage* free of interference;")
	fmt.Println("only bus bandwidth is shared, which MBPTA accounts for probabilistically.")
}
