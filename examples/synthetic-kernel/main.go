// Synthetic-kernel example: the paper's Figure 5 scenario. The same 20KB
// vector-traversal program runs on two platforms that differ only in the
// L1 placement function (Random Modulo vs hash-based random placement).
// RM preserves spatial locality -- consecutive lines never collide in a
// set -- so its execution-time distribution is compact; hRP occasionally
// maps many buffer lines into few sets and grows a heavy tail, which
// inflates the pWCET. Both campaigns run as one Engine batch over a
// shared worker pool.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro"
	"repro/internal/stats"
)

func main() {
	const runs = 300
	w := randmod.SyntheticWorkload(20*1024, 50, 4) // 20KB, 50 sweeps, 4B stride

	// Explicit pool size; 0 means the same GOMAXPROCS default. The pool
	// is a wall-clock knob only: every campaign's times are bit-identical
	// for any worker count and any batch interleaving.
	eng := randmod.NewEngine(randmod.WithWorkers(runtime.GOMAXPROCS(0)))
	kinds := []randmod.Placement{randmod.RM, randmod.HRP}
	var reqs []randmod.Request
	for _, kind := range kinds {
		reqs = append(reqs, randmod.Request{
			Name:       fmt.Sprint(kind),
			Spec:       randmod.PaperPlatform(kind),
			Workload:   w,
			Runs:       runs,
			MasterSeed: 42,
			Analyze:    true,
		})
	}
	results, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	for i, kind := range kinds {
		res := results[i]
		fmt.Printf("\n=== %s L1 placement ===\n", kind)
		fmt.Printf("mean %.0f  sd %.0f  max %.0f  pWCET@1e-15 %.0f\n",
			res.Mean(), stats.StdDev(res.Times), res.HWM(), res.Analysis.PWCET15)

		h, err := stats.NewHistogram(res.Times, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("execution-time PDF (cycles):")
		maxC := 0
		for _, c := range h.Counts {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			fmt.Printf("%9.0f %-60s %d\n", h.BinCenter(i),
				strings.Repeat("#", 1+c*58/maxC), c)
		}
	}
	fmt.Println("\nPaper, Figure 5: RM shows much lower variability than hRP;")
	fmt.Println("hRP's rare bad layouts push its pWCET curve far to the right.")
}
