// Quickstart: the end-to-end MBPTA flow on a Random Modulo platform in a
// few lines -- build an Engine, run a benchmark 300 times with a fresh
// hardware seed per run, watch the campaign stream progress, check the
// i.i.d. admissibility tests, and read off the pWCET. Ctrl-C cancels the
// campaign mid-flight.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	w, err := randmod.WorkloadByName("tblook01")
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := randmod.NewEngine(
		randmod.WithWorkers(0), // 0 = GOMAXPROCS; times are pool-size invariant
		randmod.WithEvents(func(ev randmod.Event) {
			if ev.Kind == randmod.RunCompleted && ev.Done%100 == 0 {
				fmt.Printf("  %s: %d/%d runs\n", ev.Campaign, ev.Done, ev.Total)
			}
		}),
	)

	res, err := eng.Run(ctx, randmod.Request{
		Spec:       randmod.PaperPlatform(randmod.RM),
		Workload:   w,
		Runs:       300,
		MasterSeed: 1,
		Analyze:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	an := res.Analysis

	fmt.Printf("workload      %s\n", w.Name)
	fmt.Printf("observed      mean %.0f cycles, high-water mark %.0f\n", res.Mean(), res.HWM())
	fmt.Printf("independence  WW = %.2f (pass < 1.96: %v)\n", an.WW.Stat, an.WW.Pass)
	fmt.Printf("identical     KS p = %.2f (pass > 0.05: %v)\n", an.KS.P, an.KS.Pass)
	fmt.Printf("Gumbel tail   ET p = %.2f (pass > 0.05: %v)\n", an.ET.P, an.ET.Pass)
	fmt.Printf("fit           Gumbel(mu=%.0f, beta=%.1f)\n", an.Model.Fit.Mu, an.Model.Fit.Beta)
	fmt.Printf("pWCET         %.0f cycles at 1e-12, %.0f cycles at 1e-15\n", an.PWCET12, an.PWCET15)
	fmt.Printf("margin        pWCET@1e-15 is %.1f%% above the observed hwm\n",
		100*(an.PWCET15/res.HWM()-1))
}
