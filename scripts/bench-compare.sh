#!/bin/sh
# bench-compare.sh OLD.json NEW.json — the determinism-trajectory gate.
#
# Asserts that the per-campaign results (runs, HWM, mean, pWCET
# quantiles) of NEW.json are bit-identical to OLD.json; wall-time and
# environment fields are exempt. Defaults compare the previous PR's
# committed snapshot against the current one, so CI runs it as:
#
#   make bench-json && sh scripts/bench-compare.sh
set -e
cd "$(dirname "$0")/.."
OLD=${1:-BENCH_PR4.json}
NEW=${2:-BENCH_PR5.json}
exec go run ./cmd/benchcompare "$OLD" "$NEW"
