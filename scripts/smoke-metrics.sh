#!/bin/sh
# Observability smoke: start rmserved (JSON access logs), run one campaign
# to completion, then assert GET /metrics serves Prometheus text format
# with nonzero campaign, store and HTTP series, /v1/traces holds the
# campaign's span, and responses carry an X-Request-Id header.
set -eu

log=$(mktemp)
bin=$(mktemp)
go build -o "$bin" ./cmd/rmserved
"$bin" -addr 127.0.0.1:0 -workers 2 -log json >"$log" 2>&1 &
srv=$!
trap 'kill "$srv" 2>/dev/null || true; rm -f "$log" "$bin"' EXIT

base=""
i=0
while [ $i -lt 100 ]; do
  base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$log" | head -n 1)
  if [ -n "$base" ] && curl -fsS "$base/healthz" >/dev/null 2>&1; then
    break
  fi
  base=""
  sleep 0.2
  i=$((i + 1))
done
if [ -z "$base" ]; then
  echo "rmserved did not come up:" >&2
  cat "$log" >&2
  exit 1
fi
echo "rmserved up at $base"

req='{"workload":"puwmod01","placement":"RM","runs":60,"seed":5}'
r1=$(curl -fsS -X POST -d "$req" "$base/v1/campaigns")
id=$(printf '%s' "$r1" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "bad submit response: $r1" >&2; exit 1; }

state=""
i=0
while [ $i -lt 300 ]; do
  state=$(curl -fsS "$base/v1/campaigns/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
  [ "$state" = "done" ] && break
  if [ "$state" = "failed" ] || [ "$state" = "canceled" ]; then
    echo "campaign ended in state $state" >&2
    exit 1
  fi
  sleep 0.2
  i=$((i + 1))
done
[ "$state" = "done" ] || { echo "campaign did not finish (state=$state)" >&2; exit 1; }
echo "campaign done"

# The X-Request-Id header is present on every response.
reqid=$(curl -fsSD - -o /dev/null "$base/healthz" | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *//p')
[ -n "$reqid" ] || { echo "no X-Request-Id header on /healthz" >&2; exit 1; }
echo "request id: $reqid"

# /metrics: Prometheus text format with the nonzero series the campaign
# must have produced.
metrics=$(curl -fsS "$base/metrics")
want() {
  printf '%s\n' "$metrics" | grep -q "$1" || { echo "metrics missing: $1" >&2; printf '%s\n' "$metrics" >&2; exit 1; }
}
want '^# TYPE rm_campaign_latency_seconds histogram$'
want '^rm_campaign_latency_seconds_count{kind="mbpta"} 1$'
want '^rm_runs_total{kind="mbpta"} 60$'
want '^rm_campaigns_total{kind="mbpta",status="ok"} 1$'
want '^rm_store_misses_total 1$'
want '^rm_queue_wait_seconds_count 1$'
want '^rm_http_requests_total{route="/v1/campaigns",status="202"} 1$'
want '^rm_pool_acquires_total [1-9]'
echo "metrics series verified"

# /v1/traces: one span for the finished campaign with a timed replay phase.
traces=$(curl -fsS "$base/v1/traces")
printf '%s' "$traces" | grep -q '"kind": *"mbpta"' || { echo "no mbpta trace span: $traces" >&2; exit 1; }
printf '%s' "$traces" | grep -q '"replay_seconds":' || { echo "trace span has no replay phase: $traces" >&2; exit 1; }
echo "trace span verified"

# The JSON access log recorded the submission.
grep -q '"path":"/v1/campaigns"' "$log" || { echo "no access-log line for the submission" >&2; cat "$log" >&2; exit 1; }
echo "access log verified"

kill "$srv"
wait "$srv" 2>/dev/null || true
echo "metrics smoke OK"
