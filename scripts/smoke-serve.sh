#!/bin/sh
# Campaign service smoke: start rmserved on a random port, POST a short
# RM campaign, poll it to completion, then assert the resubmission of the
# same content is served from cache -- same fingerprint, no second Engine
# execution (store misses stay at 1, hits reach 1).
set -eu

log=$(mktemp)
bin=$(mktemp)
go build -o "$bin" ./cmd/rmserved
"$bin" -addr 127.0.0.1:0 -workers 2 >"$log" 2>&1 &
srv=$!
trap 'kill "$srv" 2>/dev/null || true; rm -f "$log" "$bin"' EXIT

base=""
i=0
while [ $i -lt 100 ]; do
  base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$log" | head -n 1)
  if [ -n "$base" ] && curl -fsS "$base/healthz" >/dev/null 2>&1; then
    break
  fi
  base=""
  sleep 0.2
  i=$((i + 1))
done
if [ -z "$base" ]; then
  echo "rmserved did not come up:" >&2
  cat "$log" >&2
  exit 1
fi
echo "rmserved up at $base"

req='{"workload":"puwmod01","placement":"RM","runs":60,"seed":1}'
r1=$(curl -fsS -X POST -d "$req" "$base/v1/campaigns")
id=$(printf '%s' "$r1" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
fp1=$(printf '%s' "$r1" | sed -n 's/.*"fingerprint": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] && [ -n "$fp1" ] || { echo "bad submit response: $r1" >&2; exit 1; }
echo "submitted $id fingerprint $fp1"

state=""
i=0
while [ $i -lt 300 ]; do
  status=$(curl -fsS "$base/v1/campaigns/$id")
  state=$(printf '%s' "$status" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
  [ "$state" = "done" ] && break
  if [ "$state" = "failed" ] || [ "$state" = "canceled" ]; then
    echo "campaign ended in state $state: $status" >&2
    exit 1
  fi
  sleep 0.2
  i=$((i + 1))
done
[ "$state" = "done" ] || { echo "campaign did not finish (state=$state)" >&2; exit 1; }
echo "campaign done"

# Resubmit the identical content: must be served from cache with the
# same fingerprint and without a fresh execution.
r2=$(curl -fsS -X POST -d "$req" "$base/v1/campaigns")
fp2=$(printf '%s' "$r2" | sed -n 's/.*"fingerprint": *"\([^"]*\)".*/\1/p')
cached=$(printf '%s' "$r2" | sed -n 's/.*"cached": *\(true\|false\).*/\1/p')
[ "$fp2" = "$fp1" ] || { echo "fingerprint changed: $fp1 -> $fp2" >&2; exit 1; }
[ "$cached" = "true" ] || { echo "resubmission not served from cache: $r2" >&2; exit 1; }

health=$(curl -fsS "$base/healthz")
printf '%s' "$health" | grep -q '"misses": *1' || { echo "expected exactly one execution: $health" >&2; exit 1; }
printf '%s' "$health" | grep -q '"hits": *1' || { echo "expected one cache hit: $health" >&2; exit 1; }
echo "cached resubmission verified (1 miss, 1 hit)"

kill "$srv"
wait "$srv" 2>/dev/null || true
echo "service smoke OK"
