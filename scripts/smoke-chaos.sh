#!/bin/sh
# Chaos smoke: the kill-resume scenario of the resilience layer.
#
#  1. Run a reference campaign on a clean, memory-only rmserved and
#     record its result.
#  2. Start rmserved with the durable tier (-data-dir) and deterministic
#     storage fault injection active, submit the same campaign, wait for
#     the first checkpoint to hit disk, and SIGKILL the daemon
#     mid-campaign (no drain, no cleanup -- a crash).
#  3. Restart the daemon on the same data dir: the startup scan resumes
#     the interrupted campaign from its latest checkpoint (or recomputes
#     it if injected faults corrupted the checkpoint -- corruption may
#     cost work, never correctness).
#  4. Assert the post-crash result is bit-identical to the reference.
set -eu

bin=$(mktemp)
log=$(mktemp)
data=$(mktemp -d)
srv=""
go build -o "$bin" ./cmd/rmserved
trap 'kill -9 "$srv" 2>/dev/null || true; rm -rf "$log" "$bin" "$data"' EXIT

command -v jq >/dev/null 2>&1 || { echo "smoke-chaos: jq required" >&2; exit 1; }

# The campaign: long enough (~10s) that the kill lands mid-flight, with
# full pWCET analysis so the comparison covers the statistics pipeline.
req='{"workload":"synth160k","placement":"RM","runs":160,"seed":53,"analyze":true}'

start() {
  : >"$log"
  "$bin" "$@" >"$log" 2>&1 &
  srv=$!
}

# wait_up polls the access log for the listen line and /healthz; fails
# fast when the process already died (e.g. an injected startup fault).
wait_up() {
  base=""
  i=0
  while [ $i -lt 50 ]; do
    if ! kill -0 "$srv" 2>/dev/null; then
      return 1
    fi
    base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$log" | head -n 1)
    if [ -n "$base" ] && curl -fsS "$base/healthz" >/dev/null 2>&1; then
      return 0
    fi
    base=""
    sleep 0.2
    i=$((i + 1))
  done
  return 1
}

submit() {
  curl -fsS -X POST -d "$req" "$base/v1/campaigns" | jq -r .id
}

# wait_done polls one campaign to its terminal state and prints the
# result object, canonically sorted, for bit-identical comparison.
wait_done() {
  id=$1
  i=0
  while [ $i -lt 600 ]; do
    status=$(curl -fsS "$base/v1/campaigns/$id")
    state=$(printf '%s' "$status" | jq -r .state)
    if [ "$state" = "done" ]; then
      printf '%s' "$status" | jq -S .result
      return 0
    fi
    if [ "$state" = "failed" ] || [ "$state" = "canceled" ]; then
      echo "campaign $id ended in state $state: $status" >&2
      return 1
    fi
    sleep 0.2
    i=$((i + 1))
  done
  echo "campaign $id did not finish" >&2
  return 1
}

metric() {
  curl -fsS "$base/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

# --- 1. Reference: clean, memory-only run. ---------------------------------
start -addr 127.0.0.1:0 -workers 2
wait_up || { echo "reference rmserved did not come up:" >&2; cat "$log" >&2; exit 1; }
ref=$(wait_done "$(submit)")
kill "$srv" && wait "$srv" 2>/dev/null || true
echo "reference result recorded ($(printf '%s' "$ref" | wc -c) bytes)"

# --- 2. Chaos run: durable tier + fault injection, SIGKILL mid-campaign. ---
# The fault plan is a pure function of -fault-seed; a seed whose injected
# faults kill the startup scan itself is skipped (deterministically) for
# the next one.
seed=0
for s in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16; do
  start -addr 127.0.0.1:0 -workers 2 -data-dir "$data" -checkpoint-every 5 \
    -fault-seed "$s" -fault-rate 0.05
  if wait_up; then
    seed=$s
    break
  fi
  kill -9 "$srv" 2>/dev/null || true
done
[ "$seed" -gt 0 ] || { echo "no fault seed allowed rmserved to start:" >&2; cat "$log" >&2; exit 1; }
echo "chaos rmserved up at $base (fault seed $seed, data dir $data)"

id=$(submit)
i=0
while [ $i -lt 150 ]; do
  writes=$(metric rm_checkpoint_writes_total)
  if [ -n "$writes" ] && [ "$writes" -ge 1 ]; then
    break
  fi
  sleep 0.1
  i=$((i + 1))
done
kill -9 "$srv"
wait "$srv" 2>/dev/null || true
echo "SIGKILLed rmserved mid-campaign (checkpoint writes so far: ${writes:-0})"

# --- 3. Restart on the same data dir; the campaign must complete. ----------
start -addr 127.0.0.1:0 -workers 2 -data-dir "$data" -checkpoint-every 5 \
  -fault-seed "$seed" -fault-rate 0.05
wait_up || { echo "restarted rmserved did not come up:" >&2; cat "$log" >&2; exit 1; }
id2=$(submit) # coalesces with the startup-scan resubmission by fingerprint
res=$(wait_done "$id2")

resumes=$(metric rm_checkpoint_resumes_total)
corruptions=$(metric rm_checkpoint_corruptions_total)
hits=$(metric rm_store_disk_hits_total)
echo "after restart: resumes=${resumes:-0} corruptions=${corruptions:-0} disk hits=${hits:-0}"
if [ "${resumes:-0}" -eq 0 ] && [ "${corruptions:-0}" -eq 0 ] && [ "${hits:-0}" -eq 0 ]; then
  echo "durable tier never engaged after the crash" >&2
  exit 1
fi

# --- 4. Bit-identical result. ----------------------------------------------
if [ "$res" != "$ref" ]; then
  echo "post-crash result differs from the clean run:" >&2
  printf '%s\n' "$ref" >"$log.ref"
  printf '%s\n' "$res" >"$log.res"
  diff -u "$log.ref" "$log.res" >&2 || true
  exit 1
fi
echo "post-crash result bit-identical to the clean run"

kill "$srv" && wait "$srv" 2>/dev/null || true
echo "chaos smoke OK"
