#!/bin/sh
# check-noalloc.sh -- the escape-analysis half of the zero-alloc contract.
#
# rmlint's hotpath analyzer rejects the allocation *syntax* it can see in
# the AST (append without scratch, literals, boxing, fmt); this script
# closes the gap with the compiler's own escape analysis: no statement
# inside a //rm:hotpath function span may escape to the heap.
#
# Mechanics: `rmlint -hotpath` prints every annotated span as
# file:start:end:name, `go build -gcflags='./...=-m'` prints one line per
# escaping expression (replayed from the build cache on a warm build, so
# the output is complete even when nothing recompiles), and awk intersects
# the two by (file, line). Exit 1 with the offending lines on overlap.
#
# Usage: scripts/check-noalloc.sh   (from the module root; CI and
#        `make check-noalloc` run it this way)
set -eu

cd "$(dirname "$0")/.."

spans=$(mktemp)
escapes=$(mktemp)
trap 'rm -f "$spans" "$escapes"' EXIT

go run ./cmd/rmlint -hotpath ./... >"$spans"
if ! [ -s "$spans" ]; then
    echo "check-noalloc: no //rm:hotpath spans found (annotations missing?)" >&2
    exit 1
fi

# Escape analysis for every package; -e keeps the build going past any
# error so the diagnostic stream is complete.
go build -gcflags='./...=-m -e' ./... 2>&1 |
    grep -E 'escapes to heap|moved to heap' >"$escapes" || true

violations=$(awk -F: '
    NR == FNR { file[NR] = $1; start[NR] = $2; end[NR] = $3; name[NR] = $4; n = NR; next }
    {
        for (i = 1; i <= n; i++) {
            if ($1 == file[i] && $2 + 0 >= start[i] && $2 + 0 <= end[i]) {
                print $0 " [in //rm:hotpath func " name[i] "]"
                break
            }
        }
    }
' "$spans" "$escapes")

if [ -n "$violations" ]; then
    echo "check-noalloc: heap traffic inside //rm:hotpath functions:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "check-noalloc: $(wc -l <"$spans" | tr -d ' ') hotpath spans clean"
