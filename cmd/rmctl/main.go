// Command rmctl is the resilient command-line client for rmserved,
// built on internal/client: every call retries temporary failures
// (queue-full 429s with their Retry-After hint, draining 503s, transient
// 5xx) on a jittered exponential backoff whose schedule is a pure
// function of -retry-seed.
//
// Usage:
//
//	rmctl [-addr URL] [-timeout D] [-retries N] [-retry-seed N] <command> [args]
//
// Commands:
//
//	submit {JSON|@file|-}   submit a campaign; the argument is the wire
//	                        request as inline JSON, @file, or - for stdin.
//	                        Prints the service ticket (id, fingerprint).
//	status ID               print the campaign's current status JSON.
//	wait ID                 poll until the campaign reaches a terminal
//	                        state; print the final status JSON. Exits 1
//	                        if the campaign failed or was canceled.
//	stream ID               relay the campaign's NDJSON event stream to
//	                        stdout until the terminal line (reconnecting
//	                        across dropped connections).
//	health                  print the service's /healthz JSON.
//
// Exit codes follow the house convention: 0 success, 1 runtime or
// campaign failure, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "rmserved base URL")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall deadline for the command")
	retries := fs.Int("retries", 5, "attempts per request (temporary failures retry with backoff)")
	seed := fs.Uint64("retry-seed", 1, "backoff jitter seed (same seed, same retry schedule)")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval for wait")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rmctl [flags] {submit {JSON|@file|-} | status ID | wait ID | stream ID | health}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *retries < 1 || *timeout <= 0 || *poll <= 0 {
		fmt.Fprintln(stderr, "rmctl: -retries must be >= 1 and -timeout/-poll positive")
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}

	bo := client.DefaultBackoff()
	bo.Tries = *retries
	c := client.New(*addr, client.WithJitterSeed(*seed), client.WithBackoff(bo))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch cmd, cmdArgs := rest[0], rest[1:]; cmd {
	case "submit":
		err = cmdSubmit(ctx, c, cmdArgs, stdin, stdout)
	case "status":
		err = cmdStatus(ctx, c, cmdArgs, stdout)
	case "wait":
		err = cmdWait(ctx, c, cmdArgs, *poll, stdout)
	case "stream":
		err = cmdStream(ctx, c, cmdArgs, stdout)
	case "health":
		if len(cmdArgs) != 0 {
			err = usageError{"health takes no arguments"}
		} else {
			var h json.RawMessage
			if h, err = c.Health(ctx); err == nil {
				err = printJSON(stdout, h)
			}
		}
	default:
		err = usageError{fmt.Sprintf("unknown command %q", cmd)}
	}
	if err != nil {
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(stderr, "rmctl:", ue.msg)
			fs.Usage()
			return 2
		}
		fmt.Fprintln(stderr, "rmctl:", err)
		return 1
	}
	return 0
}

// usageError marks argument mistakes that should exit 2, not 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// requestBody resolves submit's argument forms: inline JSON, @file, or
// "-" for stdin.
func requestBody(arg string, stdin io.Reader) ([]byte, error) {
	switch {
	case arg == "-":
		return io.ReadAll(stdin)
	case strings.HasPrefix(arg, "@"):
		return os.ReadFile(strings.TrimPrefix(arg, "@"))
	default:
		return []byte(arg), nil
	}
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) != 1 {
		return usageError{"submit needs exactly one argument: inline JSON, @file, or -"}
	}
	body, err := requestBody(args[0], stdin)
	if err != nil {
		return err
	}
	var wire core.WireRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return usageError{fmt.Sprintf("bad request JSON: %v", err)}
	}
	sub, err := c.Submit(ctx, wire)
	if err != nil {
		return err
	}
	return printJSON(stdout, sub)
}

func cmdStatus(ctx context.Context, c *client.Client, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return usageError{"status needs exactly one campaign ID"}
	}
	st, err := c.Status(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(stdout, st)
}

func cmdWait(ctx context.Context, c *client.Client, args []string, poll time.Duration, stdout io.Writer) error {
	if len(args) != 1 {
		return usageError{"wait needs exactly one campaign ID"}
	}
	st, err := c.Wait(ctx, args[0], poll)
	if err != nil {
		return err
	}
	if err := printJSON(stdout, st); err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("campaign %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

func cmdStream(ctx context.Context, c *client.Client, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return usageError{"stream needs exactly one campaign ID"}
	}
	enc := json.NewEncoder(stdout)
	return c.Stream(ctx, args[0], func(ev client.Event) error {
		return enc.Encode(ev)
	})
}

// printJSON writes v as one indented JSON document.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
