package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// testService boots a real in-process service behind an HTTP listener.
func testService(t *testing.T) string {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// rmctl runs the CLI with stdin and returns (exit, stdout, stderr).
func rmctl(stdin string, args ...string) (int, string, string) {
	var out, errw bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

// TestUsageErrors: argument mistakes exit 2 with usage on stderr.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no command
		{"explode"},                 // unknown command
		{"submit"},                  // missing body
		{"status"},                  // missing id
		{"wait", "a", "b"},          // too many args
		{"health", "extra"},         // health takes none
		{"-retries", "0", "health"}, // invalid flag value
		{"submit", `{"nope":1}`},    // unknown wire field
	}
	for _, args := range cases {
		code, _, stderr := rmctl("", args...)
		if code != 2 {
			t.Errorf("rmctl %v exited %d (stderr %q), want 2", args, code, stderr)
		}
	}
}

// TestSubmitWaitStreamHealth drives the full command surface against a
// real service, exercising all three submit argument forms.
func TestSubmitWaitStreamHealth(t *testing.T) {
	url := testService(t)
	const body = `{"workload":"tblook01","placement":"RM","runs":40,"seed":9,"analyze":true}`

	// submit: inline JSON.
	code, out, stderr := rmctl("", "-addr", url, "submit", body)
	if code != 0 {
		t.Fatalf("submit exited %d: %s", code, stderr)
	}
	var sub struct {
		ID          string `json:"id"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(out), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit output %q: %v", out, err)
	}

	// submit: @file and stdin resolve to the same fingerprint (the
	// content-addressed cache recognises the resubmission).
	file := filepath.Join(t.TempDir(), "req.json")
	if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr = rmctl("", "-addr", url, "submit", "@"+file)
	if code != 0 {
		t.Fatalf("submit @file exited %d: %s", code, stderr)
	}
	var fromFile struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(out), &fromFile); err != nil || fromFile.Fingerprint != sub.Fingerprint {
		t.Fatalf("@file fingerprint %q, want %q", fromFile.Fingerprint, sub.Fingerprint)
	}
	code, out, _ = rmctl(body, "-addr", url, "submit", "-")
	var fromStdin struct {
		Fingerprint string `json:"fingerprint"`
	}
	if code != 0 || json.Unmarshal([]byte(out), &fromStdin) != nil || fromStdin.Fingerprint != sub.Fingerprint {
		t.Fatalf("stdin submit exit %d output %q", code, out)
	}

	// wait: terminal status with the result attached.
	code, out, stderr = rmctl("", "-addr", url, "wait", sub.ID)
	if code != 0 {
		t.Fatalf("wait exited %d: %s", code, stderr)
	}
	var st struct {
		State  string `json:"state"`
		Result *struct {
			Runs int `json:"runs"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil || st.Result.Runs != 40 {
		t.Fatalf("wait status %s", out)
	}

	// status: same terminal view.
	code, out, _ = rmctl("", "-addr", url, "status", sub.ID)
	if code != 0 || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("status exit %d output %s", code, out)
	}

	// stream: NDJSON relay ending with the terminal line.
	code, out, stderr = rmctl("", "-addr", url, "stream", sub.ID)
	if code != 0 {
		t.Fatalf("stream exited %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var last struct {
		Kind  string `json:"kind"`
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "end" || last.State != "done" {
		t.Fatalf("stream last line %q", lines[len(lines)-1])
	}

	// health: liveness JSON.
	code, out, _ = rmctl("", "-addr", url, "health")
	if code != 0 || !strings.Contains(out, `"status": "ok"`) {
		t.Fatalf("health exit %d output %s", code, out)
	}
}

// TestRuntimeErrorsExitOne: service-side failures are exit 1, not 2.
func TestRuntimeErrorsExitOne(t *testing.T) {
	url := testService(t)
	// Unknown campaign: typed 404 from the service.
	code, _, stderr := rmctl("", "-addr", url, "status", "c-999999")
	if code != 1 || !strings.Contains(stderr, "404") {
		t.Fatalf("unknown id exit %d stderr %q, want 1 with a 404", code, stderr)
	}
	// Validation rejected by the service (unknown workload): exit 1.
	code, _, stderr = rmctl("", "-addr", url, "submit", `{"workload":"nope","placement":"RM","runs":5}`)
	if code != 1 {
		t.Fatalf("bad workload exit %d stderr %q, want 1", code, stderr)
	}
	// Unreachable server after the retry budget: exit 1.
	code, _, _ = rmctl("", "-addr", "http://127.0.0.1:1", "-retries", "1", "health")
	if code != 1 {
		t.Fatalf("unreachable server exit %d, want 1", code)
	}
}

// TestWaitFailedCampaignExitOne: wait prints the terminal status but
// reports non-done outcomes through the exit code.
func TestWaitFailedCampaignExitOne(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{
			"id": "c-000007", "state": "failed", "error": "simulated platform fault",
		})
	}))
	t.Cleanup(ts.Close)
	code, out, stderr := rmctl("", "-addr", ts.URL, "wait", "c-000007")
	if code != 1 {
		t.Fatalf("failed campaign exit %d stderr %q, want 1", code, stderr)
	}
	if !strings.Contains(out, `"state": "failed"`) {
		t.Fatalf("wait did not print the terminal status: %s", out)
	}
	if !strings.Contains(stderr, "c-000007") || !strings.Contains(stderr, "simulated platform fault") {
		t.Fatalf("failure stderr %q does not name the campaign and error", stderr)
	}
}
