package main

import (
	"net"
	"strings"
	"testing"
)

// TestValidateFlags pins the usage contract of rmserved's numeric knobs:
// invalid values are usage errors (reported on exit code 2 by main, like
// the other commands) that name the offending flag and value.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(2, 64, 1024, 300, 100000); err != nil {
		t.Fatalf("default flag set rejected: %v", err)
	}
	if err := validateFlags(1, 1, 0, 1, 1); err != nil {
		t.Fatalf("minimal valid flag set rejected: %v", err)
	}
	bad := []struct {
		name                                string
		jobs, queue, cache, defRuns, maxRun int
		wantFlag                            string
	}{
		{"zero jobs", 0, 64, 1024, 300, 100000, "-jobs"},
		{"negative jobs", -3, 64, 1024, 300, 100000, "-jobs"},
		{"zero queue", 2, 0, 1024, 300, 100000, "-queue"},
		{"negative cache", 2, 64, -1, 300, 100000, "-cache"},
		{"zero default runs", 2, 64, 1024, 0, 100000, "-default-runs"},
		{"zero max runs", 2, 64, 1024, 300, 0, "-max-runs"},
		{"default above max", 2, 64, 1024, 500, 400, "-default-runs"},
	}
	for _, tc := range bad {
		err := validateFlags(tc.jobs, tc.queue, tc.cache, tc.defRuns, tc.maxRun)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantFlag)
		}
	}
}

// TestListenHost checks that wildcard listens are reported with a
// connectable host, so logs and smoke scripts can paste the URL.
func TestListenHost(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := listenHost(ln); !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("listenHost = %q, want 127.0.0.1:port", got)
	}
	wild, err := net.Listen("tcp", ":0")
	if err != nil {
		t.Skipf("wildcard listen unavailable: %v", err)
	}
	defer wild.Close()
	got := listenHost(wild)
	if !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("wildcard listenHost = %q, want a connectable 127.0.0.1:port", got)
	}
}
