package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestValidateFlags pins the usage contract of rmserved's numeric knobs:
// invalid values are usage errors (reported on exit code 2 by main, like
// the other commands) that name the offending flag and value.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(2, 64, 1024, 300, 100000, "text"); err != nil {
		t.Fatalf("default flag set rejected: %v", err)
	}
	if err := validateFlags(1, 1, 0, 1, 1, "json"); err != nil {
		t.Fatalf("minimal valid flag set rejected: %v", err)
	}
	bad := []struct {
		name                                string
		jobs, queue, cache, defRuns, maxRun int
		logFormat                           string
		wantFlag                            string
	}{
		{"zero jobs", 0, 64, 1024, 300, 100000, "text", "-jobs"},
		{"negative jobs", -3, 64, 1024, 300, 100000, "text", "-jobs"},
		{"zero queue", 2, 0, 1024, 300, 100000, "text", "-queue"},
		{"negative cache", 2, 64, -1, 300, 100000, "text", "-cache"},
		{"zero default runs", 2, 64, 1024, 0, 100000, "text", "-default-runs"},
		{"zero max runs", 2, 64, 1024, 300, 0, "text", "-max-runs"},
		{"default above max", 2, 64, 1024, 500, 400, "text", "-default-runs"},
		{"unknown log format", 2, 64, 1024, 300, 100000, "xml", "-log"},
	}
	for _, tc := range bad {
		err := validateFlags(tc.jobs, tc.queue, tc.cache, tc.defRuns, tc.maxRun, tc.logFormat)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantFlag)
		}
	}
}

// TestValidateResilienceFlags pins the usage contract of the durability
// and drain knobs.
func TestValidateResilienceFlags(t *testing.T) {
	if err := validateResilienceFlags(50, 15*time.Second, 0, ""); err != nil {
		t.Fatalf("default resilience flags rejected: %v", err)
	}
	if err := validateResilienceFlags(1, time.Millisecond, 0.5, "/tmp/x"); err != nil {
		t.Fatalf("minimal valid resilience flags rejected: %v", err)
	}
	bad := []struct {
		name      string
		ckptEvery int
		drain     time.Duration
		faultRate float64
		dataDir   string
		wantFlag  string
	}{
		{"zero cadence", 0, time.Second, 0, "", "-checkpoint-every"},
		{"zero drain", 50, 0, 0, "", "-drain-timeout"},
		{"negative rate", 50, time.Second, -0.1, "d", "-fault-rate"},
		{"rate of one", 50, time.Second, 1, "d", "-fault-rate"},
		{"faults without data dir", 50, time.Second, 0.1, "", "-data-dir"},
	}
	for _, tc := range bad {
		err := validateResilienceFlags(tc.ckptEvery, tc.drain, tc.faultRate, tc.dataDir)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantFlag)
		}
	}
}

// TestDrainTimeout: a consumer that opens the NDJSON event stream and
// then never reads must not hold shutdown hostage — drainAndClose
// force-closes the connection once -drain-timeout expires.
func TestDrainTimeout(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	resp, err := http.Post(url+"/v1/campaigns", "application/json",
		strings.NewReader(`{"workload":"tblook01","placement":"RM","runs":100000,"seed":71}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The stuck consumer: a raw connection that requests the stream and
	// never reads a byte of the response.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /v1/campaigns/%s/events HTTP/1.1\r\nHost: rmserved\r\n\r\n", sub.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the handler attach to the stream

	start := time.Now()
	done := make(chan struct{})
	go func() { drainAndClose(srv, svc, 300*time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed with a stuck NDJSON consumer")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %s despite the 300ms timeout", elapsed)
	}
}

// TestFaultFS: the chaos filesystem is only built when a rate is set.
func TestFaultFS(t *testing.T) {
	if fs := faultFS(1, 0); fs != nil {
		t.Fatal("zero rate built a faulty FS")
	}
	if fs := faultFS(1, 0.5); fs == nil {
		t.Fatal("no FS for a positive rate")
	}
}

// TestListenHost checks that wildcard listens are reported with a
// connectable host, so logs and smoke scripts can paste the URL.
func TestListenHost(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := listenHost(ln); !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("listenHost = %q, want 127.0.0.1:port", got)
	}
	wild, err := net.Listen("tcp", ":0")
	if err != nil {
		t.Skipf("wildcard listen unavailable: %v", err)
	}
	defer wild.Close()
	got := listenHost(wild)
	if !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("wildcard listenHost = %q, want a connectable 127.0.0.1:port", got)
	}
}

// TestPprofGate: the profiling endpoints exist only behind -pprof, and
// the service API keeps working through the combined mux.
func TestPprofGate(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	plain := httptest.NewServer(handler(svc, false))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof -> %d, want 404", resp.StatusCode)
	}

	prof := httptest.NewServer(handler(svc, true))
	defer prof.Close()
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index -> %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(prof.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz through the pprof mux -> %d", resp.StatusCode)
	}
	resp, err = http.Get(prof.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics through the pprof mux -> %d", resp.StatusCode)
	}
}

// TestServedEndpoints drives the daemon's handler the way a deployment
// smoke does: discovery via /v1/kinds, a security campaign through the
// submit/status flow, and a malformed security block rejected with 400.
func TestServedEndpoints(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	var kinds struct {
		Kinds     []string `json:"kinds"`
		Protocols []string `json:"security_protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kinds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(kinds.Kinds) != 3 || len(kinds.Protocols) != 3 {
		t.Fatalf("/v1/kinds = %+v", kinds)
	}

	submit := func(body string) (*http.Response, error) {
		return http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	}
	resp, err = submit(`{"placement":"Modulo","runs":6,"seed":2,` +
		`"security":{"protocol":"eviction","replacement":"LRU","probe_lines":64,"probe_stride":4096}}`)
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("security submit -> %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/v1/campaigns/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Security *struct {
					Curve []struct {
						Success float64 `json:"success"`
					} `json:"curve"`
				} `json:"security"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if st.Result == nil || st.Result.Security == nil || len(st.Result.Security.Curve) == 0 {
				t.Fatalf("done without a security aggregate: %+v", st.Result)
			}
			// Modulo+LRU with way-size stride is the deterministic KAT
			// point: construction always succeeds.
			last := st.Result.Security.Curve[len(st.Result.Security.Curve)-1]
			if last.Success != 1 {
				t.Fatalf("KAT success = %v, want 1", last.Success)
			}
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("campaign %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = submit(`{"placement":"Modulo","runs":6,"security":{"protocol":"nope"}}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad protocol -> %d, want 400", resp.StatusCode)
	}
}
