// Command rmserved is the campaign service daemon: the Engine behind an
// HTTP API, with a content-addressed result cache so identical campaign
// submissions run once and are served from memory ever after (results are
// a pure function of the request by the determinism contract).
//
// Usage:
//
//	rmserved [-addr :8080] [-workers N] [-jobs N] [-queue N] [-cache N]
//	         [-default-runs N] [-max-runs N] [-log text|json] [-pprof]
//	         [-data-dir DIR] [-checkpoint-every N] [-drain-timeout D]
//	         [-fault-seed N -fault-rate P]
//
// Endpoints:
//
//	POST /v1/campaigns            submit a campaign (JSON), returns id + fingerprint
//	GET  /v1/campaigns/{id}        status / result (incl. pWCET analysis,
//	                               or the attack aggregate for security campaigns)
//	GET  /v1/campaigns/{id}/events NDJSON stream of live campaign events
//	GET  /v1/policies              placement policy catalog
//	GET  /v1/workloads             workload catalog
//	GET  /v1/kinds                 campaign kinds + security protocol vocabulary
//	GET  /v1/traces                recent campaign trace spans (phase timings)
//	GET  /healthz                  liveness + queue, cache and disk statistics
//	GET  /metrics                  Prometheus text-format metrics
//	GET  /debug/pprof/...          Go profiling endpoints (only with -pprof)
//
// Every request is access-logged (-log selects text or JSON lines) with a
// request ID that is echoed back in the X-Request-Id response header;
// clients may supply their own X-Request-Id to correlate across hops.
//
// Timing campaigns (the default) measure MBPTA or baseline execution
// times; security campaigns (submissions with a "security" block) run
// attacker protocols -- eviction-set construction, the cache-occupancy
// channel, Prime+Probe -- against the selected placement and report
// success-vs-effort curves instead.
//
// -data-dir enables the durable tier: completed results persist across
// restarts, running campaigns checkpoint their streaming frontier every
// -checkpoint-every runs, and a killed daemon resumes its interrupted
// campaigns on the next start — bit-identically, per the checkpoint
// contract. -fault-seed/-fault-rate inject deterministic storage faults
// under the durable tier (chaos testing only).
//
// SIGINT/SIGTERM drain gracefully: the listener stops, in-flight
// campaigns are cancelled via context, and the process exits once the
// job workers have returned. -drain-timeout bounds how long the drain
// waits for open connections (a stream to a stuck consumer is
// force-closed at the deadline, so shutdown always completes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	workers := flag.Int("workers", 0, "simulation pool size (0 = GOMAXPROCS)")
	jobs := flag.Int("jobs", 2, "campaigns executing concurrently")
	queue := flag.Int("queue", 64, "bounded job queue depth (full queue returns 429)")
	cache := flag.Int("cache", 1024, "content-addressed result cache size (entries, LRU)")
	defaultRuns := flag.Int("default-runs", 300, "runs applied to submissions that omit them")
	maxRuns := flag.Int("max-runs", 100000, "largest accepted campaign")
	logFormat := flag.String("log", "text", "access-log format: text or json")
	pprofF := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "", "durable store directory (empty = memory only)")
	ckptEvery := flag.Int("checkpoint-every", 50, "checkpoint cadence in runs (with -data-dir)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "bound on graceful drain; stuck connections are force-closed after it")
	faultSeed := flag.Uint64("fault-seed", 0, "storage fault-injection seed (chaos testing; with -fault-rate)")
	faultRate := flag.Float64("fault-rate", 0, "storage fault probability per filesystem operation, in [0,1) (chaos testing)")
	flag.Parse()

	if err := validateFlags(*jobs, *queue, *cache, *defaultRuns, *maxRuns, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
		os.Exit(2)
	}
	if err := validateResilienceFlags(*ckptEvery, *drainTimeout, *faultRate, *dataDir); err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
		os.Exit(1)
	}

	svc, err := service.New(service.Config{
		Workers:         *workers,
		Jobs:            *jobs,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		DefaultRuns:     *defaultRuns,
		MaxRuns:         *maxRuns,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		FS:              faultFS(*faultSeed, *faultRate),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           service.AccessLog(handler(svc, *pprofF), os.Stderr, *logFormat),
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.SetPrefix("rmserved: ")
	log.SetFlags(log.LstdFlags)
	durable := "off"
	if *dataDir != "" {
		durable = *dataDir
	}
	log.Printf("listening on http://%s (workers=%d jobs=%d queue=%d cache=%d data-dir=%s)",
		listenHost(ln), svc.Engine().Workers(), *jobs, *queue, *cache, durable)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "rmserved:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("signal received, draining (in-flight campaigns are cancelled)")
		drainAndClose(srv, svc, *drainTimeout)
		log.Print("drained")
	}
}

// drainAndClose shuts the listener down gracefully, bounded by timeout:
// if open connections (e.g. an NDJSON stream to a consumer that stopped
// reading) outlast the deadline they are force-closed, so a single stuck
// client can never hold SIGTERM hostage. The service drains after the
// HTTP side is quiet either way.
func drainAndClose(srv *http.Server, svc *service.Server, timeout time.Duration) {
	shutdownCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("graceful drain expired after %s, force-closing connections (%v)", timeout, err)
		_ = srv.Close()
	}
	svc.Close()
}

// faultFS builds the chaos-testing filesystem: nil (the real one) unless
// a fault rate is set, in which case the rate is split across I/O errors,
// torn writes and delays, all drawn deterministically from the seed.
func faultFS(seed uint64, rate float64) faultinject.FS {
	if rate <= 0 {
		return nil
	}
	return faultinject.Wrap(faultinject.OS{}, faultinject.NewPlan(seed, faultinject.Config{
		PError: 0.4 * rate,
		PTorn:  0.4 * rate,
		PDelay: 0.2 * rate,
	}))
}

// handler assembles the daemon's route table: the service API, plus the
// pprof endpoints when enabled. pprof is opt-in because it exposes heap
// and goroutine internals — never on by default on a network service.
func handler(svc *service.Server, withPprof bool) http.Handler {
	if !withPprof {
		return svc.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// validateFlags checks the numeric service knobs up front: an invalid
// value is a usage error reported on exit code 2, consistent with the
// flag-validation convention of rmsim, mbpta, tracegen and paperbench.
func validateFlags(jobs, queue, cache, defaultRuns, maxRuns int, logFormat string) error {
	switch {
	case jobs < 1:
		return fmt.Errorf("-jobs must be at least 1, got %d", jobs)
	case queue < 1:
		return fmt.Errorf("-queue must be at least 1, got %d", queue)
	case cache < 0:
		return fmt.Errorf("-cache must be non-negative, got %d", cache)
	case defaultRuns < 1:
		return fmt.Errorf("-default-runs must be at least 1, got %d", defaultRuns)
	case maxRuns < 1:
		return fmt.Errorf("-max-runs must be at least 1, got %d", maxRuns)
	case defaultRuns > maxRuns:
		return fmt.Errorf("-default-runs %d exceeds -max-runs %d", defaultRuns, maxRuns)
	case !service.ValidLogFormat(logFormat):
		return fmt.Errorf("-log must be text or json, got %q", logFormat)
	}
	return nil
}

// validateResilienceFlags checks the durability and drain knobs.
func validateResilienceFlags(ckptEvery int, drainTimeout time.Duration, faultRate float64, dataDir string) error {
	switch {
	case ckptEvery < 1:
		return fmt.Errorf("-checkpoint-every must be at least 1, got %d", ckptEvery)
	case drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %s", drainTimeout)
	case faultRate < 0 || faultRate >= 1:
		return fmt.Errorf("-fault-rate must be in [0, 1), got %g", faultRate)
	case faultRate > 0 && dataDir == "":
		return fmt.Errorf("-fault-rate needs -data-dir (faults apply to the durable store)")
	}
	return nil
}

// listenHost renders the bound address with a connectable host: a
// wildcard listen ("[::]:8080") is reported as 127.0.0.1 so logs and
// smoke scripts can paste the URL directly.
func listenHost(ln net.Listener) string {
	a, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		return ln.Addr().String()
	}
	if a.IP == nil || a.IP.IsUnspecified() {
		return fmt.Sprintf("127.0.0.1:%d", a.Port)
	}
	return a.String()
}
