package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestResolveNames pins the usage contract of rmsim's -workload and
// -placement flags: unknown names are errors (reported on exit code 2 by
// usageFatal) that name the bad value, via the shared core.ResolveNames.
func TestResolveNames(t *testing.T) {
	w, kind, err := core.ResolveNames("tblook01", "rm")
	if err != nil || w.Name != "tblook01" || kind.String() != "RM" {
		t.Fatalf("ResolveNames(tblook01, rm) = (%v, %v, %v)", w.Name, kind, err)
	}
	if _, _, err := core.ResolveNames("no-such-workload", "RM"); err == nil {
		t.Fatal("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("error %q does not name the workload", err)
	}
	if _, _, err := core.ResolveNames("tblook01", "no-such-placement"); err == nil {
		t.Fatal("unknown placement accepted")
	} else if !strings.Contains(err.Error(), "no-such-placement") {
		t.Errorf("error %q does not name the placement", err)
	}
}
