// Command rmsim runs one measurement campaign on the simulated LEON3-like
// platform and reports execution-time statistics, per-level miss ratios,
// and optionally the raw per-run times for external analysis.
//
// Usage:
//
//	rmsim -workload tblook01 -placement RM -runs 1000 [-workers N] [-seed N] [-times out.txt]
//
// The campaign runs on the context-aware Engine: Ctrl-C cancels it
// mid-campaign instead of waiting for the remaining runs.
//
// Placement selects the L1 policy (Modulo, XORFold, hRP, RM, RM-rot); the
// L2 follows the paper's setup (hRP with random replacement) unless
// -placement Modulo is chosen, which selects the fully deterministic
// modulo+LRU platform.
//
// Instead of a built-in workload, -trace replays a valgrind lackey
// capture (valgrind --tool=lackey --trace-mem=yes) through the simulated
// memory hierarchy; the capture's addresses are replayed verbatim, so
// run-to-run variation comes from the randomized caches alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "synth20k", "workload name (see -list)")
	pname := flag.String("placement", "RM", "L1 placement: Modulo, XORFold, hRP, RM, RM-rot")
	runs := flag.Int("runs", 300, "number of runs (seeds)")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = GOMAXPROCS; any value yields identical times)")
	seed := flag.Uint64("seed", experimentsSeed, "master seed")
	timesOut := flag.String("times", "", "write raw per-run cycle counts to this file")
	tracePath := flag.String("trace", "", "replay a valgrind lackey capture instead of a built-in workload")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	var w workload.Workload
	var kind placement.Kind
	var err error
	if *tracePath != "" {
		kind, err = placement.ParseKind(*pname)
		if err != nil {
			usageFatal(err)
		}
		w, err = loadLackeyWorkload(*tracePath)
		if err != nil {
			fatal(err)
		}
	} else {
		w, kind, err = core.ResolveNames(*wname, *pname)
		if err != nil {
			usageFatal(err)
		}
	}

	spec := core.PlatformFor(kind)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := core.NewEngine(core.WithWorkers(*workers))
	res, err := eng.Run(ctx, core.Request{
		Spec: spec, Workload: w, Runs: *runs, MasterSeed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload  %s (%s)\n", w.Name, w.Description)
	fmt.Printf("platform  L1=%s  runs=%d  accesses/run=%d (F=%d L=%d S=%d)\n",
		kind, *runs, res.Trace.Accesses, res.Trace.Fetches, res.Trace.Loads, res.Trace.Stores)
	fmt.Printf("cycles    min=%.0f  mean=%.0f  max=%.0f  sd=%.0f\n",
		stats.Min(res.Times), res.Mean(), res.HWM(), stats.StdDev(res.Times))
	fmt.Printf("misses    IL1=%.4f  DL1=%.4f  L2=%.4f\n", res.IL1Miss, res.DL1Miss, res.L2Miss)

	if len(res.Times) >= 40 {
		an, err := core.Analyze(res.Times)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("iid       WW=%.2f (<1.96)  KSp=%.2f (>0.05)  ETp=%.2f (>0.05)  pass=%v\n",
			an.WW.Stat, an.KS.P, an.ET.P, an.IIDPass && an.ET.Pass)
		fmt.Printf("gumbel    mu=%.0f  beta=%.1f  (block %d)\n",
			an.Model.Fit.Mu, an.Model.Fit.Beta, an.Model.Block)
		fmt.Printf("pWCET     1e-12: %.0f   1e-15: %.0f\n", an.PWCET12, an.PWCET15)
	}

	if *timesOut != "" {
		var b strings.Builder
		for _, x := range res.Times {
			b.WriteString(strconv.FormatFloat(x, 'f', 0, 64))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(*timesOut, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(res.Times), *timesOut)
	}
}

const experimentsSeed = 0x9A9E6

// loadLackeyWorkload parses a valgrind lackey capture and wraps it as a
// fixed-trace workload named after the file.
func loadLackeyWorkload(path string) (workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Workload{}, err
	}
	defer f.Close()
	tr, err := trace.ParseLackey(f)
	if err != nil {
		return workload.Workload{}, fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return workload.FromTrace(name, "valgrind lackey capture", tr), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}

// usageFatal reports a bad flag value (unknown workload or placement
// name) with the usage exit code.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(2)
}
