// Command tracegen dumps a workload's address trace in a simple text
// format (kind address, one access per line), for inspection or for
// feeding external cache simulators.
//
// Usage:
//
//	tracegen -workload matrix01 [-limit 100] [-randomize-layout seed] [-cycles]
//
// -cycles additionally replays the trace once on the deterministic
// modulo+LRU platform via the Engine and annotates the summary with its
// cycle cost under exactly this layout.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/prng"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "synth8k", "workload name")
	limit := flag.Int("limit", 0, "print at most this many accesses (0 = all)")
	randomize := flag.Uint64("randomize-layout", 0, "randomize the memory layout with this seed (0 = default layout)")
	summary := flag.Bool("summary", false, "print only the trace summary")
	cycles := flag.Bool("cycles", false, "annotate the summary with the trace's deterministic cycle cost")
	flag.Parse()

	w, err := workload.ByName(*wname)
	if err != nil {
		// Unknown names are usage errors: exit 2, the convention shared
		// by all the CLIs (cf. paperbench -exp).
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	layout := workload.DefaultLayout()
	if *randomize != 0 {
		layout = workload.RandomizedLayout(prng.New(*randomize))
	}
	tr := w.Build(layout)
	f, l, s := tr.Counts()
	fmt.Fprintf(os.Stderr, "# %s: %d accesses (F=%d L=%d S=%d), %d lines of 32B footprint\n",
		w.Name, len(tr), f, l, s, tr.Footprint(32))
	if *cycles {
		res, err := core.NewEngine(core.WithWorkers(1)).Run(context.Background(), core.Request{
			Spec: core.DeterministicPlatform(), Workload: w, Runs: 1, Layout: &layout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# deterministic modulo+LRU replay: %.0f cycles (%.2f cycles/access)\n",
			res.Times[0], res.Times[0]/float64(len(tr)))
	}
	if *summary {
		return
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for i, a := range tr {
		if *limit > 0 && i >= *limit {
			break
		}
		fmt.Fprintf(out, "%s 0x%08x\n", a.Kind, a.Addr)
	}
}
