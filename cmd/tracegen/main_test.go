package main

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestWorkloadUsageError pins the usage contract of tracegen's -workload
// flag: an unknown name is an error (reported on exit code 2 by main)
// that names the bad value and lists the alternatives.
func TestWorkloadUsageError(t *testing.T) {
	w, err := workload.ByName("matrix01")
	if err != nil || w.Name != "matrix01" {
		t.Fatalf("ByName(matrix01) = (%v, %v)", w.Name, err)
	}
	_, err = workload.ByName("no-such-workload")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range []string{"no-such-workload", "matrix01"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
