// Command benchcompare is the determinism-trajectory gate behind
// scripts/bench-compare.sh: it asserts that every campaign result in a
// new bench-json snapshot (make bench-json) is bit-identical to the
// committed snapshot of the previous PR. Execution-environment fields —
// wall time, worker count, generation timestamp — are exempt; the
// result-determining fields (runs, HWM, mean, pWCET quantiles, error
// text) must match exactly, which is what the Engine's determinism
// contract promises across any code change that only makes the simulator
// faster.
//
// Campaign order inside a snapshot is completion order and therefore not
// deterministic, and one experiment may legitimately run several
// campaigns under one display name (fig5 runs an RM and an hRP campaign
// per footprint), so rows are grouped by (experiment, name) and each
// group is compared as a sorted multiset.
//
// Usage:
//
//	benchcompare OLD.json NEW.json
//
// Campaign groups present only in the new snapshot are tolerated with a
// skip note (new experiments land before the committed snapshot catches
// up); groups missing from the new snapshot still fail.
//
// Exit status: 0 when bit-identical (skip notes allowed), 1 on any result
// difference, 2 on usage or read errors.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// row mirrors the result-determining fields of cmd/paperbench's
// campaignJSON; unknown fields (wall time, timestamps) are ignored by the
// decoder on purpose.
type row struct {
	Experiment string   `json:"experiment"`
	Name       string   `json:"name"`
	Runs       int      `json:"runs"`
	HWM        float64  `json:"hwm"`
	Mean       float64  `json:"mean"`
	PWCET12    *float64 `json:"pwcet_1e12"`
	PWCET15    *float64 `json:"pwcet_1e15"`
	Error      string   `json:"error"`
}

type report struct {
	Scale     string `json:"scale"`
	Campaigns []row  `json:"campaigns"`
}

// canon renders the comparable content of a row; pointer quantiles print
// with full float64 round-trip precision so "bit-identical" means exactly
// that.
func (r row) canon() string {
	p12, p15 := "absent", "absent"
	if r.PWCET12 != nil {
		p12 = fmt.Sprintf("%.17g", *r.PWCET12)
	}
	if r.PWCET15 != nil {
		p15 = fmt.Sprintf("%.17g", *r.PWCET15)
	}
	return fmt.Sprintf("runs=%d hwm=%.17g mean=%.17g pwcet12=%s pwcet15=%s err=%q",
		r.Runs, r.HWM, r.Mean, p12, p15, r.Error)
}

func load(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// groups buckets a report's rows by (experiment, name) with each bucket's
// canonical forms sorted, removing the completion-order nondeterminism.
func groups(rep report) map[string][]string {
	out := make(map[string][]string)
	for _, r := range rep.Campaigns {
		key := r.Experiment + "/" + r.Name
		out[key] = append(out[key], r.canon())
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// compare returns the human-readable differences between two snapshots,
// plus the skip notes for groups that exist only in the new snapshot.
// New-only groups are tolerated (a new PR may add experiments the older
// committed snapshot predates -- the security sweeps did exactly that);
// they are reported so additions stay visible, but they do not fail the
// gate. A group missing from the NEW snapshot still fails: committed
// results must never silently disappear.
func compare(oldRep, newRep report) (diffs, skips []string) {
	og, ng := groups(oldRep), groups(newRep)
	if oldRep.Scale != newRep.Scale {
		diffs = append(diffs, fmt.Sprintf("scale: %q vs %q (snapshots must use the same -short/-full scale)", oldRep.Scale, newRep.Scale))
	}
	keys := make([]string, 0, len(og))
	for k := range og {
		keys = append(keys, k)
	}
	for k := range ng {
		if _, ok := og[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		o, n := og[k], ng[k]
		switch {
		case len(o) == 0:
			skips = append(skips, fmt.Sprintf("%s: only in new snapshot (%d campaigns; skipped, no old baseline)", k, len(n)))
		case len(n) == 0:
			diffs = append(diffs, fmt.Sprintf("%s: missing from new snapshot", k))
		case len(o) != len(n):
			diffs = append(diffs, fmt.Sprintf("%s: %d campaigns vs %d", k, len(o), len(n)))
		default:
			for i := range o {
				if o[i] != n[i] {
					diffs = append(diffs, fmt.Sprintf("%s[%d]:\n  old: %s\n  new: %s", k, i, o[i], n[i]))
				}
			}
		}
	}
	return diffs, skips
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	newRep, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	diffs, skips := compare(oldRep, newRep)
	for _, s := range skips {
		fmt.Fprintln(os.Stderr, "benchcompare: note:", s)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %s and %s differ in %d place(s):\n", os.Args[1], os.Args[2], len(diffs))
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, " ", d)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d campaigns bit-identical between %s and %s (wall-time fields exempt)\n",
		len(newRep.Campaigns), os.Args[1], os.Args[2])
}
