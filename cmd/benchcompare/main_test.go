package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func q(v float64) *float64 { return &v }

func baseReport() report {
	return report{
		Scale: "short",
		Campaigns: []row{
			{Experiment: "table2", Name: "table2/a", Runs: 80, HWM: 100, Mean: 90.5, PWCET12: q(110.25), PWCET15: q(112.75)},
			{Experiment: "fig5", Name: "synth8k", Runs: 40, HWM: 200, Mean: 180},
			{Experiment: "fig5", Name: "synth8k", Runs: 40, HWM: 220, Mean: 190},
		},
	}
}

func TestCompareIdentical(t *testing.T) {
	diffs, skips := compare(baseReport(), baseReport())
	if len(diffs) != 0 || len(skips) != 0 {
		t.Fatalf("identical reports flagged: %v / %v", diffs, skips)
	}
}

func TestCompareIgnoresOrderWithinDuplicateNames(t *testing.T) {
	newRep := baseReport()
	// Completion order flips for the two fig5/synth8k campaigns.
	newRep.Campaigns[1], newRep.Campaigns[2] = newRep.Campaigns[2], newRep.Campaigns[1]
	if diffs, _ := compare(baseReport(), newRep); len(diffs) != 0 {
		t.Fatalf("reordered duplicate-name campaigns flagged: %v", diffs)
	}
}

func TestCompareFlagsResultDrift(t *testing.T) {
	for name, mutate := range map[string]func(*report){
		"hwm":           func(r *report) { r.Campaigns[0].HWM++ },
		"mean":          func(r *report) { r.Campaigns[0].Mean += 1e-9 },
		"pwcet12":       func(r *report) { *r.Campaigns[0].PWCET12 += 1e-9 },
		"pwcet-dropped": func(r *report) { r.Campaigns[0].PWCET15 = nil },
		"runs":          func(r *report) { r.Campaigns[0].Runs = 81 },
		"missing":       func(r *report) { r.Campaigns = r.Campaigns[1:] },
		"error-text":    func(r *report) { r.Campaigns[0].Error = "boom" },
		"scale":         func(r *report) { r.Scale = "full" },
	} {
		newRep := baseReport()
		mutate(&newRep)
		if diffs, _ := compare(baseReport(), newRep); len(diffs) == 0 {
			t.Errorf("%s drift not flagged", name)
		}
	}
}

// TestCompareToleratesNewOnlyGroups pins the forward-compatibility rule:
// a campaign group absent from the old snapshot (a newly added experiment,
// e.g. the security sweeps) is a skip note, not a failure -- but a group
// missing from the NEW snapshot still fails.
func TestCompareToleratesNewOnlyGroups(t *testing.T) {
	newRep := baseReport()
	newRep.Campaigns = append(newRep.Campaigns,
		row{Experiment: "security-evict", Name: "security/eviction/RM/Random", Runs: 24})
	diffs, skips := compare(baseReport(), newRep)
	if len(diffs) != 0 {
		t.Fatalf("new-only group failed the gate: %v", diffs)
	}
	if len(skips) != 1 || !strings.Contains(skips[0], "security-evict/security/eviction/RM/Random") {
		t.Fatalf("skips = %v, want one note naming the new group", skips)
	}
}

// TestLoadIgnoresEnvironmentFields pins the wall-time exemption: decoding
// a real paperbench report with wall_seconds, generated_at and workers
// populated only keeps the result-determining fields.
func TestLoadIgnoresEnvironmentFields(t *testing.T) {
	doc := map[string]any{
		"generated_at": "2026-01-01T00:00:00Z",
		"scale":        "short",
		"workers":      8,
		"campaigns": []map[string]any{{
			"experiment": "table2", "name": "table2/a", "runs": 80,
			"hwm": 100.0, "mean": 90.5, "wall_seconds": 12.75,
		}},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	other := rep
	other.Campaigns = append([]row(nil), rep.Campaigns...)
	// A wall-time change has nowhere to live in the decoded form, so the
	// comparison cannot see it.
	if diffs, _ := compare(rep, other); len(diffs) != 0 {
		t.Fatalf("environment fields leaked into the comparison: %v", diffs)
	}
}
