package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOut invokes run with captured stdout/stderr.
func runOut(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVersionHandshake(t *testing.T) {
	code, out, _ := runOut(t, "-V=full")
	if code != 0 {
		t.Fatalf("rmlint -V=full: exit %d, want 0", code)
	}
	// The go command requires "<name> version <stuff>" to hash into its
	// action IDs.
	if !strings.HasPrefix(out, "rmlint version ") {
		t.Fatalf("rmlint -V=full output %q, want prefix %q", out, "rmlint version ")
	}
}

func TestFlagsHandshake(t *testing.T) {
	code, out, _ := runOut(t, "-flags")
	if code != 0 {
		t.Fatalf("rmlint -flags: exit %d, want 0", code)
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "[") {
		t.Fatalf("rmlint -flags output %q, want a JSON list", out)
	}
}

func TestUsageErrorsExit2(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"./no/such/package/dir"},
	} {
		code, _, stderr := runOut(t, args...)
		if code != 2 {
			t.Errorf("rmlint %v: exit %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}

func TestCleanPackagesExit0(t *testing.T) {
	code, out, stderr := runOut(t, "./internal/prng", "./internal/trace")
	if code != 0 {
		t.Fatalf("rmlint on clean packages: exit %d, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if out != "" {
		t.Fatalf("rmlint on clean packages printed findings:\n%s", out)
	}
}

func TestFindingsExit1(t *testing.T) {
	// Seed a violating package inside the module so the loader can reach
	// it, then expect a hotpath finding and exit 1.
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, "rmlint_seeded_violation_")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	src := `package seeded

//rm:hotpath
func Bad() {
	defer func() {}()
}
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runOut(t, filepath.Base(dir))
	if code != 1 {
		t.Fatalf("rmlint on seeded violation: exit %d, want 1\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "hotpath") || !strings.Contains(out, "defer") {
		t.Fatalf("rmlint finding output missing hotpath/defer:\n%s", out)
	}
}

func TestHotpathSpans(t *testing.T) {
	code, out, stderr := runOut(t, "-hotpath", "./internal/sim")
	if code != 0 {
		t.Fatalf("rmlint -hotpath: exit %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "RunCompiled") {
		t.Fatalf("rmlint -hotpath ./internal/sim output missing RunCompiled:\n%s", out)
	}
	// file:start:end:name, one per line.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Count(line, ":") < 3 {
			t.Fatalf("malformed span line %q", line)
		}
	}
}

// TestSelfRun is the acceptance smoke: the suite over the whole module
// reports zero findings (every true positive is fixed or carries a
// justified suppression).
func TestSelfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module self-run in -short mode")
	}
	code, out, stderr := runOut(t, "./...")
	if code != 0 {
		t.Fatalf("rmlint ./...: exit %d, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}
}
