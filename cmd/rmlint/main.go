// Command rmlint runs the repository's custom static-analysis suite
// (internal/lint): the determinism, hotpath, prngdiscipline and ctxflow
// analyzers that machine-check the MBPTA determinism contract and the
// zero-alloc contract of the compiled replay kernels.
//
// Usage:
//
//	rmlint [-hotpath] [packages...]
//
// Packages default to ./... and use go-style patterns relative to the
// module root ("./...", "./internal/cache", "internal/sim/...").
// Findings print one per line as file:line:col: analyzer: message.
//
// Exit codes follow the house convention: 0 clean, 1 findings (or a
// runtime failure), 2 usage error.
//
//	-hotpath  print the //rm:hotpath-annotated function spans as
//	          file:start:end:name (the input of scripts/check-noalloc.sh)
//	          instead of linting
//
// rmlint is also a go vet -vettool: it answers the -V=full version
// handshake and accepts a vet unit-config file (*.cfg) naming the
// package's files and export data, so
//
//	go vet -vettool=$(which rmlint) ./...
//
// runs the suite under the go command's caching and package walking. In
// that mode type information comes from the toolchain's export data
// instead of the source importer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && args[0] == "-flags" {
		// go vet's flag handshake: enumerate the tool's flags as JSON so
		// the go command knows which vet flags it may forward.
		fmt.Fprintln(stdout, `[{"Name":"hotpath","Bool":true,"Usage":"print //rm:hotpath function spans instead of linting"}]`)
		return 0
	}
	fs := flag.NewFlagSet("rmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hotpath := fs.Bool("hotpath", false, "print //rm:hotpath function spans (file:start:end:name) instead of linting")
	version := fs.String("V", "", "version handshake for go vet -vettool (pass full)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command hashes this line into its action IDs; it must
		// be of the form "<name> version <stuff>".
		fmt.Fprintln(stdout, "rmlint version v6 buildID=repro-lint-suite-v6")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetUnit(patterns[0], stderr)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "rmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "rmlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		// Unresolvable patterns are usage errors, exit 2, the convention
		// shared by all the CLIs (cf. paperbench -exp).
		fmt.Fprintln(stderr, "rmlint:", err)
		return 2
	}

	if *hotpath {
		for _, pkg := range pkgs {
			for _, s := range lint.HotpathSpans(pkg) {
				fmt.Fprintf(stdout, "%s:%d:%d:%s\n", relPath(s.File), s.Start, s.End, s.Name)
			}
		}
		return 0
	}

	diags, err := lint.RunAnalyzers(pkgs, lint.Default())
	if err != nil {
		fmt.Fprintln(stderr, "rmlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "rmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory (run inside the module)")
		}
		dir = parent
	}
}

// relPath shortens p relative to the working directory when possible,
// keeping findings clickable from the repo root.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}

// vetConfig is the unit-config JSON the go command hands a -vettool per
// package (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package described by a vet unit-config file:
// parse its Go files, type-check against the toolchain's export data,
// run the suite. Diagnostics go to stderr; exit 1 reports findings to
// the go command.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "rmlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "rmlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts ("vetx") output to exist even
	// though this suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "rmlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "rmlint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("rmlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "rmlint:", err)
		return 1
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Syntax: files, Types: tpkg, Info: info}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.Default())
	if err != nil {
		fmt.Fprintln(stderr, "rmlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
