package main

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"repro/internal/core"
)

// campaignJSON is one row of the -json report: the per-campaign summary
// needed to track the performance trajectory across code changes.
type campaignJSON struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	HWM        float64 `json:"hwm"`
	Mean       float64 `json:"mean"`
	// pWCET quantiles from the MBPTA pipeline; omitted when the campaign
	// is too small for the statistical floors (or the fit fails).
	PWCET12     *float64 `json:"pwcet_1e12,omitempty"`
	PWCET15     *float64 `json:"pwcet_1e15,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
	Error       string   `json:"error,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	GeneratedAt time.Time      `json:"generated_at"`
	Scale       string         `json:"scale"`
	Workers     int            `json:"workers"`
	Campaigns   []campaignJSON `json:"campaigns"`
}

// resultRecorder reconstructs per-campaign measurement vectors from the
// Engine's event stream (RunCompleted carries the run index and its cycle
// count), so the -json report needs no changes to the experiment drivers.
// Event deliveries are serialized by the Engine; the mutex only fences
// them against setExperiment/report calls from the main goroutine.
type resultRecorder struct {
	mu         sync.Mutex
	experiment string
	inflight   map[inflightKey]*inflightCampaign
	done       []campaignJSON
}

type inflightKey struct {
	campaign string
	index    int
}

type inflightCampaign struct {
	experiment string
	times      []float64
	started    time.Time
}

func newResultRecorder() *resultRecorder {
	return &resultRecorder{inflight: make(map[inflightKey]*inflightCampaign)}
}

// setExperiment labels the campaigns recorded from now on.
func (r *resultRecorder) setExperiment(name string) {
	r.mu.Lock()
	r.experiment = name
	r.mu.Unlock()
}

func (r *resultRecorder) observe(ev core.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := inflightKey{ev.Campaign, ev.Index}
	switch ev.Kind {
	case core.CampaignStarted:
		r.inflight[key] = &inflightCampaign{
			experiment: r.experiment,
			times:      make([]float64, ev.Total),
			started:    time.Now(),
		}
	case core.RunCompleted:
		if c := r.inflight[key]; c != nil && ev.Run < len(c.times) {
			c.times[ev.Run] = ev.Cycles
		}
	case core.CampaignFinished:
		c := r.inflight[key]
		if c == nil {
			return
		}
		delete(r.inflight, key)
		row := campaignJSON{
			Experiment:  c.experiment,
			Name:        ev.Campaign,
			Runs:        ev.Total,
			WallSeconds: time.Since(c.started).Seconds(),
		}
		if ev.Err != nil {
			row.Error = ev.Err.Error()
		} else {
			res := core.CampaignResult{Times: c.times}
			row.HWM = res.HWM()
			row.Mean = res.Mean()
			// Recompute the pWCET quantiles from the reconstructed vector
			// (bit-identical to the driver's: same times, same pipeline);
			// campaigns below the statistical floors just omit them.
			if an, err := core.Analyze(c.times); err == nil {
				p12, p15 := an.PWCET12, an.PWCET15
				row.PWCET12, row.PWCET15 = &p12, &p15
			}
		}
		r.done = append(r.done, row)
	}
}

// write renders the report to path.
func (r *resultRecorder) write(path, scale string, workers int) error {
	r.mu.Lock()
	report := jsonReport{
		GeneratedAt: time.Now().UTC(),
		Scale:       scale,
		Workers:     workers,
		Campaigns:   r.done,
	}
	r.mu.Unlock()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
