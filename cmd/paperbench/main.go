// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulated platform:
//
//	Table 1     ASIC & FPGA implementation results (hardware-cost model)
//	Table 2     WW and KS (and ET) statistics for the EEMBC suite under RM
//	Figure 1    illustrative pWCET curve
//	Figure 4a   RM pWCET normalized to hRP
//	Figure 4b   RM pWCET vs deterministic high-water mark
//	Figure 5    synthetic kernel PDFs and pWCET curves (8/20/160KB)
//	Section 4.4 average performance of RM vs modulo
//	Section 3.1 within-segment collision probability analysis
//	ablations   replacement policy, L2 policy, RM variant
//
// Usage:
//
//	paperbench [-exp all|table1|table2|fig1|fig4a|fig4b|fig5|avgperf|collision|ablations|multicore|convergence]
//	           [-full|-short] [-workers N] [-timeout d] [-progress] [-csv dir] [-json path]
//	           [-metrics path] [-cpuprofile path] [-memprofile path] [-resume-check]
//
// -full restores the paper's campaign sizes (1000 runs per benchmark);
// -short shrinks them to a smoke-test scale; the default regenerates
// everything in a few minutes. All experiments run on one shared Engine
// pool (-workers sets its size, default GOMAXPROCS; results are
// bit-identical for any value, see REPRO_WORKERS). -timeout bounds the
// whole regeneration via context cancellation, -progress forces the live
// per-campaign progress line (default: only when stderr is a terminal),
// and -csv writes machine-readable series for plotting. -json writes a
// per-campaign summary (name, HWM, mean, pWCET quantiles, wall time) so
// the performance trajectory can be tracked across code changes.
// -metrics writes the observability registry (campaign latency histograms
// with p50/p99/p999 per campaign kind, run counters, pool occupancy) plus
// the recent campaign trace spans as a JSON document at exit.
// -resume-check reruns every campaign through the crash path — interrupt
// at the first checkpoint past the midpoint, round-trip the checkpoint
// blob through the wire codec, resume to completion — so the bench
// trajectory regenerated under it must stay bit-identical to the
// committed snapshots (make bench-json-resumed + bench-compare in CI).
// -cpuprofile and -memprofile write pprof profiles of the regeneration
// (the whole run for CPU; a heap snapshot at exit for memory), so
// hot-path regressions can be profiled without editing the harness:
//
//	go run ./cmd/paperbench -exp table2 -short -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/security"
)

// experimentNames lists the valid -exp values in execution order; an
// unknown name is a usage error, not a silent no-op.
var experimentNames = []string{
	"table1", "table2", "fig1", "fig4a", "fig4b", "fig5",
	"avgperf", "collision", "ablations", "multicore", "convergence",
	"security-evict", "security-occupancy", "security-primeprobe",
}

// validateExp checks an -exp value against the registry.
func validateExp(name string) error {
	if name == "all" {
		return nil
	}
	for _, n := range experimentNames {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (valid: all, %s)", name, strings.Join(experimentNames, ", "))
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, "+strings.Join(experimentNames, ", ")+")")
	full := flag.Bool("full", false, "use the paper's campaign sizes (1000 runs)")
	short := flag.Bool("short", false, "smoke-test scale (smallest campaigns that clear the statistical floors)")
	workers := flag.Int("workers", experiments.WorkersFromEnv(), "shared engine pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole regeneration after this long (0 = no limit)")
	progress := flag.Bool("progress", stderrIsTerminal(), "live per-campaign progress line on stderr")
	csvDir := flag.String("csv", "", "directory for machine-readable CSV output (optional)")
	jsonPath := flag.String("json", "", "write machine-readable per-campaign results (name, HWM, mean, pWCET quantiles, wall time) to this file")
	metricsPath := flag.String("metrics", "", "write the metrics registry (campaign latency histograms with p50/p99/p999, run counters) and recent trace spans as JSON to this file")
	resumeCheck := flag.Bool("resume-check", false, "execute every campaign as an interrupted-and-resumed pair (checkpoint at the midpoint, wire round-trip, resume); results must be bit-identical to plain runs")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the regeneration to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if err := validateExp(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	if *full && *short {
		fmt.Fprintln(os.Stderr, "paperbench: -full and -short are mutually exclusive")
		os.Exit(2)
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	scale := experiments.FromEnv()
	if *full {
		scale = experiments.FullScale()
	}
	if *short {
		scale = experiments.SmokeScale()
	}
	scale.Workers = *workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var opts []core.EngineOption
	if *resumeCheck {
		opts = append(opts, core.WithCheckpointReplay())
	}
	var meter *progressMeter
	var recorder *resultRecorder
	var collector *obs.EngineCollector
	var registry *obs.Registry
	if *jsonPath != "" {
		recorder = newResultRecorder()
	}
	if *metricsPath != "" {
		registry = obs.NewRegistry()
		collector = obs.NewEngineCollector(registry, nil)
	}
	if *progress || recorder != nil || collector != nil {
		if *progress {
			meter = newProgressMeter(os.Stderr)
		}
		opts = append(opts, core.WithEvents(func(ev core.Event) {
			if collector != nil {
				collector.Observe(ev)
			}
			if recorder != nil {
				recorder.observe(ev)
			}
			if meter != nil {
				meter.observe(ev)
			}
		}))
	}
	eng := experiments.NewEngine(scale, opts...)
	if registry != nil {
		obs.RegisterPool(registry, eng.Pool())
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if recorder != nil {
			recorder.setExperiment(name)
		}
		out, err := f()
		if meter != nil {
			meter.clear()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "paperbench: -timeout %v exceeded\n", *timeout)
			}
			stopProfiles()
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (string, error) {
		return experiments.Table1().Render(), nil
	})
	run("table2", func() (string, error) {
		r, err := experiments.Table2(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "table2.csv", table2CSV(r)); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig1", func() (string, error) {
		r, err := experiments.Figure1(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			var rows [][]string
			rows = append(rows, []string{"exceedance", "cycles"})
			for _, p := range r.Curve {
				rows = append(rows, []string{fmt.Sprintf("%g", p.P), fmt.Sprintf("%.0f", p.X)})
			}
			if err := writeCSV(*csvDir, "fig1.csv", rows); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig4a", func() (string, error) {
		r, err := experiments.Figure4a(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			var rows [][]string
			rows = append(rows, []string{"benchmark", "pwcet_rm", "pwcet_hrp", "ratio"})
			for _, row := range r.Rows {
				rows = append(rows, []string{row.Bench,
					fmt.Sprintf("%.0f", row.RM), fmt.Sprintf("%.0f", row.HRP),
					fmt.Sprintf("%.4f", row.Ratio)})
			}
			if err := writeCSV(*csvDir, "fig4a.csv", rows); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig4b", func() (string, error) {
		r, err := experiments.Figure4b(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig5", func() (string, error) {
		var b strings.Builder
		for _, kb := range []int{8, 20, 160} {
			r, err := experiments.Figure5(ctx, eng, scale, kb)
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteString("\n")
			if *csvDir != "" {
				var rows [][]string
				rows = append(rows, []string{"policy", "run", "cycles"})
				for i, x := range r.RM.Times {
					rows = append(rows, []string{"RM", fmt.Sprint(i), fmt.Sprintf("%.0f", x)})
				}
				for i, x := range r.HRP.Times {
					rows = append(rows, []string{"hRP", fmt.Sprint(i), fmt.Sprintf("%.0f", x)})
				}
				if err := writeCSV(*csvDir, fmt.Sprintf("fig5_%dkb.csv", kb), rows); err != nil {
					return "", err
				}
			}
		}
		return b.String(), nil
	})
	run("avgperf", func() (string, error) {
		r, err := experiments.AveragePerformance(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("collision", func() (string, error) {
		r, err := experiments.CollisionAnalysis(2000)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablations", func() (string, error) {
		var b strings.Builder
		for _, f := range []func(context.Context, *core.Engine, experiments.Scale, string) (experiments.AblationResult, error){
			experiments.AblationReplacement,
			experiments.AblationL2Policy,
			experiments.AblationRMVariant,
		} {
			r, err := f(ctx, eng, scale, "tblook01")
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteString("\n")
		}
		est, err := experiments.AblationEstimator(ctx, eng, scale)
		if err != nil {
			return "", err
		}
		b.WriteString(est.Render())
		return b.String(), nil
	})
	run("multicore", func() (string, error) {
		r, err := experiments.Multicore(ctx, eng, scale, "canrdr01")
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("convergence", func() (string, error) {
		r, err := experiments.ConvergenceStudy(ctx, eng, scale, "tblook01")
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	for _, sec := range []struct {
		name  string
		proto security.Protocol
	}{
		{"security-evict", security.EvictionSet},
		{"security-occupancy", security.Occupancy},
		{"security-primeprobe", security.PrimeProbe},
	} {
		sec := sec
		run(sec.name, func() (string, error) {
			r, err := experiments.SecuritySweep(ctx, eng, scale, sec.proto)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, sec.name+".csv", securityCSV(r)); err != nil {
					return "", err
				}
			}
			return r.Render(), nil
		})
	}

	if recorder != nil {
		label := "default"
		if *full {
			label = "full"
		}
		if *short {
			label = "short"
		}
		if err := recorder.write(*jsonPath, label, eng.Workers()); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing -json report: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", *jsonPath)
	}
	if registry != nil {
		if err := writeMetrics(*metricsPath, registry, collector.Tracer()); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing -metrics dump: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", *metricsPath)
	}
}

// writeMetrics dumps the registry (every family, with histogram
// p50/p99/p999) and the retained trace spans as one JSON document.
func writeMetrics(path string, reg *obs.Registry, tracer *obs.Tracer) error {
	doc := struct {
		GeneratedAt time.Time           `json:"generated_at"`
		Metrics     *obs.Registry       `json:"metrics"`
		Traces      []obs.CampaignTrace `json:"traces"`
	}{GeneratedAt: time.Now().UTC(), Metrics: reg, Traces: tracer.Recent()}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// progressMeter renders a single overwritten status line from Engine
// events: campaigns in flight, runs completed, and the most recently
// progressed campaign. Event delivery is already serialized by the
// Engine, so no locking is needed beyond what clear() shares.
type progressMeter struct {
	w        *os.File
	active   int
	runsDone int
	last     time.Time
	width    int
}

func newProgressMeter(w *os.File) *progressMeter { return &progressMeter{w: w} }

func (m *progressMeter) observe(ev core.Event) {
	switch ev.Kind {
	case core.CampaignStarted:
		m.active++
	case core.CampaignFinished:
		m.active--
	case core.RunCompleted:
		m.runsDone++
		// Throttle terminal writes; the last event of a campaign always
		// lands via CampaignFinished -> clear at the driver boundary.
		if time.Since(m.last) < 100*time.Millisecond {
			return
		}
		m.last = time.Now()
		line := fmt.Sprintf("%s %d/%d runs | %d campaigns in flight | %d runs total",
			ev.Campaign, ev.Done, ev.Total, m.active, m.runsDone)
		if len(line) > m.width {
			m.width = len(line)
		}
		fmt.Fprintf(m.w, "\r%-*s", m.width, line)
	}
}

// clear erases the status line before normal output is printed.
func (m *progressMeter) clear() {
	if m.width > 0 {
		fmt.Fprintf(m.w, "\r%-*s\r", m.width, "")
		m.width = 0
	}
}

// startProfiles arms the -cpuprofile/-memprofile outputs and returns the
// idempotent stop function that flushes them; it runs both on normal exit
// (deferred) and right before error exits, so profiles survive failures.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "paperbench: wrote CPU profile to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
				f.Close()
				return
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "paperbench: wrote heap profile to %s\n", memPath)
		}
	}, nil
}

func stderrIsTerminal() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

func securityCSV(r experiments.SecurityResult) [][]string {
	rows := [][]string{{"placement", "replacement", "effort", "success", "accesses"}}
	for _, row := range r.Rows {
		for _, p := range row.Agg.Curve {
			rows = append(rows, []string{row.Placement, row.Replacement,
				fmt.Sprint(p.Effort), fmt.Sprintf("%.4f", p.Success),
				fmt.Sprintf("%.1f", p.Accesses)})
		}
	}
	return rows
}

func table2CSV(r experiments.Table2Result) [][]string {
	rows := [][]string{{"benchmark", "ww", "ks_p", "et_p", "pass"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Bench,
			fmt.Sprintf("%.3f", row.WW), fmt.Sprintf("%.3f", row.KSp),
			fmt.Sprintf("%.3f", row.ETp), fmt.Sprint(row.Pass)})
	}
	return rows
}

func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
}
