// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulated platform:
//
//	Table 1     ASIC & FPGA implementation results (hardware-cost model)
//	Table 2     WW and KS (and ET) statistics for the EEMBC suite under RM
//	Figure 1    illustrative pWCET curve
//	Figure 4a   RM pWCET normalized to hRP
//	Figure 4b   RM pWCET vs deterministic high-water mark
//	Figure 5    synthetic kernel PDFs and pWCET curves (8/20/160KB)
//	Section 4.4 average performance of RM vs modulo
//	Section 3.1 within-segment collision probability analysis
//	ablations   replacement policy, L2 policy, RM variant
//
// Usage:
//
//	paperbench [-exp all|table1|table2|fig1|fig4a|fig4b|fig5|avgperf|collision|ablations] [-full] [-workers N] [-csv dir]
//
// -full restores the paper's campaign sizes (1000 runs per benchmark);
// the default scale regenerates everything in a few minutes. -workers
// sets the campaign worker-pool size (default: GOMAXPROCS; results are
// bit-identical for any value, see REPRO_WORKERS). Set -csv to also
// write machine-readable series for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig1, fig4a, fig4b, fig5, avgperf, collision, ablations, multicore, convergence)")
	full := flag.Bool("full", false, "use the paper's campaign sizes (1000 runs)")
	workers := flag.Int("workers", experiments.WorkersFromEnv(), "campaign worker-pool size (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "directory for machine-readable CSV output (optional)")
	flag.Parse()

	scale := experiments.FromEnv()
	if *full {
		scale = experiments.FullScale()
	}
	scale.Workers = *workers

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (string, error) {
		return experiments.Table1().Render(), nil
	})
	run("table2", func() (string, error) {
		r, err := experiments.Table2(scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "table2.csv", table2CSV(r)); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig1", func() (string, error) {
		r, err := experiments.Figure1(scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			var rows [][]string
			rows = append(rows, []string{"exceedance", "cycles"})
			for _, p := range r.Curve {
				rows = append(rows, []string{fmt.Sprintf("%g", p.P), fmt.Sprintf("%.0f", p.X)})
			}
			if err := writeCSV(*csvDir, "fig1.csv", rows); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig4a", func() (string, error) {
		r, err := experiments.Figure4a(scale)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			var rows [][]string
			rows = append(rows, []string{"benchmark", "pwcet_rm", "pwcet_hrp", "ratio"})
			for _, row := range r.Rows {
				rows = append(rows, []string{row.Bench,
					fmt.Sprintf("%.0f", row.RM), fmt.Sprintf("%.0f", row.HRP),
					fmt.Sprintf("%.4f", row.Ratio)})
			}
			if err := writeCSV(*csvDir, "fig4a.csv", rows); err != nil {
				return "", err
			}
		}
		return r.Render(), nil
	})
	run("fig4b", func() (string, error) {
		r, err := experiments.Figure4b(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig5", func() (string, error) {
		var b strings.Builder
		for _, kb := range []int{8, 20, 160} {
			r, err := experiments.Figure5(scale, kb)
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteString("\n")
			if *csvDir != "" {
				var rows [][]string
				rows = append(rows, []string{"policy", "run", "cycles"})
				for i, x := range r.RM.Times {
					rows = append(rows, []string{"RM", fmt.Sprint(i), fmt.Sprintf("%.0f", x)})
				}
				for i, x := range r.HRP.Times {
					rows = append(rows, []string{"hRP", fmt.Sprint(i), fmt.Sprintf("%.0f", x)})
				}
				if err := writeCSV(*csvDir, fmt.Sprintf("fig5_%dkb.csv", kb), rows); err != nil {
					return "", err
				}
			}
		}
		return b.String(), nil
	})
	run("avgperf", func() (string, error) {
		r, err := experiments.AveragePerformance(scale)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("collision", func() (string, error) {
		r, err := experiments.CollisionAnalysis(2000)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablations", func() (string, error) {
		var b strings.Builder
		for _, f := range []func(experiments.Scale, string) (experiments.AblationResult, error){
			experiments.AblationReplacement,
			experiments.AblationL2Policy,
			experiments.AblationRMVariant,
		} {
			r, err := f(scale, "tblook01")
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteString("\n")
		}
		est, err := experiments.AblationEstimator(scale)
		if err != nil {
			return "", err
		}
		b.WriteString(est.Render())
		return b.String(), nil
	})
	run("multicore", func() (string, error) {
		r, err := experiments.Multicore(scale, "canrdr01")
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("convergence", func() (string, error) {
		r, err := experiments.ConvergenceStudy(scale, "tblook01")
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}

func table2CSV(r experiments.Table2Result) [][]string {
	rows := [][]string{{"benchmark", "ww", "ks_p", "et_p", "pass"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Bench,
			fmt.Sprintf("%.3f", row.WW), fmt.Sprintf("%.3f", row.KSp),
			fmt.Sprintf("%.3f", row.ETp), fmt.Sprint(row.Pass)})
	}
	return rows
}

func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
}
