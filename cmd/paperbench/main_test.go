package main

import (
	"strings"
	"testing"
)

func TestValidateExp(t *testing.T) {
	if err := validateExp("all"); err != nil {
		t.Errorf("all rejected: %v", err)
	}
	for _, name := range experimentNames {
		if err := validateExp(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	// Regression: an unknown -exp used to fall through every run() call
	// and print nothing; it must be a usage error that lists the options.
	err := validateExp("tabel2")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"tabel2", "table2", "convergence", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
