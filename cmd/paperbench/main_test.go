package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestValidateExp(t *testing.T) {
	if err := validateExp("all"); err != nil {
		t.Errorf("all rejected: %v", err)
	}
	for _, name := range experimentNames {
		if err := validateExp(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	// Regression: an unknown -exp used to fall through every run() call
	// and print nothing; it must be a usage error that lists the options.
	err := validateExp("tabel2")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"tabel2", "table2", "convergence", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// The security sweeps joined the registry: a misspelled security name
	// must still be a usage error whose listing includes the new entries.
	err = validateExp("security")
	if err == nil {
		t.Fatal("partial security name accepted")
	}
	for _, want := range []string{"security-evict", "security-occupancy", "security-primeprobe"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

// TestStartProfiles exercises the -cpuprofile/-memprofile plumbing: both
// files must exist and be non-empty after stop, and stop must be
// idempotent (it runs both deferred and before error exits).
func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // second call is a no-op, not a crash or a truncation
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// An unwritable path is a usage error reported up front.
	if _, err := startProfiles(filepath.Join(dir, "no/such/dir/cpu.out"), ""); err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
}

// TestResultRecorder drives the -json recorder from a real (tiny) Engine
// campaign and checks the written report: the reconstructed HWM and mean
// must match the campaign result exactly, since the event stream carries
// every run's cycle count.
func TestResultRecorder(t *testing.T) {
	rec := newResultRecorder()
	rec.setExperiment("unit")
	w, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.WithWorkers(2), core.WithEvents(rec.observe))
	res, err := eng.Run(context.Background(), core.Request{
		Spec: core.PaperPlatform(0), Workload: w, Runs: 60, MasterSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rec.write(path, "short", eng.Workers()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Scale != "short" || len(report.Campaigns) != 1 {
		t.Fatalf("report = %+v, want one campaign at short scale", report)
	}
	row := report.Campaigns[0]
	if row.Experiment != "unit" || row.Name != "puwmod01" || row.Runs != 60 {
		t.Fatalf("row = %+v", row)
	}
	if row.HWM != res.HWM() || row.Mean != res.Mean() {
		t.Fatalf("reconstructed hwm/mean %v/%v, campaign %v/%v", row.HWM, row.Mean, res.HWM(), res.Mean())
	}
	if row.PWCET15 == nil || *row.PWCET15 <= row.HWM {
		t.Fatalf("pWCET quantile missing or non-sensical: %+v", row)
	}
	if row.WallSeconds <= 0 {
		t.Fatalf("wall time not recorded: %+v", row)
	}
}
