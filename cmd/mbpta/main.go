// Command mbpta applies the MBPTA statistical pipeline to a file of
// execution-time measurements (one number per line): Wald-Wolfowitz
// independence, two-sample KS identical distribution, ET Gumbel
// convergence, Gumbel block-maxima fit, and pWCET estimates at the
// standard cutoffs, plus the full pWCET curve.
//
// Usage:
//
//	mbpta -in times.txt [-block 20] [-cutoff 1e-15]
//
// The input can come from rmsim -times, or from any external measurement
// source; this tool is the software analogue of the analysis half of the
// paper's toolchain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/evt"
	"repro/internal/iid"
)

func main() {
	in := flag.String("in", "", "input file: one execution time per line (required)")
	block := flag.Int("block", 0, "block size for block maxima (0 = adapt to the sample size)")
	cutoff := flag.Float64("cutoff", 1e-15, "per-run exceedance probability for the pWCET estimate")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	times, err := readTimes(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("measurements: %d\n", len(times))

	ww, err := iid.WaldWolfowitz(times)
	if err != nil {
		fatal(fmt.Errorf("WW test: %w", err))
	}
	fmt.Printf("WW  statistic %.3f  (independence passes < %.2f): %v\n", ww.Stat, iid.WWCritical, ww.Pass)

	ks, err := iid.KSSplit(times)
	if err != nil {
		fatal(fmt.Errorf("KS test: %w", err))
	}
	fmt.Printf("KS  p-value   %.3f  (identical distribution passes > %.2f): %v\n", ks.P, iid.Alpha, ks.Pass)

	et, err := iid.ETTestSearch(times, nil)
	if err != nil {
		fatal(fmt.Errorf("ET test: %w", err))
	}
	fmt.Printf("ET  p-value   %.3f  (Gumbel tail passes > %.2f): %v (tail %d pts)\n",
		et.P, iid.Alpha, et.Pass, et.TailN)

	model, err := evt.Analyze(times, *block)
	if err != nil {
		fatal(fmt.Errorf("EVT fit: %w", err))
	}
	fmt.Printf("fit Gumbel(mu=%.1f, beta=%.2f) over maxima of %d-run blocks\n",
		model.Fit.Mu, model.Fit.Beta, model.Block)
	fmt.Printf("pWCET@%.0e = %.0f\n\n", *cutoff, model.AtExceedance(*cutoff))

	fmt.Println("pWCET curve (CCDF):")
	for _, pt := range model.Curve(*cutoff) {
		fmt.Printf("  1e%-4.0f %14.0f\n", math.Log10(pt.P), pt.X)
	}
}

func readTimes(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbpta:", err)
	os.Exit(1)
}
