// Command mbpta applies the MBPTA statistical pipeline to a file of
// execution-time measurements (one number per line): Wald-Wolfowitz
// independence, two-sample KS identical distribution, ET Gumbel
// convergence, Gumbel block-maxima fit, and pWCET estimates at the
// standard cutoffs, plus the full pWCET curve.
//
// Usage:
//
//	mbpta -in times.txt [-block 20] [-cutoff 1e-15]
//	mbpta -workload tblook01 [-placement RM] [-runs 300] [-workers N] [-seed N]
//	mbpta -trace capture.lackey [-placement RM] [-runs 300]
//
// The input can come from rmsim -times, or from any external measurement
// source; this tool is the software analogue of the analysis half of the
// paper's toolchain. With -workload instead of -in, mbpta collects the
// measurements itself on the Engine (cancellable with Ctrl-C) before
// analyzing them. With -trace, the measured program is a valgrind lackey
// capture (valgrind --tool=lackey --trace-mem=yes) replayed through the
// simulated randomized caches.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/iid"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "input file: one execution time per line")
	wname := flag.String("workload", "", "collect measurements from this workload instead of -in")
	tracePath := flag.String("trace", "", "collect measurements by replaying a valgrind lackey capture")
	pname := flag.String("placement", "RM", "L1 placement for -workload campaigns (Modulo, XORFold, hRP, RM, RM-rot)")
	runs := flag.Int("runs", 300, "campaign size for -workload")
	workers := flag.Int("workers", 0, "engine pool size for -workload (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0x9A9E6, "master seed for -workload")
	block := flag.Int("block", 0, "block size for block maxima (0 = adapt to the sample size)")
	cutoff := flag.Float64("cutoff", 1e-15, "per-run exceedance probability for the pWCET estimate")
	flag.Parse()

	sources := 0
	for _, s := range []string{*in, *wname, *tracePath} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "mbpta: exactly one of -in, -workload or -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	var times []float64
	var err error
	switch {
	case *in != "":
		times, err = readTimes(*in)
		if err != nil {
			fatal(err)
		}
	case *tracePath != "":
		kind, kerr := placement.ParseKind(*pname)
		if kerr != nil {
			usageFatal(kerr)
		}
		w, lerr := loadLackeyWorkload(*tracePath)
		if lerr != nil {
			fatal(lerr)
		}
		times, err = measure(w, kind, *runs, *workers, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		w, kind, rerr := core.ResolveNames(*wname, *pname)
		if rerr != nil {
			usageFatal(rerr)
		}
		times, err = measure(w, kind, *runs, *workers, *seed)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("measurements: %d\n", len(times))

	ww, err := iid.WaldWolfowitz(times)
	if err != nil {
		fatal(fmt.Errorf("WW test: %w", err))
	}
	fmt.Printf("WW  statistic %.3f  (independence passes < %.2f): %v\n", ww.Stat, iid.WWCritical, ww.Pass)

	ks, err := iid.KSSplit(times)
	if err != nil {
		fatal(fmt.Errorf("KS test: %w", err))
	}
	fmt.Printf("KS  p-value   %.3f  (identical distribution passes > %.2f): %v\n", ks.P, iid.Alpha, ks.Pass)

	et, err := iid.ETTestSearch(times, nil)
	if err != nil {
		fatal(fmt.Errorf("ET test: %w", err))
	}
	fmt.Printf("ET  p-value   %.3f  (Gumbel tail passes > %.2f): %v (tail %d pts)\n",
		et.P, iid.Alpha, et.Pass, et.TailN)

	model, err := evt.Analyze(times, *block)
	if err != nil {
		fatal(fmt.Errorf("EVT fit: %w", err))
	}
	fmt.Printf("fit Gumbel(mu=%.1f, beta=%.2f) over maxima of %d-run blocks\n",
		model.Fit.Mu, model.Fit.Beta, model.Block)
	fmt.Printf("pWCET@%.0e = %.0f\n\n", *cutoff, model.AtExceedance(*cutoff))

	fmt.Println("pWCET curve (CCDF):")
	for _, pt := range model.Curve(*cutoff) {
		fmt.Printf("  1e%-4.0f %14.0f\n", math.Log10(pt.P), pt.X)
	}
}

// measure collects a fresh measurement vector on the Engine instead of
// reading one from disk.
func measure(w workload.Workload, kind placement.Kind, runs, workers int, seed uint64) ([]float64, error) {
	spec := core.PlatformFor(kind)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := core.NewEngine(core.WithWorkers(workers))
	res, err := eng.Run(ctx, core.Request{
		Spec: spec, Workload: w, Runs: runs, MasterSeed: seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Times, nil
}

// loadLackeyWorkload parses a valgrind lackey capture and wraps it as a
// fixed-trace workload named after the file.
func loadLackeyWorkload(path string) (workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Workload{}, err
	}
	defer f.Close()
	tr, err := trace.ParseLackey(f)
	if err != nil {
		return workload.Workload{}, fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return workload.FromTrace(name, "valgrind lackey capture", tr), nil
}

func readTimes(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbpta:", err)
	os.Exit(1)
}

// usageFatal reports a bad flag value (unknown workload or placement
// name) with the usage exit code.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "mbpta:", err)
	os.Exit(2)
}
