package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestResolveNames pins the usage contract of mbpta's -workload and
// -placement flags: unknown names are errors (reported on exit code 2 by
// usageFatal) that name the bad value, via the shared core.ResolveNames.
func TestResolveNames(t *testing.T) {
	w, kind, err := core.ResolveNames("synth20k", "hrp")
	if err != nil || w.Name != "synth20k" || kind.String() != "hRP" {
		t.Fatalf("ResolveNames(synth20k, hrp) = (%v, %v, %v)", w.Name, kind, err)
	}
	if _, _, err := core.ResolveNames("bogus", "RM"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown workload: err = %v", err)
	}
	if _, _, err := core.ResolveNames("synth20k", "bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown placement: err = %v", err)
	}
}

func TestReadTimes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "times.txt")
	if err := os.WriteFile(path, []byte("# header\n100\n\n200.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readTimes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 200.5 {
		t.Fatalf("readTimes = %v", got)
	}
	if err := os.WriteFile(path, []byte("nan?\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTimes(path); err == nil {
		t.Fatal("malformed line accepted")
	}
}
