// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md section 4 for the experiment index). Each benchmark executes
// the corresponding experiment end-to-end at a reduced scale chosen so a
// single iteration completes in seconds; set REPRO_FULL=1 to use the
// paper's campaign sizes. The rendered tables are emitted via b.Log on
// the first iteration, so `go test -bench=. -v` doubles as a results
// regeneration run.
package randmod

import (
	"context"
	"os"
	"testing"

	"repro/internal/experiments"
)

// benchScale returns the campaign scale for benchmark iterations. The
// engine pool defaults to GOMAXPROCS (REPRO_WORKERS overrides it);
// campaign results are bit-identical for any pool size, so the rendered
// tables do not depend on the host's core count.
func benchScale() experiments.Scale {
	s := experiments.Scale{Runs: 120, HWMLayouts: 20, SynthRuns: 120, Synth160Run: 40}
	if os.Getenv("REPRO_FULL") == "1" {
		s = experiments.FullScale()
	}
	s.Workers = experiments.WorkersFromEnv()
	return s
}

// benchEngine builds the shared engine every benchmark drives its
// campaigns through.
func benchEngine(s experiments.Scale) (context.Context, *Engine) {
	return context.Background(), experiments.NewEngine(s)
}

// BenchmarkTable1_HardwareCost regenerates Table 1: ASIC area/delay of the
// RM and hRP modules and the FPGA integration occupancy/frequency.
func BenchmarkTable1_HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkTable2_IIDTests regenerates Table 2: Wald-Wolfowitz and KS (and
// ET) statistics for the EEMBC-like suite under RM caches.
func BenchmarkTable2_IIDTests(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFigure1_PWCETCurve regenerates the illustrative pWCET curve of
// Figure 1 (CCDF in log scale with the 1e-15 cutoff).
func BenchmarkFigure1_PWCETCurve(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFigure4a_RMvsHRP regenerates Figure 4(a): RM pWCET normalized
// to hRP across the EEMBC-like suite (paper: 25-62% tighter, avg 43%).
func BenchmarkFigure4a_RMvsHRP(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4a(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		if r.MeanRatio >= 1 {
			b.Fatalf("RM not tighter than hRP on average: ratio %.2f", r.MeanRatio)
		}
	}
}

// BenchmarkFigure4b_RMvsDET regenerates Figure 4(b): RM pWCET against the
// deterministic high-water mark (paper: within 7%).
func BenchmarkFigure4b_RMvsDET(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4b(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkFigure5ab_SyntheticPDF regenerates Figure 5(a,b): the
// execution-time distributions of the 20KB synthetic kernel under RM and
// hRP (RM compact, hRP heavy-tailed).
func BenchmarkFigure5ab_SyntheticPDF(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(ctx, eng, s, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		if r.RM.StdDev >= r.HRP.StdDev {
			b.Fatalf("RM sd %.0f >= hRP sd %.0f", r.RM.StdDev, r.HRP.StdDev)
		}
	}
}

// BenchmarkFigure5c_SyntheticPWCET regenerates Figure 5(c) across all
// three paper footprints (8KB fits L1, 20KB fits L2, 160KB exceeds the L2
// partition), checking the pWCET ordering at each point.
func BenchmarkFigure5c_SyntheticPWCET(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{8, 20, 160} {
			r, err := experiments.Figure5(ctx, eng, s, kb)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + r.Render())
			}
			ratio := r.RM.PWCET15 / r.HRP.PWCET15
			if kb < 160 && ratio >= 1 {
				b.Fatalf("%dKB: RM pWCET %.0f >= hRP pWCET %.0f", kb, r.RM.PWCET15, r.HRP.PWCET15)
			}
			// At 160KB the footprint exceeds the L2 partition and the L2
			// (hRP in both setups, as in the paper) dominates: the two
			// configurations wash out to the same distribution.
			if kb == 160 && (ratio < 0.85 || ratio > 1.15) {
				b.Fatalf("160KB: RM/hRP = %.2f, expected ~1 (L2-dominated)", ratio)
			}
		}
	}
}

// BenchmarkSection44_AveragePerformance regenerates the Section 4.4
// average-performance comparison (paper: RM ~1.6% slower than modulo on
// average, max 8%).
func BenchmarkSection44_AveragePerformance(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AveragePerformance(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		if r.MeanSlowdown > 0.10 {
			b.Fatalf("RM average slowdown %.1f%% far above the paper's ~1.6%%", 100*r.MeanSlowdown)
		}
	}
}

// BenchmarkSection31_CollisionAnalysis regenerates the Section 3.1
// analysis: within-segment overload probability under hRP vs RM.
func BenchmarkSection31_CollisionAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CollisionAnalysis(500)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		for _, row := range r.Rows {
			if row.Lines <= 512 && row.RMProb != 0 {
				b.Fatalf("RM overloaded a set with %d contiguous lines", row.Lines)
			}
		}
	}
}

// BenchmarkAblationReplacement compares L1 replacement policies under RM
// placement (random is MBPTA's requirement; LRU/FIFO/PLRU are the
// deterministic alternatives).
func BenchmarkAblationReplacement(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationReplacement(ctx, eng, s, "tblook01")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkAblationL2Policy sweeps the L2 placement under RM L1s,
// including the paper's caveated RM-at-L2 configuration.
func BenchmarkAblationL2Policy(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationL2Policy(ctx, eng, s, "tblook01")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkAblationRMVariant compares full Benes RM against the
// rotation-only variant and hRP (layout diversity vs hardware cost).
func BenchmarkAblationRMVariant(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRMVariant(ctx, eng, s, "tblook01")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkMulticoreContention runs the 4-core shared-bus extension: the
// subject benchmark against three streaming co-runners, with per-core L2
// partitions isolating storage (Section 2's multicore arrangement).
func BenchmarkMulticoreContention(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Multicore(ctx, eng, s, "canrdr01")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		if r.ContendedMean <= r.SoloMean {
			b.Fatal("no bus interference measured")
		}
	}
}

// BenchmarkConvergenceProtocol runs the MBPTA number-of-runs protocol:
// the pWCET estimate as a function of campaign size (Section 2).
func BenchmarkConvergenceProtocol(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.ConvergenceStudy(ctx, eng, s, "tblook01")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkAblationEstimator compares the paper's forced-Gumbel pWCET
// estimator against a free-shape GEV fit, quantifying the estimator
// conservatism behind the Figure 4(b) margins.
func BenchmarkAblationEstimator(b *testing.B) {
	s := benchScale()
	ctx, eng := benchEngine(s)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationEstimator(ctx, eng, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
		for _, row := range r.Rows {
			if row.Reliable && row.Shape > 0.05 && row.GEV15 > row.Gumbel15*1.01 {
				b.Fatalf("%s: bounded-tail GEV estimate %.0f above Gumbel %.0f",
					row.Bench, row.GEV15, row.Gumbel15)
			}
		}
	}
}
