package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPlanDeterministic: the same seed draws the same fault sequence.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{PError: 0.2, PTorn: 0.1, PDelay: 0.05, PPanic: 0.02, Delay: time.Microsecond}
	a, b := NewPlan(42, cfg), NewPlan(42, cfg)
	for i := 0; i < 2000; i++ {
		if fa, fb := a.next(), b.next(); fa != fb {
			t.Fatalf("draw %d: %v vs %v", i, fa, fb)
		}
	}
	draws, faults := a.Stats()
	if draws != 2000 {
		t.Fatalf("draws = %d", draws)
	}
	// ~37% fault rate over 2000 draws: expect a healthy count of each.
	if faults < 500 || faults > 1100 {
		t.Fatalf("faults = %d, outside plausible band for p=0.37", faults)
	}
}

// TestFaultKinds: each failure mode behaves as documented against a real
// temp directory.
func TestFaultKinds(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "blob")
	data := []byte("0123456789abcdef")

	t.Run("error", func(t *testing.T) {
		fs := Wrap(OS{}, NewPlan(1, Config{PError: 1}))
		err := fs.WriteFile(name, data, 0o644)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
		if _, err := os.Stat(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("errored write touched the disk")
		}
	})

	t.Run("torn", func(t *testing.T) {
		fs := Wrap(OS{}, NewPlan(1, Config{PTorn: 1}))
		err := fs.WriteFile(name, data, 0o644)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
		got, rerr := os.ReadFile(name)
		if rerr != nil {
			t.Fatalf("torn write left nothing: %v", rerr)
		}
		if len(got) != len(data)/2 {
			t.Fatalf("torn write left %d bytes, want %d", len(got), len(data)/2)
		}
	})

	t.Run("panic", func(t *testing.T) {
		fs := Wrap(OS{}, NewPlan(1, Config{PPanic: 1}))
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		_ = fs.WriteFile(name, data, 0o644)
	})

	t.Run("delay-then-write", func(t *testing.T) {
		fs := Wrap(OS{}, NewPlan(1, Config{PDelay: 1, Delay: time.Millisecond}))
		if err := fs.WriteFile(name, data, 0o644); err != nil {
			t.Fatalf("delayed write failed: %v", err)
		}
		got, err := fs.ReadFile(name)
		if err != nil || string(got) != string(data) {
			t.Fatalf("read back %q, %v", got, err)
		}
	})
}

// TestWrapNilPlanPassesThrough: Wrap(fs, nil) is the identity.
func TestWrapNilPlanPassesThrough(t *testing.T) {
	var base OS
	if got := Wrap(base, nil); got != FS(base) {
		t.Fatalf("Wrap(base, nil) = %T", got)
	}
}

// TestOSWriteDurable exercises the production FS end to end (mkdir,
// write, rename, readdir, remove).
func TestOSWriteDurable(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, "x.tmp")
	final := filepath.Join(sub, "x")
	if err := fs.WriteFile(tmp, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "x" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := fs.Remove(final); err != nil {
		t.Fatal(err)
	}
}
