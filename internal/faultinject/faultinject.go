// Package faultinject provides deterministic storage-fault injection for
// the resilience test suite and the chaos harness. A Plan draws a
// pseudo-random fault decision for every filesystem operation from a
// seed-derived PRNG stream, so a given (seed, operation sequence) always
// produces the same faults: chaos failures reproduce from their seed
// alone, which is the same determinism discipline the simulation core
// follows (and rmlint enforces on this package).
//
// Faults model the storage failure modes the durable campaign store must
// survive: plain I/O errors, torn writes (a prefix lands on disk, then
// the write fails — what a crash mid-write leaves behind), delayed writes
// (slow disks; exercises shutdown paths), and worker panics in the
// persistence goroutines.
package faultinject

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"repro/internal/prng"
)

// FS is the filesystem surface the durable store runs on. The production
// implementation is OS; tests and the chaos harness wrap it with Wrap to
// inject faults between the store and the disk.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	// WriteFile must durably persist data before returning (the OS
	// implementation fsyncs), so a completed write survives a crash.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the production FS: the real filesystem with durable writes.
type OS struct{}

// MkdirAll is os.MkdirAll.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile is os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile writes and fsyncs, so rename-over-temp sequences are
// crash-atomic on journaling filesystems.
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename is os.Rename (atomic within a directory on POSIX filesystems).
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove is os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir is os.ReadDir.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// ErrInjected marks every synthetic failure, so tests and operators can
// tell injected faults from real storage trouble: errors.Is(err,
// ErrInjected) holds for all of them.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault enumerates the injectable failure modes.
type Fault int

// Failure modes drawn by a Plan.
const (
	// FaultNone passes the operation through.
	FaultNone Fault = iota
	// FaultError fails the operation with ErrInjected before it touches
	// the disk.
	FaultError
	// FaultTorn writes a prefix of the data, then fails — the on-disk
	// state a crash mid-write leaves behind. Only write operations tear;
	// other operations degrade to FaultError.
	FaultTorn
	// FaultDelay sleeps Config.Delay, then performs the operation. Models
	// slow storage; exercises drain/shutdown paths.
	FaultDelay
	// FaultPanic panics the calling goroutine. The persistence goroutines
	// recover it (and count it); anything else crashing loudly is exactly
	// the signal the chaos harness wants.
	FaultPanic
)

// String names the fault for logs.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultTorn:
		return "torn"
	case FaultDelay:
		return "delay"
	case FaultPanic:
		return "panic"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Config sets the per-operation probability of each failure mode. The
// probabilities are cumulative slices of [0, 1): PError + PTorn + PDelay
// + PPanic must not exceed 1.
type Config struct {
	PError float64
	PTorn  float64
	PDelay float64
	PPanic float64
	// Delay is how long FaultDelay sleeps (default 10ms when zero).
	Delay time.Duration
}

// Plan is a deterministic fault schedule: the i-th filesystem operation's
// fate is a pure function of (seed, i). Safe for concurrent use; the
// draw order under concurrency is scheduling-dependent, but the multiset
// of faults over any N operations is not, which keeps chaos runs
// statistically reproducible from the seed.
type Plan struct {
	cfg Config

	mu    sync.Mutex
	g     *prng.PRNG
	draws uint64
	hits  uint64
}

// NewPlan builds a fault plan drawing from the given seed.
func NewPlan(seed uint64, cfg Config) *Plan {
	if cfg.Delay <= 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	return &Plan{cfg: cfg, g: prng.New(seed)}
}

// next draws the fate of one operation.
func (p *Plan) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.draws++
	x := p.g.Float64()
	f := FaultNone
	switch c := p.cfg; {
	case x < c.PError:
		f = FaultError
	case x < c.PError+c.PTorn:
		f = FaultTorn
	case x < c.PError+c.PTorn+c.PDelay:
		f = FaultDelay
	case x < c.PError+c.PTorn+c.PDelay+c.PPanic:
		f = FaultPanic
	}
	if f != FaultNone {
		p.hits++
	}
	return f
}

// Stats reports how many operations were considered and how many faulted.
func (p *Plan) Stats() (draws, faults uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draws, p.hits
}

// Wrap interposes plan between fs and its caller. A nil plan returns fs
// unchanged.
func Wrap(inner FS, plan *Plan) FS {
	if plan == nil {
		return inner
	}
	return &faultyFS{inner: inner, plan: plan}
}

type faultyFS struct {
	inner FS
	plan  *Plan
}

// apply resolves one drawn fault for a non-write operation; FaultTorn has
// no meaning there and degrades to FaultError.
func (f *faultyFS) apply(op, name string) error {
	switch f.plan.next() {
	case FaultError, FaultTorn:
		return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
	case FaultDelay:
		time.Sleep(f.plan.cfg.Delay)
	case FaultPanic:
		panic(fmt.Sprintf("faultinject: injected panic: %s %s", op, name))
	}
	return nil
}

func (f *faultyFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.apply("mkdir", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *faultyFS) ReadFile(name string) ([]byte, error) {
	if err := f.apply("read", name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *faultyFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	switch f.plan.next() {
	case FaultError:
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	case FaultTorn:
		// Half the payload reaches the disk, then the write "crashes".
		// The store's envelope checksum must catch this on read-back.
		if err := f.inner.WriteFile(name, data[:len(data)/2], perm); err != nil {
			return err
		}
		return fmt.Errorf("%w: torn write %s", ErrInjected, name)
	case FaultDelay:
		time.Sleep(f.plan.cfg.Delay)
	case FaultPanic:
		panic(fmt.Sprintf("faultinject: injected panic: write %s", name))
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *faultyFS) Rename(oldpath, newpath string) error {
	if err := f.apply("rename", oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultyFS) Remove(name string) error {
	if err := f.apply("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *faultyFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.apply("readdir", name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}
