package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestCompileRejectsBadLineSize(t *testing.T) {
	tr := Trace{{Addr: 0, Kind: Load}}
	for _, lb := range []int{0, -1, 3, 24, 48} {
		if _, err := Compile(tr, lb); err == nil {
			t.Errorf("line size %d accepted", lb)
		}
	}
}

func TestCompileRenumbersPerStream(t *testing.T) {
	b := NewBuilder(0)
	b.Fetch(0x1000) // I line 0x80
	b.Load(0x1000)  // same byte address, data stream: D line 0x80 gets its own ID 0
	b.Fetch(0x1020) // I line 0x81
	b.Fetch(0x1001) // I line 0x80 again -> ID 0
	b.Store(0x2000) // D line 0x100
	b.Load(0x2010)  // same D line 0x100 -> ID 1
	ct, err := Compile(b.Trace(), 32)
	if err != nil {
		t.Fatal(err)
	}
	wantI := []uint64{0x80, 0x81}
	wantD := []uint64{0x80, 0x100}
	if len(ct.ILines) != len(wantI) || len(ct.DLines) != len(wantD) {
		t.Fatalf("line tables I=%v D=%v, want I=%v D=%v", ct.ILines, ct.DLines, wantI, wantD)
	}
	for i, w := range wantI {
		if ct.ILines[i] != w {
			t.Fatalf("ILines[%d] = %#x, want %#x", i, ct.ILines[i], w)
		}
	}
	for i, w := range wantD {
		if ct.DLines[i] != w {
			t.Fatalf("DLines[%d] = %#x, want %#x", i, ct.DLines[i], w)
		}
	}
	wantOps := []Op{{0, Fetch}, {0, Load}, {1, Fetch}, {0, Fetch}, {1, Store}, {1, Load}}
	if len(ct.Ops) != len(wantOps) {
		t.Fatalf("%d ops, want %d", len(ct.Ops), len(wantOps))
	}
	for i, w := range wantOps {
		if ct.Ops[i] != w {
			t.Fatalf("Ops[%d] = %+v, want %+v", i, ct.Ops[i], w)
		}
	}
}

// TestCompileDecompilesExactly is the renumbering round-trip property: for
// random traces, every op's side-table entry reproduces the source
// access's line address, kinds survive, and the line tables are dense,
// duplicate-free and in first-touch order.
func TestCompileDecompilesExactly(t *testing.T) {
	f := func(seedLo uint32, n uint8) bool {
		g := prng.New(uint64(seedLo))
		b := NewBuilder(int(n))
		for i := 0; i < int(n); i++ {
			addr := g.Bits(18) // tight range so lines repeat
			switch g.Intn(3) {
			case 0:
				b.Fetch(addr)
			case 1:
				b.Load(addr)
			default:
				b.Store(addr)
			}
		}
		tr := b.Trace()
		ct, err := Compile(tr, 32)
		if err != nil || ct.Len() != len(tr) {
			return false
		}
		seenI := make(map[uint64]bool)
		seenD := make(map[uint64]bool)
		for i, a := range tr {
			op := ct.Ops[i]
			if op.Kind != a.Kind {
				return false
			}
			var la uint64
			if a.Kind == Fetch {
				la = ct.ILines[op.ID]
				seenI[la] = true
			} else {
				la = ct.DLines[op.ID]
				seenD[la] = true
			}
			if la != a.Addr>>5 {
				return false
			}
		}
		// Density: every table entry was referenced by some op, so the
		// tables hold exactly the unique lines of their stream.
		return len(seenI) == len(ct.ILines) && len(seenD) == len(ct.DLines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledCountsMatchTrace(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 30; i++ {
		b.Fetch(uint64(i) * 32)
	}
	for i := 0; i < 20; i++ {
		b.Load(uint64(i) * 64)
	}
	for i := 0; i < 10; i++ {
		b.Store(uint64(i) * 128)
	}
	tr := b.Trace()
	ct, err := Compile(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	f1, l1, s1 := tr.Counts()
	f2, l2, s2 := ct.Counts()
	if f1 != f2 || l1 != l2 || s1 != s2 {
		t.Fatalf("compiled counts %d/%d/%d, trace counts %d/%d/%d", f2, l2, s2, f1, l1, s1)
	}
}

func TestCompileEmptyTrace(t *testing.T) {
	ct, err := Compile(nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Len() != 0 || len(ct.ILines) != 0 || len(ct.DLines) != 0 {
		t.Fatalf("empty trace compiled to %d ops, %d/%d lines", ct.Len(), len(ct.ILines), len(ct.DLines))
	}
}
