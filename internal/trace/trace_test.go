package trace

import "testing"

func TestKindString(t *testing.T) {
	if Fetch.String() != "F" || Load.String() != "L" || Store.String() != "S" {
		t.Fatal("kind mnemonics wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatal("unknown kind mnemonic wrong")
	}
}

func TestBuilderAndCounts(t *testing.T) {
	b := NewBuilder(8)
	b.Fetch(0)
	b.Load(32)
	b.Store(64)
	b.Load(96)
	b.Append(Access{128, Fetch})
	tr := b.Trace()
	f, l, s := tr.Counts()
	if f != 2 || l != 2 || s != 1 {
		t.Fatalf("counts = %d/%d/%d", f, l, s)
	}
	if len(tr) != 5 {
		t.Fatalf("len = %d", len(tr))
	}
}

func TestFetchRange(t *testing.T) {
	b := NewBuilder(0)
	b.FetchRange(0x1000, 100, 32) // 100 bytes -> lines at 0x1000,0x1020,0x1040,0x1060
	tr := b.Trace()
	if len(tr) != 4 {
		t.Fatalf("emitted %d fetches, want 4", len(tr))
	}
	want := []uint64{0x1000, 0x1020, 0x1040, 0x1060}
	for i, a := range tr {
		if a.Addr != want[i] || a.Kind != Fetch {
			t.Fatalf("access %d = %+v", i, a)
		}
	}
}

func TestFootprint(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 100; i++ {
		b.Load(uint64(i) * 4) // 400 bytes of stride-4 loads
	}
	tr := b.Trace()
	if fp := tr.Footprint(32); fp != 13 { // ceil(400/32) = 13 lines touched
		t.Fatalf("footprint = %d lines, want 13", fp)
	}
	if fp := tr.Footprint(64); fp != 7 {
		t.Fatalf("footprint(64) = %d lines, want 7", fp)
	}
}

func TestBuilderLen(t *testing.T) {
	b := &Builder{}
	if b.Len() != 0 {
		t.Fatal("zero builder non-empty")
	}
	b.Load(0)
	if b.Len() != 1 {
		t.Fatal("Len after one emit != 1")
	}
}
