package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LackeyError reports a malformed line in a valgrind/lackey trace.
type LackeyError struct {
	Line   int    // 1-based line number
	Text   string // offending line (truncated for huge lines)
	Reason string
}

func (e *LackeyError) Error() string {
	return fmt.Sprintf("trace: lackey line %d: %s (%q)", e.Line, e.Reason, e.Text)
}

// lackeyMaxSize bounds the size operand of one access record. Lackey
// reports per-instruction data widths; anything past a page is a parse
// artifact, not an access.
const lackeyMaxSize = 4096

// ParseLackey reads an address trace in the format produced by
//
//	valgrind --tool=lackey --trace-mem=yes prog
//
// and returns it as a Trace, the ingestion path for real-program traces:
// parse, then Compile the result and replay it on any platform. Records
// look like
//
//	I  0400aa,3     instruction fetch
//	 L 0421f0,8     data load
//	 S 0421f8,8     data store
//	 M 042200,4     modify (load + store of one location)
//
// with bare hexadecimal addresses. A modify expands to a Load followed by
// a Store at the same address, preserving access order. Valgrind banner
// lines ("==pid==", "--pid--") and blank lines are skipped, so piping
// valgrind's combined output works. Any other line fails with a
// *LackeyError carrying the line number; an input with no access records
// is an error too (an empty trace cannot be replayed).
func ParseLackey(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out Trace
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		s := strings.TrimSpace(raw)
		if s == "" || strings.HasPrefix(s, "==") || strings.HasPrefix(s, "--") {
			continue
		}
		var kind byte
		kind, s = s[0], strings.TrimSpace(s[1:])
		addrText, sizeText, ok := strings.Cut(s, ",")
		if !ok {
			return nil, lackeyErr(line, raw, "expected \"addr,size\" after the access kind")
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(addrText), 16, 64)
		if err != nil {
			return nil, lackeyErr(line, raw, "bad address: "+parseReason(err))
		}
		size, err := strconv.ParseUint(strings.TrimSpace(sizeText), 10, 32)
		if err != nil {
			return nil, lackeyErr(line, raw, "bad size: "+parseReason(err))
		}
		if size < 1 || size > lackeyMaxSize {
			return nil, lackeyErr(line, raw, fmt.Sprintf("size %d out of range [1, %d]", size, lackeyMaxSize))
		}
		switch kind {
		case 'I':
			out = append(out, Access{Addr: addr, Kind: Fetch})
		case 'L':
			out = append(out, Access{Addr: addr, Kind: Load})
		case 'S':
			out = append(out, Access{Addr: addr, Kind: Store})
		case 'M':
			out = append(out, Access{Addr: addr, Kind: Load}, Access{Addr: addr, Kind: Store})
		default:
			return nil, lackeyErr(line, raw, fmt.Sprintf("unknown access kind %q (want I, L, S or M)", string(kind)))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading lackey input: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: lackey input holds no access records")
	}
	return out, nil
}

func lackeyErr(line int, text, reason string) *LackeyError {
	const maxText = 40
	if len(text) > maxText {
		text = text[:maxText] + "..."
	}
	return &LackeyError{Line: line, Text: text, Reason: reason}
}

// parseReason strips strconv's noisy prefix ("strconv.ParseUint: parsing
// ...:") down to the cause, keeping LackeyError messages readable.
func parseReason(err error) string {
	if ne, ok := err.(*strconv.NumError); ok {
		return ne.Err.Error()
	}
	return err.Error()
}
