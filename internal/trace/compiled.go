package trace

import (
	"fmt"
	"math"
	"math/bits"
)

// Op is one access of a compiled trace: the access kind plus the dense
// line ID of the touched cache line within its stream's line table
// (ILines for fetches, DLines for loads and stores).
type Op struct {
	ID   uint32
	Kind Kind
}

// Compiled is the dense replay form of a Trace for a fixed cache-line
// size: every access carries a stream-local line ID instead of a byte
// address, and the unique line addresses live in two side tables (one per
// stream: the instruction stream feeding IL1 and, on misses, the L2; the
// data stream feeding DL1 and the L2).
//
// The point of the renumbering is the MBPTA campaign hot loop: a campaign
// replays the same trace hundreds of times while only the placement seed
// changes, and each reseed fixes the line-to-set mapping for the whole
// run. With dense IDs a run can materialize its entire mapping up front
// as one []uint32 lookup table per cache level (an "index plan", see
// placement.IndexAll and sim.Core.RunCompiled) and replay with two array
// loads per access instead of a per-access placement hash.
//
// A Compiled is immutable after Compile and safe to share across
// concurrently executing runs.
type Compiled struct {
	Ops    []Op
	ILines []uint64 // unique instruction-stream line addresses, in first-touch order
	DLines []uint64 // unique data-stream line addresses, in first-touch order

	// LineBytes is the line size the byte addresses were compiled against.
	// Replaying on a level with a different line size would mis-partition
	// accesses into lines, so executors must reject a mismatch.
	LineBytes int
}

// Len returns the number of accesses.
func (c *Compiled) Len() int { return len(c.Ops) }

// Compile renumbers the trace's unique cache-line addresses into dense
// per-stream line IDs for the given line size. lineBytes must be a power
// of two >= 1. The result decompiles exactly: for every op,
// ILines[op.ID] (or DLines[op.ID]) equals the original access address
// shifted by log2(lineBytes).
func Compile(t Trace, lineBytes int) (*Compiled, error) {
	if lineBytes < 1 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("trace: compile needs a power-of-two line size, got %d", lineBytes)
	}
	shift := uint(bits.TrailingZeros(uint(lineBytes)))
	c := &Compiled{
		Ops:       make([]Op, 0, len(t)),
		LineBytes: lineBytes,
	}
	// Programs revisit lines constantly, so the unique-line tables are far
	// smaller than the trace; a modest initial capacity avoids most map
	// growth without overcommitting for tiny traces.
	imap := make(map[uint64]uint32, 64)
	dmap := make(map[uint64]uint32, 64)
	for _, a := range t {
		la := a.Addr >> shift
		var (
			m     map[uint64]uint32
			table *[]uint64
		)
		if a.Kind == Fetch {
			m, table = imap, &c.ILines
		} else {
			m, table = dmap, &c.DLines
		}
		id, ok := m[la]
		if !ok {
			if uint64(len(*table)) > math.MaxUint32 {
				return nil, fmt.Errorf("trace: compile overflows 32-bit line IDs (%d unique lines)", len(*table))
			}
			id = uint32(len(*table))
			m[la] = id
			*table = append(*table, la)
		}
		c.Ops = append(c.Ops, Op{ID: id, Kind: a.Kind})
	}
	return c, nil
}

// Counts returns the number of fetches, loads and stores, matching
// Trace.Counts on the source trace.
func (c *Compiled) Counts() (fetches, loads, stores int) {
	for _, op := range c.Ops {
		switch op.Kind {
		case Fetch:
			fetches++
		case Load:
			loads++
		default:
			stores++
		}
	}
	return
}
