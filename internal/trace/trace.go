// Package trace defines the memory-access trace model that connects
// workloads to the platform simulator.
//
// A workload is compiled (per memory layout) into a Trace: a flat sequence
// of instruction fetches, loads and stores with byte addresses. Traces are
// deliberately concrete rather than lazily generated because the MBPTA
// campaigns of the paper replay the *same* program across hundreds of runs
// while only the hardware seed changes: building the trace once and
// replaying it makes the run-to-run variability attributable exclusively to
// the randomized cache placement/replacement, exactly as on the paper's
// FPGA platform.
package trace

import "fmt"

// Kind classifies an access.
type Kind uint8

// Access kinds.
const (
	Fetch Kind = iota // instruction fetch (IL1 path)
	Load              // data read (DL1 path)
	Store             // data write (DL1 path)
)

// String returns the mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "F"
	case Load:
		return "L"
	case Store:
		return "S"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory reference.
type Access struct {
	Addr uint64
	Kind Kind
}

// Trace is an executable access sequence.
type Trace []Access

// Counts returns the number of fetches, loads and stores.
func (t Trace) Counts() (fetches, loads, stores int) {
	for _, a := range t {
		switch a.Kind {
		case Fetch:
			fetches++
		case Load:
			loads++
		default:
			stores++
		}
	}
	return
}

// Footprint returns the number of distinct cache lines touched for a given
// line size, the quantity the paper calls the data/code footprint.
func (t Trace) Footprint(lineBytes int) int {
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	seen := make(map[uint64]struct{})
	for _, a := range t {
		seen[a.Addr>>shift] = struct{}{}
	}
	return len(seen)
}

// Builder accumulates a Trace with convenience emitters. The zero value is
// ready to use; pre-size with NewBuilder when the length is known.
type Builder struct {
	t Trace
}

// NewBuilder returns a Builder with capacity for n accesses.
func NewBuilder(n int) *Builder { return &Builder{t: make(Trace, 0, n)} }

// Fetch appends an instruction fetch.
func (b *Builder) Fetch(addr uint64) { b.t = append(b.t, Access{addr, Fetch}) }

// Load appends a data load.
func (b *Builder) Load(addr uint64) { b.t = append(b.t, Access{addr, Load}) }

// Store appends a data store.
func (b *Builder) Store(addr uint64) { b.t = append(b.t, Access{addr, Store}) }

// Append appends a pre-built access.
func (b *Builder) Append(a Access) { b.t = append(b.t, a) }

// FetchRange emits fetches for every line of a code region, modelling the
// sequential execution of a straight-line block: one fetch per lineBytes
// starting at addr for size bytes.
func (b *Builder) FetchRange(addr uint64, size, lineBytes int) {
	for off := 0; off < size; off += lineBytes {
		b.Fetch(addr + uint64(off))
	}
}

// Len returns the number of accesses emitted so far.
func (b *Builder) Len() int { return len(b.t) }

// Trace returns the accumulated trace. The builder must not be used
// afterwards.
func (b *Builder) Trace() Trace { return b.t }
