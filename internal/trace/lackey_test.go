package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestParseLackeyBasic(t *testing.T) {
	in := `==12345== Lackey, an example tool
--12345-- some valgrind chatter
I  0400aa,3
 L 0421f0,8
 S 0421f8,8
 M 042200,4

I  0400ad,4
`
	tr, err := ParseLackey(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{
		{Addr: 0x0400aa, Kind: Fetch},
		{Addr: 0x0421f0, Kind: Load},
		{Addr: 0x0421f8, Kind: Store},
		{Addr: 0x042200, Kind: Load},
		{Addr: 0x042200, Kind: Store},
		{Addr: 0x0400ad, Kind: Fetch},
	}
	if len(tr) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(tr), len(want))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, tr[i], want[i])
		}
	}
	f, l, s := tr.Counts()
	if f != 2 || l != 2 || s != 2 {
		t.Fatalf("counts = %d/%d/%d, want 2/2/2", f, l, s)
	}
}

func TestParseLackeyErrors(t *testing.T) {
	cases := []struct {
		name, in string
		line     int
	}{
		{"missing comma", "I 0400aa 3\n", 1},
		{"bad kind", "X 0400aa,3\n", 1},
		{"bad address", "I zz,3\n", 1},
		{"huge address", "I FFFFFFFFFFFFFFFFF,4\n", 1},
		{"zero size", "I 0400aa,0\n", 1},
		{"huge size", "I 0400aa,65536\n", 1},
		{"negative size", "I 0400aa,-3\n", 1},
		{"second line", "I 0400aa,3\ngarbage\n", 2},
		{"truncated record", "I 0400aa,3\nL 0421f0\n", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLackey(strings.NewReader(tc.in))
			var le *LackeyError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v, want *LackeyError", err)
			}
			if le.Line != tc.line {
				t.Fatalf("error at line %d (%v), want line %d", le.Line, le, tc.line)
			}
		})
	}
}

func TestParseLackeyEmpty(t *testing.T) {
	for _, in := range []string{"", "==1== banner only\n", "\n\n"} {
		if _, err := ParseLackey(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseLackey(%q) accepted an input with no accesses", in)
		}
	}
}

// TestParseLackeyCompiles: a parsed trace feeds straight into Compile,
// the property the ingestion pipeline relies on.
func TestParseLackeyCompiles(t *testing.T) {
	in := "I 1000,4\n M 2000,8\n L 3020,4\n"
	tr, err := ParseLackey(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Compile(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ct == nil {
		t.Fatal("Compile returned nil for a valid parsed trace")
	}
}

// FuzzParseLackey: the parser must never panic and every accepted access
// must carry a valid kind, whatever bytes arrive (malformed lines,
// truncated records, huge addresses).
func FuzzParseLackey(f *testing.F) {
	f.Add("I  0400aa,3\n L 0421f0,8\n S 0421f8,8\n M 042200,4\n")
	f.Add("==12345== banner\n--12345-- chatter\nI 0,1\n")
	f.Add("I FFFFFFFFFFFFFFFFF,4\n")
	f.Add("I FFFFFFFFFFFFFFFF,4096\n")
	f.Add("M 042200")
	f.Add("L ,\n")
	f.Add("\x00\x01\x02")
	f.Add("I 0400aa,3")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseLackey(strings.NewReader(in))
		if err != nil {
			var le *LackeyError
			if errors.As(err, &le) && le.Line < 1 {
				t.Fatalf("LackeyError with bad line number %d", le.Line)
			}
			return
		}
		if len(tr) == 0 {
			t.Fatal("nil error but empty trace")
		}
		for i, a := range tr {
			if a.Kind != Fetch && a.Kind != Load && a.Kind != Store {
				t.Fatalf("access %d has invalid kind %d", i, a.Kind)
			}
		}
	})
}
