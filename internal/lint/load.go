package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path   string // import path
	Dir    string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader parses and type-checks packages without the go toolchain or any
// external module: in-module import paths resolve to directories under
// the module root, everything else type-checks from GOROOT source via the
// standard library's source importer. That keeps the suite runnable in
// the offline build environment and free of x/tools.
type Loader struct {
	root   string // module root (contains go.mod) or a testdata src root
	module string // module path from go.mod; "" for testdata roots

	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

func newLoader(root, module string) *Loader {
	// The source importer type-checks the standard library from GOROOT
	// source through go/build; with cgo enabled it would stop at the cgo
	// halves of net and os/user. The pure-Go fallbacks type-check fully,
	// and the analyzers only need types, not the platform build.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// NewLoader returns a loader rooted at the module directory root, reading
// the module path from its go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: loader: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: loader: no module line in %s/go.mod", root)
	}
	return newLoader(root, module), nil
}

// NewTestdataLoader returns a loader rooted at an analysistest-style
// testdata source tree: import path "x" resolves to <srcRoot>/x. Used by
// the linttest fixtures.
func NewTestdataLoader(srcRoot string) *Loader {
	return newLoader(srcRoot, "")
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to a directory under the loader's root, or
// ok=false when the path is external (standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	switch {
	case l.module != "" && path == l.module:
		return l.root, true
	case l.module != "":
		if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rest)), true
		}
		return "", false
	default:
		dir := filepath.Join(l.root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// Import implements types.Importer over the same resolution rules, so
// type-checking one module package pulls its in-module dependencies
// through the loader (and caches them).
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the single package in dir (non-test
// files only: the determinism contract deliberately exempts tests, and
// test files may import packages outside the offline resolution rules).
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Syntax: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// goFilesIn lists the non-test .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Load resolves patterns to packages. Supported forms, matching the go
// tool closely enough for the Makefile and CI: "./..." (every package
// under the root), "dir/..." or "./dir/..." (every package under dir),
// and plain directories ("./internal/cache", "internal/cache"). Paths
// are relative to the loader root.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "." || pat == "" {
			pat = "."
		}
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: no such package directory: %s", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if names, err := goFilesIn(p); err == nil && len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			if l.module != "" {
				path = l.module + "/" + filepath.ToSlash(rel)
			} else {
				path = filepath.ToSlash(rel)
			}
		}
		p, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
