// Package lint is the repository's custom static-analysis suite: a set
// of analyzers that turn the project's two load-bearing contracts into
// machine-checked invariants.
//
//   - Determinism. MBPTA is only sound if every source of randomness in a
//     result-affecting package is one of the controlled, seed-derived
//     PRNG streams: a stray time.Now, math/rand draw, environment read
//     or unsorted map iteration silently breaks the i.i.d. premise of
//     the whole analysis (and reseed-reproducibility with it).
//   - Zero-alloc hot paths. The compiled replay kernels are trusted
//     because they stay bit-exact and allocation-free against the legacy
//     oracle; a defer, closure or fmt call on an annotated hot path
//     defeats that contract long before a benchmark notices.
//
// The analyzers mirror the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but are self-contained on the standard
// library go/ast + go/types stack, so the module keeps zero external
// dependencies. Porting an analyzer to the upstream framework is a
// mechanical wrap of its Run function.
//
// Source annotations recognized by the suite:
//
//	//rm:hotpath
//	    In a function's doc comment: the function is part of the
//	    zero-alloc replay contract. The hotpath analyzer checks its body
//	    and scripts/check-noalloc.sh gates the compiler's escape
//	    analysis over its line span.
//
//	//rm:deterministic <justification>
//	    Trailing on a statement (or on the line directly above it):
//	    suppresses determinism and prngdiscipline findings for that
//	    statement. The justification text is mandatory; an empty one is
//	    itself a finding.
//
//	//rm:ctxroot <justification>
//	    Same placement rules: justifies a context.Background()/TODO()
//	    root outside main packages and tests (server lifecycle roots,
//	    deprecated blocking shims).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package through its Pass and reports findings via
// Pass.Reportf; returned errors abort the whole lint run (they mean the
// analyzer itself failed, not that the code has findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path of the package under analysis
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)

	// annotations caches the //rm: comment lines per file, keyed by the
	// line the comment sits on: line -> "key justification".
	annotations map[*ast.File]map[int]string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotationPrefix is the marker shared by every in-source annotation the
// suite understands.
const annotationPrefix = "//rm:"

// annotationsFor scans (once) the //rm: comments of f.
func (p *Pass) annotationsFor(f *ast.File) map[int]string {
	if p.annotations == nil {
		p.annotations = make(map[*ast.File]map[int]string)
	}
	if m, ok := p.annotations[f]; ok {
		return m
	}
	m := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, annotationPrefix) {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			m[line] = strings.TrimPrefix(c.Text, annotationPrefix)
		}
	}
	p.annotations[f] = m
	return m
}

// FileOf returns the *ast.File containing pos.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether the statement at pos carries an //rm:<key>
// justification — trailing on the same line or alone on the line directly
// above. An annotation with an empty justification does not suppress;
// it is reported as its own finding (the contract requires saying *why*
// the rule is waived, so the reviewer and the next reader can audit it).
func (p *Pass) Suppressed(pos token.Pos, key string) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	ann := p.annotationsFor(f)
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		text, ok := ann[l]
		if !ok || !strings.HasPrefix(text, key) {
			continue
		}
		rest := strings.TrimPrefix(text, key)
		if rest != "" && !strings.HasPrefix(rest, " ") {
			continue // different key sharing the prefix
		}
		if strings.TrimSpace(rest) == "" {
			p.Reportf(pos, "//rm:%s annotation needs a justification (say why the rule is waived)", key)
			return true // the annotation finding replaces the original
		}
		return true
	}
	return false
}

// IsHotpath reports whether doc (a function's doc comment) carries the
// //rm:hotpath annotation.
func IsHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//rm:hotpath" || strings.HasPrefix(c.Text, "//rm:hotpath ") {
			return true
		}
	}
	return false
}

// HotpathFuncs returns the //rm:hotpath-annotated function declarations
// of the package, in file order.
func HotpathFuncs(p *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && IsHotpath(fd.Doc) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// HotpathSpan is the source line range of one //rm:hotpath-annotated
// function: what cmd/rmlint -hotpath prints and what
// scripts/check-noalloc.sh intersects with the compiler's escape
// analysis.
type HotpathSpan struct {
	Name  string // function (or method) name
	File  string
	Start int // line of the func keyword
	End   int // line of the closing brace
}

// HotpathSpans lists the annotated function spans of a loaded package.
func HotpathSpans(pkg *Package) []HotpathSpan {
	var out []HotpathSpan
	for _, f := range pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !IsHotpath(fd.Doc) {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			out = append(out, HotpathSpan{Name: fd.Name.Name, File: start.Filename, Start: start.Line, End: end.Line})
		}
	}
	return out
}

// isTestFile reports whether pos lies in a _test.go file. The module
// loader never feeds test files to analyzers, but fixtures and future
// callers may.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// calleeOf resolves the called object of a call expression, looking
// through parentheses; nil when the callee is not a named function or
// method (e.g. a called function value).
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
// pkgPath matches exactly or by path suffix "/<pkgPath>", so analyzers
// recognize both the real module packages and their testdata stand-ins.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	got := obj.Pkg().Path()
	return got == pkgPath || strings.HasSuffix(got, "/"+pkgPath)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Default returns the full suite with the repository's production
// configuration — what cmd/rmlint runs.
func Default() []*Analyzer {
	return []*Analyzer{
		Determinism(DefaultDeterminismPackages()),
		Hotpath(),
		PRNGDiscipline(),
		CtxFlow(),
	}
}

// DefaultDeterminismPackages lists the result-affecting packages: the
// ones whose outputs feed campaign results, and in which uncontrolled
// nondeterminism would invalidate MBPTA soundness or break the
// bit-exactness contract of the compiled kernels.
func DefaultDeterminismPackages() []string {
	return []string{
		"repro/internal/cache",
		"repro/internal/sim",
		"repro/internal/core",
		"repro/internal/placement",
		"repro/internal/trace",
		"repro/internal/prng",
		"repro/internal/evt",
		"repro/internal/iid",
		"repro/internal/stats",
		"repro/internal/security",
		// obs is observation-only (its outputs never feed results), but it
		// is covered so every clock read it performs is an annotated,
		// audited exception rather than an invisible ambient dependency.
		"repro/internal/obs",
		// faultinject and client do not feed results either, but their
		// whole point is seed-reproducible behaviour (fault schedules,
		// retry jitter) — ambient entropy or clock reads would make chaos
		// runs and backoff tests unreplayable, so they obey the same
		// discipline.
		"repro/internal/faultinject",
		"repro/internal/client",
	}
}
