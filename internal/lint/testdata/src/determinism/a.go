// Package determinism is the fixture for the determinism analyzer: it
// is configured as a result-affecting package in the test.
package determinism

import (
	"crypto/rand"     // want `import of crypto/rand in result-affecting package determinism`
	mrand "math/rand" // want `import of math/rand in result-affecting package determinism`
	"os"
	"sort"
	"time"

	"prng"
)

func clock() int64 {
	return time.Now().UnixNano() // want `call to time.Now in result-affecting package determinism`
}

//rm:deterministic wall time feeds only the progress display, never results
func clockJustified() int64 { return time.Now().UnixNano() }

func env() string {
	return os.Getenv("REPRO_WORKERS") // want `call to os.Getenv in result-affecting package determinism`
}

func keepImportsAlive() {
	_ = mrand.Int
	_ = rand.Read
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map with order-sensitive body \(append\)`
		out = append(out, k)
	}
	return out
}

func mapCount(m map[string]int) int {
	n := 0
	for range m { // commutative counter: order-safe, no finding
		n++
	}
	return n
}

func mapSum(m map[string]int) int {
	n := 0
	for _, v := range m { // want `range over map with order-sensitive body \(write to outer variable n\)`
		n = n + v
	}
	return n
}

func mapCopy(src map[string]int) map[string]int {
	dst := map[string]int{}
	for k, v := range src { // keyed write by the loop key: order-safe
		dst[k] = v
	}
	return dst
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m { // want `range over map with order-sensitive body \(channel send\)`
		ch <- k
	}
}

func mapDraw(m map[string]int, g *prng.PRNG) {
	for range m { // want `range over map with order-sensitive body \(PRNG draw per element\)`
		g.Uint64()
	}
}

func mapSuppressed(m map[string]int) []string {
	var out []string
	//rm:deterministic keys are sorted immediately below, order cannot leak
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mapUnjustified(m map[string]int) []string {
	var out []string
	//rm:deterministic
	for k := range m { // want `//rm:deterministic annotation needs a justification`
		out = append(out, k)
	}
	return out
}
