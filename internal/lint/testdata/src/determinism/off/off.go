// Package off is NOT configured as result-affecting: the same constructs
// must produce zero findings here.
package off

import "time"

func Clock() int64 {
	return time.Now().UnixNano()
}

func MapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
