// Command fixture: exit-code discipline in main packages.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: cmd [flags]")
		os.Exit(1) // want `os.Exit\(1\) after a usage message: usage errors exit 2`
	}
	ctx := context.Background() // main packages may own the root context
	_ = ctx
	os.Exit(7) // want `os.Exit\(7\): this repository's CLIs use 0 \(ok\), 1 \(runtime failure\) and 2 \(usage error\)`
}

func usageOK() {
	fmt.Fprintln(os.Stderr, "usage: cmd [flags]")
	os.Exit(2)
}

func usageVar() {
	flag.Usage()
	os.Exit(1) // want `os.Exit\(1\) after a usage message: usage errors exit 2`
}

func runtimeFailure(err error) {
	fmt.Fprintln(os.Stderr, "cmd:", err)
	os.Exit(1) // error exit, not a usage path: allowed
}
