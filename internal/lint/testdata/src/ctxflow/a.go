// Package ctxflow is the fixture for the context/CLI-convention
// analyzer (library half; the cmd half lives in ctxflow/cmd).
package ctxflow

import "context"

func First(ctx context.Context, n int) { _ = ctx; _ = n }

func Second(n int, ctx context.Context) { _ = ctx; _ = n } // want `context.Context is parameter 2 of Second`

func inLiteral() {
	f := func(n int, ctx context.Context) { _ = ctx } // want `context.Context is parameter 2 of func literal`
	f(0, context.TODO())                              // want `context.TODO\(\) outside a main package`
}

func Root() context.Context {
	return context.Background() // want `context.Background\(\) outside a main package`
}

func JustifiedRoot() context.Context {
	//rm:ctxroot server lifecycle root, cancelled by Close
	return context.Background()
}
