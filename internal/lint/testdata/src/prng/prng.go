// Package prng is the fixture stand-in for repro/internal/prng: same
// name, same seed/draw surface, so the analyzers resolve fixture calls
// exactly as they resolve the real ones.
package prng

type PRNG struct{ s uint64 }

func New(seed uint64) *PRNG         { return &PRNG{s: seed} }
func Derive(m uint64, r int) uint64 { return m + uint64(r) }

func (p *PRNG) Reseed(seed uint64) { p.s = seed }
func (p *PRNG) Bits(n int) uint64  { p.s++; return p.s }
func (p *PRNG) Uint32() uint32     { return uint32(p.Bits(32)) }
func (p *PRNG) Uint64() uint64     { return p.Bits(64) }
func (p *PRNG) Intn(n int) int     { return int(p.Bits(8)) % n }
func (p *PRNG) Float64() float64   { return float64(p.Bits(53)) }
