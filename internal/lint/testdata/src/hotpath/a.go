// Package hotpath is the fixture for the zero-alloc hot-path analyzer.
package hotpath

import "fmt"

type K struct {
	buf  []int
	tick uint64
}

func release() {}

func work() {}

//rm:hotpath
func (k *K) Bad(v int) {
	defer release()              // want `defer in hot path Bad`
	go work()                    // want `go statement in hot path Bad`
	f := func() int { return v } // want `closure literal in hot path Bad`
	_ = f
	m := map[int]int{v: v} // want `map literal in hot path Bad`
	_ = m
	s := []int{v} // want `slice literal in hot path Bad`
	_ = s
	b := make([]int, v) // want `make in hot path Bad`
	_ = b
	p := new(int) // want `new in hot path Bad`
	_ = p
	k.buf = append(k.buf, v) // want `append to a non-resliced destination in hot path Bad`
	fmt.Println(v)           // want `fmt.Println call in hot path Bad`
	j := any(v)              // want `conversion to interface any in hot path Bad`
	_ = j
	bs := []byte("x") // want `string/\[\]byte conversion in hot path Bad`
	_ = bs
}

//rm:hotpath
func (k *K) Good(v int) int {
	k.buf = append(k.buf[:0], v) // reslice of preallocated scratch: allowed
	if v < 0 {
		panic(fmt.Sprintf("hotpath: negative v %d", v)) // fmt feeding panic directly is exempt
	}
	k.tick++
	return k.buf[0]
}

// Cold is not annotated: the same constructs are fine off the hot path.
func Cold(v int) []int {
	defer release()
	return []int{v}
}
