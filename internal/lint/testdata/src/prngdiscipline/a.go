// Package prngdiscipline is the fixture for the PRNG-discipline
// analyzer.
package prngdiscipline

import "prng"

func fixed() *prng.PRNG {
	return prng.New(42) // want `prng.New with constant seed 42`
}

func fixedHex() *prng.PRNG {
	return prng.New(0xE7E7) // want `prng.New with constant seed 59367`
}

func derived(master uint64, run int) *prng.PRNG {
	return prng.New(prng.Derive(master, run)) // derived seed: allowed
}

func fromParam(seed uint64) *prng.PRNG {
	return prng.New(seed ^ 0x524D5021) // domain separation of a variable seed: allowed
}

func justified() *prng.PRNG {
	//rm:deterministic fixed-seed null-distribution simulation, reproducible by design
	return prng.New(0xBEEF)
}

type Kernel struct {
	valid uint64
	rng   *prng.PRNG
}

//rm:hotpath
func (k *Kernel) BadFill(ways int) int {
	if k.valid != 0 {
		return k.rng.Intn(ways) // want `PRNG draw conditioned on cache state in kernel BadFill`
	}
	return 0
}

//rm:hotpath
func (k *Kernel) BadFillSwitch(ways int) int {
	switch k.valid {
	case 0:
		return 0
	default:
		return k.rng.Intn(ways) // want `PRNG draw conditioned on cache state in kernel BadFillSwitch`
	}
}

//rm:hotpath
func (k *Kernel) GoodFill(ways int) int {
	if k.valid != 0 {
		return 1
	}
	// Unconditional tail draw: every miss path reaches it, draw order
	// stays a pure function of the access sequence.
	return k.rng.Intn(ways)
}

// ColdFill is not annotated (not kernel code): conditional draws are the
// caller's business outside the bit-exactness contract.
func ColdFill(k *Kernel, ways int) int {
	if k.valid != 0 {
		return k.rng.Intn(ways)
	}
	return 0
}
