package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism([]string{"determinism"}), "determinism")
}

// TestDeterminismScopedToConfiguredPackages: the same constructs in a
// package outside the result-affecting set produce no findings.
func TestDeterminismScopedToConfiguredPackages(t *testing.T) {
	diags := linttest.Findings(t, "testdata", lint.Determinism([]string{"determinism"}), "determinism/off")
	if len(diags) != 0 {
		t.Fatalf("non-result-affecting package got %d findings: %v", len(diags), diags)
	}
}

// TestDefaultDeterminismPackages pins the production configuration: the
// packages whose outputs feed campaign results, plus internal/obs so
// the observability kit's own clock reads stay audited exceptions.
func TestDefaultDeterminismPackages(t *testing.T) {
	want := map[string]bool{
		"repro/internal/cache":       true,
		"repro/internal/sim":         true,
		"repro/internal/core":        true,
		"repro/internal/placement":   true,
		"repro/internal/trace":       true,
		"repro/internal/prng":        true,
		"repro/internal/evt":         true,
		"repro/internal/iid":         true,
		"repro/internal/stats":       true,
		"repro/internal/security":    true,
		"repro/internal/obs":         true,
		"repro/internal/faultinject": true,
		"repro/internal/client":      true,
	}
	got := lint.DefaultDeterminismPackages()
	if len(got) != len(want) {
		t.Fatalf("got %d packages, want %d: %v", len(got), len(want), got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected result-affecting package %q", p)
		}
	}
}
