// Package linttest runs lint analyzers over analysistest-style fixture
// trees and checks their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// stack.
//
// Fixtures live under testdata/src/<pkg>; a line expecting diagnostics
// carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regular expression per expected diagnostic on that
// line. Every diagnostic must be wanted and every want must be matched,
// in both directions, or the test fails.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches one quoted expectation inside a // want comment:
// double-quoted (Go escapes apply) or backquoted (raw), as in
// analysistest.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads each fixture package from <testdata>/src and applies the
// analyzer, comparing findings to the fixtures' want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := lint.NewTestdataLoader(filepath.Join(testdata, "src"))
	pkgs, err := loader.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("linttest: load %v: %v", pkgpaths, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: run %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader.Fset(), pkgs)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans every fixture file's comments for want
// expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package) []want {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
						pat := m[2] // backquoted: raw
						if m[1] != "" || m[2] == "" {
							var err error
							pat, err = strconv.Unquote(`"` + m[1] + `"`)
							if err != nil {
								t.Fatalf("linttest: %s: bad want pattern %s: %v", pos, m[0], err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("linttest: %s: bad want regexp %q: %v", pos, pat, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("linttest: fixtures declare no // want expectations")
	}
	return wants
}

// Findings loads the fixture packages and returns the raw diagnostics,
// for tests that assert on counts or suppression behaviour directly.
func Findings(t *testing.T, testdata string, a *lint.Analyzer, pkgpaths ...string) []lint.Diagnostic {
	t.Helper()
	loader := lint.NewTestdataLoader(filepath.Join(testdata, "src"))
	pkgs, err := loader.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("linttest: load %v: %v", pkgpaths, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: run %s: %v", a.Name, err)
	}
	return diags
}
