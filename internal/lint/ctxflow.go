package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CtxFlow returns the analyzer enforcing the repository's context and
// CLI conventions:
//
//   - context.Context parameters come first (after the receiver), the
//     Engine-era API rule from PR 2.
//   - context.Background()/context.TODO() appear only in main packages
//     and tests; libraries receive their context from the caller so
//     cancellation reaches every campaign. Deliberate lifecycle roots
//     (the service base context, the deprecated blocking shims) carry an
//     //rm:ctxroot justification.
//   - Usage errors in commands exit 2, the convention every CLI here
//     shares (cf. paperbench -exp): a usage print (flag.Usage or a
//     message containing "usage") must be followed by os.Exit(2), and
//     constant exit codes other than 0, 1, 2 are flagged.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "context placement, context roots, and CLI exit-code conventions",
	}
	a.Run = func(pass *Pass) error {
		isMain := pass.Pkg.Name() == "main"
		for _, f := range pass.Files {
			inTest := pass.isTestFile(f.Pos())
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkCtxParam(pass, n.Type, n.Name.Name)
				case *ast.FuncLit:
					checkCtxParam(pass, n.Type, "func literal")
				case *ast.CallExpr:
					checkCtxRoot(pass, n, isMain, inTest)
				case *ast.BlockStmt:
					if isMain && !inTest {
						checkUsageExits(pass, n)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxParam(pass *Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if ok && tv.Type != nil && isContextType(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context is parameter %d of %s: context goes first so cancellation plumbing is uniform", idx+1, name)
			return
		}
		idx += n
	}
}

func checkCtxRoot(pass *Pass, call *ast.CallExpr, isMain, inTest bool) {
	if isMain || inTest {
		return
	}
	obj := calleeOf(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	if obj.Name() != "Background" && obj.Name() != "TODO" {
		return
	}
	if pass.Suppressed(call.Pos(), "ctxroot") {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() outside a main package or test: accept a ctx from the caller so cancellation propagates, or justify a lifecycle root with //rm:ctxroot", obj.Name())
}

// checkUsageExits enforces exit-code discipline statement-by-statement
// within one block: after a usage print, the next os.Exit in the block
// must pass 2.
func checkUsageExits(pass *Pass, block *ast.BlockStmt) {
	sawUsage := false
	for _, stmt := range block.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if isUsagePrint(pass, call) {
			sawUsage = true
			continue
		}
		if code, isExit := exitCode(pass, call); isExit {
			if code != nil {
				if sawUsage && *code != 2 {
					pass.Reportf(call.Pos(), "os.Exit(%d) after a usage message: usage errors exit 2 (house convention, cf. paperbench -exp)", *code)
				}
				if *code < 0 || *code > 2 {
					pass.Reportf(call.Pos(), "os.Exit(%d): this repository's CLIs use 0 (ok), 1 (runtime failure) and 2 (usage error)", *code)
				}
			}
			sawUsage = false
		}
	}
}

// isUsagePrint recognizes the usage-path idioms: a call to flag.Usage or
// (*flag.FlagSet).Usage, flag.PrintDefaults, or an fmt/print call whose
// first string literal mentions "usage".
func isUsagePrint(pass *Pass, call *ast.CallExpr) bool {
	if obj := calleeOf(pass.Info, call); obj != nil && obj.Pkg() != nil {
		if obj.Pkg().Path() == "flag" && (obj.Name() == "Usage" || obj.Name() == "PrintDefaults") {
			return true
		}
		if obj.Pkg().Path() != "fmt" {
			return false
		}
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Usage" {
		// fs.Usage() where fs is a *flag.FlagSet field value.
		if tv, ok := pass.Info.Types[sel.X]; ok && tv.Type != nil && strings.Contains(tv.Type.String(), "flag.FlagSet") {
			return true
		}
		return false
	} else {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			if strings.Contains(strings.ToLower(constant.StringVal(tv.Value)), "usage") {
				return true
			}
		}
	}
	return false
}

// exitCode reports whether call is os.Exit and, when the argument is
// constant, its value.
func exitCode(pass *Pass, call *ast.CallExpr) (*int, bool) {
	obj := calleeOf(pass.Info, call)
	if obj == nil || !isPkgFunc(obj, "os", "Exit") || len(call.Args) != 1 {
		return nil, false
	}
	if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact {
			c := int(v)
			return &c, true
		}
	}
	return nil, true
}
