package lint

import (
	"go/ast"
	"go/token"
)

// PRNGDiscipline returns the analyzer enforcing how the controlled PRNG
// streams may be used:
//
//   - prng.New with a constant seed outside tests is flagged. Every
//     production stream must derive from the campaign's master seed
//     (prng.Derive or a seed parameter); a literal seed hard-wires one
//     stream for all runs, which silently collapses the randomization
//     the MBPTA argument depends on. The two legitimate fixed-seed
//     algorithms in the tree (the ET-test null-distribution simulation
//     and tie-dithering) carry //rm:deterministic justifications.
//
//   - In kernel code (//rm:hotpath functions), a PRNG draw nested under
//     a conditional whose condition reads the receiver's state is
//     flagged: draw order is part of the bit-exactness contract between
//     the compiled kernels and the legacy oracle, and a draw that
//     happens only for some cache contents makes the stream position a
//     function of the contents. Draws must sit on unconditional paths
//     (see fillRandom: the victim draw happens on every miss, never
//     under a tag-dependent branch).
func PRNGDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "prngdiscipline",
		Doc:  "enforce seed derivation and draw-order discipline for the controlled PRNG streams",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				seed, ok := prngNewCall(pass.Info, call)
				if !ok {
					return true
				}
				if tv, ok := pass.Info.Types[seed]; ok && tv.Value != nil {
					if !pass.Suppressed(call.Pos(), "deterministic") {
						pass.Reportf(call.Pos(), "prng.New with constant seed %s: production streams must derive from the master seed (prng.Derive); justify fixed-seed algorithms with //rm:deterministic", tv.Value)
					}
				}
				return true
			})
		}
		for _, fd := range HotpathFuncs(pass) {
			checkConditionalDraws(pass, fd)
		}
		return nil
	}
	return a
}

// checkConditionalDraws walks fd's body tracking conditionals whose
// condition reads the receiver's state; PRNG draws under them are
// findings.
func checkConditionalDraws(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if recv == nil {
		return
	}
	readsReceiver := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == recv {
				found = true
			}
			return !found
		})
		return found
	}

	flagged := make(map[token.Pos]bool)
	flagDrawsIn := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(pass.Info, call)
			if obj != nil && isPRNGDraw(obj) && obj.Name() != "New" && obj.Name() != "Derive" && !flagged[call.Pos()] {
				flagged[call.Pos()] = true
				pass.Reportf(call.Pos(), "PRNG draw conditioned on cache state in kernel %s: draw order must be a pure function of the access sequence, not of the cache contents (bit-exactness contract)", fd.Name.Name)
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if readsReceiver(s.Cond) {
				flagDrawsIn(s.Body)
				if s.Else != nil {
					flagDrawsIn(s.Else)
				}
			}
		case *ast.SwitchStmt:
			if s.Tag != nil && readsReceiver(s.Tag) {
				flagDrawsIn(s.Body)
			}
		case *ast.ForStmt:
			if readsReceiver(s.Cond) {
				flagDrawsIn(s.Body)
			}
		}
		return true
	})
}
