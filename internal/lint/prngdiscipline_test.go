package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestPRNGDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", lint.PRNGDiscipline(), "prngdiscipline")
}
