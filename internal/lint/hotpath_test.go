package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata", lint.Hotpath(), "hotpath")
}
