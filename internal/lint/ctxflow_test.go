package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCtxFlowLibrary(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow(), "ctxflow")
}

func TestCtxFlowMainPackage(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow(), "ctxflow/cmd")
}
