package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath returns the analyzer enforcing the zero-alloc contract on
// //rm:hotpath-annotated functions: the compiled replay kernels promise
// "0 allocs per steady-state run", and these constructs defeat that
// promise (or gift the escape analysis a reason to):
//
//   - defer and go statements (runtime bookkeeping, and go is also
//     nondeterministic scheduling on a bit-exact path)
//   - closure literals (closure header allocation, escape of captures)
//   - map and slice composite literals, make, new
//   - fmt.* calls (interface boxing of every argument) — except when the
//     result feeds panic directly, since a hot path that is already dead
//     may say why; cold panic helpers are the preferred shape
//   - string<->[]byte conversions (copies)
//   - explicit conversions to interface types (boxing)
//   - append whose destination is not a reslice of an existing buffer
//     (append into buf[:0]-style scratch keeps capacity preallocated;
//     anything else may grow on the hot path)
//
// The static check is the cheap half of the gate; the compiler half is
// scripts/check-noalloc.sh, which runs escape analysis over the same
// annotated spans.
func Hotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation-prone constructs in //rm:hotpath functions",
	}
	a.Run = func(pass *Pass) error {
		for _, fd := range HotpathFuncs(pass) {
			checkHotpathBody(pass, fd)
		}
		return nil
	}
	return a
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	name := fd.Name.Name
	panicArgs := panicArgSpans(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s: defers allocate and run per call", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path %s: spawning goroutines on the replay path breaks the zero-alloc and determinism contracts", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s: closures allocate; hoist to a named function or method value bound at construction", name)
			return false // don't double-report the closure's own body
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s: allocates; bind lookup tables at construction time", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s: allocates; use preallocated scratch", name)
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, name, n, panicArgs)
		}
		return true
	})
}

// panicArgSpans records the source spans of arguments to panic calls in
// body: a fmt call inside one is the accepted idiom for describing a
// programming error on an otherwise-dead branch (though hoisting the
// whole panic into a cold helper keeps the escape-analysis gate clean
// and is preferred).
func panicArgSpans(body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				spans = append(spans, [2]token.Pos{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos < s[1] {
			return true
		}
	}
	return false
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr, panicArgs [][2]token.Pos) {
	// Conversions parse as calls: T(x). Flag boxing and copying ones.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		if from, ok := pass.Info.Types[call.Args[0]]; ok && from.Type != nil {
			if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Type.Underlying()) {
				pass.Reportf(call.Pos(), "conversion to interface %s in hot path %s: boxes the value on the heap", to, name)
			}
			if isStringByteConv(to, from.Type) {
				pass.Reportf(call.Pos(), "string/[]byte conversion in hot path %s: copies", name)
			}
		}
		return
	}
	obj := calleeOf(pass.Info, call)
	if obj == nil {
		return
	}
	if obj.Pkg() == nil { // builtin
		switch obj.Name() {
		case "make":
			pass.Reportf(call.Pos(), "make in hot path %s: allocates; size scratch buffers at construction or reseed time", name)
		case "new":
			pass.Reportf(call.Pos(), "new in hot path %s: allocates", name)
		case "append":
			if len(call.Args) > 0 {
				if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !resliced {
					pass.Reportf(call.Pos(), "append to a non-resliced destination in hot path %s: may grow; append into preallocated scratch (buf[:0] idiom) instead", name)
				}
			}
		}
		return
	}
	if obj.Pkg().Path() == "fmt" && !inSpans(panicArgs, call.Pos()) {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s: boxes arguments and allocates; hoist formatting off the hot path (cold panic helpers are exempt)", obj.Name(), name)
	}
}

// isStringByteConv reports string <-> []byte/[]rune conversions.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
