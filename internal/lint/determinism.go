package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// forbiddenImports are whole packages that have no legitimate use in a
// result-affecting package: every random draw must come from the
// seed-derived internal/prng streams or the results stop being
// reproducible (and the MBPTA i.i.d. premise stops holding).
var forbiddenImports = map[string]string{
	"math/rand":    "uncontrolled randomness; use the seed-derived internal/prng streams",
	"math/rand/v2": "uncontrolled randomness; use the seed-derived internal/prng streams",
	"crypto/rand":  "uncontrolled randomness; use the seed-derived internal/prng streams",
}

// forbiddenCalls are single functions whose results differ run-to-run:
// wall-clock reads and environment lookups smuggle ambient state into
// what must be a pure function of (request, seed).
var forbiddenCalls = map[[2]string]string{
	{"time", "Now"}:       "wall-clock read",
	{"os", "Getenv"}:      "environment read",
	{"os", "LookupEnv"}:   "environment read",
	{"os", "Environ"}:     "environment read",
	{"os", "Hostname"}:    "host identity read",
	{"runtime", "NumCPU"}: "host shape read",
}

// Determinism returns the analyzer enforcing the no-uncontrolled-
// nondeterminism contract in the given result-affecting packages
// (matched exactly against the package import path). It forbids the
// imports and calls above and flags `range` over a map whose body
// publishes anything derived from the (unspecified) iteration order:
// writes to variables declared outside the loop, appends, channel sends,
// or PRNG draws. A finding is waived only by an //rm:deterministic
// comment with a justification.
func Determinism(pkgs []string) *Analyzer {
	covered := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		covered[p] = true
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid uncontrolled nondeterminism in result-affecting packages",
	}
	a.Run = func(pass *Pass) error {
		if !covered[pass.Path] {
			return nil
		}
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := forbiddenImports[path]; bad && !pass.Suppressed(imp.Pos(), "deterministic") {
					pass.Reportf(imp.Pos(), "import of %s in result-affecting package %s: %s", path, pass.Path, why)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkForbiddenCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	why, bad := forbiddenCalls[[2]string{obj.Pkg().Path(), obj.Name()}]
	if !bad || pass.Suppressed(call.Pos(), "deterministic") {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s in result-affecting package %s: %s makes results irreproducible",
		obj.Pkg().Name(), obj.Name(), pass.Path, why)
}

// checkMapRange flags map iterations whose body is order-sensitive. Map
// iteration order is randomized by the runtime, so anything the body
// publishes in that order (an appended slice, an outer accumulator that
// is not commutative, a channel, a PRNG stream advanced per element)
// varies run-to-run.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Suppressed(rng.Pos(), "deterministic") {
		return
	}
	if reason := orderSensitiveUse(pass, rng); reason != "" {
		pass.Reportf(rng.Pos(), "range over map with order-sensitive body (%s): map iteration order is randomized; iterate sorted keys or justify with //rm:deterministic", reason)
	}
}

// orderSensitiveUse returns a short description of the first construct in
// the range body that makes iteration order observable, or "".
func orderSensitiveUse(pass *Pass, rng *ast.RangeStmt) string {
	inBody := func(obj types.Object) bool {
		return obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End()
	}
	loopVar := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok {
			return pass.Info.Defs[id]
		}
		return nil
	}
	keyObj, valObj := loopVar(rng.Key), loopVar(rng.Value)

	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.CallExpr:
			if obj := calleeOf(pass.Info, n); obj != nil {
				if obj.Name() == "append" && obj.Pkg() == nil {
					reason = "append"
				} else if isPRNGDraw(obj) {
					reason = "PRNG draw per element"
				}
			}
		case *ast.AssignStmt:
			// An append through an assignment reads better labeled as the
			// append it is.
			viaAppend := false
			for _, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if obj := calleeOf(pass.Info, call); obj != nil && obj.Pkg() == nil && obj.Name() == "append" {
						viaAppend = true
					}
				}
			}
			for _, lhs := range n.Lhs {
				obj := baseObject(pass.Info, lhs)
				if obj == nil || obj == keyObj || obj == valObj || inBody(obj) {
					continue
				}
				// Writing through an outer map by key is order-safe
				// (last write per key wins regardless of order) as long
				// as the key is the loop key; anything else publishes
				// order.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if kid, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && keyObj != nil && pass.Info.Uses[kid] == keyObj {
						if tv, ok := pass.Info.Types[ix.X]; ok && tv.Type != nil {
							if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
								continue
							}
						}
					}
				}
				if viaAppend {
					reason = "append"
				} else {
					reason = "write to outer variable " + obj.Name()
				}
				break
			}
		case *ast.IncDecStmt:
			// A bare counter increment is commutative and therefore
			// order-safe; don't flag n++ on outer ints.
			return true
		}
		return reason == ""
	})
	return reason
}

// baseObject resolves the outermost identifier of an assignable
// expression (x, x.f, x[i], *x ...) to its object.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPRNGDraw reports whether obj is a drawing method of the project PRNG
// (package named prng, method on PRNG) or prng.New itself: advancing a
// stream once per map element consumes draws in map order, which breaks
// the draw-order half of the bit-exactness contract.
func isPRNGDraw(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "prng" {
		return false
	}
	switch obj.Name() {
	case "New", "Bits", "Uint32", "Uint64", "Intn", "Float64", "Reseed", "Derive":
		return true
	}
	return false
}

// prngNewCall reports whether call is prng.New(...) and returns the seed
// argument.
func prngNewCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "prng" || obj.Name() != "New" {
		return nil, false
	}
	if len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}
