package service

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/security"
)

// submitResponse answers POST /v1/campaigns.
type submitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	// Cached reports that the submission was served by an existing job
	// (a finished cached result, or coalescing onto an in-flight
	// duplicate) instead of scheduling a fresh execution.
	Cached bool `json:"cached"`
}

// statusResponse answers GET /v1/campaigns/{id}.
type statusResponse struct {
	ID          string           `json:"id"`
	Fingerprint string           `json:"fingerprint"`
	Request     core.WireRequest `json:"request"`
	State       string           `json:"state"`
	RunsDone    int              `json:"runs_done"`
	Submitted   time.Time        `json:"submitted"`
	Started     *time.Time       `json:"started,omitempty"`
	Finished    *time.Time       `json:"finished,omitempty"`
	Error       string           `json:"error,omitempty"`
	// Snapshot is the latest converging view of the streaming accumulators:
	// present as soon as the first chunk of runs merges, updated while the
	// campaign runs (watch the pWCET estimates settle), and retained after
	// completion (where it covers every run).
	Snapshot *snapshotJSON `json:"snapshot,omitempty"`
	Result   *resultJSON   `json:"result,omitempty"`
}

// snapshotJSON is the wire form of a core.Snapshot.
type snapshotJSON struct {
	Runs       int     `json:"runs"`
	Total      int     `json:"total"`
	Mean       float64 `json:"mean"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	P50        float64 `json:"p50"`
	P95        float64 `json:"p95"`
	P99        float64 `json:"p99"`
	Blocks     int     `json:"blocks,omitempty"`
	PWCET12    float64 `json:"pwcet_1e12,omitempty"`
	PWCET15    float64 `json:"pwcet_1e15,omitempty"`
	AccumBytes int     `json:"accum_bytes"`
}

func snapshotOf(s *core.Snapshot) *snapshotJSON {
	if s == nil {
		return nil
	}
	return &snapshotJSON{
		Runs: s.Runs, Total: s.Total,
		Mean: s.Mean, Min: s.Min, Max: s.Max,
		P50: s.P50, P95: s.P95, P99: s.P99,
		Blocks: s.Blocks, PWCET12: s.PWCET12, PWCET15: s.PWCET15,
		AccumBytes: s.AccumBytes,
	}
}

// resultJSON is the wire form of a core.Result. Times is omitted for
// keep_times=false campaigns; Runs always reports the campaign size (from
// the streaming summary when the vector was dropped).
type resultJSON struct {
	Name    string    `json:"name"`
	Runs    int       `json:"runs"`
	HWM     float64   `json:"hwm"`
	Mean    float64   `json:"mean"`
	IL1Miss float64   `json:"il1_miss"`
	DL1Miss float64   `json:"dl1_miss"`
	L2Miss  float64   `json:"l2_miss"`
	Times   []float64 `json:"times,omitempty"`
	Trace   struct {
		Accesses int `json:"accesses"`
		Fetches  int `json:"fetches"`
		Loads    int `json:"loads"`
		Stores   int `json:"stores"`
	} `json:"trace"`
	Analysis *analysisJSON `json:"analysis,omitempty"`
	// Security carries the attack aggregate for security campaigns; the
	// security.Result type already defines its wire form.
	Security *security.Result `json:"security,omitempty"`
}

// analysisJSON is the wire form of the MBPTA pipeline output, with the
// pWCET quantiles the paper reports.
type analysisJSON struct {
	WWStat     float64 `json:"ww_stat"`
	WWPass     bool    `json:"ww_pass"`
	KSP        float64 `json:"ks_p"`
	KSPass     bool    `json:"ks_pass"`
	ETP        float64 `json:"et_p"`
	ETPass     bool    `json:"et_pass"`
	IIDPass    bool    `json:"iid_pass"`
	GumbelMu   float64 `json:"gumbel_mu"`
	GumbelBeta float64 `json:"gumbel_beta"`
	Block      int     `json:"block"`
	PWCET12    float64 `json:"pwcet_1e12"`
	PWCET15    float64 `json:"pwcet_1e15"`
}

func analysisOf(a *core.Analysis) *analysisJSON {
	if a == nil {
		return nil
	}
	return &analysisJSON{
		WWStat: a.WW.Stat, WWPass: a.WW.Pass,
		KSP: a.KS.P, KSPass: a.KS.Pass,
		ETP: a.ET.P, ETPass: a.ET.Pass,
		IIDPass:  a.IIDPass,
		GumbelMu: a.Model.Fit.Mu, GumbelBeta: a.Model.Fit.Beta, Block: a.Model.Block,
		PWCET12: a.PWCET12, PWCET15: a.PWCET15,
	}
}

func resultOf(res *core.Result) *resultJSON {
	if res == nil {
		return nil
	}
	runs := len(res.Times)
	if runs == 0 {
		runs = int(res.Summary.Moments.N)
	}
	out := &resultJSON{
		Name:     res.Name,
		Runs:     runs,
		HWM:      res.HWM(),
		Mean:     res.Mean(),
		IL1Miss:  res.IL1Miss,
		DL1Miss:  res.DL1Miss,
		L2Miss:   res.L2Miss,
		Times:    res.Times,
		Analysis: analysisOf(res.Analysis),
		Security: res.Security,
	}
	out.Trace.Accesses = res.Trace.Accesses
	out.Trace.Fetches = res.Trace.Fetches
	out.Trace.Loads = res.Trace.Loads
	out.Trace.Stores = res.Trace.Stores
	return out
}

func statusOf(j *Job) statusResponse {
	state, runsDone, result, err, started, finished := j.Snapshot()
	out := statusResponse{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Request:     j.Wire,
		State:       state.String(),
		RunsDone:    runsDone,
		Submitted:   j.Submitted,
		Snapshot:    snapshotOf(j.Progress()),
		Result:      resultOf(result),
	}
	if out.Result == nil || out.Snapshot == nil {
		// Jobs served from the durable store carry their result and final
		// snapshot in wire form (the core.Result was never rebuilt).
		wr, ws := j.diskState()
		if out.Result == nil {
			out.Result = wr
		}
		if out.Snapshot == nil {
			out.Snapshot = ws
		}
	}
	if !started.IsZero() {
		out.Started = &started
	}
	if !finished.IsZero() {
		out.Finished = &finished
	}
	if err != nil {
		out.Error = err.Error()
	}
	return out
}

// wireEvent is one NDJSON line of GET /v1/campaigns/{id}/events: the wire
// form of a core.Event, plus the synthetic terminal line (kind "end",
// with the job's final state).
type wireEvent struct {
	Kind     string  `json:"kind"` // "started", "run", "phase", "snapshot", "finished", "end"
	Campaign string  `json:"campaign"`
	Phase    string  `json:"phase,omitempty"` // "phase" lines only
	Run      int     `json:"run,omitempty"`
	Cycles   float64 `json:"cycles,omitempty"`
	Done     int     `json:"done"`
	Total    int     `json:"total,omitempty"`
	// Snapshot carries the converging statistics on "snapshot" lines.
	Snapshot *snapshotJSON `json:"snapshot,omitempty"`
	State    string        `json:"state,omitempty"` // "end" lines only
	Err      string        `json:"error,omitempty"`
}

func wireEventOf(ev core.Event) wireEvent {
	out := wireEvent{
		Kind:     ev.Kind.String(),
		Campaign: ev.Campaign,
		Phase:    ev.Phase,
		Run:      ev.Run,
		Cycles:   ev.Cycles,
		Done:     ev.Done,
		Total:    ev.Total,
		Snapshot: snapshotOf(ev.Snapshot),
	}
	if ev.Err != nil {
		out.Err = ev.Err.Error()
	}
	return out
}

// policyJSON is one row of GET /v1/policies.
type policyJSON struct {
	Name       string   `json:"name"`
	Aliases    []string `json:"aliases,omitempty"`
	Randomized bool     `json:"randomized"`
}

// kindsJSON answers GET /v1/kinds: the campaign families the service
// executes and the vocabulary of the security family's knobs, so clients
// can discover valid submissions without trial-and-error 400s.
type kindsJSON struct {
	Kinds        []string `json:"kinds"`
	Protocols    []string `json:"security_protocols"`
	Replacements []string `json:"security_replacements"`
}

// workloadJSON is one row of GET /v1/workloads.
type workloadJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// healthJSON answers GET /healthz.
type healthJSON struct {
	Status        string     `json:"status"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Workers       int        `json:"workers"`
	JobSlots      int        `json:"job_slots"`
	Queue         queueJSON  `json:"queue"`
	Jobs          jobCounts  `json:"jobs"`
	Cache         StoreStats `json:"cache"`
	// Disk reports the durable tier (absent when -data-dir is unset).
	Disk *DiskStats `json:"disk,omitempty"`
}

// queueJSON reports the job queue's occupancy against its bound.
type queueJSON struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// tracesJSON answers GET /v1/traces: the retained campaign trace spans
// (newest first) and how many were ever recorded.
type tracesJSON struct {
	Total  uint64              `json:"total"`
	Traces []obs.CampaignTrace `json:"traces"`
}

// jobCounts breaks the resident jobs down by state.
type jobCounts struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// persistedResult is the durable form of a completed campaign, stored
// under results/<fingerprint>.rmr: the admitted wire request plus the
// same wire-form result and final snapshot the status endpoint serves,
// so a disk hit answers exactly like the original execution did.
type persistedResult struct {
	Wire     core.WireRequest `json:"wire"`
	Result   *resultJSON      `json:"result"`
	Snapshot *snapshotJSON    `json:"snapshot,omitempty"`
}

// persistedCheckpoint is the durable form of an in-flight campaign's
// latest streaming frontier, stored under checkpoints/<fingerprint>.rmc:
// the wire request (so a restarting server can resubmit it) plus the
// core checkpoint blob (magic + payload + SHA-256; see core.Checkpoint),
// base64-encoded by encoding/json.
type persistedCheckpoint struct {
	Wire       core.WireRequest `json:"wire"`
	Checkpoint []byte           `json:"checkpoint"`
}
