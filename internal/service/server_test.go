package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// testServer builds a small service over an httptest listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	// Generous to survive the race detector's ~10x simulation slowdown
	// on the long synth160k campaigns; the poll returns as soon as the
	// campaign reaches a terminal state, so fast runs are unaffected.
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st statusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in time")
	return statusResponse{}
}

// TestDuplicateSubmissionCoalesces is the acceptance check of the
// subsystem: submitting the same campaign twice yields one Engine
// execution and two identical results -- same fingerprint, bit-identical
// Times -- verified through the store's hit/miss counters.
func TestDuplicateSubmissionCoalesces(t *testing.T) {
	s, ts := testServer(t, Config{})
	const body = `{"workload":"puwmod01","placement":"RM","runs":50,"seed":9}`

	first, code := postCampaign(t, ts, body)
	if code != http.StatusAccepted || first.Cached {
		t.Fatalf("first submission: code=%d cached=%v, want 202 fresh", code, first.Cached)
	}
	st1 := waitDone(t, ts, first.ID)
	if st1.State != "done" || st1.Result == nil {
		t.Fatalf("first campaign state=%s error=%q", st1.State, st1.Error)
	}

	// Resubmit with a different placement spelling and an added display
	// name: same content, so it must be served from cache.
	second, code := postCampaign(t, ts, `{"name":"again","workload":"puwmod01","placement":"rm","runs":50,"seed":9}`)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second submission: code=%d cached=%v, want 200 cached", code, second.Cached)
	}
	if second.Fingerprint != first.Fingerprint || second.ID != first.ID {
		t.Fatalf("resubmission got (%s, %s), want the original (%s, %s)",
			second.ID, second.Fingerprint, first.ID, first.Fingerprint)
	}
	st2 := waitDone(t, ts, second.ID)
	if len(st2.Result.Times) != len(st1.Result.Times) {
		t.Fatalf("result lengths differ: %d vs %d", len(st2.Result.Times), len(st1.Result.Times))
	}
	for i := range st1.Result.Times {
		if st1.Result.Times[i] != st2.Result.Times[i] {
			t.Fatalf("Times[%d] differs: %v vs %v", i, st1.Result.Times[i], st2.Result.Times[i])
		}
	}

	stats := s.Store().Stats()
	if stats.Misses != 1 {
		t.Fatalf("store misses = %d, want exactly 1 (one Engine execution)", stats.Misses)
	}
	if stats.Hits != 1 {
		t.Fatalf("store hits = %d, want exactly 1 (the resubmission)", stats.Hits)
	}
}

// TestEventStream checks the NDJSON contract: the stream delivers live
// Events for an in-flight campaign and terminates with an "end" line on
// completion. Events stream live-only (late subscribers get just the end
// line, see TestEventStreamAfterCompletion), and since the PR-5 replay
// kernels a 60-run campaign finishes in single-digit milliseconds —
// faster than the HTTP subscribe — so the test pins the target behind a
// blocker campaign on a single job slot: the subscriber attaches while
// the target is still queued, deterministically ahead of its first run.
func TestEventStream(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	if _, code := postCampaign(t, ts, `{"workload":"synth160k","placement":"RM","runs":30,"seed":9}`); code != http.StatusAccepted {
		t.Fatalf("blocker submit code = %d", code)
	}
	sub, code := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":60,"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var events []wireEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.Kind != "end" || last.State != "done" {
		t.Fatalf("stream did not terminate with end/done: %+v", last)
	}
	runs := 0
	for _, ev := range events {
		if ev.Kind == "run" {
			runs++
			if ev.Campaign != "puwmod01" {
				t.Fatalf("event exposes internal campaign label %q", ev.Campaign)
			}
		}
	}
	if runs == 0 {
		t.Fatal("no run events in the stream")
	}
}

// TestEventStreamAfterCompletion: a stream opened on a finished job
// terminates immediately with the end line.
func TestEventStreamAfterCompletion(t *testing.T) {
	_, ts := testServer(t, Config{})
	sub, _ := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":40,"seed":4}`)
	waitDone(t, ts, sub.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/campaigns/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var last wireEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "end" || last.State != "done" {
		t.Fatalf("finished-job stream ended with %+v", last)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{MaxRuns: 100})
	cases := []struct {
		body string
		want int
	}{
		{`{"workload":"nope","placement":"RM","runs":10}`, http.StatusBadRequest},
		{`{"workload":"puwmod01","placement":"nope","runs":10}`, http.StatusBadRequest},
		{`{"workload":"puwmod01","placement":"RM","runs":101}`, http.StatusBadRequest},
		{`{"workload":"puwmod01","placement":"RM","runs":10,"sed":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if _, code := postCampaign(t, ts, c.body); code != c.want {
			t.Errorf("POST %s -> %d, want %d", c.body, code, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/c-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id -> %d, want 404", resp.StatusCode)
	}
}

func TestCatalogsAndHealth(t *testing.T) {
	_, ts := testServer(t, Config{})
	var policies []policyJSON
	getJSON(t, ts, "/v1/policies", &policies)
	if len(policies) != 5 {
		t.Fatalf("got %d policies, want 5", len(policies))
	}
	names := map[string]bool{}
	for _, p := range policies {
		names[p.Name] = p.Randomized
	}
	if !names["RM"] || !names["hRP"] || names["Modulo"] {
		t.Fatalf("randomized flags wrong: %+v", policies)
	}

	var wls []workloadJSON
	getJSON(t, ts, "/v1/workloads", &wls)
	if len(wls) != 14 { // 11 EEMBC-like + 3 synthetic
		t.Fatalf("got %d workloads, want 14", len(wls))
	}

	var h healthJSON
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" || h.Workers < 1 {
		t.Fatalf("health = %+v", h)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultRunsEnterFingerprint: omitting runs resolves the server
// default before fingerprinting, so an explicit submission of the same
// size is the same content.
func TestDefaultRunsEnterFingerprint(t *testing.T) {
	_, ts := testServer(t, Config{DefaultRuns: 40})
	implicit, _ := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","seed":5}`)
	explicit, _ := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":40,"seed":5}`)
	if implicit.Fingerprint != explicit.Fingerprint {
		t.Fatalf("default-runs fingerprint %s != explicit %s", implicit.Fingerprint, explicit.Fingerprint)
	}
}

// TestQueueFullRejects: with 1 job slot and a 1-deep queue, a third
// distinct concurrent submission is rejected with 429 (transient
// pressure, retry) and is not left behind as a phantom cache entry.
func TestQueueFullRejects(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 1, Workers: 1})
	// Occupy the single worker and the single queue slot with slow-ish
	// campaigns, then overflow.
	var rejectedBody string
	sawReject := false
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"workload":"tblook01","placement":"RM","runs":200,"seed":%d}`, 100+i)
		_, code := postCampaign(t, ts, body)
		if code == http.StatusTooManyRequests {
			sawReject = true
			rejectedBody = body
			break
		}
	}
	if !sawReject {
		t.Skip("queue never filled on this host; timing dependent")
	}
	// The rejected fingerprint must not be resident.
	var wire core.WireRequest
	if err := json.Unmarshal([]byte(rejectedBody), &wire); err != nil {
		t.Fatal(err)
	}
	fp, err := wire.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Store().Peek(fp); ok {
		t.Fatal("rejected submission left a phantom store entry")
	}
}

// TestGracefulDrain: Close cancels in-flight campaigns via context and
// leaves every admitted job in a terminal state.
func TestGracefulDrain(t *testing.T) {
	cfg := Config{Workers: 1, Jobs: 1, QueueDepth: 8}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		sub, code := postCampaign(t, ts, fmt.Sprintf(`{"workload":"tblook01","placement":"RM","runs":5000,"seed":%d}`, 200+i))
		if code != http.StatusAccepted {
			t.Fatalf("submission %d -> %d", i, code)
		}
		ids = append(ids, sub.ID)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain within 30s")
	}
	for _, id := range ids {
		j, ok := s.JobByID(id)
		if !ok {
			t.Fatalf("job %s vanished during drain", id)
		}
		if st := j.State(); st != JobCanceled && st != JobDone && st != JobFailed {
			t.Fatalf("job %s left in state %s after Close", id, st)
		}
	}
	// Submissions after drain are refused.
	if _, _, err := s.Submit(core.WireRequest{Workload: "puwmod01", Placement: "RM", Runs: 10}); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

// TestSecurityCampaignService runs a security campaign end to end through
// the HTTP surface: fresh submission, aggregate in the status result,
// cache hit on an equivalent respelling, and kind discovery.
func TestSecurityCampaignService(t *testing.T) {
	s, ts := testServer(t, Config{})
	const body = `{"placement":"RM","runs":12,"seed":4,` +
		`"security":{"protocol":"primeprobe","replacement":"LRU","probe_lines":128,"trials":8}}`
	first, code := postCampaign(t, ts, body)
	if code != http.StatusAccepted || first.Cached {
		t.Fatalf("first security submission: code=%d cached=%v", code, first.Cached)
	}
	st := waitDone(t, ts, first.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("security campaign state=%s error=%q", st.State, st.Error)
	}
	if st.Result.Security == nil || len(st.Result.Security.Curve) == 0 {
		t.Fatalf("security result missing aggregate: %+v", st.Result)
	}
	if st.Result.Security.Protocol != "primeprobe" || st.Result.Security.Rounds != 12 {
		t.Fatalf("aggregate header %+v", st.Result.Security)
	}
	if len(st.Result.Times) != 12 {
		t.Fatalf("security Times has %d rounds, want 12", len(st.Result.Times))
	}

	// Equivalent respelling (alias protocol, default replacement spelling
	// differs in case) must be served from cache.
	second, code := postCampaign(t, ts, `{"placement":"rm","runs":12,"seed":4,`+
		`"security":{"protocol":"prime+probe","replacement":"lru","probe_lines":128,"trials":8}}`)
	if code != http.StatusOK || !second.Cached || second.ID != first.ID {
		t.Fatalf("respelled security submission: code=%d cached=%v id=%s (want %s)",
			code, second.Cached, second.ID, first.ID)
	}
	if misses := s.Store().Stats().Misses; misses != 1 {
		t.Fatalf("store misses = %d, want 1", misses)
	}

	var kinds kindsJSON
	getJSON(t, ts, "/v1/kinds", &kinds)
	if len(kinds.Kinds) != 3 || kinds.Kinds[2] != "security" {
		t.Fatalf("kinds = %+v", kinds.Kinds)
	}
	if len(kinds.Protocols) != 3 || len(kinds.Replacements) != 4 {
		t.Fatalf("security vocabulary = %+v / %+v", kinds.Protocols, kinds.Replacements)
	}
}

// TestSecuritySubmitValidation: malformed security submissions map to 400
// with the core error text, not 500s or silent acceptance.
func TestSecuritySubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	bad := []string{
		`{"placement":"RM","runs":10,"security":{"protocol":"flushreload"}}`,
		`{"placement":"RM","runs":10,"security":{"protocol":"eviction","replacement":"clock"}}`,
		`{"placement":"RM","runs":10,"security":{"protocol":"eviction","probe_lines":2}}`,
		`{"placement":"RM","runs":10,"security":{"protocol":"eviction","probe_stride":33}}`,
		`{"placement":"RM","runs":10,"security":{"protocol":"eviction","trials":8}}`,
		`{"placement":"RM","runs":10,"baseline":true,"security":{"protocol":"eviction"}}`,
		`{"placement":"RM","runs":10,"analyze":true,"security":{"protocol":"eviction"}}`,
		`{"placement":"RM","workload":"tblook01","runs":10,"security":{"protocol":"eviction"}}`,
		`{"placement":"RM","runs":10,"security":{"protocol":"eviction","budget":9}}`,
	}
	for _, body := range bad {
		if _, code := postCampaign(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %s -> %d, want 400", body, code)
		}
	}
}

// TestCampaignSnapshot: the status endpoint carries the streaming
// snapshot — after completion it covers every run and agrees with the
// final result, so pollers that watched it converge end on the answer.
func TestCampaignSnapshot(t *testing.T) {
	_, ts := testServer(t, Config{})
	sub, code := postCampaign(t, ts, `{"workload":"tblook01","placement":"RM","runs":60,"seed":5,"analyze":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("state=%s error=%q", st.State, st.Error)
	}
	if st.Snapshot == nil {
		t.Fatal("done status has no snapshot")
	}
	if st.Snapshot.Runs != 60 || st.Snapshot.Total != 60 {
		t.Fatalf("final snapshot covers %d/%d, want 60/60", st.Snapshot.Runs, st.Snapshot.Total)
	}
	if st.Snapshot.Mean != st.Result.Mean || st.Snapshot.Max != st.Result.HWM {
		t.Fatalf("snapshot mean/max (%v, %v) disagree with result (%v, %v)",
			st.Snapshot.Mean, st.Snapshot.Max, st.Result.Mean, st.Result.HWM)
	}
	if st.Snapshot.AccumBytes <= 0 {
		t.Fatal("snapshot reports no accumulator footprint")
	}
	if st.Snapshot.Blocks < 2 || st.Snapshot.PWCET12 <= st.Snapshot.Max {
		t.Fatalf("converged pWCET snapshot implausible: %+v", st.Snapshot)
	}
}

// TestKeepTimesFalseService: a keep_times=false submission completes with
// aggregates and analysis but no times vector, and does not share a cache
// entry with the buffered form of the same campaign.
func TestKeepTimesFalseService(t *testing.T) {
	_, ts := testServer(t, Config{})
	drop, code := postCampaign(t, ts, `{"workload":"tblook01","placement":"RM","runs":60,"seed":5,"analyze":true,"keep_times":false}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	keep, code := postCampaign(t, ts, `{"workload":"tblook01","placement":"RM","runs":60,"seed":5,"analyze":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("keep submit code = %d (coalesced onto the drop job?)", code)
	}
	if keep.Fingerprint == drop.Fingerprint {
		t.Fatal("keep and drop submissions share a fingerprint")
	}
	st := waitDone(t, ts, drop.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("state=%s error=%q", st.State, st.Error)
	}
	if len(st.Result.Times) != 0 {
		t.Fatalf("keep_times=false result carries %d times", len(st.Result.Times))
	}
	if st.Result.Runs != 60 {
		t.Fatalf("runs = %d, want 60 (from the streaming summary)", st.Result.Runs)
	}
	if st.Result.Analysis == nil || st.Result.HWM <= 0 || st.Result.Mean <= 0 {
		t.Fatalf("dropped-times result lost its aggregates: %+v", st.Result)
	}
	kst := waitDone(t, ts, keep.ID)
	if len(kst.Result.Times) != 60 {
		t.Fatalf("buffered twin has %d times, want 60", len(kst.Result.Times))
	}
	if kst.Result.HWM != st.Result.HWM || kst.Result.Mean != st.Result.Mean {
		t.Fatal("keep and drop twins disagree on aggregates")
	}
}
