package service

import (
	"sync"
	"time"

	"repro/internal/core"
)

// JobState is the lifecycle of a submitted campaign.
type JobState int

// Job lifecycle states.
const (
	// JobQueued: admitted, waiting for a job worker.
	JobQueued JobState = iota
	// JobRunning: executing on the shared Engine.
	JobRunning
	// JobDone: completed; Result is available (and cached).
	JobDone
	// JobFailed: the campaign errored (validation, empty trace, ...).
	JobFailed
	// JobCanceled: aborted by server drain before completion.
	JobCanceled
)

// String names the state for wire status fields.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return "unknown"
}

// eventBuffer is the per-subscriber channel depth. Run events beyond it
// are dropped (the Engine sink must never block); the stream's final
// status line is delivered out of band via done, so a slow reader loses
// intermediate progress, never the outcome.
const eventBuffer = 256

// Job is one admitted campaign: the canonical execution (and later the
// cached result) for its fingerprint. Duplicate submissions coalesce onto
// the same Job, so its ID is what every submitter of equal content sees.
type Job struct {
	// ID is the stable handle of the job ("c-000042").
	ID string
	// Fingerprint is the content address of the normalized request.
	Fingerprint string
	// Wire is the normalized request as admitted.
	Wire core.WireRequest
	// req is the resolved executable request; its Name is the fingerprint
	// so Engine events route back to this job unambiguously (at most one
	// job per fingerprint is ever in flight).
	req core.Request

	Submitted time.Time

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	result   *core.Result
	err      error
	runsDone int
	snapshot *core.Snapshot // latest streaming snapshot (nil before the first)
	// wireResult/wireSnapshot carry the outcome of a job served from the
	// durable store: the result was persisted in wire form, so it is
	// replayed in wire form instead of rebuilding a core.Result.
	wireResult   *resultJSON
	wireSnapshot *snapshotJSON
	subs         map[chan core.Event]struct{}
	done         chan struct{} // closed exactly once on done/failed/canceled
}

func newJob(id, fp string, wire core.WireRequest, req core.Request, now time.Time) *Job {
	req.Name = fp
	return &Job{
		ID: id, Fingerprint: fp, Wire: wire, req: req,
		Submitted: now,
		subs:      make(map[chan core.Event]struct{}),
		done:      make(chan struct{}),
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot returns the fields a status response needs, consistently.
func (j *Job) Snapshot() (state JobState, runsDone int, result *core.Result, err error, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.runsDone, j.result, j.err, j.started, j.finished
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress returns the latest streaming snapshot the campaign published
// (nil before the first chunk merges). Snapshots keep converging while the
// campaign runs and the last one — covering every run — survives
// completion, so pollers of GET /v1/campaigns/{id} watch the pWCET
// estimate settle without subscribing to the event stream.
func (j *Job) Progress() *core.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshot
}

// start marks the job running.
func (j *Job) start(now time.Time) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = now
	j.mu.Unlock()
}

// finish records the outcome, relabels the result with the display name
// (execution ran under the fingerprint for event routing), and releases
// every stream. canceled distinguishes a server drain from a campaign
// failure.
func (j *Job) finish(res core.Result, err error, canceled bool, now time.Time) {
	res.Name = j.Wire.Label()
	j.mu.Lock()
	j.finished = now
	switch {
	case err == nil:
		j.state = JobDone
		j.result = &res
	case canceled:
		j.state = JobCanceled
		j.err = err
	default:
		j.state = JobFailed
		j.err = err
	}
	close(j.done)
	j.mu.Unlock()
}

// finishFromDisk completes the job from a persisted result without any
// execution: the durable store's answer for this fingerprint. The job
// goes straight from created to done — it was never enqueued.
func (j *Job) finishFromDisk(pr *persistedResult, now time.Time) {
	j.mu.Lock()
	j.state = JobDone
	j.finished = now
	j.wireResult = pr.Result
	j.wireSnapshot = pr.Snapshot
	if pr.Result != nil {
		j.runsDone = pr.Result.Runs
	}
	close(j.done)
	j.mu.Unlock()
}

// diskState returns the persisted wire-form outcome for jobs finished
// from the durable store (nil, nil otherwise).
func (j *Job) diskState() (*resultJSON, *snapshotJSON) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wireResult, j.wireSnapshot
}

// publish fans an Engine event out to the subscribers. Sends never block:
// a full subscriber buffer drops the event (see eventBuffer). Called from
// the Engine's serialized sink path, so it must stay fast.
func (j *Job) publish(ev core.Event) {
	// Expose the display label, not the routing fingerprint.
	ev.Campaign = j.Wire.Label()
	j.mu.Lock()
	if ev.Kind == core.RunCompleted {
		j.runsDone = ev.Done
	}
	if ev.Kind == core.SnapshotTaken && ev.Snapshot != nil {
		j.snapshot = ev.Snapshot
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers a live event channel; drop it with unsubscribe.
func (j *Job) subscribe() chan core.Event {
	ch := make(chan core.Event, eventBuffer)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan core.Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}
