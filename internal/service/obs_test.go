package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint is the acceptance check of the observability PR:
// after one campaign, GET /metrics serves Prometheus text format with
// nonzero campaign latency, run, store and HTTP series.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	sub, code := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":50,"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	waitDone(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE rm_campaign_latency_seconds histogram",
		`rm_campaign_latency_seconds_count{kind="mbpta"} 1`,
		`rm_campaign_latency_seconds_bucket{kind="mbpta",le="+Inf"} 1`,
		`rm_campaign_phase_seconds_count{kind="mbpta",phase="replay"} 1`,
		`rm_runs_total{kind="mbpta"} 50`,
		`rm_campaigns_total{kind="mbpta",status="ok"} 1`,
		"rm_campaigns_inflight 0",
		"rm_store_misses_total 1",
		"rm_queue_wait_seconds_count 1",
		"rm_queue_capacity 64",
		"rm_pool_workers 2",
		"rm_pool_acquires_total",
		`rm_http_requests_total{route="/v1/campaigns",status="202"} 1`,
		`rm_http_request_seconds_count{route="/v1/campaigns"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The campaign ran: its latency histogram must hold a positive sum.
	if strings.Contains(out, `rm_campaign_latency_seconds_sum{kind="mbpta"} 0`+"\n") {
		t.Error("campaign latency sum is zero")
	}
}

// TestHealthzShape pins the JSON shape of /healthz: the nested queue
// object (depth, capacity) and the cache block including evictions.
func TestHealthzShape(t *testing.T) {
	_, ts := testServer(t, Config{QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "uptime_seconds", "workers", "job_slots", "queue", "jobs", "cache"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q: %v", key, h)
		}
	}
	queue, ok := h["queue"].(map[string]any)
	if !ok {
		t.Fatalf("queue is not an object: %v", h["queue"])
	}
	if queue["capacity"] != float64(7) {
		t.Errorf("queue.capacity = %v, want 7", queue["capacity"])
	}
	if _, ok := queue["depth"]; !ok {
		t.Errorf("queue.depth missing: %v", queue)
	}
	cache, ok := h["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache is not an object: %v", h["cache"])
	}
	for _, key := range []string{"hits", "misses", "evictions", "entries"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("cache.%s missing: %v", key, cache)
		}
	}
}

// TestTracesEndpoint: a finished campaign leaves one trace span carrying
// the display label, the fingerprint prefix, and a timed replay phase.
func TestTracesEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	sub, _ := postCampaign(t, ts, `{"name":"my-campaign","workload":"puwmod01","placement":"RM","runs":30,"seed":11}`)
	waitDone(t, ts, sub.ID)

	var out tracesJSON
	getJSON(t, ts, "/v1/traces", &out)
	if out.Total != 1 || len(out.Traces) != 1 {
		t.Fatalf("traces = %+v", out)
	}
	sp := out.Traces[0]
	if sp.Campaign != "my-campaign" {
		t.Errorf("span campaign = %q, want the display label", sp.Campaign)
	}
	if sp.Kind != "mbpta" || sp.Runs != 30 {
		t.Errorf("span = %+v", sp)
	}
	if len(sp.Fingerprint) != 16 || !strings.HasPrefix(sub.Fingerprint, sp.Fingerprint) {
		t.Errorf("span fingerprint %q is not a 16-char prefix of %q", sp.Fingerprint, sub.Fingerprint)
	}
	if sp.ReplaySeconds <= 0 || sp.TotalSeconds < sp.ReplaySeconds {
		t.Errorf("span timings = %+v", sp)
	}
}

// TestEventStreamSlowConsumer: a reader that drains slowly may lose
// intermediate run events (the sink never blocks), but what it sees stays
// ordered — the done counter is monotone — and the stream still ends with
// the terminal "end" line.
func TestEventStreamSlowConsumer(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1})
	// Blocker occupies the single job slot so the subscriber attaches
	// before the target's first run (see TestEventStream).
	if _, code := postCampaign(t, ts, `{"workload":"synth160k","placement":"RM","runs":30,"seed":9}`); code != http.StatusAccepted {
		t.Fatalf("blocker submit code = %d", code)
	}
	sub, code := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":500,"seed":13}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	var events []wireEvent
	for sc.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		// Stall between reads so the subscriber buffer overflows and the
		// publisher exercises its drop path.
		if len(events) <= 20 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	last := events[len(events)-1]
	if last.Kind != "end" || last.State != "done" {
		t.Fatalf("slow stream did not terminate with end/done: %+v", last)
	}
	prev := -1
	for _, ev := range events {
		if ev.Kind != "run" {
			continue
		}
		if ev.Done <= prev {
			t.Fatalf("done counter regressed: %d after %d", ev.Done, prev)
		}
		prev = ev.Done
	}
}

// TestEventStreamCancelClosesPromptly: cancelling an in-flight campaign
// (server drain) terminates its event stream promptly with an "end" line
// in state canceled, instead of leaving the subscriber hanging.
func TestEventStreamCancelClosesPromptly(t *testing.T) {
	s, err := New(Config{Workers: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, code := postCampaign(t, ts, `{"workload":"tblook01","placement":"RM","runs":100000,"seed":21}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go s.Close()

	type streamEnd struct {
		last wireEvent
		err  error
	}
	endCh := make(chan streamEnd, 1)
	go func() {
		var last wireEvent
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				endCh <- streamEnd{err: fmt.Errorf("bad line %q: %v", sc.Text(), err)}
				return
			}
		}
		endCh <- streamEnd{last: last, err: sc.Err()}
	}()
	select {
	case end := <-endCh:
		if end.err != nil {
			t.Fatal(end.err)
		}
		if end.last.Kind != "end" || end.last.State != "canceled" {
			t.Fatalf("cancelled stream ended with %+v, want end/canceled", end.last)
		}
		if end.last.Err == "" {
			t.Fatal("cancelled end line carries no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not close after cancellation")
	}
}

// TestAccessLog checks the request-logging middleware: JSON lines with
// method/path/status, a generated X-Request-Id echoed on the response,
// and client-supplied IDs passed through.
func TestAccessLog(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "ok")
	})
	var buf bytes.Buffer
	ts := httptest.NewServer(AccessLog(inner, &buf, LogJSON))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/some/path")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	generated := resp.Header.Get("X-Request-Id")
	if generated == "" {
		t.Fatal("no X-Request-Id on the response")
	}
	var line struct {
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
		Bytes  int64  `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("access log line is not JSON: %q (%v)", buf.String(), err)
	}
	if line.ID != generated || line.Method != "GET" || line.Path != "/some/path" ||
		line.Status != http.StatusTeapot || line.Bytes != 2 {
		t.Fatalf("log line = %+v (id on wire %q)", line, generated)
	}

	// A client-supplied ID is echoed and logged verbatim.
	buf.Reset()
	req, _ := http.NewRequest("GET", ts.URL+"/other", nil)
	req.Header.Set("X-Request-Id", "client-id-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-1" {
		t.Fatalf("client id not echoed: %q", got)
	}
	if !strings.Contains(buf.String(), `"id":"client-id-1"`) {
		t.Fatalf("client id not logged: %q", buf.String())
	}

	// Text format emits one parseable key=value line.
	buf.Reset()
	ts2 := httptest.NewServer(AccessLog(inner, &buf, LogText))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/t")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if out := buf.String(); !strings.Contains(out, "method=GET") || !strings.Contains(out, "path=/t") ||
		!strings.Contains(out, "status=418") {
		t.Fatalf("text log line = %q", out)
	}
}

// TestAccessLogStreamFlush: the logging and metrics wrappers must not
// swallow http.Flusher — an NDJSON stream through the full middleware
// stack still delivers its lines incrementally.
func TestAccessLogStreamFlush(t *testing.T) {
	s, err := New(Config{Workers: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ts := httptest.NewServer(AccessLog(s.Handler(), &buf, LogText))
	defer func() { ts.Close(); s.Close() }()

	if _, code := postCampaign(t, ts, `{"workload":"synth160k","placement":"RM","runs":30,"seed":9}`); code != http.StatusAccepted {
		t.Fatalf("blocker submit code = %d", code)
	}
	sub, code := postCampaign(t, ts, `{"workload":"puwmod01","placement":"RM","runs":60,"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The first line must arrive while the campaign is still in flight —
	// it can only do so if Flush passes through the wrappers.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var ev wireEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("bad first line %q: %v", sc.Text(), err)
	}
	if ev.Kind == "end" {
		t.Log("stream ended before any live event; flush passthrough not exercised")
	}
	for sc.Scan() {
	}
}
