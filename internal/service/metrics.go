package service

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// registerMetrics wires the service's own instruments onto the registry:
// the result cache's counters, the job queue's occupancy, and the
// queue-wait histogram. Engine-level metrics (campaign latency, phases,
// runs, pool occupancy) are registered by the obs.EngineCollector and
// obs.RegisterPool in New.
func (s *Server) registerMetrics() {
	s.queueWait = s.reg.LatencyHistogram("rm_queue_wait_seconds",
		"Time campaigns spent queued before a job worker picked them up.")
	s.jobsRunning = s.reg.Gauge("rm_jobs_inflight",
		"Campaign jobs currently executing on the engine.")
	s.reg.GaugeFunc("rm_job_workers",
		"Configured concurrent campaign job workers.",
		func() float64 { return float64(s.cfg.Jobs) })
	s.reg.GaugeFunc("rm_queue_depth",
		"Admitted campaigns waiting for a job worker.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("rm_queue_capacity",
		"Bound of the admitted-but-not-running backlog.",
		func() float64 { return float64(cap(s.queue)) })
	s.reg.CounterFunc("rm_store_hits_total",
		"Result-cache hits (submissions served without execution).",
		s.store.hits.Load)
	s.reg.CounterFunc("rm_store_misses_total",
		"Result-cache misses (submissions that scheduled an execution).",
		s.store.misses.Load)
	s.reg.CounterFunc("rm_store_evictions_total",
		"Result-cache LRU evictions.",
		s.store.evictions.Load)
	s.reg.GaugeFunc("rm_store_entries",
		"Resident result-cache entries.",
		func() float64 { return float64(s.store.Len()) })
	s.reg.CounterFunc("rm_checkpoint_writes_total",
		"Campaign checkpoints durably written.",
		s.ckptWrites.Load)
	s.reg.CounterFunc("rm_checkpoint_resumes_total",
		"Campaigns resumed from a persisted checkpoint.",
		s.ckptResumes.Load)
	s.reg.CounterFunc("rm_checkpoint_corruptions_total",
		"Persisted blobs rejected as corrupt and quarantined.",
		s.ckptCorruptions.Load)
	if s.disk != nil {
		s.reg.CounterFunc("rm_store_disk_hits_total",
			"Durable-store reads that returned a verified payload.",
			s.disk.hits.Load)
		s.reg.CounterFunc("rm_store_disk_misses_total",
			"Durable-store reads that found nothing usable.",
			s.disk.misses.Load)
		s.reg.CounterFunc("rm_store_disk_writes_total",
			"Durable-store blob writes that landed.",
			s.disk.writes.Load)
		s.reg.CounterFunc("rm_store_disk_write_errors_total",
			"Durable-store writes that failed before the rename.",
			s.disk.writeErrors.Load)
		s.reg.CounterFunc("rm_store_disk_quarantines_total",
			"Corrupt durable-store entries moved to quarantine.",
			s.disk.quarantines.Load)
	}
}

// routeStats instruments one mux route: a latency histogram plus
// lazily-registered per-status request counters (the status vocabulary of
// a route is tiny, so the map stays a handful of entries).
type routeStats struct {
	reg      *obs.Registry
	route    string
	latency  *obs.Histogram
	mu       sync.Mutex
	byStatus map[int]*obs.Counter
}

func (rs *routeStats) counter(status int) *obs.Counter {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	c, ok := rs.byStatus[status]
	if !ok {
		c = rs.reg.Counter("rm_http_requests_total",
			"HTTP requests by route and status.",
			obs.L("route", rs.route), obs.L("status", strconv.Itoa(status)))
		rs.byStatus[status] = c
	}
	return c
}

// instrument wraps a handler with per-route latency and request-count
// recording. The route label is the registration pattern (static, so
// path parameters never explode the label space).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rs := &routeStats{
		reg:   s.reg,
		route: route,
		latency: s.reg.LatencyHistogram("rm_http_request_seconds",
			"HTTP request latency by route.", obs.L("route", route)),
		byStatus: make(map[int]*obs.Counter),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		rs.latency.Observe(time.Since(start).Nanoseconds())
		rs.counter(sw.code()).Inc()
	}
}

// statusWriter captures the response status (and byte count) while
// forwarding everything — including Flush, which the NDJSON event stream
// depends on — to the wrapped ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// streaming responses keep streaming through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code returns the effective status (200 when the handler never wrote).
func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
