package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreGetOrCreateSingleflight(t *testing.T) {
	s := NewStore(1024, nil, nil)
	var made int
	v, created := s.GetOrCreate("k", func() any { made++; return "v1" })
	if !created || v != "v1" {
		t.Fatalf("first GetOrCreate = (%v, %v)", v, created)
	}
	v, created = s.GetOrCreate("k", func() any { made++; return "v2" })
	if created || v != "v1" {
		t.Fatalf("second GetOrCreate = (%v, %v), want cached v1", v, created)
	}
	if made != 1 {
		t.Fatalf("mk ran %d times, want 1", made)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestStoreConcurrentSingleflight(t *testing.T) {
	s := NewStore(1024, nil, nil)
	const goroutines = 32
	var mkCount sync.Map
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, _ := s.GetOrCreate("shared", func() any {
				mkCount.Store(g, true)
				return g
			})
			results[g] = v
		}(g)
	}
	wg.Wait()
	n := 0
	mkCount.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("mk ran %d times under contention, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d observed %v, others %v", g, results[g], results[0])
		}
	}
}

func TestStoreLRUBound(t *testing.T) {
	var evicted []string
	s := NewStore(storeShards, nil, func(k string, _ any) { evicted = append(evicted, k) }) // 1 entry/shard
	// Fill well past capacity; every shard must stay at its bound.
	for i := 0; i < 10*storeShards; i++ {
		s.GetOrCreate(fmt.Sprintf("key-%d", i), func() any { return i })
	}
	if got := s.Len(); got > storeShards {
		t.Fatalf("store holds %d entries, per-shard bound of 1 not enforced", got)
	}
	if s.Stats().Evictions == 0 || len(evicted) == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}

func TestStoreCanEvictGuard(t *testing.T) {
	// With everything marked un-evictable, the shard exceeds capacity
	// rather than dropping an entry.
	s := NewStore(storeShards, func(any) bool { return false }, nil)
	for i := 0; i < 5*storeShards; i++ {
		s.GetOrCreate(fmt.Sprintf("key-%d", i), func() any { return i })
	}
	if got := s.Len(); got != 5*storeShards {
		t.Fatalf("store holds %d entries, want all %d kept", got, 5*storeShards)
	}
	if s.Stats().Evictions != 0 {
		t.Fatal("evicted an un-evictable entry")
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore(16, nil, nil)
	s.GetOrCreate("k", func() any { return 1 })
	s.Delete("k")
	if _, ok := s.Peek("k"); ok {
		t.Fatal("deleted key still present")
	}
	if _, created := s.GetOrCreate("k", func() any { return 2 }); !created {
		t.Fatal("re-creation after Delete did not run mk")
	}
}

func TestStorePeekDoesNotCount(t *testing.T) {
	s := NewStore(16, nil, nil)
	s.GetOrCreate("k", func() any { return 1 })
	before := s.Stats()
	s.Peek("k")
	s.Peek("absent")
	after := s.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Peek moved counters: %+v -> %+v", before, after)
	}
}
