package service

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Log formats accepted by AccessLog (and rmserved's -log flag).
const (
	LogText = "text"
	LogJSON = "json"
)

// ValidLogFormat reports whether format names a supported access-log
// format.
func ValidLogFormat(format string) bool {
	return format == LogText || format == LogJSON
}

// AccessLog wraps a handler with structured request logging: one line per
// completed request carrying the request ID, method, path, status,
// response bytes and latency. The ID is taken from an inbound
// X-Request-Id header when the client supplied one (so IDs correlate
// across proxies) and generated otherwise; either way it is echoed back
// on the response, so clients and logs always share it.
//
// format is LogJSON (one JSON object per line) or LogText; out is
// typically os.Stderr. Lines are serialized through a log.Logger, so the
// wrapper is safe under concurrent requests.
func AccessLog(h http.Handler, out io.Writer, format string) http.Handler {
	al := &accessLogger{
		h:    h,
		log:  log.New(out, "", 0),
		json: format == LogJSON,
		// The epoch prefix keeps generated IDs distinct across restarts.
		epoch: strconv.FormatInt(time.Now().Unix(), 36),
	}
	return al
}

type accessLogger struct {
	h     http.Handler
	log   *log.Logger
	json  bool
	epoch string
	seq   atomic.Uint64
}

// accessLine is the JSON form of one access-log record.
type accessLine struct {
	Time       string  `json:"time"`
	ID         string  `json:"id"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
}

func (al *accessLogger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = "r-" + al.epoch + "-" + strconv.FormatUint(al.seq.Add(1), 10)
	}
	w.Header().Set("X-Request-Id", id)
	sw := &statusWriter{ResponseWriter: w}
	al.h.ServeHTTP(sw, r)
	dur := time.Since(start)
	if al.json {
		line, err := json.Marshal(accessLine{
			Time:       start.UTC().Format(time.RFC3339Nano),
			ID:         id,
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.code(),
			Bytes:      sw.bytes,
			DurationMS: float64(dur.Nanoseconds()) / 1e6,
		})
		if err == nil {
			al.log.Print(string(line))
		}
		return
	}
	al.log.Printf("%s id=%s method=%s path=%s status=%d bytes=%d duration=%s",
		start.UTC().Format(time.RFC3339), id, r.Method, r.URL.Path, sw.code(), sw.bytes, dur)
}
