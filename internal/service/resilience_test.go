package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestDiskStoreRoundtrip: blobs come back byte-identical through the
// envelope, checkpoints list and delete, and the counters add up.
func TestDiskStoreRoundtrip(t *testing.T) {
	d, err := OpenDiskStore(nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.GetResult("fp1"); ok {
		t.Fatal("hit on an empty store")
	}
	payload := []byte(`{"answer":42}`)
	if err := d.PutResult("fp1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.GetResult("fp1")
	if !ok || string(got) != string(payload) {
		t.Fatalf("read back %q, %v", got, ok)
	}
	if err := d.PutCheckpoint("fp2", []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if cps := d.Checkpoints(); len(cps) != 1 || cps[0] != "fp2" {
		t.Fatalf("checkpoints = %v", cps)
	}
	d.DeleteCheckpoint("fp2")
	if cps := d.Checkpoints(); len(cps) != 0 {
		t.Fatalf("checkpoints after delete = %v", cps)
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 2 || st.Quarantines != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDiskStoreQuarantinesCorruptBlobs: a blob damaged on disk (torn
// tail, flipped byte, wrong magic) reads as a miss, is moved to the
// quarantine directory, and the slot accepts a rewrite.
func TestDiskStoreQuarantinesCorruptBlobs(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDiskStore(nil, root)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		p := filepath.Join(root, diskResultsDir, name+diskResultExt)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, mutate(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		fp     string
		mutate func([]byte) []byte
	}{
		{"torn", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }},
	}
	for _, c := range cases {
		if err := d.PutResult(c.fp, []byte("payload-"+c.fp)); err != nil {
			t.Fatal(err)
		}
		corrupt(c.fp, c.mutate)
		if _, ok := d.GetResult(c.fp); ok {
			t.Fatalf("%s: corrupt blob served", c.fp)
		}
	}
	if q := d.Stats().Quarantines; q != 3 {
		t.Fatalf("quarantines = %d, want 3", q)
	}
	ents, err := os.ReadDir(filepath.Join(root, diskQuarantineDir))
	if err != nil || len(ents) != 3 {
		t.Fatalf("quarantine dir has %d entries (%v), want 3", len(ents), err)
	}
	// The slot is free again: a rewrite serves.
	if err := d.PutResult("torn", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.GetResult("torn"); !ok || string(got) != "fresh" {
		t.Fatalf("rewrite after quarantine: %q, %v", got, ok)
	}
}

// TestDiskStoreTornTempWriteInvisible: a torn write that dies on the temp
// file never becomes visible — the rename only happens after a complete,
// durable write, so readers see the old state (here: nothing).
func TestDiskStoreTornTempWriteInvisible(t *testing.T) {
	fs := faultinject.Wrap(faultinject.OS{}, faultinject.NewPlan(7, faultinject.Config{PTorn: 1}))
	root := t.TempDir()
	clean, err := OpenDiskStore(nil, root)
	if err != nil {
		t.Fatal(err)
	}
	faulty := &DiskStore{fs: fs, root: root}
	if err := faulty.PutCheckpoint("fp", []byte("state")); err == nil {
		t.Fatal("torn write reported success")
	}
	if _, ok := clean.GetCheckpoint("fp"); ok {
		t.Fatal("torn temp write became visible")
	}
	if st := faulty.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrors)
	}
}

// diskBody is the campaign the durable-tier tests run: big enough to
// span several checkpoints, small enough to finish quickly.
const diskBody = `{"workload":"tblook01","placement":"RM","runs":400,"seed":41,"analyze":true}`

// TestDiskResultServesAcrossRestart: a completed campaign persists, and a
// fresh server on the same data dir answers the same submission from
// disk — no execution, same result, wire-identical times.
func TestDiskResultServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	a, tsA := testServer(t, Config{DataDir: dir})
	sub, code := postCampaign(t, tsA, diskBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	want := waitDone(t, tsA, sub.ID)
	if want.State != "done" {
		t.Fatalf("first run state=%s error=%q", want.State, want.Error)
	}
	if w := a.Disk().Stats().Writes; w == 0 {
		t.Fatal("no durable writes for a completed campaign")
	}
	tsA.Close()
	a.Close()

	b, tsB := testServer(t, Config{DataDir: dir})
	resub, code := postCampaign(t, tsB, diskBody)
	if code != http.StatusOK || !resub.Cached {
		t.Fatalf("restart resubmit: code=%d cached=%v, want 200 cached", code, resub.Cached)
	}
	got := waitDone(t, tsB, resub.ID)
	if got.State != "done" || got.Result == nil {
		t.Fatalf("disk-served job state=%s", got.State)
	}
	if len(got.Result.Times) != len(want.Result.Times) {
		t.Fatalf("times length %d vs %d", len(got.Result.Times), len(want.Result.Times))
	}
	for i := range want.Result.Times {
		if got.Result.Times[i] != want.Result.Times[i] {
			t.Fatalf("Times[%d]: %v vs %v", i, got.Result.Times[i], want.Result.Times[i])
		}
	}
	if got.Result.Analysis == nil || *got.Result.Analysis != *want.Result.Analysis {
		t.Fatalf("analysis differs across restart: %+v vs %+v", got.Result.Analysis, want.Result.Analysis)
	}
	if got.Snapshot == nil || got.Snapshot.Runs != want.Snapshot.Runs {
		t.Fatalf("snapshot lost across restart: %+v", got.Snapshot)
	}
	if h := b.Disk().Stats().Hits; h == 0 {
		t.Fatal("restart submission did not hit the disk store")
	}
	if b.ckptResumes.Load() != 0 {
		t.Fatal("completed campaign counted as a resume")
	}
}

// TestCrashResumeBitIdentical is the service-level acceptance check of
// the durability tentpole: a server killed mid-campaign (Close cancels
// in-flight jobs, exactly like a SIGTERM) leaves a checkpoint behind; a
// fresh server on the same data dir resumes the campaign on startup and
// its final times vector is bit-identical to an uninterrupted run.
func TestCrashResumeBitIdentical(t *testing.T) {
	const body = `{"workload":"synth160k","placement":"RM","runs":160,"seed":53}`

	// Reference: an uninterrupted run on a memory-only server.
	_, tsRef := testServer(t, Config{})
	refSub, _ := postCampaign(t, tsRef, body)
	ref := waitDone(t, tsRef, refSub.ID)
	if ref.State != "done" {
		t.Fatalf("reference run state=%s error=%q", ref.State, ref.Error)
	}

	dir := t.TempDir()
	a, tsA := testServer(t, Config{DataDir: dir, CheckpointEvery: 10, Workers: 2})
	if _, code := postCampaign(t, tsA, body); code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	// Wait for the campaign to make durable progress, then kill the
	// server mid-flight.
	deadline := time.Now().Add(2 * time.Minute)
	for a.ckptWrites.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tsA.Close()
	a.Close()

	cps := mustDisk(t, dir).Checkpoints()
	if len(cps) != 1 {
		t.Skipf("campaign finished before the kill (checkpoints=%v); nothing to resume", cps)
	}

	// The restarted server resumes the campaign by itself.
	b, tsB := testServer(t, Config{DataDir: dir, CheckpointEvery: 10, Workers: 2})
	if b.ckptResumes.Load() == 0 {
		t.Fatal("restart did not resume from the checkpoint")
	}
	resub, _ := postCampaign(t, tsB, body) // coalesces onto the resumed job
	got := waitDone(t, tsB, resub.ID)
	if got.State != "done" || got.Result == nil {
		t.Fatalf("resumed campaign state=%s error=%q", got.State, got.Error)
	}
	if len(got.Result.Times) != len(ref.Result.Times) {
		t.Fatalf("times length %d vs %d", len(got.Result.Times), len(ref.Result.Times))
	}
	for i := range ref.Result.Times {
		if got.Result.Times[i] != ref.Result.Times[i] {
			t.Fatalf("resumed Times[%d] = %v, clean run %v", i, got.Result.Times[i], ref.Result.Times[i])
		}
	}
	if got.Result.HWM != ref.Result.HWM || got.Result.Mean != ref.Result.Mean {
		t.Fatalf("resumed aggregates (%v, %v) differ from clean (%v, %v)",
			got.Result.HWM, got.Result.Mean, ref.Result.HWM, ref.Result.Mean)
	}
	// The completed campaign retired its checkpoint and persisted its
	// result.
	if cps := b.Disk().Checkpoints(); len(cps) != 0 {
		t.Fatalf("checkpoints not retired after completion: %v", cps)
	}
	if _, ok := b.Disk().GetResult(resub.Fingerprint); !ok {
		t.Fatal("resumed campaign's result not persisted")
	}
}

// mustDisk opens a read-only view of a data dir for assertions.
func mustDisk(t *testing.T, dir string) *DiskStore {
	t.Helper()
	d, err := OpenDiskStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCorruptDiskEntriesRecompute: damaged durable state (a corrupt
// result blob, a checkpoint whose payload fails the core codec) is
// quarantined and the campaign recomputes from scratch — corruption
// costs work, never correctness.
func TestCorruptDiskEntriesRecompute(t *testing.T) {
	dir := t.TempDir()
	a, tsA := testServer(t, Config{DataDir: dir})
	sub, _ := postCampaign(t, tsA, diskBody)
	want := waitDone(t, tsA, sub.ID)
	tsA.Close()
	a.Close()

	// Flip a payload byte past the envelope header: the SHA-256 check
	// must reject the blob.
	p := filepath.Join(dir, diskResultsDir, sub.Fingerprint+diskResultExt)
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-2] ^= 0x01
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	b, tsB := testServer(t, Config{DataDir: dir})
	resub, code := postCampaign(t, tsB, diskBody)
	if code != http.StatusAccepted || resub.Cached {
		t.Fatalf("corrupt-result resubmit: code=%d cached=%v, want 202 fresh", code, resub.Cached)
	}
	got := waitDone(t, tsB, resub.ID)
	if got.State != "done" {
		t.Fatalf("recompute state=%s error=%q", got.State, got.Error)
	}
	for i := range want.Result.Times {
		if got.Result.Times[i] != want.Result.Times[i] {
			t.Fatalf("recomputed Times[%d] differs", i)
		}
	}
	if q := b.Disk().Stats().Quarantines; q == 0 {
		t.Fatal("corrupt result was not quarantined")
	}
	// The recomputation re-persisted a good blob.
	if _, ok := b.Disk().GetResult(sub.Fingerprint); !ok {
		t.Fatal("recomputed result not re-persisted")
	}

	// A checkpoint that is a valid envelope around garbage is quarantined
	// on submit (json/codec failure), and the campaign still runs.
	tsB.Close()
	b.Close()
	d := mustDisk(t, dir)
	if err := d.PutCheckpoint("feedfacefeedfacefeedfacefeedface", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	c, tsC := testServer(t, Config{DataDir: dir})
	defer func() { tsC.Close() }()
	pollDeadline := time.Now().Add(10 * time.Second)
	for len(c.Disk().Checkpoints()) != 0 {
		if time.Now().After(pollDeadline) {
			t.Fatal("garbage checkpoint not quarantined on startup")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.ckptCorruptions.Load() == 0 {
		t.Fatal("corruption counter did not move")
	}
}

// TestServiceSurvivesInjectedFaults: with storage faults injected under
// the durable tier (I/O errors, torn writes, delays), campaigns still
// complete with correct results — durability degrades, answers do not.
func TestServiceSurvivesInjectedFaults(t *testing.T) {
	_, tsRef := testServer(t, Config{})
	refSub, _ := postCampaign(t, tsRef, diskBody)
	ref := waitDone(t, tsRef, refSub.ID)

	cfg := faultinject.Config{PError: 0.15, PTorn: 0.15, PDelay: 0.05, Delay: time.Millisecond}
	// The plan is deterministic per seed; pick the first seed whose early
	// draws let the store open (MkdirAll runs before any fault matters).
	var s *Server
	var ts *httptest.Server
	for seed := uint64(1); seed < 32; seed++ {
		fs := faultinject.Wrap(faultinject.OS{}, faultinject.NewPlan(seed, cfg))
		srv, err := New(Config{Workers: 2, DataDir: t.TempDir(), CheckpointEvery: 10, FS: fs})
		if err == nil {
			s = srv
			ts = httptest.NewServer(srv.Handler())
			t.Cleanup(func() { ts.Close(); srv.Close() })
			break
		}
	}
	if s == nil {
		t.Fatal("no seed let the store open; fault config too hot")
	}

	for i := 0; i < 3; i++ {
		sub, code := postCampaign(t, ts, diskBody)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submission %d -> %d", i, code)
		}
		got := waitDone(t, ts, sub.ID)
		if got.State != "done" || got.Result == nil {
			t.Fatalf("faulted campaign %d state=%s error=%q", i, got.State, got.Error)
		}
		if got.Result.HWM != ref.Result.HWM || got.Result.Mean != ref.Result.Mean {
			t.Fatalf("faulted campaign %d wrong aggregates", i)
		}
	}
}

// TestQueueFullRetryAfter: the 429 response carries a Retry-After hint,
// the typed backoff signal the resilient client consumes.
func TestQueueFullRetryAfter(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 1, Workers: 1})
	saw := false
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"workload":"tblook01","placement":"RM","runs":300,"seed":%d}`, 300+i)
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
			}
			saw = true
			break
		}
	}
	if !saw {
		t.Skip("queue never filled on this host; timing dependent")
	}
}

// TestEventStreamDisconnectNoLeak: clients that vanish mid-NDJSON-stream
// must not leave handler goroutines (or subscriptions) behind.
func TestEventStreamDisconnectNoLeak(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, Workers: 1})
	sub, code := postCampaign(t, ts, `{"workload":"tblook01","placement":"RM","runs":100000,"seed":61}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	base := runtime.NumGoroutine()

	client := &http.Client{}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/campaigns/"+sub.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read a little so the stream is demonstrably live, then vanish.
		buf := make([]byte, 256)
		_, _ = resp.Body.Read(buf)
		cancel()
		resp.Body.Close()
	}
	client.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: base=%d now=%d; stream handlers leaked", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
