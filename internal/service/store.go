// Package service turns the campaign Engine into a long-lived HTTP
// backend: a content-addressed result cache over request fingerprints
// (Store), a bounded job queue over one shared core.Engine (Server), and
// the /v1 campaign API with NDJSON event streaming served by cmd/rmserved.
//
// The design leans on the Engine's determinism contract: a campaign's
// Times are a pure function of its normalized request, so results are
// safely cacheable -- and duplicate submissions coalescable -- by the
// core.WireRequest fingerprint alone.
package service

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// storeShards is the number of independently locked cache shards. Sixteen
// keeps lock contention negligible for any plausible submission rate while
// costing nothing at rest.
const storeShards = 16

// Store is an in-memory, content-addressed cache: string keys (campaign
// fingerprints) to opaque values (jobs), sharded by key hash, each shard
// LRU-bounded. GetOrCreate is the singleflight primitive of the service:
// concurrent submissions of the same fingerprint observe exactly one
// created value and coalesce onto it.
//
// A Store is safe for concurrent use.
type Store struct {
	capacity int // per-shard entry bound
	// canEvict guards LRU eviction; nil means everything is evictable.
	// The server passes a "job finished" predicate so an in-flight job is
	// never dropped from the fingerprint index while it still needs to
	// coalesce duplicates and route events.
	canEvict func(v any) bool
	// onEvict observes evictions (e.g. to unlink the job from the ID
	// index). It runs with the shard lock held: keep it fast and do not
	// call back into the Store from it.
	onEvict func(key string, v any)

	seed   maphash.Seed
	shards [storeShards]storeShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type storeShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recent; values are *storeEntry
	m   map[string]*list.Element
}

type storeEntry struct {
	key string
	v   any
}

// NewStore builds a store bounded to roughly capacity entries (distributed
// over the shards; at least one per shard). canEvict and onEvict may be
// nil; see the Store fields for their contracts.
func NewStore(capacity int, canEvict func(v any) bool, onEvict func(key string, v any)) *Store {
	per := capacity / storeShards
	if per < 1 {
		per = 1
	}
	s := &Store{capacity: per, canEvict: canEvict, onEvict: onEvict, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].lru = list.New()
		s.shards[i].m = make(map[string]*list.Element)
	}
	return s
}

func (s *Store) shard(key string) *storeShard {
	return &s.shards[maphash.String(s.seed, key)%storeShards]
}

// GetOrCreate returns the value under key, creating it with mk on a miss.
// Exactly one caller's mk runs per resident key; everyone else gets that
// value back with created=false. A hit refreshes the entry's LRU position
// and counts toward Stats().Hits; a creation counts toward Misses.
//
// mk runs under the shard lock, so it must be cheap and must not touch the
// Store (allocate the value, do not run the campaign).
func (s *Store) GetOrCreate(key string, mk func() any) (v any, created bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		sh.lru.MoveToFront(el)
		s.hits.Add(1)
		return el.Value.(*storeEntry).v, false
	}
	s.misses.Add(1)
	v = mk()
	sh.m[key] = sh.lru.PushFront(&storeEntry{key: key, v: v})
	s.evictLocked(sh)
	return v, true
}

// Peek returns the value under key without touching LRU order or the
// hit/miss counters -- the internal lookup of event routing and health
// reporting, which must not skew the cache statistics.
func (s *Store) Peek(key string) (any, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		return el.Value.(*storeEntry).v, true
	}
	return nil, false
}

// Delete removes key if present (without firing onEvict: deletion is an
// explicit invalidation by the owner, not capacity pressure).
func (s *Store) Delete(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		sh.lru.Remove(el)
		delete(sh.m, key)
	}
}

// evictLocked drops least-recently-used evictable entries until the shard
// is within capacity. Un-evictable (in-flight) entries are skipped; if the
// overflow is entirely in-flight the shard temporarily exceeds capacity
// rather than break singleflight.
func (s *Store) evictLocked(sh *storeShard) {
	over := sh.lru.Len() - s.capacity
	if over <= 0 {
		return
	}
	el := sh.lru.Back()
	for el != nil && over > 0 {
		prev := el.Prev()
		e := el.Value.(*storeEntry)
		if s.canEvict == nil || s.canEvict(e.v) {
			sh.lru.Remove(el)
			delete(sh.m, e.key)
			s.evictions.Add(1)
			if s.onEvict != nil {
				s.onEvict(e.key, e.v)
			}
			over--
		}
		el = prev
	}
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// StoreStats is a snapshot of the cache counters.
type StoreStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Stats snapshots the hit/miss/eviction counters and entry count.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Entries:   s.Len(),
	}
}
