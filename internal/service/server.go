package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

// Config sizes the campaign service. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// Workers sizes the shared simulation pool (0 = GOMAXPROCS).
	Workers int
	// Jobs is the number of campaigns executing concurrently (default 2).
	// Simulation parallelism within a campaign comes from Workers; Jobs
	// only bounds how many campaigns contend for that pool at once.
	Jobs int
	// QueueDepth bounds the admitted-but-not-running backlog (default
	// 64). A full queue rejects submissions with 503.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (default 1024
	// entries, LRU-evicted).
	CacheSize int
	// DefaultRuns is applied to submissions that omit runs (default 300).
	DefaultRuns int
	// MaxRuns rejects larger submissions (default 100000).
	MaxRuns int
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultRuns <= 0 {
		c.DefaultRuns = 300
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 100000
	}
	return c
}

// Server is the campaign service: one shared core.Engine, a bounded job
// queue in front of it, and a content-addressed Store that serves repeat
// submissions in O(1) and coalesces concurrent duplicates onto a single
// execution. Build one with New, mount Handler on an http.Server, and
// Close it to drain.
type Server struct {
	cfg   Config
	eng   *core.Engine
	store *Store

	baseCtx context.Context
	cancel  context.CancelFunc

	queue chan *Job
	// slots is the admission semaphore: a token is reserved before a job
	// may be created and held until a worker pops it from the queue (or
	// released on coalescing), so a queue send can never block and an
	// admission never has to be undone -- the fix for the classic
	// "create, fail to enqueue, delete while someone coalesced" race.
	slots chan struct{}
	wg    sync.WaitGroup

	// closeMu serializes admissions against Close: Submit holds the read
	// side for its whole admission, Close takes the write side to flip
	// accepting, so no submission can slip a job into the queue after
	// Close has drained it.
	closeMu sync.RWMutex

	jobsMu sync.RWMutex
	jobs   map[string]*Job // by Job.ID

	seq       atomic.Uint64
	accepting atomic.Bool
	started   time.Time

	// Observability: one registry per server, an engine collector feeding
	// it (and the trace ring), and the service-level instruments.
	reg         *obs.Registry
	collector   *obs.EngineCollector
	queueWait   *obs.Histogram
	jobsRunning *obs.Gauge
}

// New builds the service and starts its job workers. The caller owns the
// HTTP listener; Close drains the service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.QueueDepth),
		started: time.Now(),
	}
	//rm:ctxroot server lifecycle root: jobs outlive the submitting request; Close cancels it on drain
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	// Lock order: store shard -> jobsMu (canEvict/onEvict run under the
	// shard lock); nothing acquires them the other way around.
	s.store = NewStore(cfg.CacheSize,
		func(v any) bool {
			st := v.(*Job).State()
			return st == JobDone || st == JobFailed || st == JobCanceled
		},
		func(_ string, v any) {
			j := v.(*Job)
			s.jobsMu.Lock()
			delete(s.jobs, j.ID)
			s.jobsMu.Unlock()
		})
	s.reg = obs.NewRegistry()
	s.collector = obs.NewEngineCollector(s.reg, nil)
	// Campaigns execute under their fingerprint as campaign name; resolve
	// trace spans back to the submitted display label, and keep the
	// fingerprint prefix on the span for store lookups.
	s.collector.Resolve = func(fp string) (string, string) {
		if v, ok := s.store.Peek(fp); ok {
			return v.(*Job).Wire.Label(), fp
		}
		return "", fp
	}
	s.eng = core.NewEngine(core.WithWorkers(cfg.Workers), core.WithEvents(s.collector.Sink(s.route)))
	obs.RegisterPool(s.reg, s.eng.Pool())
	s.registerMetrics()
	s.accepting.Store(true)
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the shared engine (tests; embedding the service).
func (s *Server) Engine() *core.Engine { return s.eng }

// Store exposes the result cache (health reporting, tests).
func (s *Server) Store() *Store { return s.store }

// Registry exposes the server's metric registry, so embedders (rmserved)
// can add their own instruments next to the service ones.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops admissions, cancels in-flight campaigns via context, marks
// the queued backlog canceled, and waits for the job workers. Safe to
// call once the HTTP listener is shut down (or concurrently with it:
// late submissions get 503).
func (s *Server) Close() {
	// The write lock waits out any Submit in flight, so after the flip no
	// new job can reach the queue.
	s.closeMu.Lock()
	s.accepting.Store(false)
	s.closeMu.Unlock()
	s.cancel()
	s.wg.Wait()
	// Workers are gone; whatever is still queued will never start.
	for {
		select {
		case j := <-s.queue:
			j.finish(core.Result{}, errors.New("service: server shut down before the campaign started"), true, time.Now())
		default:
			return
		}
	}
}

// route is the Engine event sink: requests execute under their
// fingerprint as campaign name (unique among in-flight jobs by
// singleflight), so events map back to exactly one job.
func (s *Server) route(ev core.Event) {
	if v, ok := s.store.Peek(ev.Campaign); ok {
		v.(*Job).publish(ev)
	}
}

// worker executes queued jobs on the shared engine until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			<-s.slots // the job left the queue; free its admission slot
			start := time.Now()
			s.queueWait.Observe(start.Sub(j.Submitted).Nanoseconds())
			s.jobsRunning.Add(1)
			j.start(start)
			res, err := s.eng.Run(s.baseCtx, j.req)
			s.jobsRunning.Add(-1)
			canceled := err != nil &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
			j.finish(res, err, canceled, time.Now())
		}
	}
}

// Submit admits one wire request: normalize, fingerprint, coalesce onto
// an existing job or enqueue a new one. The returned bool reports whether
// the submission was served by an existing job (cache hit or in-flight
// coalescing) rather than a fresh execution.
func (s *Server) Submit(wire core.WireRequest) (*Job, bool, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if !s.accepting.Load() {
		return nil, false, errUnavailable{"server is draining"}
	}
	if wire.Runs == 0 {
		wire.Runs = s.cfg.DefaultRuns
	}
	norm, err := wire.Normalize()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}
	if norm.Runs > s.cfg.MaxRuns {
		return nil, false, errBadRequest{fmt.Sprintf("runs %d exceeds the server limit %d", norm.Runs, s.cfg.MaxRuns)}
	}
	req, err := norm.Request()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}
	fp, err := norm.Fingerprint()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}

	// Reserve the admission slot before creating anything: if the queue
	// is at capacity the submission is refused up front, so a created
	// job always reaches the queue and is never retracted (a retraction
	// would race with a duplicate coalescing onto it).
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, false, errUnavailable{"job queue full, retry later"}
	}
	v, created := s.store.GetOrCreate(fp, func() any {
		id := fmt.Sprintf("c-%06d", s.seq.Add(1))
		j := newJob(id, fp, norm, req, time.Now())
		s.jobsMu.Lock()
		s.jobs[id] = j
		s.jobsMu.Unlock()
		return j
	})
	job := v.(*Job)
	if !created {
		<-s.slots // coalesced: nothing was enqueued, free the slot
		return job, true, nil
	}
	// Cannot block: every resident queue entry holds a slot token, and
	// this admission holds one too, so there is room by construction.
	s.queue <- job
	return job, false, nil
}

// JobByID returns a job by its handle.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.jobsMu.RLock()
	defer s.jobsMu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// errBadRequest and errUnavailable map service errors to HTTP statuses.
type errBadRequest struct{ msg string }

func (e errBadRequest) Error() string { return e.msg }

type errUnavailable struct{ msg string }

func (e errUnavailable) Error() string { return e.msg }

// Handler returns the /v1 campaign API plus /healthz and the
// observability endpoints: GET /metrics (Prometheus text format) and
// GET /v1/traces (recent campaign trace spans). Every API route is
// instrumented with per-route latency and request counters; /metrics
// itself is not, so scrapes do not measure themselves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.instrument("/v1/campaigns", s.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.instrument("/v1/campaigns/{id}", s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.instrument("/v1/campaigns/{id}/events", s.handleEvents))
	mux.HandleFunc("GET /v1/policies", s.instrument("/v1/policies", s.handlePolicies))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /v1/kinds", s.instrument("/v1/kinds", s.handleKinds))
	mux.HandleFunc("GET /v1/traces", s.instrument("/v1/traces", s.handleTraces))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.Handle("GET /metrics", s.reg)
	return mux
}

// maxBodyBytes bounds campaign submissions; a full Layout is well under
// 1KB, so 64KB leaves generous headroom.
const maxBodyBytes = 64 << 10

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch err.(type) {
	case errBadRequest:
		status = http.StatusBadRequest
	case errUnavailable:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	wire, err := core.DecodeWireRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, errBadRequest{err.Error()})
		return
	}
	job, coalesced, err := s.Submit(wire)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:          job.ID,
		Fingerprint: job.Fingerprint,
		State:       job.State().String(),
		Cached:      coalesced,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown campaign id"})
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

// handleEvents streams the job's live core.Events as NDJSON, one JSON
// object per line, terminated by a line of kind "end" when the job
// reaches a terminal state (immediately, for an already-finished job).
// The stream also ends when the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown campaign id"})
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	writeLine := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// Subscribe before inspecting state so no completion slips between
	// the check and the subscription.
	ch := job.subscribe()
	defer job.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !writeLine(wireEventOf(ev)) {
				return
			}
		case <-job.Done():
			// Drain whatever the subscription already buffered, then
			// close with the terminal line.
			for {
				select {
				case ev := <-ch:
					if !writeLine(wireEventOf(ev)) {
						return
					}
					continue
				default:
				}
				break
			}
			state, _, _, jerr, _, _ := job.Snapshot()
			end := wireEvent{Kind: "end", Campaign: job.Wire.Label(), State: state.String()}
			if jerr != nil {
				end.Err = jerr.Error()
			}
			writeLine(end)
			return
		}
	}
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	var out []policyJSON
	for _, kind := range placement.Kinds() {
		p, err := placement.New(kind, 128)
		if err != nil {
			continue
		}
		out = append(out, policyJSON{
			Name:       kind.String(),
			Aliases:    placement.Aliases(kind),
			Randomized: p.Randomized(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	repl := cache.ReplacementKinds()
	names := make([]string, len(repl))
	for i, k := range repl {
		names[i] = k.String()
	}
	writeJSON(w, http.StatusOK, kindsJSON{
		Kinds:        core.KindNames(),
		Protocols:    security.ProtocolNames(),
		Replacements: names,
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadJSON
	for _, wl := range workload.All() {
		out = append(out, workloadJSON{Name: wl.Name, Description: wl.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.RLock()
	var queued, running, done, failed, canceled int
	for _, j := range s.jobs {
		switch j.State() {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		case JobCanceled:
			canceled++
		}
	}
	s.jobsMu.RUnlock()
	status := "ok"
	if !s.accepting.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthJSON{
		Status:        status,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.eng.Workers(),
		JobSlots:      s.cfg.Jobs,
		Queue:         queueJSON{Depth: len(s.queue), Capacity: s.cfg.QueueDepth},
		Jobs:          jobCounts{Queued: queued, Running: running, Done: done, Failed: failed, Canceled: canceled},
		Cache:         s.store.Stats(),
	})
}

// handleTraces serves the most recent campaign trace spans, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tracesJSON{
		Total:  s.collector.Tracer().Total(),
		Traces: s.collector.Tracer().Recent(),
	})
}
