package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

// Config sizes the campaign service. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// Workers sizes the shared simulation pool (0 = GOMAXPROCS).
	Workers int
	// Jobs is the number of campaigns executing concurrently (default 2).
	// Simulation parallelism within a campaign comes from Workers; Jobs
	// only bounds how many campaigns contend for that pool at once.
	Jobs int
	// QueueDepth bounds the admitted-but-not-running backlog (default
	// 64). A full queue rejects submissions with 503.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (default 1024
	// entries, LRU-evicted).
	CacheSize int
	// DefaultRuns is applied to submissions that omit runs (default 300).
	DefaultRuns int
	// MaxRuns rejects larger submissions (default 100000).
	MaxRuns int
	// DataDir enables the durable tier: completed results and in-flight
	// checkpoints persist under this directory (see DiskStore for the
	// layout), repeat submissions are served from disk across restarts,
	// and campaigns interrupted by a crash resume from their latest
	// checkpoint on startup. Empty keeps the service memory-only.
	DataDir string
	// CheckpointEvery is the checkpoint cadence in runs for persisted
	// campaigns (default 50). Only meaningful with DataDir.
	CheckpointEvery int
	// FS overrides the filesystem the durable tier runs on (default the
	// real filesystem with durable writes, faultinject.OS). The chaos
	// suite injects storage faults here.
	FS faultinject.FS
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultRuns <= 0 {
		c.DefaultRuns = 300
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 100000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 50
	}
	return c
}

// Server is the campaign service: one shared core.Engine, a bounded job
// queue in front of it, and a content-addressed Store that serves repeat
// submissions in O(1) and coalesces concurrent duplicates onto a single
// execution. Build one with New, mount Handler on an http.Server, and
// Close it to drain.
type Server struct {
	cfg   Config
	eng   *core.Engine
	store *Store
	// disk is the durable tier (nil when Config.DataDir is empty).
	disk *DiskStore

	// Durability counters (see registerMetrics for their wire names).
	ckptWrites      atomic.Uint64
	ckptResumes     atomic.Uint64
	ckptCorruptions atomic.Uint64

	baseCtx context.Context
	cancel  context.CancelFunc

	queue chan *Job
	// slots is the admission semaphore: a token is reserved before a job
	// may be created and held until a worker pops it from the queue (or
	// released on coalescing), so a queue send can never block and an
	// admission never has to be undone -- the fix for the classic
	// "create, fail to enqueue, delete while someone coalesced" race.
	slots chan struct{}
	wg    sync.WaitGroup

	// closeMu serializes admissions against Close: Submit holds the read
	// side for its whole admission, Close takes the write side to flip
	// accepting, so no submission can slip a job into the queue after
	// Close has drained it.
	closeMu sync.RWMutex

	jobsMu sync.RWMutex
	jobs   map[string]*Job // by Job.ID

	seq       atomic.Uint64
	accepting atomic.Bool
	started   time.Time

	// Observability: one registry per server, an engine collector feeding
	// it (and the trace ring), and the service-level instruments.
	reg         *obs.Registry
	collector   *obs.EngineCollector
	queueWait   *obs.Histogram
	jobsRunning *obs.Gauge
}

// New builds the service and starts its job workers. The caller owns the
// HTTP listener; Close drains the service. With Config.DataDir set it
// also opens the durable store (the only error source) and resubmits
// every campaign that left a checkpoint behind, so a crashed server
// resumes its interrupted work on restart.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.QueueDepth),
		started: time.Now(),
	}
	if cfg.DataDir != "" {
		disk, err := OpenDiskStore(cfg.FS, cfg.DataDir)
		if err != nil {
			return nil, fmt.Errorf("service: opening data dir: %w", err)
		}
		s.disk = disk
	}
	//rm:ctxroot server lifecycle root: jobs outlive the submitting request; Close cancels it on drain
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	// Lock order: store shard -> jobsMu (canEvict/onEvict run under the
	// shard lock); nothing acquires them the other way around.
	s.store = NewStore(cfg.CacheSize,
		func(v any) bool {
			st := v.(*Job).State()
			return st == JobDone || st == JobFailed || st == JobCanceled
		},
		func(_ string, v any) {
			j := v.(*Job)
			s.jobsMu.Lock()
			delete(s.jobs, j.ID)
			s.jobsMu.Unlock()
		})
	s.reg = obs.NewRegistry()
	s.collector = obs.NewEngineCollector(s.reg, nil)
	// Campaigns execute under their fingerprint as campaign name; resolve
	// trace spans back to the submitted display label, and keep the
	// fingerprint prefix on the span for store lookups.
	s.collector.Resolve = func(fp string) (string, string) {
		if v, ok := s.store.Peek(fp); ok {
			return v.(*Job).Wire.Label(), fp
		}
		return "", fp
	}
	s.eng = core.NewEngine(core.WithWorkers(cfg.Workers), core.WithEvents(s.collector.Sink(s.route)))
	obs.RegisterPool(s.reg, s.eng.Pool())
	s.registerMetrics()
	s.accepting.Store(true)
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.disk != nil {
		s.recoverFromDisk()
	}
	return s, nil
}

// recoverFromDisk resubmits every campaign that left a checkpoint behind
// (i.e. was interrupted mid-run by a crash). Each goes through the normal
// Submit path, which re-reads the checkpoint and attaches it as the
// resume point; a checkpoint whose stored request no longer parses is
// quarantined. Recovery is best effort: a full queue just leaves the
// checkpoint in place for the next restart.
func (s *Server) recoverFromDisk() {
	for _, fp := range s.disk.Checkpoints() {
		payload, ok := s.disk.GetCheckpoint(fp)
		if !ok {
			continue // corrupt: get already quarantined it
		}
		var pc persistedCheckpoint
		if err := json.Unmarshal(payload, &pc); err != nil {
			s.ckptCorruptions.Add(1)
			s.disk.QuarantineCheckpoint(fp)
			continue
		}
		_, _, _ = s.Submit(pc.Wire)
	}
}

// Engine exposes the shared engine (tests; embedding the service).
func (s *Server) Engine() *core.Engine { return s.eng }

// Store exposes the result cache (health reporting, tests).
func (s *Server) Store() *Store { return s.store }

// Disk exposes the durable tier (nil when DataDir is unset).
func (s *Server) Disk() *DiskStore { return s.disk }

// Registry exposes the server's metric registry, so embedders (rmserved)
// can add their own instruments next to the service ones.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops admissions, cancels in-flight campaigns via context, marks
// the queued backlog canceled, and waits for the job workers. Safe to
// call once the HTTP listener is shut down (or concurrently with it:
// late submissions get 503).
func (s *Server) Close() {
	// The write lock waits out any Submit in flight, so after the flip no
	// new job can reach the queue.
	s.closeMu.Lock()
	s.accepting.Store(false)
	s.closeMu.Unlock()
	s.cancel()
	s.wg.Wait()
	// Workers are gone; whatever is still queued will never start.
	for {
		select {
		case j := <-s.queue:
			j.finish(core.Result{}, errors.New("service: server shut down before the campaign started"), true, time.Now())
		default:
			return
		}
	}
}

// route is the Engine event sink: requests execute under their
// fingerprint as campaign name (unique among in-flight jobs by
// singleflight), so events map back to exactly one job.
func (s *Server) route(ev core.Event) {
	if v, ok := s.store.Peek(ev.Campaign); ok {
		v.(*Job).publish(ev)
	}
}

// worker executes queued jobs on the shared engine until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			<-s.slots // the job left the queue; free its admission slot
			start := time.Now()
			s.queueWait.Observe(start.Sub(j.Submitted).Nanoseconds())
			s.jobsRunning.Add(1)
			j.start(start)
			res, err := s.runJob(j)
			s.jobsRunning.Add(-1)
			canceled := err != nil &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
			j.finish(res, err, canceled, time.Now())
			if s.disk != nil {
				s.persistOutcome(j, err, canceled)
			}
		}
	}
}

// runJob executes one campaign on the shared engine. With the durable
// tier enabled it also streams checkpoints to disk while the campaign
// runs: the engine hands each captured frontier to a buffered latest-wins
// channel, and a dedicated writer goroutine persists them off the
// simulation's critical path (a slow disk delays durability, never the
// campaign).
func (s *Server) runJob(j *Job) (core.Result, error) {
	req := j.req
	if s.disk == nil {
		return s.eng.Run(s.baseCtx, req)
	}
	ckpts := make(chan *core.Checkpoint, 1)
	req.CheckpointEvery = s.cfg.CheckpointEvery
	req.OnCheckpoint = func(cp *core.Checkpoint) {
		for {
			select {
			case ckpts <- cp:
				return
			default:
				// Writer is behind: drop the stale pending frontier.
				select {
				case <-ckpts:
				default:
				}
			}
		}
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for cp := range ckpts {
			s.writeCheckpoint(j, cp)
		}
	}()
	res, err := s.eng.Run(s.baseCtx, req)
	// Run has returned, so no more OnCheckpoint calls can happen: the
	// engine invokes it synchronously from inside Run.
	close(ckpts)
	<-writerDone
	return res, err
}

// writeCheckpoint persists one captured frontier. Panics (the fault
// injector's worker-panic mode, or anything unexpected in the codec) are
// contained here and counted as a failed write — a checkpoint is an
// optimization, so losing one must never take the campaign down.
func (s *Server) writeCheckpoint(j *Job, cp *core.Checkpoint) {
	defer func() {
		if recover() != nil {
			s.disk.writeErrors.Add(1)
		}
	}()
	payload, err := json.Marshal(persistedCheckpoint{Wire: j.Wire, Checkpoint: cp.Encode()})
	if err != nil {
		return
	}
	if s.disk.PutCheckpoint(j.Fingerprint, payload) == nil {
		s.ckptWrites.Add(1)
	}
}

// persistOutcome records a finished campaign in the durable tier: a
// success persists the result and retires the checkpoint; a hard failure
// retires the checkpoint (the failure is deterministic, resuming would
// only fail again); a cancellation keeps the checkpoint so the campaign
// resumes after restart. Runs in the job worker after finish, so the
// submitter never waits on the disk.
func (s *Server) persistOutcome(j *Job, err error, canceled bool) {
	defer func() {
		if recover() != nil {
			s.disk.writeErrors.Add(1)
		}
	}()
	switch {
	case err == nil:
		_, _, res, _, _, _ := j.Snapshot()
		payload, merr := json.Marshal(persistedResult{
			Wire:     j.Wire,
			Result:   resultOf(res),
			Snapshot: snapshotOf(j.Progress()),
		})
		if merr == nil && s.disk.PutResult(j.Fingerprint, payload) == nil {
			s.disk.DeleteCheckpoint(j.Fingerprint)
		}
	case canceled:
		// Keep the checkpoint: this campaign resumes on restart.
	default:
		s.disk.DeleteCheckpoint(j.Fingerprint)
	}
}

// Submit admits one wire request: normalize, fingerprint, coalesce onto
// an existing job or enqueue a new one. The returned bool reports whether
// the submission was served by an existing job (cache hit or in-flight
// coalescing) rather than a fresh execution.
func (s *Server) Submit(wire core.WireRequest) (*Job, bool, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if !s.accepting.Load() {
		return nil, false, errUnavailable{"server is draining"}
	}
	if wire.Runs == 0 {
		wire.Runs = s.cfg.DefaultRuns
	}
	norm, err := wire.Normalize()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}
	if norm.Runs > s.cfg.MaxRuns {
		return nil, false, errBadRequest{fmt.Sprintf("runs %d exceeds the server limit %d", norm.Runs, s.cfg.MaxRuns)}
	}
	req, err := norm.Request()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}
	fp, err := norm.Fingerprint()
	if err != nil {
		return nil, false, errBadRequest{err.Error()}
	}

	// Reserve the admission slot before creating anything: if the queue
	// is at capacity the submission is refused up front, so a created
	// job always reaches the queue and is never retracted (a retraction
	// would race with a duplicate coalescing onto it).
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, false, errBusy{"job queue full, retry later"}
	}
	v, created := s.store.GetOrCreate(fp, func() any {
		id := fmt.Sprintf("c-%06d", s.seq.Add(1))
		j := newJob(id, fp, norm, req, time.Now())
		s.jobsMu.Lock()
		s.jobs[id] = j
		s.jobsMu.Unlock()
		return j
	})
	job := v.(*Job)
	if !created {
		<-s.slots // coalesced: nothing was enqueued, free the slot
		return job, true, nil
	}
	if s.disk != nil && s.attachDiskState(job) {
		<-s.slots // served from disk: nothing to enqueue
		return job, true, nil
	}
	// Cannot block: every resident queue entry holds a slot token, and
	// this admission holds one too, so there is room by construction.
	s.queue <- job
	return job, false, nil
}

// attachDiskState consults the durable tier for a freshly created job.
// A persisted result finishes the job immediately (true: nothing to
// execute); a persisted checkpoint that still validates against the
// request is attached as the resume point. Anything corrupt is
// quarantined and the campaign recomputes from scratch — disk damage
// degrades to work, never to a wrong or missing answer.
func (s *Server) attachDiskState(j *Job) bool {
	if payload, ok := s.disk.GetResult(j.Fingerprint); ok {
		var pr persistedResult
		if err := json.Unmarshal(payload, &pr); err == nil && pr.Result != nil {
			j.finishFromDisk(&pr, time.Now())
			return true
		}
		s.ckptCorruptions.Add(1)
		s.disk.quarantine(diskResultsDir, j.Fingerprint+diskResultExt)
	}
	if payload, ok := s.disk.GetCheckpoint(j.Fingerprint); ok {
		quarantine := func() {
			s.ckptCorruptions.Add(1)
			s.disk.QuarantineCheckpoint(j.Fingerprint)
		}
		var pc persistedCheckpoint
		if err := json.Unmarshal(payload, &pc); err != nil {
			quarantine()
			return false
		}
		cp, err := core.DecodeCheckpoint(pc.Checkpoint)
		if err != nil {
			quarantine()
			return false
		}
		if err := cp.Validate(j.req); err != nil {
			// Valid blob, wrong campaign: a fingerprint collision is
			// content-addressing breakage, so treat it as corruption.
			quarantine()
			return false
		}
		j.req.Resume = cp
		s.ckptResumes.Add(1)
	}
	return false
}

// JobByID returns a job by its handle.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.jobsMu.RLock()
	defer s.jobsMu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// errBadRequest, errUnavailable and errBusy map service errors to HTTP
// statuses: 400, 503, and 429 with a Retry-After hint respectively. A
// full queue is errBusy — transient pressure the client should back off
// and retry — while a draining server is errUnavailable, since retrying
// against the same instance is pointless.
type errBadRequest struct{ msg string }

func (e errBadRequest) Error() string { return e.msg }

type errUnavailable struct{ msg string }

func (e errUnavailable) Error() string { return e.msg }

type errBusy struct{ msg string }

func (e errBusy) Error() string { return e.msg }

// retryAfterSeconds is the backoff hint on 429 responses.
const retryAfterSeconds = 1

// Handler returns the /v1 campaign API plus /healthz and the
// observability endpoints: GET /metrics (Prometheus text format) and
// GET /v1/traces (recent campaign trace spans). Every API route is
// instrumented with per-route latency and request counters; /metrics
// itself is not, so scrapes do not measure themselves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.instrument("/v1/campaigns", s.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.instrument("/v1/campaigns/{id}", s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.instrument("/v1/campaigns/{id}/events", s.handleEvents))
	mux.HandleFunc("GET /v1/policies", s.instrument("/v1/policies", s.handlePolicies))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /v1/kinds", s.instrument("/v1/kinds", s.handleKinds))
	mux.HandleFunc("GET /v1/traces", s.instrument("/v1/traces", s.handleTraces))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.Handle("GET /metrics", s.reg)
	return mux
}

// maxBodyBytes bounds campaign submissions; a full Layout is well under
// 1KB, so 64KB leaves generous headroom.
const maxBodyBytes = 64 << 10

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch err.(type) {
	case errBadRequest:
		status = http.StatusBadRequest
	case errUnavailable:
		status = http.StatusServiceUnavailable
	case errBusy:
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	wire, err := core.DecodeWireRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, errBadRequest{err.Error()})
		return
	}
	job, coalesced, err := s.Submit(wire)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:          job.ID,
		Fingerprint: job.Fingerprint,
		State:       job.State().String(),
		Cached:      coalesced,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown campaign id"})
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

// handleEvents streams the job's live core.Events as NDJSON, one JSON
// object per line, terminated by a line of kind "end" when the job
// reaches a terminal state (immediately, for an already-finished job).
// The stream also ends when the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown campaign id"})
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	writeLine := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// Subscribe before inspecting state so no completion slips between
	// the check and the subscription.
	ch := job.subscribe()
	defer job.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !writeLine(wireEventOf(ev)) {
				return
			}
		case <-job.Done():
			// Drain whatever the subscription already buffered, then
			// close with the terminal line.
			for {
				select {
				case ev := <-ch:
					if !writeLine(wireEventOf(ev)) {
						return
					}
					continue
				default:
				}
				break
			}
			state, _, _, jerr, _, _ := job.Snapshot()
			end := wireEvent{Kind: "end", Campaign: job.Wire.Label(), State: state.String()}
			if jerr != nil {
				end.Err = jerr.Error()
			}
			writeLine(end)
			return
		}
	}
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	var out []policyJSON
	for _, kind := range placement.Kinds() {
		p, err := placement.New(kind, 128)
		if err != nil {
			continue
		}
		out = append(out, policyJSON{
			Name:       kind.String(),
			Aliases:    placement.Aliases(kind),
			Randomized: p.Randomized(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	repl := cache.ReplacementKinds()
	names := make([]string, len(repl))
	for i, k := range repl {
		names[i] = k.String()
	}
	writeJSON(w, http.StatusOK, kindsJSON{
		Kinds:        core.KindNames(),
		Protocols:    security.ProtocolNames(),
		Replacements: names,
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadJSON
	for _, wl := range workload.All() {
		out = append(out, workloadJSON{Name: wl.Name, Description: wl.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.RLock()
	var queued, running, done, failed, canceled int
	for _, j := range s.jobs {
		switch j.State() {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		case JobCanceled:
			canceled++
		}
	}
	s.jobsMu.RUnlock()
	status := "ok"
	if !s.accepting.Load() {
		status = "draining"
	}
	out := healthJSON{
		Status:        status,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.eng.Workers(),
		JobSlots:      s.cfg.Jobs,
		Queue:         queueJSON{Depth: len(s.queue), Capacity: s.cfg.QueueDepth},
		Jobs:          jobCounts{Queued: queued, Running: running, Done: done, Failed: failed, Canceled: canceled},
		Cache:         s.store.Stats(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		out.Disk = &ds
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraces serves the most recent campaign trace spans, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tracesJSON{
		Total:  s.collector.Tracer().Total(),
		Traces: s.collector.Tracer().Recent(),
	})
}
