package service

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/faultinject"
)

// DiskStore is the durable tier behind the in-memory result Store: a
// content-addressed blob store keyed by campaign fingerprint. Completed
// results and in-flight checkpoints live in separate namespaces:
//
//	<root>/results/<fingerprint>.rmr     completed campaign results
//	<root>/checkpoints/<fingerprint>.rmc latest checkpoint of an unfinished campaign
//	<root>/quarantine/                   corrupt entries, moved aside for inspection
//
// Every blob is wrapped in an envelope (an 8-byte magic plus a SHA-256
// over the payload) and writes are crash-atomic: the envelope is written
// to a temp file, fsynced, then renamed into place, so a reader only ever
// sees either the previous blob or the complete new one. A read that
// fails the envelope check (torn write that raced a crash, bit rot,
// truncation) quarantines the entry and reports a miss, so corruption
// degrades to recomputation, never to a wrong answer.
//
// All filesystem access goes through a faultinject.FS, which is how the
// chaos suite drives I/O errors, torn writes, and delays through the
// exact production code paths.
type DiskStore struct {
	fs   faultinject.FS
	root string

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	quarantines atomic.Uint64
}

// Namespaces and extensions of the on-disk layout.
const (
	diskResultsDir     = "results"
	diskCheckpointsDir = "checkpoints"
	diskQuarantineDir  = "quarantine"
	diskResultExt      = ".rmr"
	diskCheckpointExt  = ".rmc"
)

// envMagic versions the blob envelope; bump the digit when the envelope
// layout changes so stale files quarantine instead of misparsing.
const envMagic = "RMBLOB1\n"

// envelope wraps payload as magic + SHA-256(payload) + payload.
func envelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(envMagic)+len(sum)+len(payload))
	out = append(out, envMagic...)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

// errEnvelope reports a blob that failed the envelope check.
var errEnvelope = errors.New("service: corrupt blob envelope")

// unenvelope verifies the magic and checksum and returns the payload.
func unenvelope(b []byte) ([]byte, error) {
	if len(b) < len(envMagic)+sha256.Size || string(b[:len(envMagic)]) != envMagic {
		return nil, errEnvelope
	}
	want := b[len(envMagic) : len(envMagic)+sha256.Size]
	payload := b[len(envMagic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(want, sum[:]) != 1 {
		return nil, errEnvelope
	}
	return payload, nil
}

// DiskStats is a point-in-time snapshot of the store's counters.
type DiskStats struct {
	// Hits counts reads that returned a verified payload.
	Hits uint64 `json:"hits"`
	// Misses counts reads that found nothing usable (absent or corrupt).
	Misses uint64 `json:"misses"`
	// Writes counts completed (written, synced, renamed) blob writes.
	Writes uint64 `json:"writes"`
	// WriteErrors counts writes that failed before the rename landed.
	WriteErrors uint64 `json:"write_errors"`
	// Quarantines counts corrupt entries moved to the quarantine dir.
	Quarantines uint64 `json:"quarantines"`
}

// OpenDiskStore opens (creating if needed) a durable store rooted at dir.
func OpenDiskStore(fsys faultinject.FS, dir string) (*DiskStore, error) {
	if fsys == nil {
		fsys = faultinject.OS{}
	}
	d := &DiskStore{fs: fsys, root: dir}
	for _, sub := range []string{diskResultsDir, diskCheckpointsDir, diskQuarantineDir} {
		if err := fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Stats snapshots the counters.
func (d *DiskStore) Stats() DiskStats {
	return DiskStats{
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Writes:      d.writes.Load(),
		WriteErrors: d.writeErrors.Load(),
		Quarantines: d.quarantines.Load(),
	}
}

// GetResult returns the persisted result payload for a fingerprint.
func (d *DiskStore) GetResult(fp string) ([]byte, bool) {
	return d.get(diskResultsDir, fp+diskResultExt)
}

// PutResult durably stores the result payload for a fingerprint.
func (d *DiskStore) PutResult(fp string, payload []byte) error {
	return d.put(diskResultsDir, fp+diskResultExt, payload)
}

// GetCheckpoint returns the persisted checkpoint payload for a
// fingerprint.
func (d *DiskStore) GetCheckpoint(fp string) ([]byte, bool) {
	return d.get(diskCheckpointsDir, fp+diskCheckpointExt)
}

// PutCheckpoint durably stores the latest checkpoint for a fingerprint,
// replacing any previous one.
func (d *DiskStore) PutCheckpoint(fp string, payload []byte) error {
	return d.put(diskCheckpointsDir, fp+diskCheckpointExt, payload)
}

// DeleteCheckpoint removes a fingerprint's checkpoint (no-op if absent).
func (d *DiskStore) DeleteCheckpoint(fp string) {
	_ = d.fs.Remove(filepath.Join(d.root, diskCheckpointsDir, fp+diskCheckpointExt))
}

// QuarantineCheckpoint moves a fingerprint's checkpoint aside as corrupt
// (for damage the envelope cannot see, e.g. a payload that fails
// core.DecodeCheckpoint or no longer validates against its request).
func (d *DiskStore) QuarantineCheckpoint(fp string) {
	d.quarantine(diskCheckpointsDir, fp+diskCheckpointExt)
}

// Checkpoints lists the fingerprints with a stored checkpoint — the
// campaigns a restarting server should resubmit.
func (d *DiskStore) Checkpoints() []string {
	ents, err := d.fs.ReadDir(filepath.Join(d.root, diskCheckpointsDir))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, diskCheckpointExt) {
			continue // stray temp files from a crash mid-write
		}
		out = append(out, strings.TrimSuffix(name, diskCheckpointExt))
	}
	return out
}

// get reads and verifies one blob; corrupt entries are quarantined and
// reported as misses.
func (d *DiskStore) get(dir, name string) ([]byte, bool) {
	b, err := d.fs.ReadFile(filepath.Join(d.root, dir, name))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	payload, err := unenvelope(b)
	if err != nil {
		d.quarantine(dir, name)
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// put writes one blob crash-atomically: temp file (written and fsynced by
// the FS), then rename into place.
func (d *DiskStore) put(dir, name string, payload []byte) error {
	final := filepath.Join(d.root, dir, name)
	tmp := final + ".tmp"
	if err := d.fs.WriteFile(tmp, envelope(payload), 0o644); err != nil {
		d.writeErrors.Add(1)
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		d.writeErrors.Add(1)
		_ = d.fs.Remove(tmp)
		return err
	}
	d.writes.Add(1)
	return nil
}

// quarantine moves a corrupt entry aside (falling back to deletion if the
// move fails) so the slot frees for recomputation and the bad bytes stay
// inspectable.
func (d *DiskStore) quarantine(dir, name string) {
	d.quarantines.Add(1)
	dst := filepath.Join(d.root, diskQuarantineDir, dir+"-"+name)
	if err := d.fs.Rename(filepath.Join(d.root, dir, name), dst); err != nil {
		_ = d.fs.Remove(filepath.Join(d.root, dir, name))
	}
}
