// Checkpoint capture and the versioned wire codec for crash-safe
// campaigns. A Checkpoint is the streaming frontier of a campaign — the
// contiguous covered-run prefix plus every merged accumulator — captured
// each time the frontier advances far enough (Request.CheckpointEvery /
// Request.OnCheckpoint) and restored through Request.Resume. Because the
// frontier only ever covers a canonical run prefix and every per-run seed
// derives from (MasterSeed, run index), resuming from a checkpoint is
// bit-identical to never having been interrupted, for any worker count on
// either side of the crash.
//
// Wire format (version 1): an 8-byte magic, a little-endian binary
// payload, and a trailing SHA-256 checksum over magic+payload. The codec
// is deliberately independent of encoding/gob and reflection: the layout
// is part of the resilience contract documented in README "Resilience",
// and a stored checkpoint either decodes exactly or fails loudly as
// *CorruptCheckpointError (never a partial restore).
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/evt"
	"repro/internal/iid"
	"repro/internal/security"
	"repro/internal/stats"
)

// checkpointMagic versions the blob; bump the digit when the payload
// layout changes so stale checkpoints fail decode instead of silently
// misparsing.
const checkpointMagic = "RMCKPT1\n"

// checksumLen is the length of the trailing SHA-256.
const checksumLen = sha256.Size

// CorruptCheckpointError reports a checkpoint blob that failed the
// checksum, carried a wrong magic/version, or was structurally invalid.
// Callers treat it as "this checkpoint is unusable, start from run 0"
// (the service additionally quarantines the backing file).
type CorruptCheckpointError struct{ Reason string }

func (e *CorruptCheckpointError) Error() string {
	return "core: corrupt checkpoint: " + e.Reason
}

// ResumeMismatchError reports a structurally valid checkpoint that
// belongs to a different campaign than the Request it was attached to
// (the named field differs). Resuming would silently splice two
// campaigns, so the Runner rejects it before the first run.
type ResumeMismatchError struct{ Field string }

func (e *ResumeMismatchError) Error() string {
	return "core: checkpoint does not match request: " + e.Field
}

// Checkpoint is the resumable state of a campaign at a streaming
// frontier: runs [0, Frontier) are fully accumulated, runs [Frontier,
// Runs) have not happened as far as the restored campaign is concerned
// (work past the frontier at capture time is simply redone — it is a pure
// function of the run index, so redoing it is invisible in the result).
//
// Timing campaigns carry the merged Moments/Sketch/BlockMax accumulators,
// the IID admissibility window prefix, the summed per-level cache
// counters and (for KeepTimes campaigns) the measurement-vector prefix.
// Security campaigns carry the per-round outputs instead; everything else
// derives from them at completion.
type Checkpoint struct {
	Kind       Kind
	MasterSeed uint64
	Runs       int
	KeepTimes  TimesMode
	Frontier   int

	// Timing-campaign accumulators (zero/nil for security campaigns).
	Window  []float64 // admissibility prefix: min(Frontier, iid.Window) values
	Moments stats.Moments
	Sketch  stats.QuantileSketch
	Maxima  *stats.BlockMax
	BadRun  int // lowest invalid-measurement run (-1: none)
	BadVal  float64
	Levels  LevelStats
	Times   []float64 // [0:Frontier] when KeepTimes keeps the vector

	// Security-campaign state: per-round outputs [0:Frontier].
	Rounds []security.RoundOut
}

// Validate checks that the checkpoint resumes exactly the given request
// and is internally consistent, without running anything: the check the
// Runner applies to Request.Resume, exposed so stores can vet a recovered
// checkpoint before attaching it (and quarantine it instead of failing
// the campaign). Field mismatches return *ResumeMismatchError; structural
// damage returns *CorruptCheckpointError.
func (cp *Checkpoint) Validate(req Request) error { return cp.validate(req) }

// validate checks that the checkpoint resumes exactly the given request
// and is internally consistent. Field mismatches return
// *ResumeMismatchError; structural damage returns
// *CorruptCheckpointError.
func (cp *Checkpoint) validate(req Request) error {
	if cp.Kind != req.Kind() {
		return &ResumeMismatchError{Field: "kind"}
	}
	if cp.MasterSeed != req.MasterSeed {
		return &ResumeMismatchError{Field: "master_seed"}
	}
	if cp.Runs != req.Runs {
		return &ResumeMismatchError{Field: "runs"}
	}
	if cp.KeepTimes != req.KeepTimes {
		return &ResumeMismatchError{Field: "keep_times"}
	}
	return cp.check()
}

// check verifies internal consistency independent of any request.
func (cp *Checkpoint) check() error {
	bad := func(format string, args ...any) error {
		return &CorruptCheckpointError{Reason: fmt.Sprintf(format, args...)}
	}
	if cp.Runs < 1 {
		return bad("runs %d", cp.Runs)
	}
	if cp.Frontier < 0 || cp.Frontier > cp.Runs {
		return bad("frontier %d outside [0, %d]", cp.Frontier, cp.Runs)
	}
	if cp.Kind == KindSecurity {
		if len(cp.Rounds) != cp.Frontier {
			return bad("%d rounds for frontier %d", len(cp.Rounds), cp.Frontier)
		}
		if cp.Maxima != nil || len(cp.Window) != 0 || len(cp.Times) != 0 {
			return bad("security checkpoint carries timing accumulators")
		}
		return nil
	}
	if len(cp.Rounds) != 0 {
		return bad("timing checkpoint carries security rounds")
	}
	wantWin := min(cp.Frontier, min(cp.Runs, iid.Window))
	if len(cp.Window) != wantWin {
		return bad("window %d for frontier %d (want %d)", len(cp.Window), cp.Frontier, wantWin)
	}
	block := evt.BlockFor(cp.Runs)
	if cp.Maxima == nil || cp.Maxima.Block != block || cp.Maxima.First != 0 {
		return bad("block maxima missing or block size mismatch")
	}
	if len(cp.Maxima.Max) != cp.Runs/block {
		return bad("%d block maxima for %d runs (want %d)", len(cp.Maxima.Max), cp.Runs, cp.Runs/block)
	}
	if cp.KeepTimes == TimesKeep {
		if len(cp.Times) != cp.Frontier {
			return bad("%d times for frontier %d", len(cp.Times), cp.Frontier)
		}
	} else if len(cp.Times) != 0 {
		return bad("keep_times:false checkpoint carries times")
	}
	if cp.BadRun < -1 || cp.BadRun >= cp.Runs {
		return bad("bad-run index %d", cp.BadRun)
	}
	return nil
}

// Encode serializes the checkpoint into the versioned, checksummed wire
// form. The blob is self-contained: DecodeCheckpoint(cp.Encode()) on any
// process reproduces cp exactly.
func (cp *Checkpoint) Encode() []byte {
	b := make([]byte, 0, cp.encodedSizeHint())
	b = append(b, checkpointMagic...)
	b = append(b, byte(cp.Kind))
	b = binary.LittleEndian.AppendUint64(b, cp.MasterSeed)
	b = binary.AppendUvarint(b, uint64(cp.Runs))
	b = append(b, byte(cp.KeepTimes))
	b = binary.AppendUvarint(b, uint64(cp.Frontier))

	// Timing accumulators.
	b = appendFloats(b, cp.Window)
	mean, m2 := cp.Moments.Welford()
	b = binary.AppendUvarint(b, uint64(cp.Moments.N))
	for _, f := range [...]float64{cp.Moments.Sum, cp.Moments.Min, cp.Moments.Max, mean, m2} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	b = binary.AppendUvarint(b, uint64(cp.Sketch.N))
	nz := 0
	for _, c := range cp.Sketch.Buckets {
		if c != 0 {
			nz++
		}
	}
	b = binary.AppendUvarint(b, uint64(nz))
	for i, c := range cp.Sketch.Buckets {
		if c != 0 {
			b = binary.AppendUvarint(b, uint64(i))
			b = binary.AppendUvarint(b, uint64(c))
		}
	}
	if cp.Maxima == nil {
		b = binary.AppendUvarint(b, 0)
	} else {
		// Only blocks the frontier touched carry information; the decoder
		// refills the tail with -Inf.
		touched := 0
		if cp.Frontier > 0 {
			touched = min((cp.Frontier-1)/cp.Maxima.Block+1, len(cp.Maxima.Max))
		}
		b = binary.AppendUvarint(b, uint64(cp.Maxima.Block))
		b = binary.AppendUvarint(b, uint64(len(cp.Maxima.Max)))
		b = appendFloats(b, cp.Maxima.Max[:touched])
	}
	b = binary.AppendUvarint(b, uint64(cp.BadRun+1))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(cp.BadVal))
	b = appendCacheStats(b, cp.Levels.IL1)
	b = appendCacheStats(b, cp.Levels.DL1)
	b = appendCacheStats(b, cp.Levels.L2)
	b = appendFloats(b, cp.Times)

	// Security rounds.
	b = binary.AppendUvarint(b, uint64(len(cp.Rounds)))
	for i := range cp.Rounds {
		o := &cp.Rounds[i]
		for _, f := range o.Succ {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
		for _, f := range o.Acc {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
		flags := byte(0)
		if o.Constructed {
			flags = 1
		}
		b = append(b, flags, o.Bit)
		b = binary.LittleEndian.AppendUint32(b, o.Miss)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(o.Accesses))
	}

	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

func (cp *Checkpoint) encodedSizeHint() int {
	n := 256 + 8*(len(cp.Window)+len(cp.Times)) + 10*len(cp.Sketch.Buckets)/8
	if cp.Maxima != nil {
		n += 8 * len(cp.Maxima.Max)
	}
	n += len(cp.Rounds) * (16*8 + 16)
	return n
}

// DecodeCheckpoint parses and verifies a checkpoint blob. Damage of any
// kind — truncation, bit flips, a wrong magic, out-of-range fields —
// returns *CorruptCheckpointError; a successfully decoded checkpoint is
// internally consistent (but not yet matched against a Request; the
// Runner does that on resume).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	corrupt := func(format string, args ...any) (*Checkpoint, error) {
		return nil, &CorruptCheckpointError{Reason: fmt.Sprintf(format, args...)}
	}
	if len(b) < len(checkpointMagic)+checksumLen {
		return corrupt("truncated (%d bytes)", len(b))
	}
	if string(b[:len(checkpointMagic)]) != checkpointMagic {
		return corrupt("bad magic")
	}
	body, sum := b[:len(b)-checksumLen], b[len(b)-checksumLen:]
	if sha256.Sum256(body) != [checksumLen]byte(sum) {
		return corrupt("checksum mismatch")
	}

	d := &ckptReader{b: body[len(checkpointMagic):]}
	cp := &Checkpoint{}
	cp.Kind = Kind(d.u8())
	cp.MasterSeed = d.u64()
	cp.Runs = d.count(1 << 31)
	cp.KeepTimes = TimesMode(d.u8())
	cp.Frontier = d.count(1 << 31)
	if d.err != nil || cp.Runs < 1 || cp.Frontier > cp.Runs {
		return corrupt("bad header")
	}

	cp.Window = d.floats(min(cp.Runs, iid.Window))
	cp.Moments.N = int64(d.uvarint())
	cp.Moments.Sum = d.f64()
	cp.Moments.Min = d.f64()
	cp.Moments.Max = d.f64()
	cp.Moments.SetWelford(d.f64(), d.f64())
	cp.Sketch.N = int64(d.uvarint())
	nz := d.count(len(cp.Sketch.Buckets))
	for i := 0; i < nz && d.err == nil; i++ {
		idx := d.count(len(cp.Sketch.Buckets) - 1)
		cp.Sketch.Buckets[idx] = int64(d.uvarint())
	}
	if block := d.count(1 << 31); block > 0 && d.err == nil {
		total := d.count(cp.Runs)
		touched := 0
		if cp.Frontier > 0 {
			touched = min((cp.Frontier-1)/block+1, total)
		}
		pre := d.floats(touched)
		if d.err == nil {
			cp.Maxima = stats.NewBlockMax(block, 0, total)
			copy(cp.Maxima.Max, pre)
		}
	}
	cp.BadRun = d.count(cp.Runs+1) - 1
	cp.BadVal = d.f64()
	cp.Levels.IL1 = d.cacheStats()
	cp.Levels.DL1 = d.cacheStats()
	cp.Levels.L2 = d.cacheStats()
	cp.Times = d.floats(cp.Runs)

	nr := d.count(cp.Frontier)
	if nr > 0 && d.err == nil {
		cp.Rounds = make([]security.RoundOut, nr)
		for i := range cp.Rounds {
			o := &cp.Rounds[i]
			for j := range o.Succ {
				o.Succ[j] = d.f64()
			}
			for j := range o.Acc {
				o.Acc[j] = d.f64()
			}
			o.Constructed = d.u8() != 0
			o.Bit = d.u8()
			o.Miss = d.u32()
			o.Accesses = d.f64()
		}
	}
	if d.err != nil {
		return corrupt("%v", d.err)
	}
	if len(d.b) != 0 {
		return corrupt("%d trailing bytes", len(d.b))
	}
	if err := cp.check(); err != nil {
		return nil, err
	}
	return cp, nil
}

// appendFloats writes a length-prefixed float64 slice.
func appendFloats(b []byte, fs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// appendCacheStats writes one level's counters.
func appendCacheStats(b []byte, s cache.Stats) []byte {
	for _, v := range [...]uint64{s.Accesses, s.Hits, s.Misses, s.Evictions, s.Writebacks, s.Flushes} {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// ckptReader is a bounds-checked little-endian reader: the first overrun
// or out-of-range count latches err and every later read returns zero, so
// decode logic stays linear with one error check at the end.
type ckptReader struct {
	b   []byte
	err error
}

func (d *ckptReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *ckptReader) take(n int) []byte {
	if d.err != nil || len(d.b) < n {
		d.fail("truncated payload")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *ckptReader) u8() byte {
	if v := d.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (d *ckptReader) u32() uint32 {
	if v := d.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (d *ckptReader) u64() uint64 {
	if v := d.take(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

func (d *ckptReader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *ckptReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a non-negative count and bounds it (corrupt counts must not
// drive allocations).
func (d *ckptReader) count(max int) int {
	v := d.uvarint()
	if v > uint64(max) {
		d.fail("count %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

func (d *ckptReader) cacheStats() cache.Stats {
	var s cache.Stats
	for _, c := range [...]*uint64{&s.Accesses, &s.Hits, &s.Misses, &s.Evictions, &s.Writebacks, &s.Flushes} {
		*c = d.uvarint()
	}
	return s
}

// floats reads a length-prefixed float64 slice of at most max entries
// (nil when empty, matching the encoder's treatment of nil slices).
func (d *ckptReader) floats(max int) []float64 {
	n := d.count(max)
	if n == 0 || d.err != nil {
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = d.f64()
	}
	if d.err != nil {
		return nil
	}
	return fs
}
