// Package core assembles the paper's system: MBPTA-compliant platforms
// built around Random Modulo (or hRP) caches, measurement campaigns that
// reseed the hardware per run, the MBPTA statistical pipeline
// (independence and identical-distribution tests, Gumbel fit, pWCET), and
// the deterministic high-water-mark baseline of industrial practice.
//
// This is the layer a user of the library interacts with: configure a
// platform, run a campaign over a workload, analyze it into a pWCET.
package core

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/evt"
	"repro/internal/iid"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WriteSetup optionally overrides a cache level's write arrangement. The
// zero value keeps the platform convention (write-through no-allocate
// L1s, write-back L2 — the paper's safety-critical design point); the
// other values force a specific arrangement, which the ablation and
// differential-test surfaces use to exercise every replay kernel.
type WriteSetup int

// Write arrangements.
const (
	WriteDefault        WriteSetup = iota // platform convention per level
	WriteThroughNoAlloc                   // stores bypass the level on miss
	WriteThroughAlloc                     // store misses allocate, lines stay clean
	WriteBackAlloc                        // store hits/fills dirty the line; dirty victims write back
)

// CacheSetup selects the policies of one cache level.
type CacheSetup struct {
	Placement   placement.Kind
	Replacement cache.ReplacementKind
	// Write optionally overrides the level's write arrangement (see
	// WriteSetup; zero keeps the platform default).
	Write WriteSetup
}

// PlatformSpec describes the simulated platform. The zero value is not
// valid; start from PaperPlatform or DeterministicPlatform.
type PlatformSpec struct {
	L1SizeBytes  int
	L1Ways       int
	L2SizeBytes  int
	L2Ways       int
	LineBytes    int
	IL1, DL1, L2 CacheSetup
	Lat          sim.Latencies
}

// PaperPlatform returns the paper's evaluation platform (Section 4): 16KB
// 4-way L1s, a 128KB 4-way L2 partition, 32B lines, with the requested
// placement in the L1s. As in the paper's Section 4.3 setups, the L2 uses
// hRP in all randomized configurations ("For the L2 we use hRP in all
// cases") and random replacement everywhere.
func PaperPlatform(l1 placement.Kind) PlatformSpec {
	return PlatformSpec{
		L1SizeBytes: 16 * 1024,
		L1Ways:      4,
		L2SizeBytes: 128 * 1024,
		L2Ways:      4,
		LineBytes:   32,
		IL1:         CacheSetup{Placement: l1, Replacement: cache.Random},
		DL1:         CacheSetup{Placement: l1, Replacement: cache.Random},
		L2:          CacheSetup{Placement: placement.HRP, Replacement: cache.Random},
		Lat:         sim.DefaultLatencies(),
	}
}

// DeterministicPlatform returns the COTS-like baseline: modulo placement
// and LRU replacement at every level (the DET setup of Figure 4(b) and the
// "modulo" column of Section 4.4).
func DeterministicPlatform() PlatformSpec {
	det := CacheSetup{Placement: placement.Modulo, Replacement: cache.LRU}
	s := PaperPlatform(placement.Modulo)
	s.IL1, s.DL1, s.L2 = det, det, det
	return s
}

// PlatformFor maps a user-selected L1 placement to the platform the CLIs
// evaluate: PaperPlatform(kind), except that Modulo selects the fully
// deterministic modulo+LRU baseline (shared by rmsim and mbpta so the
// deterministic-baseline convention lives in one place).
func PlatformFor(kind placement.Kind) PlatformSpec {
	if kind == placement.Modulo {
		return DeterministicPlatform()
	}
	return PaperPlatform(kind)
}

// Build instantiates the platform.
func (s PlatformSpec) Build() (*sim.Core, error) {
	mk := func(name string, size, ways int, cs CacheSetup, write cache.WritePolicy) cache.Config {
		cfg := cache.Config{
			Name:        name,
			SizeBytes:   size,
			Ways:        ways,
			LineBytes:   s.LineBytes,
			Placement:   cs.Placement,
			Replacement: cs.Replacement,
			Write:       write,
		}
		switch cs.Write {
		case WriteThroughNoAlloc:
			cfg.Write, cfg.AllocOnWrite = cache.WriteThrough, false
		case WriteThroughAlloc:
			cfg.Write, cfg.AllocOnWrite = cache.WriteThrough, true
		case WriteBackAlloc:
			cfg.Write, cfg.AllocOnWrite = cache.WriteBack, false
		}
		return cfg
	}
	cfg := sim.Config{
		IL1: mk("IL1", s.L1SizeBytes, s.L1Ways, s.IL1, cache.WriteThrough),
		DL1: mk("DL1", s.L1SizeBytes, s.L1Ways, s.DL1, cache.WriteThrough),
		L2:  mk("L2", s.L2SizeBytes, s.L2Ways, s.L2, cache.WriteBack),
		Lat: s.Lat,
	}
	return sim.New(cfg)
}

// Campaign is a measurement campaign: the same program run Runs times on a
// randomized platform, drawing a fresh hardware seed per run.
type Campaign struct {
	Spec       PlatformSpec
	Workload   workload.Workload
	Runs       int
	MasterSeed uint64
	// Layout optionally overrides the default memory layout.
	Layout *workload.Layout
	// Workers shards the runs across a pool of simulation workers, each
	// with its own platform instance. Zero or negative selects
	// runtime.GOMAXPROCS(0). Runs are independent (each reseeds and
	// flushes every level), so Times and all aggregates are bit-identical
	// for any worker count.
	Workers int
}

// CampaignResult holds the collected measurements.
type CampaignResult struct {
	// Times is the execution time of each run, in cycles. With
	// Request.KeepTimes = TimesDrop it is nil: the Summary accumulators
	// below carry the campaign's aggregates in O(1) memory instead.
	Times []float64
	// Summary holds the streaming aggregates of the measurement vector
	// (count, sum, extremes, quantile sketch); populated by the engine for
	// every campaign regardless of KeepTimes.
	Summary Summary
	// Levels holds the exact per-level cache counters summed over the
	// whole campaign (deterministic for any worker count).
	Levels LevelStats
	// Aggregated per-level miss ratios over the whole campaign.
	IL1Miss, DL1Miss, L2Miss float64
	Trace                    struct {
		Accesses int
		Fetches  int
		Loads    int
		Stores   int
	}
}

// HWM returns the campaign's high-water mark. It prefers the streaming
// Summary (exact, available even when Times was dropped) and falls back to
// the buffered vector for results constructed by hand.
func (r CampaignResult) HWM() float64 {
	if r.Summary.Moments.N > 0 {
		return r.Summary.Moments.Max
	}
	return stats.Max(r.Times)
}

// Mean returns the campaign's mean execution time (exact from the
// streaming Summary; see HWM for the fallback rule).
func (r CampaignResult) Mean() float64 {
	if r.Summary.Moments.N > 0 {
		return r.Summary.Moments.Mean()
	}
	return stats.Mean(r.Times)
}

// Request converts the campaign into an Engine Request, the migration
// path from the legacy blocking API: eng.Run(ctx, c.Request()).
func (c Campaign) Request() Request {
	return Request{
		Spec:       c.Spec,
		Workload:   c.Workload,
		Runs:       c.Runs,
		MasterSeed: c.MasterSeed,
		Layout:     c.Layout,
	}
}

// Run executes the campaign: per run, a fresh seed is derived, all cache
// levels reseed and flush (the paper's run-to-completion protocol), and
// the program's trace is replayed. Runs are sharded across Workers
// platform instances; the trace is built once and shared read-only.
//
// Deprecated: Run blocks with no cancellation, progress or pool sharing;
// it is a thin request to a private single-campaign Runner. Use
// Engine.Run(ctx, c.Request()) instead.
func (c Campaign) Run() (CampaignResult, error) {
	r := Runner{Pool: NewPool(c.Workers)}
	//rm:ctxroot deprecated blocking shim; the replacement Engine.Run takes the caller's ctx
	res, err := r.Run(context.Background(), c.Request())
	if err != nil {
		return CampaignResult{}, err
	}
	return res.CampaignResult, nil
}

// HWMCampaign is the deterministic industrial-practice baseline: the same
// program on a deterministic platform, with the *memory layout* randomized
// across runs (module placement, stack depth...), taking the high-water
// mark. This is what the 20% engineering margin is applied to (Section
// 4.4).
type HWMCampaign struct {
	Spec       PlatformSpec // typically DeterministicPlatform()
	Workload   workload.Workload
	Runs       int
	MasterSeed uint64
	// Layout optionally overrides the base layout the per-run
	// randomization perturbs (nil keeps the legacy behaviour: absolute
	// displacements over the default layout). Determinism contract: run
	// k's layout is a pure function of (MasterSeed, k, *Layout) --
	// workload.RandomizedLayoutFrom(*Layout, prng derived from
	// (MasterSeed^hwmSeedTag, k)) -- so Times is bit-identical for any
	// worker count, any batch interleaving, and any host.
	Layout *workload.Layout
	// Workers shards the layout runs across a pool of simulation workers
	// (zero or negative selects runtime.GOMAXPROCS(0)). Each run draws
	// its layout from a PRNG stream derived from the run index, so Times
	// is bit-identical for any worker count.
	Workers int
}

// HWMResult reports the deterministic baseline campaign.
type HWMResult struct {
	Times []float64
	HWM   float64
	Mean  float64
}

// hwmSeedTag keeps the baseline's layout streams disjoint from the
// randomized campaign's hardware-seed streams under the same master seed.
const hwmSeedTag = 0xDE7

// Request converts the baseline campaign into an Engine Request.
func (c HWMCampaign) Request() Request {
	return Request{
		Spec:       c.Spec,
		Workload:   c.Workload,
		Runs:       c.Runs,
		MasterSeed: c.MasterSeed,
		Layout:     c.Layout,
		Baseline:   true,
	}
}

// Run executes the baseline campaign: each run rebuilds the trace under a
// freshly randomized layout and starts from cold caches. The layout of
// run k is drawn from a PRNG stream derived from (MasterSeed, k) alone --
// runs are independent, so they shard across Workers platform instances
// with bit-identical results for any worker count.
//
// Deprecated: Run blocks with no cancellation, progress or pool sharing.
// Use Engine.Run(ctx, c.Request()) instead.
func (c HWMCampaign) Run() (HWMResult, error) {
	r := Runner{Pool: NewPool(c.Workers)}
	//rm:ctxroot deprecated blocking shim; the replacement Engine.Run takes the caller's ctx
	res, err := r.Run(context.Background(), c.Request())
	if err != nil {
		return HWMResult{}, err
	}
	return HWMResult{Times: res.Times, HWM: stats.Max(res.Times), Mean: stats.Mean(res.Times)}, nil
}

// Analysis is the MBPTA pipeline output for one campaign.
type Analysis struct {
	WW      iid.WWResult // Wald-Wolfowitz independence test
	KS      iid.KSResult // two-sample KS identical-distribution test
	ET      iid.ETResult // ET Gumbel-convergence test
	Model   evt.PWCET    // fitted Gumbel block-maxima model
	PWCET15 float64      // pWCET at exceedance 1e-15 (highest criticality)
	PWCET12 float64      // pWCET at exceedance 1e-12
	IIDPass bool         // WW and KS both pass
}

// CutoffHigh and CutoffLow are the per-run exceedance probabilities the
// paper evaluates: 1e-15 for the highest criticality levels, 1e-12
// otherwise (Section 4.3).
const (
	CutoffHigh = 1e-15
	CutoffLow  = 1e-12
)

// Analyze applies the full MBPTA pipeline to a campaign's execution times.
//
// Simulated execution times are exact cycle counts, so identical values
// are frequent -- unlike measurements on real hardware, which carry
// sub-cycle phase noise. The statistical tests receive a deterministic
// sub-cycle dither as a continuity correction (the runs test in
// particular breaks down when most observations tie the median); the EVT
// fit uses the raw times.
//
// Analyze is the buffered reference pipeline: the engine computes the same
// analysis from streaming accumulators without retaining the vector, and
// differential tests pin the two paths bit-identical. Times containing
// NaN, infinite or negative values are rejected with a typed
// *evt.InvalidTimeError (unwrappable via errors.As) before any statistics
// run.
func Analyze(times []float64) (Analysis, error) {
	if err := evt.ValidateTimes(times); err != nil {
		return Analysis{}, fmt.Errorf("core: invalid measurement: %w", err)
	}
	block := evt.BlockFor(len(times))
	maxima, merr := evt.BlockMaxima(times, block)
	return analyzeParts(iidWindow(times), maxima, merr, block, len(times))
}

// ditherTies adds a deterministic sub-cycle perturbation to break the ties
// that exact cycle counting produces. The amplitude (under one cycle) is
// far below any simulated latency, so distribution shape is unaffected.
func ditherTies(xs []float64) []float64 {
	//rm:deterministic fixed-seed tie dithering: one shared stream keeps the perturbation reproducible and identical across campaigns (pinned by BENCH_PR*.json)
	g := prng.New(0xD17E4)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x + g.Float64() - 0.5
	}
	return out
}

// RunAndAnalyze is the end-to-end MBPTA flow of Figure 1: run the
// campaign, check admissibility, fit, and report.
//
// Deprecated: it blocks with no cancellation, progress or pool sharing.
// Set Request.Analyze and use Engine.Run instead.
func RunAndAnalyze(c Campaign) (CampaignResult, Analysis, error) {
	req := c.Request()
	req.Analyze = true
	r := Runner{Pool: NewPool(c.Workers)}
	//rm:ctxroot deprecated blocking shim; the replacement Engine.Run takes the caller's ctx
	res, err := r.Run(context.Background(), req)
	if err != nil || res.Analysis == nil {
		return res.CampaignResult, Analysis{}, err
	}
	return res.CampaignResult, *res.Analysis, nil
}
