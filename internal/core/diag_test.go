package core

import (
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestDiagnosticSynthetic20KB prints the behavioural summary the paper's
// Figure 5 relies on: the execution-time distribution of the 20KB
// synthetic kernel under RM vs hRP. It asserts only the paper's
// qualitative claims; the log output is for calibration.
func TestDiagnosticSynthetic20KB(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic campaign skipped in -short mode")
	}
	w := workload.Synthetic(20*1024, 50, 4)
	const runs = 200

	runPolicy := func(kind placement.Kind) CampaignResult {
		start := time.Now()
		res, err := Campaign{
			Spec:       PaperPlatform(kind),
			Workload:   w,
			Runs:       runs,
			MasterSeed: 42,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		t.Logf("%s: %d runs x %d accesses in %v (%.1f Maccess/s)",
			kind, runs, res.Trace.Accesses, el,
			float64(runs*res.Trace.Accesses)/el.Seconds()/1e6)
		t.Logf("%s: min=%.0f mean=%.0f max=%.0f sd=%.0f  IL1=%.4f DL1=%.4f L2=%.4f",
			kind, stats.Min(res.Times), res.Mean(), res.HWM(), stats.StdDev(res.Times),
			res.IL1Miss, res.DL1Miss, res.L2Miss)
		return res
	}

	rm := runPolicy(placement.RM)
	hrp := runPolicy(placement.HRP)

	// Paper Figure 5: RM shows much lower variability than hRP; the hRP
	// high-water mark sits clearly above RM's.
	if stats.StdDev(rm.Times) >= stats.StdDev(hrp.Times) {
		t.Errorf("RM stddev %.0f >= hRP stddev %.0f (paper: RM much tighter)",
			stats.StdDev(rm.Times), stats.StdDev(hrp.Times))
	}
	if rm.HWM() >= hrp.HWM() {
		t.Errorf("RM hwm %.0f >= hRP hwm %.0f", rm.HWM(), hrp.HWM())
	}

	rmA, err := Analyze(rm.Times)
	if err != nil {
		t.Fatal(err)
	}
	hrpA, err := Analyze(hrp.Times)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("RM : WW=%.2f KSp=%.2f ET=%.2f pWCET15=%.0f", rmA.WW.Stat, rmA.KS.P, rmA.ET.P, rmA.PWCET15)
	t.Logf("hRP: WW=%.2f KSp=%.2f ET=%.2f pWCET15=%.0f", hrpA.WW.Stat, hrpA.KS.P, hrpA.ET.P, hrpA.PWCET15)
	if rmA.PWCET15 >= hrpA.PWCET15 {
		t.Errorf("RM pWCET %.0f >= hRP pWCET %.0f (paper: RM far tighter)", rmA.PWCET15, hrpA.PWCET15)
	}
}

// TestDiagnosticAveragePerformance checks Section 4.4's average
// performance claim on one EEMBC-like kernel: RM within a few percent of
// deterministic modulo.
func TestDiagnosticAveragePerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic campaign skipped in -short mode")
	}
	w, err := workload.ByName("a2time01")
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Campaign{Spec: PaperPlatform(placement.RM), Workload: w, Runs: 50, MasterSeed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	det, err := Campaign{Spec: DeterministicPlatform(), Workload: w, Runs: 3, MasterSeed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	slowdown := rm.Mean()/det.Mean() - 1
	t.Logf("a2time01: RM mean %.0f, modulo mean %.0f, slowdown %.2f%%",
		rm.Mean(), det.Mean(), 100*slowdown)
	if slowdown > 0.25 {
		t.Errorf("RM slowdown vs modulo is %.1f%%, paper reports ~1.6%% avg / 8%% max", 100*slowdown)
	}
}
