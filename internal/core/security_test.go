package core

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

func secRequest(proto security.Protocol, runs int) Request {
	return Request{
		Runs: runs, MasterSeed: 0xA77AC4,
		Security: &security.Spec{
			Protocol:    proto,
			Placement:   placement.RM,
			Replacement: cache.Random,
			ProbeLines:  256,
		},
	}
}

// TestSecurityCampaignDeterministicAcrossWorkers pins the sharding
// contract for the attacker campaigns: every protocol yields bit-identical
// Times and aggregate Security results for worker counts {1, 4,
// GOMAXPROCS}, because each round depends only on its derived seed.
func TestSecurityCampaignDeterministicAcrossWorkers(t *testing.T) {
	for _, proto := range security.Protocols() {
		req := secRequest(proto, 24)
		var want Result
		for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			res, err := NewEngine(WithWorkers(workers)).Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", proto, workers, err)
			}
			if res.Security == nil {
				t.Fatalf("%s workers=%d: no security aggregate", proto, workers)
			}
			if len(res.Security.Curve) == 0 {
				t.Fatalf("%s workers=%d: empty success curve", proto, workers)
			}
			if i == 0 {
				want = res
				continue
			}
			if !reflect.DeepEqual(res.Times, want.Times) {
				t.Fatalf("%s workers=%d: Times differ from workers=1", proto, workers)
			}
			if !reflect.DeepEqual(res.Security, want.Security) {
				t.Fatalf("%s workers=%d: aggregate differs from workers=1:\n%+v\nvs\n%+v",
					proto, workers, res.Security, want.Security)
			}
		}
	}
}

// TestSecurityCampaignWithVictimWorkload runs the occupancy channel
// against a real compiled workload through the full Runner path.
func TestSecurityCampaignWithVictimWorkload(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	req := secRequest(security.Occupancy, 16)
	req.Workload = w
	a, err := NewEngine(WithWorkers(1)).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(WithWorkers(4)).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Security, b.Security) {
		t.Fatalf("victim-workload occupancy differs across worker counts:\n%+v\nvs\n%+v", a.Security, b.Security)
	}
	if a.Security.MeanMissActive <= a.Security.MeanMissIdle {
		t.Fatalf("victim left no occupancy signal: active %v <= idle %v",
			a.Security.MeanMissActive, a.Security.MeanMissIdle)
	}
}

// TestSecurityRequestRejections: the protocol flags and workload rules
// that do not compose with security campaigns fail loudly.
func TestSecurityRequestRejections(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithWorkers(1))

	base := secRequest(security.EvictionSet, 4)
	bad := base
	bad.Baseline = true
	if _, err := eng.Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("baseline+security accepted: %v", err)
	}
	bad = base
	bad.Analyze = true
	if _, err := eng.Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "MBPTA") {
		t.Fatalf("analyze+security accepted: %v", err)
	}
	bad = base
	bad.Workload = w
	if _, err := eng.Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "occupancy") {
		t.Fatalf("workload on non-occupancy protocol accepted: %v", err)
	}
	bad = base
	bad.Security = &security.Spec{Protocol: security.Protocol(42), Placement: placement.RM, Replacement: cache.Random}
	if _, err := eng.Run(context.Background(), bad); err == nil {
		t.Fatal("invalid protocol accepted")
	}
}

// TestRequestKind pins the campaign-family discriminator the service's
// discovery endpoint exposes.
func TestRequestKind(t *testing.T) {
	w, _ := workload.ByName("tblook01")
	if got := (Request{Workload: w}).Kind(); got != KindMBPTA || got.String() != "mbpta" {
		t.Fatalf("MBPTA kind = %v (%q)", got, got.String())
	}
	if got := (Request{Workload: w, Baseline: true}).Kind(); got != KindBaseline || got.String() != "baseline" {
		t.Fatalf("baseline kind = %v (%q)", got, got.String())
	}
	if got := secRequest(security.PrimeProbe, 1).Kind(); got != KindSecurity || got.String() != "security" {
		t.Fatalf("security kind = %v (%q)", got, got.String())
	}
	if got := KindNames(); !reflect.DeepEqual(got, []string{"mbpta", "baseline", "security"}) {
		t.Fatalf("KindNames() = %v", got)
	}
}

// TestSecurityCampaignEvents: security campaigns speak the same event
// protocol as timing campaigns (monotone Done, one RunCompleted per
// round, Cycles carrying the attacker access count).
func TestSecurityCampaignEvents(t *testing.T) {
	var events []Event
	eng := NewEngine(WithWorkers(1), WithEvents(func(ev Event) {
		events = append(events, ev)
	}))
	const runs = 6
	if _, err := eng.Run(context.Background(), secRequest(security.EvictionSet, runs)); err != nil {
		t.Fatal(err)
	}
	completed := 0
	lastDone := 0
	for _, ev := range events {
		if ev.Kind != RunCompleted {
			continue
		}
		completed++
		if ev.Done != lastDone+1 {
			t.Fatalf("Done jumped %d -> %d", lastDone, ev.Done)
		}
		lastDone = ev.Done
		if ev.Cycles <= 0 {
			t.Fatalf("round %d reported %v accesses", ev.Run, ev.Cycles)
		}
	}
	if completed != runs {
		t.Fatalf("%d RunCompleted events, want %d", completed, runs)
	}
}
