package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/security"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ckptRequests returns one request per campaign kind, all with Analyze
// where it applies, sized so campaigns afford several chunks per worker.
func ckptRequests(t *testing.T) []Request {
	t.Helper()
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	return []Request{
		{Spec: PaperPlatform(placement.RM), Workload: w, Runs: 120, MasterSeed: 0xC4A1, Analyze: true},
		{Spec: DeterministicPlatform(), Workload: w, Runs: 60, MasterSeed: 0xBA5E, Baseline: true},
		{Runs: 48, MasterSeed: 0x5EC0, Security: &security.Spec{
			Protocol:    security.PrimeProbe,
			Placement:   placement.RM,
			Replacement: cache.Random,
			ProbeLines:  128,
		}},
	}
}

// interruptAt runs req until a checkpoint at or past cutEvery fires, then
// cancels, and returns the captured checkpoint round-tripped through the
// wire codec. Returns nil if the campaign completed before capturing.
func interruptAt(t *testing.T, req Request, workers, cutEvery int) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured atomic.Pointer[Checkpoint]
	req.CheckpointEvery = cutEvery
	req.OnCheckpoint = func(cp *Checkpoint) {
		if captured.CompareAndSwap(nil, cp) {
			cancel()
		}
	}
	_, err := NewEngine(WithWorkers(workers)).Run(ctx, req)
	cp := captured.Load()
	if cp == nil {
		return nil
	}
	if cp.Frontier < req.Runs && !errors.Is(err, context.Canceled) && err != nil {
		t.Fatalf("interrupted campaign failed with a non-cancellation error: %v", err)
	}
	dec, derr := DecodeCheckpoint(cp.Encode())
	if derr != nil {
		t.Fatalf("checkpoint round trip at frontier %d: %v", cp.Frontier, derr)
	}
	if !reflect.DeepEqual(dec.Levels, cp.Levels) || dec.Frontier != cp.Frontier {
		t.Fatalf("decoded checkpoint differs from captured one")
	}
	return dec
}

// sameResult asserts the bit-identity contract between an uninterrupted
// and a resumed campaign: Times, Summary counts/extremes/sketch, levels,
// miss ratios, analysis and security aggregates all match exactly. The
// Welford variance terms inside Moments are grouping-dependent by
// documented contract and excluded.
func sameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Times, want.Times) {
		for i := range want.Times {
			if got.Times[i] != want.Times[i] {
				t.Fatalf("%s: Times[%d] = %v, want %v", label, i, got.Times[i], want.Times[i])
			}
		}
		t.Fatalf("%s: Times differ (len %d vs %d)", label, len(got.Times), len(want.Times))
	}
	wm, gm := want.Summary.Moments, got.Summary.Moments
	if gm.N != wm.N || gm.Sum != wm.Sum || gm.Min != wm.Min || gm.Max != wm.Max {
		t.Fatalf("%s: Summary.Moments differ: got N=%d Sum=%v Min=%v Max=%v, want N=%d Sum=%v Min=%v Max=%v",
			label, gm.N, gm.Sum, gm.Min, gm.Max, wm.N, wm.Sum, wm.Min, wm.Max)
	}
	if !reflect.DeepEqual(got.Summary.Sketch, want.Summary.Sketch) {
		t.Fatalf("%s: Summary.Sketch differs", label)
	}
	if !reflect.DeepEqual(got.Levels, want.Levels) {
		t.Fatalf("%s: Levels differ:\n%+v\nvs\n%+v", label, got.Levels, want.Levels)
	}
	if got.IL1Miss != want.IL1Miss || got.DL1Miss != want.DL1Miss || got.L2Miss != want.L2Miss {
		t.Fatalf("%s: miss ratios differ", label)
	}
	if !reflect.DeepEqual(got.Analysis, want.Analysis) {
		t.Fatalf("%s: Analysis differs:\n%+v\nvs\n%+v", label, got.Analysis, want.Analysis)
	}
	if !reflect.DeepEqual(got.Security, want.Security) {
		t.Fatalf("%s: Security aggregate differs", label)
	}
}

// TestResumeBitIdentical is the tentpole differential test: for every
// campaign kind, interrupt at pseudo-random frontiers under one worker
// count and resume under another; the stitched result must be
// bit-identical to the uninterrupted campaign for workers {1, 4,
// GOMAXPROCS} on both sides.
func TestResumeBitIdentical(t *testing.T) {
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, req := range ckptRequests(t) {
		req := req
		kind := req.Kind().String()
		want, err := NewEngine(WithWorkers(1)).Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s reference: %v", kind, err)
		}
		// Pseudo-random interruption frontiers, deterministic per kind.
		g := prng.New(0xD1FF ^ req.MasterSeed)
		for i, wInterrupt := range workerSet {
			wResume := workerSet[(i+1)%len(workerSet)]
			cut := 1 + g.Intn(req.Runs-1)
			cp := interruptAt(t, req, wInterrupt, cut)
			if cp == nil {
				t.Fatalf("%s: campaign finished before checkpoint at stride %d", kind, cut)
			}
			if cp.Frontier <= 0 || cp.Frontier > req.Runs {
				t.Fatalf("%s: checkpoint frontier %d out of range", kind, cp.Frontier)
			}
			resumed := req
			resumed.Resume = cp
			got, err := NewEngine(WithWorkers(wResume)).Run(context.Background(), resumed)
			if err != nil {
				t.Fatalf("%s resume at %d (workers %d->%d): %v", kind, cp.Frontier, wInterrupt, wResume, err)
			}
			label := kind + "/" + req.Name
			sameResult(t, label, want, got)
		}
	}
}

// TestResumeDropsTimes pins resume under keep_times:false — the
// checkpoint carries no measurement vector and the resumed campaign's
// Summary still matches the uninterrupted one exactly.
func TestResumeDropsTimes(t *testing.T) {
	reqs := ckptRequests(t)
	req := reqs[0]
	req.Analyze = false // analysis needs the window either way; keep this case minimal
	req.KeepTimes = TimesDrop
	want, err := NewEngine(WithWorkers(2)).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cp := interruptAt(t, req, 2, req.Runs/3)
	if cp == nil {
		t.Skip("campaign completed before checkpoint")
	}
	if cp.Times != nil {
		t.Fatalf("keep_times:false checkpoint carries %d times", len(cp.Times))
	}
	req.Resume = cp
	got, err := NewEngine(WithWorkers(3)).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Times != nil {
		t.Fatal("resumed keep_times:false campaign returned Times")
	}
	sameResult(t, "mbpta/keep_times:false", want, got)
}

// TestCheckpointReplayOption pins WithCheckpointReplay: the self-checking
// interrupt+resume execution mode returns results bit-identical to plain
// runs, for every campaign kind.
func TestCheckpointReplayOption(t *testing.T) {
	for _, req := range ckptRequests(t) {
		kind := req.Kind().String()
		want, err := NewEngine(WithWorkers(2)).Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s plain: %v", kind, err)
		}
		got, err := NewEngine(WithWorkers(2), WithCheckpointReplay()).Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s replay: %v", kind, err)
		}
		sameResult(t, kind+"/replay", want, got)
	}
}

// TestCheckpointCodecCorruption: every single-byte corruption of an
// encoded checkpoint must fail decode with *CorruptCheckpointError —
// never a panic, never a silent partial restore.
func TestCheckpointCodecCorruption(t *testing.T) {
	cp := interruptAt(t, ckptRequests(t)[0], 2, 30)
	if cp == nil {
		t.Skip("campaign completed before checkpoint")
	}
	blob := cp.Encode()
	if _, err := DecodeCheckpoint(blob); err != nil {
		t.Fatalf("pristine blob failed decode: %v", err)
	}
	var corrupt *CorruptCheckpointError
	// Truncations at every prefix length.
	for n := 0; n < len(blob); n += 7 {
		if _, err := DecodeCheckpoint(blob[:n]); !errors.As(err, &corrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want CorruptCheckpointError", n, err)
		}
	}
	// Single-bit flips across the blob (stride keeps the test fast).
	for i := 0; i < len(blob); i += 11 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := DecodeCheckpoint(mut); !errors.As(err, &corrupt) {
			t.Fatalf("bit flip at %d: err = %v, want CorruptCheckpointError", i, err)
		}
	}
}

// TestResumeMismatchRejected: a checkpoint attached to the wrong request
// fails before the first run with *ResumeMismatchError naming the field.
func TestResumeMismatchRejected(t *testing.T) {
	reqs := ckptRequests(t)
	cp := interruptAt(t, reqs[0], 2, 30)
	if cp == nil {
		t.Skip("campaign completed before checkpoint")
	}
	cases := []struct {
		name  string
		field string
		mut   func(r *Request)
	}{
		{"seed", "master_seed", func(r *Request) { r.MasterSeed++ }},
		{"runs", "runs", func(r *Request) { r.Runs += 10 }},
		{"keep_times", "keep_times", func(r *Request) { r.KeepTimes = TimesDrop }},
		{"kind", "kind", func(r *Request) { r.Baseline = true }},
	}
	for _, tc := range cases {
		req := reqs[0]
		tc.mut(&req)
		req.Resume = cp
		_, err := NewEngine(WithWorkers(1)).Run(context.Background(), req)
		var mm *ResumeMismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("%s: err = %v, want ResumeMismatchError", tc.name, err)
		}
		if mm.Field != tc.field {
			t.Fatalf("%s: mismatch field %q, want %q", tc.name, mm.Field, tc.field)
		}
	}
}

// TestShardPanicRecovered pins the satellite: a panicking workload fails
// its campaign cleanly with a typed *PanicError, and the shared pool
// survives to run the next campaign.
func TestShardPanicRecovered(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	bomb := workload.Workload{
		Name: "panic-bomb",
		Build: func(layout workload.Layout) trace.Trace {
			panic("synthetic workload panic")
		},
	}
	eng := NewEngine(WithWorkers(2))
	// Baseline campaigns rebuild the trace inside pool workers, so the
	// panic detonates on the sharded path proper.
	_, err = eng.Run(context.Background(), Request{
		Spec: DeterministicPlatform(), Workload: bomb, Runs: 16, MasterSeed: 7, Baseline: true,
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "synthetic workload panic" || pe.Stack == "" {
		t.Fatalf("PanicError carries value %v, stack len %d", pe.Value, len(pe.Stack))
	}
	// The pool must have released every slot: a normal campaign on the
	// same engine completes.
	res, err := eng.Run(context.Background(), Request{
		Spec: PaperPlatform(placement.RM), Workload: w, Runs: 8, MasterSeed: 7,
	})
	if err != nil {
		t.Fatalf("campaign after panic: %v", err)
	}
	if res.Summary.Moments.N != 8 {
		t.Fatalf("campaign after panic covered %d runs", res.Summary.Moments.N)
	}
	if eng.Pool().InUse() != 0 {
		t.Fatalf("pool leaked %d slots", eng.Pool().InUse())
	}
}
