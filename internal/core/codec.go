package core

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

// WireRequest is the canonical JSON wire form of a Request, the submission
// format of the campaign service. Platforms are selected by L1 placement
// name exactly as in the CLIs (placement.ParseKind + PlatformFor, so
// "Modulo" means the fully deterministic modulo+LRU baseline); workloads
// by name (workload.ByName); the layout override is optional.
//
// The wire form is the unit of content addressing: Fingerprint hashes the
// normalized fields that determine the measurement vector, so two
// submissions that differ only in spelling ("rm" vs "RM") or in the
// display name share a fingerprint -- and, by the Engine's determinism
// contract, bit-identical Times.
type WireRequest struct {
	// Name labels the campaign in results and streams. It is a display
	// label only: it does not enter the fingerprint.
	Name string `json:"name,omitempty"`
	// Placement is the L1 placement policy name (Modulo, XORFold, hRP,
	// RM, RM-rot; case-insensitive, aliases accepted).
	Placement string `json:"placement"`
	// Workload is the benchmark name (e.g. "tblook01", "synth20k").
	Workload string `json:"workload"`
	// Runs is the campaign size. Zero lets the service apply its default.
	Runs int `json:"runs,omitempty"`
	// Seed is the campaign master seed.
	Seed uint64 `json:"seed"`
	// Baseline selects the industrial high-water-mark protocol
	// (randomized memory layouts on the platform) instead of MBPTA.
	Baseline bool `json:"baseline,omitempty"`
	// Analyze additionally applies the MBPTA statistical pipeline.
	Analyze bool `json:"analyze,omitempty"`
	// Layout optionally overrides the base memory layout.
	Layout *WireLayout `json:"layout,omitempty"`
	// Security selects the attacker-campaign family instead of a timing
	// campaign: Runs counts attack rounds, Placement is the attacked
	// cache's placement, and Workload becomes optional (it names the
	// occupancy protocol's victim; empty selects the synthetic victim).
	// Baseline and Analyze do not combine with it.
	Security *WireSecurity `json:"security,omitempty"`
	// KeepTimes controls whether the result retains the per-run times
	// vector. Unset or true keeps it (the historical behaviour); false
	// drops it, leaving aggregates to the streaming summary — the choice
	// for very large campaigns. It enters the fingerprint only when false,
	// since a dropped-times result cannot serve a keep-times cache hit.
	KeepTimes *bool `json:"keep_times,omitempty"`
}

// WireSecurity is the JSON form of a security.Spec (minus the placement,
// which rides in the top-level field). Sizing knobs left zero resolve to
// protocol defaults during Normalize, so equivalent submissions share a
// fingerprint.
type WireSecurity struct {
	// Protocol is "eviction", "occupancy" or "primeprobe" (aliases
	// accepted, e.g. "prime+probe", "pp").
	Protocol string `json:"protocol"`
	// Replacement is the attacked cache's replacement policy (LRU,
	// Random, FIFO, PLRU; case-insensitive). Empty selects Random, the
	// MBPTA platform convention.
	Replacement string `json:"replacement,omitempty"`
	// ProbeLines sizes the attacker probe set in cache lines.
	ProbeLines int `json:"probe_lines,omitempty"`
	// ProbeStride is the byte stride between probe candidates (0 = draw
	// pseudo-random candidates per round).
	ProbeStride int `json:"probe_stride,omitempty"`
	// Trials is the Prime+Probe trial count per round.
	Trials int `json:"trials,omitempty"`
	// VictimLines sizes the synthetic occupancy victim.
	VictimLines int `json:"victim_lines,omitempty"`
}

// spec resolves the wire form into a security.Spec for the given attacked
// placement.
func (s WireSecurity) spec(kind placement.Kind) (security.Spec, error) {
	proto, err := security.ParseProtocol(s.Protocol)
	if err != nil {
		return security.Spec{}, err
	}
	repl := cache.Random
	if s.Replacement != "" {
		repl, err = cache.ParseReplacement(s.Replacement)
		if err != nil {
			return security.Spec{}, err
		}
	}
	return security.Spec{
		Protocol:    proto,
		Placement:   kind,
		Replacement: repl,
		ProbeLines:  s.ProbeLines,
		ProbeStride: s.ProbeStride,
		Trials:      s.Trials,
		VictimLines: s.VictimLines,
	}, nil
}

// WireLayout is the JSON form of a workload.Layout.
type WireLayout struct {
	Code    uint64                        `json:"code"`
	Data    uint64                        `json:"data"`
	Table   uint64                        `json:"table"`
	Stack   uint64                        `json:"stack"`
	Pool    uint64                        `json:"pool"`
	Scatter [workload.ScatterSlots]uint64 `json:"scatter"`
}

// Layout converts the wire form to a workload.Layout.
func (l WireLayout) Layout() workload.Layout {
	return workload.Layout{
		Code: l.Code, Data: l.Data, Table: l.Table,
		Stack: l.Stack, Pool: l.Pool, Scatter: l.Scatter,
	}
}

// WireLayoutFrom converts a workload.Layout to its wire form.
func WireLayoutFrom(l workload.Layout) WireLayout {
	return WireLayout{
		Code: l.Code, Data: l.Data, Table: l.Table,
		Stack: l.Stack, Pool: l.Pool, Scatter: l.Scatter,
	}
}

// DecodeWireRequest reads one JSON-encoded WireRequest. Unknown fields are
// an error so typos ("sed" for "seed") fail loudly instead of silently
// fingerprinting a different campaign.
func DecodeWireRequest(r io.Reader) (WireRequest, error) {
	var w WireRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return WireRequest{}, fmt.Errorf("core: decoding request: %w", err)
	}
	return w, nil
}

// Normalize validates the wire request and returns its canonical form:
// the placement spelled as Kind.String(), the workload verified against
// the registry, and Runs checked positive. Name passes through untouched
// (it is a label, not content).
func (w WireRequest) Normalize() (WireRequest, error) {
	kind, err := placement.ParseKind(w.Placement)
	if err != nil {
		return WireRequest{}, fmt.Errorf("core: %w", err)
	}
	if w.Security != nil {
		if w.Baseline {
			return WireRequest{}, errors.New("core: security campaigns cannot use the baseline protocol")
		}
		if w.Analyze {
			return WireRequest{}, errors.New("core: the MBPTA analysis does not apply to security campaigns")
		}
		spec, err := w.Security.spec(kind)
		if err != nil {
			return WireRequest{}, fmt.Errorf("core: %w", err)
		}
		norm, err := spec.Normalized()
		if err != nil {
			return WireRequest{}, fmt.Errorf("core: %w", err)
		}
		if w.Workload != "" {
			if norm.Protocol != security.Occupancy {
				return WireRequest{}, fmt.Errorf("core: a victim workload only applies to the %s protocol", security.Occupancy)
			}
			if _, err := workload.ByName(w.Workload); err != nil {
				return WireRequest{}, fmt.Errorf("core: %w", err)
			}
		}
		w.Security = &WireSecurity{
			Protocol:    norm.Protocol.String(),
			Replacement: norm.Replacement.String(),
			ProbeLines:  norm.ProbeLines,
			ProbeStride: norm.ProbeStride,
			Trials:      norm.Trials,
			VictimLines: norm.VictimLines,
		}
	} else {
		if _, err := workload.ByName(w.Workload); err != nil {
			return WireRequest{}, fmt.Errorf("core: %w", err)
		}
	}
	if w.Runs < 1 {
		return WireRequest{}, errors.New("core: request needs at least one run")
	}
	w.Placement = kind.String()
	// Explicit keep_times=true is the default spelled out: canonicalize to
	// unset so both spellings share a fingerprint.
	if w.KeepTimes != nil && *w.KeepTimes {
		w.KeepTimes = nil
	}
	return w, nil
}

// Request resolves the wire form into an executable Request: the platform
// is PlatformFor(placement kind), the workload comes from the registry.
func (w WireRequest) Request() (Request, error) {
	n, err := w.Normalize()
	if err != nil {
		return Request{}, err
	}
	kind, _ := placement.ParseKind(n.Placement)
	req := Request{
		Name:       n.Name,
		Runs:       n.Runs,
		MasterSeed: n.Seed,
		Baseline:   n.Baseline,
		Analyze:    n.Analyze,
	}
	if n.Workload != "" {
		req.Workload, _ = workload.ByName(n.Workload)
	}
	if n.Security != nil {
		// Normalize already validated and canonicalized the spec.
		spec, err := n.Security.spec(kind)
		if err != nil {
			return Request{}, fmt.Errorf("core: %w", err)
		}
		req.Security = &spec
	} else {
		req.Spec = PlatformFor(kind)
	}
	if n.Layout != nil {
		l := n.Layout.Layout()
		req.Layout = &l
	}
	if n.KeepTimes != nil && !*n.KeepTimes {
		req.KeepTimes = TimesDrop
	}
	return req, nil
}

// Label returns the display name of the campaign: Name if set, else the
// workload name with the same "/hwm" baseline suffix Request.name uses.
func (w WireRequest) Label() string {
	if w.Name != "" {
		return w.Name
	}
	if w.Security != nil {
		repl := w.Security.Replacement
		if repl == "" {
			repl = cache.Random.String()
		}
		return fmt.Sprintf("security/%s/%s/%s", w.Security.Protocol, w.Placement, repl)
	}
	n := w.Workload
	if w.Baseline {
		n += "/hwm"
	}
	return n
}

// fingerprintVersion tags the hash layout; bump it if the canonical
// serialization below ever changes meaning. rmfp2 added the security
// campaign family (the security block below).
const fingerprintVersion = "rmfp2"

// Fingerprint returns the content address of the campaign: a 128-bit hex
// digest over the normalized request fields that determine the result
// (placement kind, workload, runs, seed, baseline, analyze, layout).
// The display Name is excluded. By the Engine's determinism contract,
// equal fingerprints yield bit-identical Times on any host, for any pool
// size -- which is what makes results safely cacheable by fingerprint.
func (w WireRequest) Fingerprint() (string, error) {
	n, err := w.Normalize()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|placement=%s|workload=%s|runs=%d|seed=%d|baseline=%t|analyze=%t",
		fingerprintVersion, n.Placement, n.Workload, n.Runs, n.Seed, n.Baseline, n.Analyze)
	if n.Layout != nil {
		fmt.Fprintf(&b, "|layout=%d,%d,%d,%d,%d", n.Layout.Code, n.Layout.Data,
			n.Layout.Table, n.Layout.Stack, n.Layout.Pool)
		for _, s := range n.Layout.Scatter {
			fmt.Fprintf(&b, ",%d", s)
		}
	}
	if n.Security != nil {
		fmt.Fprintf(&b, "|security=%s,%s,%d,%d,%d,%d",
			n.Security.Protocol, n.Security.Replacement, n.Security.ProbeLines,
			n.Security.ProbeStride, n.Security.Trials, n.Security.VictimLines)
	}
	// Appended only when set, so every pre-existing fingerprint is
	// unchanged (Normalize canonicalized keep_times=true to unset above).
	if n.KeepTimes != nil && !*n.KeepTimes {
		b.WriteString("|keeptimes=false")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:16]), nil
}

// PlacementNames returns the user-facing names of every placement kind in
// declaration order, for service catalogs and usage messages.
func PlacementNames() []string {
	kinds := placement.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// ResolveNames maps the user-facing workload and placement names shared
// by the CLIs (-workload/-placement flags) and usage messages to their
// registry entries. An unknown name is a usage error: the commands
// report it on exit code 2 (the paperbench -exp convention).
func ResolveNames(wname, pname string) (workload.Workload, placement.Kind, error) {
	w, err := workload.ByName(wname)
	if err != nil {
		return workload.Workload{}, 0, err
	}
	kind, err := placement.ParseKind(pname)
	if err != nil {
		return workload.Workload{}, 0, err
	}
	return w, kind, nil
}
