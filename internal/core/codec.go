package core

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/placement"
	"repro/internal/workload"
)

// WireRequest is the canonical JSON wire form of a Request, the submission
// format of the campaign service. Platforms are selected by L1 placement
// name exactly as in the CLIs (placement.ParseKind + PlatformFor, so
// "Modulo" means the fully deterministic modulo+LRU baseline); workloads
// by name (workload.ByName); the layout override is optional.
//
// The wire form is the unit of content addressing: Fingerprint hashes the
// normalized fields that determine the measurement vector, so two
// submissions that differ only in spelling ("rm" vs "RM") or in the
// display name share a fingerprint -- and, by the Engine's determinism
// contract, bit-identical Times.
type WireRequest struct {
	// Name labels the campaign in results and streams. It is a display
	// label only: it does not enter the fingerprint.
	Name string `json:"name,omitempty"`
	// Placement is the L1 placement policy name (Modulo, XORFold, hRP,
	// RM, RM-rot; case-insensitive, aliases accepted).
	Placement string `json:"placement"`
	// Workload is the benchmark name (e.g. "tblook01", "synth20k").
	Workload string `json:"workload"`
	// Runs is the campaign size. Zero lets the service apply its default.
	Runs int `json:"runs,omitempty"`
	// Seed is the campaign master seed.
	Seed uint64 `json:"seed"`
	// Baseline selects the industrial high-water-mark protocol
	// (randomized memory layouts on the platform) instead of MBPTA.
	Baseline bool `json:"baseline,omitempty"`
	// Analyze additionally applies the MBPTA statistical pipeline.
	Analyze bool `json:"analyze,omitempty"`
	// Layout optionally overrides the base memory layout.
	Layout *WireLayout `json:"layout,omitempty"`
}

// WireLayout is the JSON form of a workload.Layout.
type WireLayout struct {
	Code    uint64                        `json:"code"`
	Data    uint64                        `json:"data"`
	Table   uint64                        `json:"table"`
	Stack   uint64                        `json:"stack"`
	Pool    uint64                        `json:"pool"`
	Scatter [workload.ScatterSlots]uint64 `json:"scatter"`
}

// Layout converts the wire form to a workload.Layout.
func (l WireLayout) Layout() workload.Layout {
	return workload.Layout{
		Code: l.Code, Data: l.Data, Table: l.Table,
		Stack: l.Stack, Pool: l.Pool, Scatter: l.Scatter,
	}
}

// WireLayoutFrom converts a workload.Layout to its wire form.
func WireLayoutFrom(l workload.Layout) WireLayout {
	return WireLayout{
		Code: l.Code, Data: l.Data, Table: l.Table,
		Stack: l.Stack, Pool: l.Pool, Scatter: l.Scatter,
	}
}

// DecodeWireRequest reads one JSON-encoded WireRequest. Unknown fields are
// an error so typos ("sed" for "seed") fail loudly instead of silently
// fingerprinting a different campaign.
func DecodeWireRequest(r io.Reader) (WireRequest, error) {
	var w WireRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return WireRequest{}, fmt.Errorf("core: decoding request: %w", err)
	}
	return w, nil
}

// Normalize validates the wire request and returns its canonical form:
// the placement spelled as Kind.String(), the workload verified against
// the registry, and Runs checked positive. Name passes through untouched
// (it is a label, not content).
func (w WireRequest) Normalize() (WireRequest, error) {
	kind, err := placement.ParseKind(w.Placement)
	if err != nil {
		return WireRequest{}, fmt.Errorf("core: %w", err)
	}
	if _, err := workload.ByName(w.Workload); err != nil {
		return WireRequest{}, fmt.Errorf("core: %w", err)
	}
	if w.Runs < 1 {
		return WireRequest{}, errors.New("core: request needs at least one run")
	}
	w.Placement = kind.String()
	return w, nil
}

// Request resolves the wire form into an executable Request: the platform
// is PlatformFor(placement kind), the workload comes from the registry.
func (w WireRequest) Request() (Request, error) {
	n, err := w.Normalize()
	if err != nil {
		return Request{}, err
	}
	kind, _ := placement.ParseKind(n.Placement)
	wl, _ := workload.ByName(n.Workload)
	req := Request{
		Name:       n.Name,
		Spec:       PlatformFor(kind),
		Workload:   wl,
		Runs:       n.Runs,
		MasterSeed: n.Seed,
		Baseline:   n.Baseline,
		Analyze:    n.Analyze,
	}
	if n.Layout != nil {
		l := n.Layout.Layout()
		req.Layout = &l
	}
	return req, nil
}

// Label returns the display name of the campaign: Name if set, else the
// workload name with the same "/hwm" baseline suffix Request.name uses.
func (w WireRequest) Label() string {
	if w.Name != "" {
		return w.Name
	}
	n := w.Workload
	if w.Baseline {
		n += "/hwm"
	}
	return n
}

// fingerprintVersion tags the hash layout; bump it if the canonical
// serialization below ever changes meaning.
const fingerprintVersion = "rmfp1"

// Fingerprint returns the content address of the campaign: a 128-bit hex
// digest over the normalized request fields that determine the result
// (placement kind, workload, runs, seed, baseline, analyze, layout).
// The display Name is excluded. By the Engine's determinism contract,
// equal fingerprints yield bit-identical Times on any host, for any pool
// size -- which is what makes results safely cacheable by fingerprint.
func (w WireRequest) Fingerprint() (string, error) {
	n, err := w.Normalize()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|placement=%s|workload=%s|runs=%d|seed=%d|baseline=%t|analyze=%t",
		fingerprintVersion, n.Placement, n.Workload, n.Runs, n.Seed, n.Baseline, n.Analyze)
	if n.Layout != nil {
		fmt.Fprintf(&b, "|layout=%d,%d,%d,%d,%d", n.Layout.Code, n.Layout.Data,
			n.Layout.Table, n.Layout.Stack, n.Layout.Pool)
		for _, s := range n.Layout.Scatter {
			fmt.Fprintf(&b, ",%d", s)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:16]), nil
}

// PlacementNames returns the user-facing names of every placement kind in
// declaration order, for service catalogs and usage messages.
func PlacementNames() []string {
	kinds := placement.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// ResolveNames maps the user-facing workload and placement names shared
// by the CLIs (-workload/-placement flags) and usage messages to their
// registry entries. An unknown name is a usage error: the commands
// report it on exit code 2 (the paperbench -exp convention).
func ResolveNames(wname, pname string) (workload.Workload, placement.Kind, error) {
	w, err := workload.ByName(wname)
	if err != nil {
		return workload.Workload{}, 0, err
	}
	kind, err := placement.ParseKind(pname)
	if err != nil {
		return workload.Workload{}, 0, err
	}
	return w, kind, nil
}
