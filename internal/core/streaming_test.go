package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/evt"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sameSummary compares the exact parts of two Summaries: count, sum,
// extremes and the full sketch. The Welford variance term is grouping-
// dependent in its last ulps and deliberately outside the bit-identity
// contract, so it is not compared.
func sameSummary(a, b Summary) bool {
	return a.Moments.N == b.Moments.N &&
		a.Moments.Sum == b.Moments.Sum &&
		a.Moments.Min == b.Moments.Min &&
		a.Moments.Max == b.Moments.Max &&
		a.Sketch == b.Sketch
}

// TestStreamingMatchesBufferedAnalysis pins the tentpole contract: for
// every timing-campaign kind and worker counts {1, 4, GOMAXPROCS}, the
// engine's streaming analysis is bit-identical to the buffered reference
// pipeline Analyze(res.Times), and the streaming Summary reproduces the
// batch statistics of the buffered vector exactly.
func TestStreamingMatchesBufferedAnalysis(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"mbpta-rm", Request{Spec: PaperPlatform(placement.RM), Runs: 120, MasterSeed: 7, Analyze: true}},
		{"mbpta-hrp", Request{Spec: PaperPlatform(placement.HRP), Runs: 120, MasterSeed: 9, Analyze: true}},
		// tblook01's layout-randomized baseline has enough tail variance for
		// the Gumbel fit to accept its block maxima at this scale.
		{"baseline-hwm", Request{Spec: DeterministicPlatform(), Runs: 60, MasterSeed: 11, Baseline: true, Analyze: true}},
	}
	cases[0].req.Workload = mustWorkload(t, "tblook01")
	cases[1].req.Workload = mustWorkload(t, "puwmod01")
	cases[2].req.Workload = mustWorkload(t, "tblook01")

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref Result
			for wi, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				eng := NewEngine(WithWorkers(workers))
				res, err := eng.Run(context.Background(), tc.req)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Analysis == nil {
					t.Fatalf("workers=%d: no analysis", workers)
				}
				// Streaming vs buffered: same vector, same verdicts, bitwise.
				buffered, err := Analyze(res.Times)
				if err != nil {
					t.Fatalf("workers=%d: buffered Analyze: %v", workers, err)
				}
				if *res.Analysis != buffered {
					t.Fatalf("workers=%d: streaming analysis %+v differs from buffered %+v",
						workers, *res.Analysis, buffered)
				}
				// Summary vs the buffered vector's batch statistics.
				if res.Summary.Moments.N != int64(len(res.Times)) {
					t.Fatalf("workers=%d: summary N=%d, runs=%d", workers, res.Summary.Moments.N, len(res.Times))
				}
				if res.HWM() != stats.Max(res.Times) || res.Mean() != stats.Mean(res.Times) {
					t.Fatalf("workers=%d: summary HWM/Mean diverge from batch", workers)
				}
				var batch Summary
				for _, x := range res.Times {
					batch.Moments.Add(x)
					batch.Sketch.Add(x)
				}
				if !sameSummary(res.Summary, batch) {
					t.Fatalf("workers=%d: merged summary differs from batch-filled summary", workers)
				}
				// Across worker counts everything must agree bitwise.
				if wi == 0 {
					ref = res
					continue
				}
				for i := range res.Times {
					if res.Times[i] != ref.Times[i] {
						t.Fatalf("workers=%d: Times[%d] differs from workers=1", workers, i)
					}
				}
				if *res.Analysis != *ref.Analysis {
					t.Fatalf("workers=%d: analysis differs from workers=1", workers)
				}
				if !sameSummary(res.Summary, ref.Summary) {
					t.Fatalf("workers=%d: summary differs from workers=1", workers)
				}
			}
		})
	}
}

// TestKeepTimesDrop: dropping the measurement vector changes nothing but
// Times — analysis, summary and the derived HWM/Mean stay bit-identical.
func TestKeepTimesDrop(t *testing.T) {
	req := Request{
		Spec: PaperPlatform(placement.RM), Workload: mustWorkload(t, "tblook01"),
		Runs: 120, MasterSeed: 7, Analyze: true,
	}
	eng := NewEngine(WithWorkers(4))
	keep, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.KeepTimes = TimesDrop
	drop, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if drop.Times != nil {
		t.Fatalf("TimesDrop left a %d-entry vector", len(drop.Times))
	}
	if !sameSummary(keep.Summary, drop.Summary) {
		t.Fatal("summary differs between keep and drop")
	}
	if *keep.Analysis != *drop.Analysis {
		t.Fatal("analysis differs between keep and drop")
	}
	if drop.HWM() != keep.HWM() || drop.Mean() != keep.Mean() {
		t.Fatal("HWM/Mean differ between keep and drop")
	}
	if drop.Levels != keep.Levels {
		t.Fatal("level counters differ between keep and drop")
	}
}

// TestKeepTimesDropSecurity: the security family honours the knob too —
// Times vanishes while the summary and the attack aggregate are unchanged.
func TestKeepTimesDropSecurity(t *testing.T) {
	req := secRequest(security.EvictionSet, 24)
	eng := NewEngine(WithWorkers(2))
	keep, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.KeepTimes = TimesDrop
	drop, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if drop.Times != nil {
		t.Fatalf("TimesDrop left a %d-entry vector", len(drop.Times))
	}
	if !sameSummary(keep.Summary, drop.Summary) {
		t.Fatal("summary differs between keep and drop")
	}
	if drop.Security == nil || keep.Security == nil {
		t.Fatal("missing security aggregate")
	}
	if drop.HWM() != keep.HWM() || drop.Mean() != keep.Mean() {
		t.Fatal("HWM/Mean differ between keep and drop")
	}
}

// TestSnapshotDeterminism: every snapshot the engine emits is the pure
// function of its covered prefix — recomputing the same prefix through a
// fresh accumulator reproduces it field for field — and snapshots arrive
// with strictly increasing coverage.
func TestSnapshotDeterminism(t *testing.T) {
	req := Request{
		Spec: PaperPlatform(placement.RM), Workload: mustWorkload(t, "tblook01"),
		Runs: 160, MasterSeed: 13,
	}
	var mu sync.Mutex
	var snaps []Snapshot
	eng := NewEngine(WithWorkers(4), WithEvents(func(ev Event) {
		if ev.Kind == SnapshotTaken && ev.Snapshot != nil {
			mu.Lock()
			snaps = append(snaps, *ev.Snapshot)
			mu.Unlock()
		}
	}))
	res, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots emitted")
	}
	last := snaps[len(snaps)-1]
	if last.Runs != req.Runs {
		t.Fatalf("final snapshot covers %d runs, want %d", last.Runs, req.Runs)
	}
	if last.Mean != res.Mean() || last.Max != res.HWM() {
		t.Fatal("final snapshot disagrees with the result aggregates")
	}
	prev := 0
	for _, s := range snaps {
		if s.Runs <= prev {
			t.Fatalf("snapshot coverage not increasing: %d after %d", s.Runs, prev)
		}
		prev = s.Runs
		if s.Total != req.Runs {
			t.Fatalf("snapshot Total = %d, want %d", s.Total, req.Runs)
		}
		// Recompute the same prefix through a fresh accumulator.
		acc := newCampaignAccum(req.Runs)
		ca := acc.newChunk(0, s.Runs)
		for run := 0; run < s.Runs; run++ {
			x := res.Times[run]
			if run < len(acc.window) {
				acc.window[run] = x
			}
			ca.add(run, x)
		}
		acc.commit(ca)
		acc.mu.Lock()
		want := acc.snapshotLocked()
		acc.mu.Unlock()
		// AccumBytes depends on transient pending-chunk occupancy, not on
		// the data; everything else must reproduce exactly.
		s.AccumBytes, want.AccumBytes = 0, 0
		if s != want {
			t.Fatalf("snapshot at %d runs %+v != recomputed %+v", s.Runs, s, want)
		}
	}
}

// TestAnalyzeRejectsInvalidTimes: both the buffered pipeline and the
// streaming accumulators reject NaN/Inf/negative measurements with the
// typed error, reporting the lowest offending index.
func TestAnalyzeRejectsInvalidTimes(t *testing.T) {
	base := make([]float64, 60)
	for i := range base {
		base[i] = float64(1000 + i%7)
	}
	for _, tc := range []struct {
		name string
		val  float64
	}{
		{"nan", math.NaN()},
		{"posinf", math.Inf(1)},
		{"neginf", math.Inf(-1)},
		{"negative", -4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			times := append([]float64(nil), base...)
			times[17] = tc.val
			times[41] = tc.val // a later offender must not win
			_, err := Analyze(times)
			var ite *evt.InvalidTimeError
			if !errors.As(err, &ite) {
				t.Fatalf("Analyze error = %v, want *evt.InvalidTimeError", err)
			}
			if ite.Index != 17 {
				t.Fatalf("reported index %d, want 17 (lowest)", ite.Index)
			}

			// Streaming path: same verdict through the accumulators, even
			// when the offenders land in different chunks.
			acc := newCampaignAccum(len(times))
			mid := 30
			ca1, ca2 := acc.newChunk(0, mid), acc.newChunk(mid, len(times))
			for run, x := range times {
				if run < len(acc.window) {
					acc.window[run] = x
				}
				if run < mid {
					ca1.add(run, x)
				} else {
					ca2.add(run, x)
				}
			}
			acc.commit(ca2) // out-of-order commit exercises the frontier
			acc.commit(ca1)
			_, err = acc.analysis()
			ite = nil
			if !errors.As(err, &ite) {
				t.Fatalf("streaming analysis error = %v, want *evt.InvalidTimeError", err)
			}
			if ite.Index != 17 {
				t.Fatalf("streaming reported index %d, want 17", ite.Index)
			}
		})
	}
	if _, err := Analyze(base); err != nil {
		t.Fatalf("valid times rejected: %v", err)
	}
}

// TestStreamingAllocsIndependentOfRuns pins the O(1)-in-runs memory
// claim: with KeepTimes=TimesDrop, the allocation count of a campaign
// does not grow with its run count (beyond the fixed IID window and the
// per-chunk accumulators).
func TestStreamingAllocsIndependentOfRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation profile run")
	}
	w := workload.Synthetic(2048, 1, 4) // tiny trace: allocation noise dominates runs, not replay
	campaign := func(runs int) float64 {
		eng := NewEngine(WithWorkers(1))
		return testing.AllocsPerRun(1, func() {
			_, err := eng.Run(context.Background(), Request{
				Spec: DeterministicPlatform(), Workload: w,
				Runs: runs, MasterSeed: 3, KeepTimes: TimesDrop,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	small := campaign(2000)
	large := campaign(8000)
	// 4x the runs must not mean 4x the allocations: everything per-run is
	// amortized into per-chunk accumulators. Allow fixed slack for the
	// runtime's background noise.
	if large > small+64 {
		t.Fatalf("allocations grew with campaign size: %0.f allocs at 2000 runs, %0.f at 8000", small, large)
	}
}

// BenchmarkStreamingCampaign measures a drop-times campaign end to end;
// b.ReportAllocs makes the O(1)-in-runs allocation profile visible
// (allocs/op stays flat as -benchtime or the runs constant grows).
func BenchmarkStreamingCampaign(b *testing.B) {
	w := workload.Synthetic(2048, 1, 4)
	eng := NewEngine(WithWorkers(1))
	req := Request{
		Spec: DeterministicPlatform(), Workload: w,
		Runs: 4000, MasterSeed: 3, KeepTimes: TimesDrop,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
