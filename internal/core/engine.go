package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/prng"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Request describes one measurement campaign for a Runner or Engine: one
// program, many runs, all randomness derived from MasterSeed and the run
// index. A Request carries no execution knobs -- the worker pool belongs
// to the Engine, so dozens of Requests can share it.
type Request struct {
	// Name labels the campaign in Events. Empty defaults to the workload
	// name, suffixed "/hwm" for baseline requests.
	Name       string
	Spec       PlatformSpec
	Workload   workload.Workload
	Runs       int
	MasterSeed uint64
	// Layout optionally overrides the base memory layout. MBPTA campaigns
	// build their single shared trace from it; Baseline campaigns perturb
	// it per run (see HWMCampaign's determinism contract).
	Layout *workload.Layout
	// Baseline selects the industrial high-water-mark protocol instead of
	// the MBPTA one: each run rebuilds the trace under a freshly
	// randomized memory layout (typically on a deterministic platform)
	// rather than drawing a fresh hardware seed over a fixed layout.
	Baseline bool
	// Analyze additionally applies the MBPTA statistical pipeline to the
	// collected times and stores it in Result.Analysis.
	Analyze bool
	// Security selects the attacker-campaign family instead of a timing
	// campaign: Runs counts attack rounds on the standalone attacked cache
	// described by the spec, and Result.Security carries the
	// success-vs-effort curves. Spec is ignored; Workload optionally names
	// the occupancy protocol's victim (empty selects the synthetic
	// victim); Baseline and Analyze do not apply and are rejected.
	Security *security.Spec
	// KeepTimes controls whether Result.Times retains the per-run
	// measurement vector. The zero value keeps it (full back-compat);
	// TimesDrop leaves Times nil so a campaign's steady-state memory is
	// independent of its run count — Summary, the analysis and the miss
	// ratios are unaffected (they come from streaming accumulators either
	// way).
	KeepTimes TimesMode

	// Resume restarts the campaign from a checkpoint previously captured
	// via OnCheckpoint (and usually round-tripped through
	// Encode/DecodeCheckpoint across a crash). The checkpoint must match
	// the request's kind, master seed, run count and KeepTimes mode
	// (*ResumeMismatchError otherwise); only runs past the checkpoint's
	// frontier execute, and the completed Result is bit-identical to an
	// uninterrupted campaign for any worker count on either side of the
	// interruption. Resume is an execution knob like the pool size: it is
	// not part of the wire codec and does not enter the Fingerprint.
	Resume *Checkpoint
	// CheckpointEvery captures a checkpoint each time the merged frontier
	// advances at least this many runs past the previous capture (0
	// disables capture). Captures happen at chunk-merge boundaries, so the
	// effective cadence is the next frontier advance at or after the
	// requested stride.
	CheckpointEvery int
	// OnCheckpoint receives captured checkpoints. Like the Events sink it
	// is called on the worker path under internal locks: it must be fast
	// and non-blocking (hand the pointer to a channel or goroutine; the
	// Checkpoint is immutable once delivered) and must not call back into
	// the Runner.
	OnCheckpoint func(*Checkpoint)
}

// TimesMode selects the fate of the per-run measurement vector. It is an
// enum rather than a bool so the zero-value Request keeps today's
// buffered behaviour.
type TimesMode int

const (
	// TimesKeep retains Result.Times (the default).
	TimesKeep TimesMode = iota
	// TimesDrop discards per-run times; aggregates live in Result.Summary.
	TimesDrop
)

// Kind discriminates the campaign families a Request can select.
type Kind int

// Campaign kinds.
const (
	KindMBPTA Kind = iota
	KindBaseline
	KindSecurity
)

// String names the kind for catalogs and logs.
func (k Kind) String() string {
	switch k {
	case KindMBPTA:
		return "mbpta"
	case KindBaseline:
		return "baseline"
	case KindSecurity:
		return "security"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindNames returns the campaign-kind names in declaration order, for
// service discovery.
func KindNames() []string {
	return []string{KindMBPTA.String(), KindBaseline.String(), KindSecurity.String()}
}

// Kind reports which campaign family the request selects.
func (r Request) Kind() Kind {
	switch {
	case r.Security != nil:
		return KindSecurity
	case r.Baseline:
		return KindBaseline
	default:
		return KindMBPTA
	}
}

// name resolves the event label of the request.
func (r Request) name() string {
	if r.Name != "" {
		return r.Name
	}
	if r.Security != nil {
		return fmt.Sprintf("security/%s/%s/%s",
			r.Security.Protocol, r.Security.Placement, r.Security.Replacement)
	}
	n := r.Workload.Name
	if r.Baseline {
		n += "/hwm"
	}
	return n
}

// Result is the outcome of one Request. It embeds the classic
// CampaignResult: MBPTA requests fill all of it; Baseline requests fill
// Times and the per-level counters (which the legacy HWMResult
// discarded) but leave the Trace accounting zero, since the trace is
// rebuilt per run rather than shared. When the campaign was cancelled
// mid-flight, Times holds the completed runs at their indices and zeros
// elsewhere, alongside the returned error.
type Result struct {
	Name string
	CampaignResult
	// Analysis is set when Request.Analyze was true and the campaign
	// completed.
	Analysis *Analysis
	// Security is set for security campaigns (Request.Security non-nil):
	// the aggregated success-vs-effort curves and channel statistics. For
	// those campaigns Times holds per-round attacker access counts and the
	// per-level counters stay zero (the attacked cache is standalone).
	Security *security.Result
}

// EventKind discriminates Engine progress events.
type EventKind int

const (
	// CampaignStarted fires once per request, before its first run.
	CampaignStarted EventKind = iota
	// RunCompleted fires after every simulated run.
	RunCompleted
	// CampaignFinished fires once per request, after its last run, the
	// optional analysis, or a failure (Err non-nil).
	CampaignFinished
	// PhaseDone fires when a campaign phase ends (Event.Phase names it:
	// "compile", "replay", "analyze"), so observers can attribute wall
	// time without any clock read on the execution path. Phases that do
	// not apply to a campaign kind simply never fire (baseline campaigns
	// rebuild their trace per run, security campaigns never analyze).
	PhaseDone
	// SnapshotTaken fires each time the streaming accumulators advance
	// over a longer contiguous run prefix; Event.Snapshot carries the
	// converging statistics (timing campaigns only). Snapshots arrive in
	// increasing Runs order, at most one per completed chunk.
	SnapshotTaken
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case CampaignStarted:
		return "started"
	case RunCompleted:
		return "run"
	case CampaignFinished:
		return "finished"
	case PhaseDone:
		return "phase"
	case SnapshotTaken:
		return "snapshot"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Campaign phase names carried by PhaseDone events.
const (
	PhaseCompile = "compile"
	PhaseReplay  = "replay"
	PhaseAnalyze = "analyze"
)

// Event is one progress notification. Deliveries are serialized (the sink
// never runs concurrently with itself), so sinks need no locking of their
// own. The sink is called synchronously on the worker path while internal
// locks are held: it must return quickly, must not block (send to a
// buffered channel or drop, never an unbuffered rendezvous), and must not
// call back into the Engine or Runner that delivered the event.
type Event struct {
	Kind         EventKind
	Campaign     string // Request.Name (or its default)
	CampaignKind Kind   // campaign family of the request (Request.Kind())
	Phase        string // completed phase name (PhaseDone only)
	Index        int    // position of the request in its batch (0 for Run)
	Run          int    // completed run index (RunCompleted only)
	Cycles       float64
	Done         int       // completed runs so far, campaign-local
	Total        int       // Request.Runs
	Snapshot     *Snapshot // converging statistics (SnapshotTaken only)
	Err          error     // CampaignFinished only; nil on success
}

// Runner executes campaign Requests over a shared Pool of simulation
// workers. It is the core execution primitive of the library:
// Campaign.Run, HWMCampaign.Run and RunAndAnalyze are thin deprecated
// requests to a private Runner, and Engine layers options, defaults and
// batch orchestration on top of one.
//
// The zero value is ready to use (it allocates a private GOMAXPROCS pool
// on first run). A Runner is safe for concurrent use.
type Runner struct {
	// Pool is the shared worker allotment; nil selects a private
	// GOMAXPROCS-sized pool on first use.
	Pool *Pool
	// Events receives progress notifications; nil disables them. See
	// Event for the sink contract (fast, non-blocking, no re-entry).
	Events func(Event)
	// CheckpointReplay runs every campaign through an interrupt + wire
	// round trip + resume cycle instead of straight through (see
	// WithCheckpointReplay). Results must be unchanged; it exists so the
	// bench trajectory can pin that claim.
	CheckpointReplay bool

	mu   sync.Mutex // guards lazy Pool init
	evmu sync.Mutex // serializes Events deliveries
}

func (r *Runner) pool() *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Pool == nil {
		r.Pool = NewPool(0)
	}
	return r.Pool
}

func (r *Runner) emit(ev Event) {
	if r.Events == nil {
		return
	}
	r.evmu.Lock()
	defer r.evmu.Unlock()
	r.Events(ev)
}

// Run executes one Request to completion (or cancellation). Results are a
// pure function of the Request: they are bit-identical for any pool size
// and regardless of what else runs on the pool concurrently.
func (r *Runner) Run(ctx context.Context, req Request) (Result, error) {
	return r.run(ctx, 0, req)
}

// run executes req as batch member index, detouring through the
// checkpoint-replay harness when the Runner asks for it.
func (r *Runner) run(ctx context.Context, index int, req Request) (Result, error) {
	if r.CheckpointReplay && req.Resume == nil && req.OnCheckpoint == nil && req.Runs > 1 {
		return r.runReplay(ctx, index, req)
	}
	return r.runOnce(ctx, index, req)
}

// runReplay is the self-checking execution mode behind
// WithCheckpointReplay: run until the first checkpoint past the midpoint,
// cancel, round-trip the checkpoint through the wire codec, and resume.
// The completed Result must be — and the resumed-bench CI gate asserts it
// is — bit-identical to a plain run.
//
// Event consumers see the two legs spliced into ONE campaign: the first
// leg's cancellation Finished and the second leg's Started are dropped,
// so the stream still carries exactly one CampaignStarted and one
// CampaignFinished per submitted request. Runs the first leg completed
// past the checkpoint frontier re-execute on the second leg and re-emit
// RunCompleted with bit-identical cycles; across the splice the Done
// counter may step back once (the strict monotonicity of a plain run is
// relaxed to per-leg monotonicity).
func (r *Runner) runReplay(ctx context.Context, index int, req Request) (Result, error) {
	leg, cancel := context.WithCancel(ctx)
	defer cancel()
	var captured atomic.Pointer[Checkpoint]
	first := req
	first.CheckpointEvery = (req.Runs + 1) / 2
	first.OnCheckpoint = func(cp *Checkpoint) {
		if captured.CompareAndSwap(nil, cp) {
			cancel()
		}
	}
	// Sub-runners share the pool but filter the splice-point events,
	// forwarding the rest through r.emit so deliveries stay serialized
	// with every other campaign on this Runner.
	var fin *Event // leg 1's suppressed Finished; emitted from runOnce's own goroutine
	leg1 := &Runner{Pool: r.pool()}
	if r.Events != nil {
		leg1.Events = func(ev Event) {
			if ev.Kind == CampaignFinished {
				fin = &ev
				return
			}
			r.emit(ev)
		}
	}
	res1, err1 := leg1.runOnce(leg, index, first)
	cp := captured.Load()
	if cp == nil {
		// The campaign finished (or failed) before any checkpoint fired —
		// nothing to resume; the first leg already is the plain run. Emit
		// the Finished withheld by the filter to complete the stream.
		if fin != nil {
			r.emit(*fin)
		}
		return res1, err1
	}
	dec, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		return Result{Name: req.name()}, fmt.Errorf("core: checkpoint replay round trip: %w", err)
	}
	leg2 := &Runner{Pool: r.pool()}
	if r.Events != nil {
		leg2.Events = func(ev Event) {
			if ev.Kind == CampaignStarted {
				return
			}
			r.emit(ev)
		}
	}
	second := req
	second.Resume = dec
	return leg2.runOnce(ctx, index, second)
}

// runOnce executes req once. On cancellation the returned error wraps
// ctx.Err() (so errors.Is(err, context.Canceled) holds) and the Result
// carries the partial measurement vector.
func (r *Runner) runOnce(ctx context.Context, index int, req Request) (Result, error) {
	res := Result{Name: req.name()}
	kind := req.Kind()
	var done atomic.Int64
	// Every submitted request emits exactly one CampaignStarted and one
	// CampaignFinished (Err set on failure), so stream consumers can
	// count completions without special-casing validation errors.
	r.emit(Event{Kind: CampaignStarted, Campaign: res.Name, CampaignKind: kind, Index: index, Total: req.Runs})
	finish := func(err error) (Result, error) {
		r.emit(Event{Kind: CampaignFinished, Campaign: res.Name, CampaignKind: kind, Index: index,
			Done: int(done.Load()), Total: req.Runs, Err: err})
		return res, err
	}
	// phase marks a phase boundary for observers (latency attribution,
	// trace spans). Like every event it is emitted off the replay path —
	// at most three deliveries per campaign — and carries no timestamp:
	// clocks stay with the observers, keeping this package deterministic.
	phase := func(name string) {
		r.emit(Event{Kind: PhaseDone, Campaign: res.Name, CampaignKind: kind, Index: index,
			Phase: name, Done: int(done.Load()), Total: req.Runs})
	}
	if req.Runs < 1 {
		return finish(errors.New("core: campaign needs at least one run"))
	}
	if req.Security != nil {
		return r.runSecurity(ctx, index, req, &res, &done, finish)
	}
	if req.Workload.Build == nil {
		return finish(errors.New("core: campaign needs a workload"))
	}

	var do func(p *sim.Core, run int) (sim.Result, error)
	if req.Baseline {
		do = func(p *sim.Core, run int) (sim.Result, error) {
			seed := prng.Derive(req.MasterSeed^hwmSeedTag, run)
			g := prng.New(seed)
			var layout workload.Layout
			if req.Layout != nil {
				layout = workload.RandomizedLayoutFrom(*req.Layout, g)
			} else {
				layout = workload.RandomizedLayout(g)
			}
			tr := req.Workload.Build(layout)
			if len(tr) == 0 {
				return sim.Result{}, fmt.Errorf("core: workload %s built an empty trace for run %d", req.Workload.Name, run)
			}
			// Reseed rather than Flush: deterministic policies ignore the
			// seed (so the typical modulo+LRU baseline is unchanged), while
			// any randomized policy in Spec becomes a pure function of the
			// run index instead of carrying PRNG state across runs.
			p.Reseed(seed)
			// The baseline rebuilds its trace per run, so the compiled form
			// is rebuilt per run too (unlike MBPTA's build-once; measured a
			// wash even for the cheap modulo+LRU spec, since the trace build
			// dominates — see BenchmarkHotPathBaseline*). Replays are
			// bit-identical to p.Run(tr) by RunCompiled's contract.
			if p.SupportsCompiled(req.Spec.LineBytes) {
				if ct, err := trace.Compile(tr, req.Spec.LineBytes); err == nil {
					return p.RunCompiled(ct), nil
				}
			}
			return p.Run(tr), nil
		}
	} else {
		layout := workload.DefaultLayout()
		if req.Layout != nil {
			layout = *req.Layout
		}
		// The one-time trace build (and its compilation) runs under a pool
		// slot too: a large RunBatch spawns one goroutine per request, and
		// without the gate they would all build concurrently regardless of
		// the pool size.
		if err := r.pool().acquire(ctx); err != nil {
			return finish(fmt.Errorf("core: campaign %s aborted before any runs: %w", res.Name, err))
		}
		tr := req.Workload.Build(layout)
		// Compile once per campaign: the trace is fixed while only seeds
		// change, so all workers share one read-only Compiled and each run
		// materializes its index plans from it (the campaign hot path).
		// A nil ct (odd line size) falls back to the legacy per-access
		// path, which is bit-identical by contract.
		ct, _ := trace.Compile(tr, req.Spec.LineBytes)
		r.pool().release()
		if len(tr) == 0 {
			return finish(fmt.Errorf("core: workload %s built an empty trace", req.Workload.Name))
		}
		f, l, st := tr.Counts()
		res.Trace.Accesses = len(tr)
		res.Trace.Fetches, res.Trace.Loads, res.Trace.Stores = f, l, st
		phase(PhaseCompile)
		do = func(p *sim.Core, run int) (sim.Result, error) {
			p.Reseed(prng.Derive(req.MasterSeed, run))
			if ct != nil && p.SupportsCompiled(ct.LineBytes) {
				return p.RunCompiled(ct), nil
			}
			return p.Run(tr), nil
		}
	}

	// All aggregates stream through the campaign accumulator; the buffered
	// vector is only allocated when the caller wants it back.
	acc := newCampaignAccum(req.Runs)
	acc.meta = ckptMeta{kind: kind, seed: req.MasterSeed, keepTimes: req.KeepTimes}
	if r.Events != nil {
		acc.onProgress = func(s Snapshot) {
			snap := s
			r.emit(Event{Kind: SnapshotTaken, Campaign: res.Name, CampaignKind: kind, Index: index,
				Snapshot: &snap, Done: s.Runs, Total: req.Runs})
		}
	}
	if req.CheckpointEvery > 0 {
		acc.ckptEvery = req.CheckpointEvery
		acc.onCheckpoint = req.OnCheckpoint
	}
	var times []float64
	if req.KeepTimes == TimesKeep {
		times = make([]float64, req.Runs)
	}
	acc.times = times
	start := 0
	if req.Resume != nil {
		if err := req.Resume.validate(req); err != nil {
			return finish(err)
		}
		acc.restore(req.Resume)
		start = req.Resume.Frontier
		done.Store(int64(start))
	}
	onRun := func(run int, sr sim.Result) {
		// The increment and the delivery share the mutex so the Done
		// counter in the event stream is strictly monotone.
		if r.Events == nil {
			done.Add(1)
			return
		}
		r.evmu.Lock()
		n := int(done.Add(1))
		r.Events(Event{
			Kind: RunCompleted, Campaign: res.Name, CampaignKind: kind, Index: index,
			Run: run, Cycles: float64(sr.Cycles), Done: n, Total: req.Runs,
		})
		r.evmu.Unlock()
	}

	totals, err := runShards(ctx, r.pool(), req.Spec, start, times, acc, do, onRun)
	res.Times = times
	res.Summary = acc.summary()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("core: campaign %s aborted after %d/%d runs: %w",
				res.Name, done.Load(), req.Runs, err)
		}
		return finish(err)
	}
	res.Levels = totals
	res.IL1Miss = totals.IL1.MissRatio()
	res.DL1Miss = totals.DL1.MissRatio()
	res.L2Miss = totals.L2.MissRatio()
	phase(PhaseReplay)

	if req.Analyze {
		// The analysis comes from the streaming accumulators — bit-identical
		// to the buffered Analyze(res.Times), which stays as the reference
		// oracle in the differential tests.
		an, err := acc.analysis()
		if err != nil {
			return finish(err)
		}
		res.Analysis = &an
		phase(PhaseAnalyze)
	}
	return finish(nil)
}

// Engine is the context-aware front door of the library: one shared
// simulation worker pool serving any number of campaigns, with optional
// progress events and batch orchestration. Construct it once per process
// (or per experiment suite) and submit Requests to it; parallelism is
// purely a wall-clock knob, never a results knob.
type Engine struct {
	runner      Runner
	defaultRuns int
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithWorkers sizes the shared simulation pool (non-positive selects
// runtime.GOMAXPROCS(0)).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.runner.Pool = NewPool(n) }
}

// WithPool shares an existing pool with another Engine or with custom
// ShardRunsPool sweeps.
func WithPool(p *Pool) EngineOption {
	return func(e *Engine) { e.runner.Pool = p }
}

// WithEvents installs a progress sink. Deliveries are serialized, so the
// sink needs no locking; see Event for the rest of the contract (fast,
// non-blocking, no re-entry). A channel-backed sink over a generously
// buffered channel is one line: WithEvents(func(ev Event) { ch <- ev }).
func WithEvents(sink func(Event)) EngineOption {
	return func(e *Engine) { e.runner.Events = sink }
}

// WithCheckpointReplay makes the Engine execute every campaign as an
// interrupted-and-resumed pair: run to the first checkpoint past the
// midpoint, cancel, round-trip the checkpoint through
// Encode/DecodeCheckpoint, and resume to completion. Results are
// bit-identical to plain runs by the resume contract — `paperbench
// -resume-check` uses this to regenerate the bench trajectory through the
// crash path so CI can compare it against the committed snapshots.
func WithCheckpointReplay() EngineOption {
	return func(e *Engine) { e.runner.CheckpointReplay = true }
}

// WithDefaultRuns sets the campaign scale applied to Requests that leave
// Runs at zero, so experiment suites configure size once on the Engine.
func WithDefaultRuns(n int) EngineOption {
	return func(e *Engine) { e.defaultRuns = n }
}

// NewEngine builds an Engine; with no options it uses a GOMAXPROCS-sized
// pool, no events, and no default scale.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.runner.Pool == nil {
		e.runner.Pool = NewPool(0)
	}
	return e
}

// Workers reports the shared pool size.
func (e *Engine) Workers() int { return e.runner.pool().Workers() }

// Pool exposes the shared pool for custom sweeps (ShardRunsPool) that
// should contend with the Engine's campaigns instead of oversubscribing
// the host.
func (e *Engine) Pool() *Pool { return e.runner.pool() }

func (e *Engine) prepared(req Request) Request {
	if req.Runs == 0 && e.defaultRuns > 0 {
		req.Runs = e.defaultRuns
	}
	return req
}

// Run executes one campaign over the shared pool. Cancelling ctx aborts
// it mid-campaign: the returned error wraps ctx.Err() and the Result
// holds the partial measurement vector.
func (e *Engine) Run(ctx context.Context, req Request) (Result, error) {
	return e.runner.run(ctx, 0, e.prepared(req))
}

// RunBatch schedules many campaigns over the shared pool at once and
// waits for all of them. Per-campaign results are bit-identical to
// running each Request alone (randomness derives from each campaign's
// MasterSeed and run indices, never from scheduling), so a batch is the
// preferred way to drive an experiment suite: one pool, full machine
// utilization, deterministic output.
//
// All requests run even if some fail; the returned error is the
// lowest-indexed failure (use the per-Result contents for the rest).
// Cancelling ctx aborts every member with a wrapped ctx.Err().
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	results := make([]Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			results[i], errs[i] = e.runner.run(ctx, i, req)
		}(i, e.prepared(req))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
