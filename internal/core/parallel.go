package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/sim"
)

// LevelStats aggregates the per-level cache counters of a whole campaign.
// Counters are exact sums over runs, so the aggregate is identical for any
// worker count and any scheduling of the shards.
type LevelStats struct {
	IL1, DL1, L2 cache.Stats
}

func (t *LevelStats) add(r sim.Result) {
	t.IL1 = addStats(t.IL1, r.IL1)
	t.DL1 = addStats(t.DL1, r.DL1)
	t.L2 = addStats(t.L2, r.L2)
}

func addStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   a.Accesses + b.Accesses,
		Hits:       a.Hits + b.Hits,
		Misses:     a.Misses + b.Misses,
		Evictions:  a.Evictions + b.Evictions,
		Writebacks: a.Writebacks + b.Writebacks,
		Flushes:    a.Flushes + b.Flushes,
	}
}

// normWorkers resolves a Workers knob: non-positive selects
// runtime.GOMAXPROCS(0), and the pool never exceeds one worker per run.
func normWorkers(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Pool is a shared allotment of simulation worker slots. Any number of
// campaigns (and custom ShardRunsPool sweeps) can execute over one Pool
// concurrently; the Pool caps how many simulation goroutines run at once
// without influencing any campaign's results.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool of the given size; non-positive selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Workers reports the pool capacity.
func (p *Pool) Workers() int { return cap(p.slots) }

// acquire blocks until a slot is free or the context is done.
func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.slots }

// ShardRuns executes runs [0, runs) across a pool of workers. Each worker
// calls build once to obtain its private execution context (simulators are
// not safe for concurrent use) and then processes a contiguous block of
// run indices; do must derive all randomness from the run index alone and
// write any per-run output into run-indexed slots, which makes results
// bit-identical for any worker count. Non-positive workers selects
// runtime.GOMAXPROCS(0). The error of the lowest-numbered failing shard is
// returned. Exposed for drivers whose execution context is not a single
// sim.Core (e.g. the multicore contention study's sim.System).
func ShardRuns[T any](workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return ShardRunsContext(context.Background(), workers, runs, build, do)
}

// ShardRunsContext is the context-aware ShardRuns: cancelling ctx aborts
// the sweep between runs (and while waiting for pool slots) and returns
// ctx.Err(). Runs that completed before the cancellation have written
// their run-indexed outputs; the rest are untouched.
func ShardRunsContext[T any](ctx context.Context, workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return ShardRunsPool(ctx, NewPool(workers), runs, build, do)
}

// ShardRunsPool runs the sweep over a caller-supplied (possibly shared)
// Pool, with the same determinism and cancellation contract as
// ShardRunsContext: results depend only on run indices, never on the pool
// size or on what else is executing over the pool.
func ShardRunsPool[T any](ctx context.Context, pool *Pool, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	if runs <= 0 {
		return nil
	}
	if pool == nil {
		pool = NewPool(0)
	}
	shards := normWorkers(pool.Workers(), runs)
	chunk := (runs + shards - 1) / shards
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := min(lo+chunk, runs)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if err := pool.acquire(ctx); err != nil {
				errs[w] = err
				return
			}
			defer pool.release()
			ctxT, err := build()
			if err != nil {
				errs[w] = err
				return
			}
			for run := lo; run < hi; run++ {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if err := do(ctxT, run); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runShards shards a single-core campaign over a Pool: each shard builds
// its own platform from spec, do performs one run on it, per-run cycle
// counts land in times[run], and the per-level counters are summed into
// the returned LevelStats (integer sums are order-independent, so the
// aggregate is as schedule-proof as the measurement vector). onRun, if
// non-nil, observes every completed run (called from worker goroutines).
func runShards(ctx context.Context, pool *Pool, spec PlatformSpec, runs int, times []float64, do func(p *sim.Core, run int) (sim.Result, error), onRun func(run int, r sim.Result)) (LevelStats, error) {
	var mu sync.Mutex
	var agg LevelStats
	err := ShardRunsPool(ctx, pool, runs, spec.Build, func(p *sim.Core, run int) error {
		r, err := do(p, run)
		if err != nil {
			return err
		}
		times[run] = float64(r.Cycles)
		mu.Lock()
		agg.add(r)
		mu.Unlock()
		if onRun != nil {
			onRun(run, r)
		}
		return nil
	})
	if err != nil {
		return LevelStats{}, err
	}
	return agg, nil
}
