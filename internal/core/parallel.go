package core

import (
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/sim"
)

// LevelStats aggregates the per-level cache counters of a whole campaign.
// Counters are exact sums over runs, so the aggregate is identical for any
// worker count and any scheduling of the shards.
type LevelStats struct {
	IL1, DL1, L2 cache.Stats
}

func (t *LevelStats) add(r sim.Result) {
	t.IL1 = addStats(t.IL1, r.IL1)
	t.DL1 = addStats(t.DL1, r.DL1)
	t.L2 = addStats(t.L2, r.L2)
}

func addStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   a.Accesses + b.Accesses,
		Hits:       a.Hits + b.Hits,
		Misses:     a.Misses + b.Misses,
		Evictions:  a.Evictions + b.Evictions,
		Writebacks: a.Writebacks + b.Writebacks,
		Flushes:    a.Flushes + b.Flushes,
	}
}

// normWorkers resolves a Workers knob: non-positive selects
// runtime.GOMAXPROCS(0), and the pool never exceeds one worker per run.
func normWorkers(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ShardRuns executes runs [0, runs) across a pool of workers. Each worker
// calls build once to obtain its private execution context (simulators are
// not safe for concurrent use) and then processes a contiguous block of
// run indices; do must derive all randomness from the run index alone and
// write any per-run output into run-indexed slots, which makes results
// bit-identical for any worker count. Non-positive workers selects
// runtime.GOMAXPROCS(0). The error of the lowest-numbered failing shard is
// returned. Exposed for drivers whose execution context is not a single
// sim.Core (e.g. the multicore contention study's sim.System).
func ShardRuns[T any](workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	workers = normWorkers(workers, runs)
	if workers == 1 {
		ctx, err := build()
		if err != nil {
			return err
		}
		for run := 0; run < runs; run++ {
			if err := do(ctx, run); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	chunk := (runs + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, runs)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ctx, err := build()
			if err != nil {
				errs[w] = err
				return
			}
			for run := lo; run < hi; run++ {
				if err := do(ctx, run); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runShards shards a single-core campaign: each worker builds its own
// platform from spec, do performs one run on it, per-run cycle counts land
// in times[run], and the per-level counters are summed into the returned
// LevelStats (integer sums are order-independent, so the aggregate is as
// schedule-proof as the measurement vector).
func runShards(spec PlatformSpec, runs, workers int, times []float64, do func(p *sim.Core, run int) (sim.Result, error)) (LevelStats, error) {
	var mu sync.Mutex
	var agg LevelStats
	err := ShardRuns(workers, runs, spec.Build, func(p *sim.Core, run int) error {
		r, err := do(p, run)
		if err != nil {
			return err
		}
		times[run] = float64(r.Cycles)
		mu.Lock()
		agg.add(r)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return LevelStats{}, err
	}
	return agg, nil
}
