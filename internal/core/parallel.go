package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/sim"
)

// LevelStats aggregates the per-level cache counters of a whole campaign.
// Counters are exact sums over runs, so the aggregate is identical for any
// worker count and any scheduling of the shards.
type LevelStats struct {
	IL1, DL1, L2 cache.Stats
}

func (t *LevelStats) add(r sim.Result) {
	t.IL1 = addStats(t.IL1, r.IL1)
	t.DL1 = addStats(t.DL1, r.DL1)
	t.L2 = addStats(t.L2, r.L2)
}

func addStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   a.Accesses + b.Accesses,
		Hits:       a.Hits + b.Hits,
		Misses:     a.Misses + b.Misses,
		Evictions:  a.Evictions + b.Evictions,
		Writebacks: a.Writebacks + b.Writebacks,
		Flushes:    a.Flushes + b.Flushes,
	}
}

// normWorkers resolves a Workers knob: non-positive selects
// runtime.GOMAXPROCS(0), and the pool never exceeds one worker per run.
func normWorkers(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Pool is a shared allotment of simulation worker slots. Any number of
// campaigns (and custom ShardRunsPool sweeps) can execute over one Pool
// concurrently; the Pool caps how many simulation goroutines run at once
// without influencing any campaign's results.
type Pool struct {
	slots chan struct{}
	// Occupancy accounting for observability polls (InUse, Acquires):
	// plain atomics off the simulation path, never consulted by any
	// campaign, so the determinism contract is untouched.
	busy     atomic.Int64
	acquires atomic.Uint64
}

// NewPool returns a pool of the given size; non-positive selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Workers reports the pool capacity.
func (p *Pool) Workers() int { return cap(p.slots) }

// InUse reports how many slots are currently held — a point-in-time
// occupancy reading for metrics polls.
func (p *Pool) InUse() int { return int(p.busy.Load()) }

// Acquires reports how many slot acquisitions ever succeeded.
func (p *Pool) Acquires() uint64 { return p.acquires.Load() }

// acquire blocks until a slot is free or the context is done.
func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		p.busy.Add(1)
		p.acquires.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() {
	p.busy.Add(-1)
	<-p.slots
}

// ShardRuns executes runs [0, runs) across a pool of workers. Each worker
// calls build once to obtain its private execution context (simulators are
// not safe for concurrent use) and then processes a contiguous block of
// run indices; do must derive all randomness from the run index alone and
// write any per-run output into run-indexed slots, which makes results
// bit-identical for any worker count. Non-positive workers selects
// runtime.GOMAXPROCS(0). The error of the lowest-numbered failing shard is
// returned. Exposed for drivers whose execution context is not a single
// sim.Core (e.g. the multicore contention study's sim.System).
func ShardRuns[T any](workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	//rm:ctxroot compatibility wrapper; callers that can cancel use ShardRunsContext
	return ShardRunsContext(context.Background(), workers, runs, build, do)
}

// ShardRunsContext is the context-aware ShardRuns: cancelling ctx aborts
// the sweep between runs (and while waiting for pool slots) and returns
// ctx.Err(). Runs that completed before the cancellation have written
// their run-indexed outputs; the rest are untouched.
func ShardRunsContext[T any](ctx context.Context, workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return ShardRunsPool(ctx, NewPool(workers), runs, build, do)
}

// ShardRunsPool runs the sweep over a caller-supplied (possibly shared)
// Pool, with the same determinism and cancellation contract as
// ShardRunsContext: results depend only on run indices, never on the pool
// size or on what else is executing over the pool.
func ShardRunsPool[T any](ctx context.Context, pool *Pool, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return ShardChunksPool(ctx, pool, runs, build, func(ctxT T, lo, hi int) error {
		for run := lo; run < hi; run++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := do(ctxT, run); err != nil {
				return err
			}
		}
		return nil
	})
}

// chunkSize picks the claim granularity of a chunked sweep: a handful of
// chunks per worker, so goroutine, pool and claim overhead amortizes
// across a whole chunk while stragglers can still rebalance.
func chunkSize(runs, workers int) int {
	c := (runs + workers*4 - 1) / (workers * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// PanicError is a worker panic converted into an ordinary campaign
// failure: the panicking run's chunk fails, the campaign returns the
// error cleanly, and the Pool (shared with every other campaign) keeps
// all its slots. Value is the recovered panic value and Stack the
// worker's stack at the point of the panic.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: worker panic: %v", e.Value)
}

// protect converts a panic in fn into a *PanicError. Used around the
// worker-supplied build/do callbacks so a panicking workload cannot take
// down the process or leak a pool slot (the deferred release still runs).
func protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// ShardChunksPool is the chunked core of every sweep: runs [0, runs) are
// claimed as contiguous chunks off a shared cursor by up to
// normWorkers(pool.Workers(), runs) workers, each of which calls build
// once for its private execution context and then processes whole chunks
// via do(ctx, lo, hi). Chunk claiming is dynamic (stragglers rebalance)
// but outputs must be run-indexed and all randomness derived from run
// indices, so results stay bit-identical for any worker count and any
// claiming order. The failure with the lowest chunk start is returned;
// build and pool-acquire failures rank after every run failure. A panic
// in build or do surfaces as a *PanicError failure of its chunk rather
// than crashing the process; the pool survives.
func ShardChunksPool[T any](ctx context.Context, pool *Pool, runs int, build func() (T, error), do func(ctx T, lo, hi int) error) error {
	if runs <= 0 {
		return nil
	}
	if pool == nil {
		pool = NewPool(0)
	}
	workers := normWorkers(pool.Workers(), runs)
	chunk := chunkSize(runs, workers)
	type failure struct {
		at  int
		err error
	}
	fails := make([]failure, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := pool.acquire(ctx); err != nil {
				fails[w] = failure{runs + w, err}
				return
			}
			defer pool.release()
			var ctxT T
			if err := protect(func() (berr error) {
				ctxT, berr = build()
				return berr
			}); err != nil {
				fails[w] = failure{runs + w, err}
				return
			}
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= runs {
					return
				}
				// Cancellation stops the claim loop itself, so a do that
				// does not poll ctx still aborts between chunks.
				if err := ctx.Err(); err != nil {
					fails[w] = failure{lo, err}
					return
				}
				hi := min(lo+chunk, runs)
				if err := protect(func() error { return do(ctxT, lo, hi) }); err != nil {
					fails[w] = failure{lo, err}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	best := failure{at: -1}
	for _, f := range fails {
		if f.err != nil && (best.err == nil || f.at < best.at) {
			best = f
		}
	}
	return best.err
}

// shardChunksRange shards runs [start, end) of a campaign whose earlier
// runs are already covered (checkpoint resume): chunk claiming restarts
// at start, absolute run indices flow through to do, and the usual
// determinism contract applies — the resumed tail is bit-identical to the
// same runs of an uninterrupted sweep.
func shardChunksRange[T any](ctx context.Context, pool *Pool, start, end int, build func() (T, error), do func(ctx T, lo, hi int) error) error {
	if start >= end {
		return nil
	}
	return ShardChunksPool(ctx, pool, end-start, build, func(ctxT T, lo, hi int) error {
		return do(ctxT, start+lo, start+hi)
	})
}

// runShards shards a single-core campaign over a Pool: each worker builds
// its own platform from spec, do performs one run on it, per-run cycle
// counts stream into a chunk-local accumulator (and into times[run] when
// the caller keeps the buffered vector — times may be nil), and the
// per-level counters ride the same chunk accumulators (integer sums are
// order-independent, so the aggregate is as schedule-proof as the
// measurement vector — and merging them through acc's run-index-ordered
// frontier makes every checkpoint's counters consistent with its
// frontier). start > 0 resumes a checkpointed campaign: only runs
// [start, acc.total) execute; the restored prefix is already merged.
// onRun, if non-nil, observes every completed run (called from worker
// goroutines).
func runShards(ctx context.Context, pool *Pool, spec PlatformSpec, start int, times []float64, acc *campaignAccum, do func(p *sim.Core, run int) (sim.Result, error), onRun func(run int, r sim.Result)) (LevelStats, error) {
	err := shardChunksRange(ctx, pool, start, acc.total, spec.Build, func(p *sim.Core, lo, hi int) error {
		ca := acc.newChunk(lo, hi)
		for run := lo; run < hi; run++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := do(p, run)
			if err != nil {
				return err
			}
			x := float64(r.Cycles)
			if times != nil {
				times[run] = x
			}
			if run < len(acc.window) {
				acc.window[run] = x
			}
			ca.add(run, x)
			ca.levels.add(r)
			if onRun != nil {
				onRun(run, r)
			}
		}
		acc.commit(ca)
		return nil
	})
	if err != nil {
		return LevelStats{}, err
	}
	return acc.levelsTotal(), nil
}
