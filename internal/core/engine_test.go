package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/workload"
)

// TestRunBatchMatchesSequential pins the acceptance criterion of the
// Engine redesign: a batch of campaigns (MBPTA RM, MBPTA hRP, and the
// HWM baseline) scheduled over one shared pool produces Times
// bit-identical to the legacy sequential single-campaign path, for
// worker counts {1, 4, GOMAXPROCS}.
func TestRunBatchMatchesSequential(t *testing.T) {
	w1, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 30
	campaigns := []Campaign{
		{Spec: PaperPlatform(placement.RM), Workload: w1, Runs: runs, MasterSeed: 11},
		{Spec: PaperPlatform(placement.HRP), Workload: w2, Runs: runs, MasterSeed: 22},
	}
	hwm := HWMCampaign{Spec: DeterministicPlatform(), Workload: w1, Runs: 12, MasterSeed: 33}

	// Sequential legacy reference.
	var want [][]float64
	for _, c := range campaigns {
		c.Workers = 1
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Times)
	}
	hwm.Workers = 1
	href, err := hwm.Run()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, href.Times)

	reqs := []Request{campaigns[0].Request(), campaigns[1].Request(), hwm.Request()}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		eng := NewEngine(WithWorkers(workers))
		results, err := eng.RunBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if len(res.Times) != len(want[i]) {
				t.Fatalf("workers=%d req=%d: %d times, want %d", workers, i, len(res.Times), len(want[i]))
			}
			for run := range want[i] {
				if res.Times[run] != want[i][run] {
					t.Fatalf("workers=%d req=%d: Times[%d] = %v, sequential %v (not bit-identical)",
						workers, i, run, res.Times[run], want[i][run])
				}
			}
		}
	}
}

// TestEngineCancellation pins the other acceptance criterion: cancelling
// the context mid-campaign aborts a 1000-run campaign early, promptly,
// with an error wrapping context.Canceled and a partial result.
func TestEngineCancellation(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Int64
	eng := NewEngine(WithWorkers(2), WithEvents(func(ev Event) {
		if ev.Kind == RunCompleted {
			completed.Add(1)
			if ev.Done == 3 {
				cancel() // abort from inside the stream, mid-campaign
			}
		}
	}))
	start := time.Now()
	res, err := eng.Run(ctx, Request{
		Spec: PaperPlatform(placement.RM), Workload: w, Runs: runs, MasterSeed: 5,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	done := completed.Load()
	if done >= runs {
		t.Fatalf("campaign ran to completion (%d runs) despite cancellation", done)
	}
	// Promptness: the two in-flight chunks stop at their next run
	// boundary. A full 1000-run campaign takes far longer than a few
	// runs, so a generous bound still proves the early abort.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(res.Times) != runs {
		t.Fatalf("partial result has %d slots, want %d", len(res.Times), runs)
	}
	nonzero := 0
	for _, x := range res.Times {
		if x > 0 {
			nonzero++
		}
	}
	if nonzero == 0 || nonzero >= runs {
		t.Fatalf("partial result has %d completed runs, want within (0, %d)", nonzero, runs)
	}
}

// TestEnginePreCancelled: an already-dead context never starts a run.
func TestEnginePreCancelled(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	eng := NewEngine(WithWorkers(2), WithEvents(func(ev Event) {
		if ev.Kind == RunCompleted {
			ran++
		}
	}))
	_, err = eng.Run(ctx, Request{Spec: PaperPlatform(placement.RM), Workload: w, Runs: 50, MasterSeed: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want wrapped context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d runs executed under a pre-cancelled context", ran)
	}
}

// TestEngineEvents checks the streaming contract: one start and one
// finish per campaign, exactly Runs run-completions with a monotone
// campaign-local Done counter, and serialized delivery (the sink mutates
// shared state without locks under -race).
func TestEngineEvents(t *testing.T) {
	w, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	type tally struct{ started, finished, runsDone, lastDone int }
	tallies := map[string]*tally{}
	eng := NewEngine(WithWorkers(4), WithEvents(func(ev Event) {
		tl := tallies[ev.Campaign]
		if tl == nil {
			tl = &tally{}
			tallies[ev.Campaign] = tl
		}
		switch ev.Kind {
		case CampaignStarted:
			tl.started++
		case RunCompleted:
			tl.runsDone++
			if ev.Done != tl.lastDone+1 {
				t.Errorf("%s: Done jumped %d -> %d", ev.Campaign, tl.lastDone, ev.Done)
			}
			tl.lastDone = ev.Done
			if ev.Cycles <= 0 {
				t.Errorf("%s run %d: no cycle count in event", ev.Campaign, ev.Run)
			}
		case CampaignFinished:
			tl.finished++
			if ev.Err != nil {
				t.Errorf("%s finished with error %v", ev.Campaign, ev.Err)
			}
			if ev.Done != runs {
				t.Errorf("%s finished with Done=%d, want %d", ev.Campaign, ev.Done, runs)
			}
		}
	}))
	reqs := []Request{
		{Name: "a", Spec: PaperPlatform(placement.RM), Workload: w, Runs: runs, MasterSeed: 1},
		{Name: "b", Spec: PaperPlatform(placement.HRP), Workload: w, Runs: runs, MasterSeed: 2},
		{Name: "c", Spec: DeterministicPlatform(), Workload: w, Runs: runs, MasterSeed: 3, Baseline: true},
	}
	if _, err := eng.RunBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if len(tallies) != 3 {
		t.Fatalf("events for %d campaigns, want 3", len(tallies))
	}
	for name, tl := range tallies {
		if tl.started != 1 || tl.finished != 1 || tl.runsDone != runs {
			t.Errorf("%s: started=%d finished=%d runs=%d, want 1/1/%d",
				name, tl.started, tl.finished, tl.runsDone, runs)
		}
	}
}

// TestHWMCampaignLayoutOverride: the baseline perturbs the supplied base
// layout (different times than the default base) and stays bit-identical
// across worker counts -- the determinism contract of the new field.
func TestHWMCampaignLayoutOverride(t *testing.T) {
	w, err := workload.ByName("cacheb01")
	if err != nil {
		t.Fatal(err)
	}
	// Sub-line shifts change which lines the objects straddle, so the
	// baseline's miss counts (and times) must move.
	base := workload.DefaultLayout()
	base.Data += 20
	base.Stack += 12
	base.Table += 4
	run := func(layout *workload.Layout, workers int) []float64 {
		res, err := HWMCampaign{
			Spec: DeterministicPlatform(), Workload: w,
			Runs: 10, MasterSeed: 9, Layout: layout, Workers: workers,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times
	}
	seq, par := run(&base, 1), run(&base, 4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("Times[%d]: sequential %v vs 4 workers %v", i, seq[i], par[i])
		}
	}
	def := run(nil, 1)
	same := true
	for i := range seq {
		if seq[i] != def[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("layout override produced the same baseline as the default layout")
	}
}

// TestEngineDefaultRuns: the WithDefaultRuns scale option fills in
// Requests that leave Runs at zero.
func TestEngineDefaultRuns(t *testing.T) {
	w, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithWorkers(2), WithDefaultRuns(7))
	res, err := eng.Run(context.Background(), Request{
		Spec: PaperPlatform(placement.RM), Workload: w, MasterSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 7 {
		t.Fatalf("default scale gave %d runs, want 7", len(res.Times))
	}
	// An explicit Runs wins over the default.
	res, err = eng.Run(context.Background(), Request{
		Spec: PaperPlatform(placement.RM), Workload: w, Runs: 3, MasterSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 {
		t.Fatalf("explicit runs gave %d, want 3", len(res.Times))
	}
}

// TestEngineRunMatchesLegacy: Engine.Run with Analyze reproduces the
// deprecated RunAndAnalyze byte-for-byte (same times, same pWCET).
func TestEngineRunMatchesLegacy(t *testing.T) {
	w, err := workload.ByName("ttsprk01")
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Spec: PaperPlatform(placement.RM), Workload: w, Runs: 60, MasterSeed: 4}
	legacyRes, legacyAn, err := RunAndAnalyze(c)
	if err != nil {
		t.Fatal(err)
	}
	req := c.Request()
	req.Analyze = true
	res, err := NewEngine(WithWorkers(3)).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacyRes.Times {
		if res.Times[i] != legacyRes.Times[i] {
			t.Fatalf("Times[%d] differ: engine %v legacy %v", i, res.Times[i], legacyRes.Times[i])
		}
	}
	if res.Levels != legacyRes.Levels {
		t.Errorf("Levels differ: engine %+v legacy %+v", res.Levels, legacyRes.Levels)
	}
	if res.Analysis.PWCET15 != legacyAn.PWCET15 {
		t.Errorf("pWCET@1e-15 differ: engine %v legacy %v", res.Analysis.PWCET15, legacyAn.PWCET15)
	}
}

// TestZeroValueEngine: the zero value works like the zero-value Runner --
// accessors lazily allocate the default pool instead of panicking.
func TestZeroValueEngine(t *testing.T) {
	var eng Engine
	if eng.Workers() < 1 {
		t.Fatalf("Workers() = %d on zero value", eng.Workers())
	}
	if eng.Pool() == nil {
		t.Fatal("Pool() nil on zero value")
	}
	w, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), Request{
		Spec: PaperPlatform(placement.RM), Workload: w, Runs: 5, MasterSeed: 1,
	})
	if err != nil || len(res.Times) != 5 {
		t.Fatalf("zero-value Engine run: %v, %d times", err, len(res.Times))
	}
}
