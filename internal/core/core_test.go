package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestPaperPlatformShape(t *testing.T) {
	s := PaperPlatform(placement.RM)
	if s.L1SizeBytes != 16*1024 || s.L1Ways != 4 || s.LineBytes != 32 {
		t.Fatalf("L1 geometry wrong: %+v", s)
	}
	if s.L2SizeBytes != 128*1024 {
		t.Fatalf("L2 partition = %d", s.L2SizeBytes)
	}
	if s.IL1.Placement != placement.RM || s.DL1.Placement != placement.RM {
		t.Fatal("L1 placement not applied")
	}
	if s.L2.Placement != placement.HRP {
		t.Fatal("L2 must use hRP (paper Section 4.3)")
	}
	if s.IL1.Replacement != cache.Random {
		t.Fatal("randomized platform must use random replacement")
	}
	if _, err := s.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicPlatformShape(t *testing.T) {
	s := DeterministicPlatform()
	for _, cs := range []CacheSetup{s.IL1, s.DL1, s.L2} {
		if cs.Placement != placement.Modulo || cs.Replacement != cache.LRU {
			t.Fatalf("DET platform not modulo+LRU: %+v", cs)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	w, _ := workload.ByName("puwmod01")
	if _, err := (Campaign{Spec: PaperPlatform(placement.RM), Workload: w}).Run(); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, err := (Campaign{Spec: PaperPlatform(placement.RM), Runs: 5}).Run(); err == nil {
		t.Fatal("missing workload accepted")
	}
}

func TestCampaignReproducible(t *testing.T) {
	w, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		res, err := Campaign{
			Spec: PaperPlatform(placement.RM), Workload: w,
			Runs: 20, MasterSeed: 99,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campaign not reproducible at run %d", i)
		}
	}
}

func TestCampaignSeedsMatter(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Campaign{
		Spec: PaperPlatform(placement.RM), Workload: w,
		Runs: 30, MasterSeed: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.StdDev(res.Times) == 0 {
		t.Fatal("randomized platform produced constant execution times")
	}
	if res.Trace.Accesses == 0 || res.Trace.Loads == 0 {
		t.Fatalf("trace accounting empty: %+v", res.Trace)
	}
}

func TestDeterministicCampaignIsConstant(t *testing.T) {
	// On the DET platform with a fixed layout, every run is identical:
	// this is precisely why industrial practice must vary the layout.
	w, err := workload.ByName("a2time01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Campaign{
		Spec: DeterministicPlatform(), Workload: w,
		Runs: 5, MasterSeed: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Times {
		if x != res.Times[0] {
			t.Fatal("deterministic platform varied across identical runs")
		}
	}
}

func TestHWMCampaignVariesWithLayout(t *testing.T) {
	// ttsprk01 has several independently-placed KB-scale objects, so some
	// layouts stack more lines into a set than the cache has ways; smaller
	// kernels are legitimately layout-invariant (their Figure 4(b) rows
	// sit within 1% of the hwm in the paper too).
	w, err := workload.ByName("ttsprk01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := HWMCampaign{
		Spec: DeterministicPlatform(), Workload: w,
		Runs: 25, MasterSeed: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.StdDev(res.Times) == 0 {
		t.Fatal("layout randomization produced no timing variation")
	}
	if res.HWM < res.Mean {
		t.Fatal("hwm below mean")
	}
	if _, err := (HWMCampaign{Spec: DeterministicPlatform(), Workload: w}).Run(); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestAnalyzePipelineOnCampaign(t *testing.T) {
	w, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	res, an, err := RunAndAnalyze(Campaign{
		Spec: PaperPlatform(placement.RM), Workload: w,
		Runs: 300, MasterSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !an.IIDPass {
		t.Errorf("i.i.d. tests failed on an RM campaign: WW=%.2f KSp=%.3f", an.WW.Stat, an.KS.P)
	}
	hwm := res.HWM()
	if an.PWCET15 <= hwm {
		t.Errorf("pWCET@1e-15 (%.0f) not above hwm (%.0f)", an.PWCET15, hwm)
	}
	if an.PWCET12 >= an.PWCET15 {
		t.Error("pWCET@1e-12 not below pWCET@1e-15")
	}
	if an.Model.Runs != 300 {
		t.Errorf("model consumed %d runs", an.Model.Runs)
	}
}

func TestAnalyzeRejectsShortSamples(t *testing.T) {
	if _, err := Analyze([]float64{1, 2, 3}); err == nil {
		t.Fatal("short sample accepted")
	}
}

func TestDitherPreservesScale(t *testing.T) {
	xs := []float64{1000, 2000, 2000, 3000}
	d := ditherTies(xs)
	for i := range xs {
		if diff := d[i] - xs[i]; diff < -0.5 || diff > 0.5 {
			t.Fatalf("dither amplitude %f out of bounds", diff)
		}
	}
	if d[1] == d[2] {
		t.Fatal("ties not broken")
	}
}

func TestRMvsModuloSingleSegment(t *testing.T) {
	// A one-segment workload on RM must never be slower than on modulo by
	// more than the replacement-policy noise: RM cannot introduce
	// within-segment conflicts (the paper's core guarantee at system
	// level).
	w := workload.Synthetic(4*1024, 20, 4) // exactly one L1 segment
	rm, err := Campaign{Spec: PaperPlatform(placement.RM), Workload: w, Runs: 30, MasterSeed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	det, err := Campaign{Spec: DeterministicPlatform(), Workload: w, Runs: 2, MasterSeed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Mean() > det.Mean()*1.10 {
		t.Fatalf("RM single-segment mean %.0f vs modulo %.0f: conflict misses leaked in",
			rm.Mean(), det.Mean())
	}
}

func TestDerivedSeedsIndependentAcrossLevels(t *testing.T) {
	// The same run seed must produce different derived seeds per level
	// (otherwise IL1/DL1/L2 layouts would be correlated).
	a, b, c := prng.Derive(42, 1), prng.Derive(42, 2), prng.Derive(42, 3)
	if a == b || b == c || a == c {
		t.Fatal("per-level derived seeds collide")
	}
}
