package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/prng"
	"repro/internal/security"
	"repro/internal/workload"
)

// securitySeedTag domain-separates the attack-round seed stream from the
// MBPTA run streams (Derive(MasterSeed, run)) and the baseline layout
// streams (Derive(MasterSeed^hwmSeedTag, run)), so a security campaign
// sharing a master seed with a timing campaign still draws independent
// randomness.
const securitySeedTag = 0x5EC

// runSecurity executes a security Request: Runs attack rounds sharded
// over the pool as dynamically claimed chunks, each round a pure function
// of Derive(MasterSeed^securitySeedTag, round), with per-round attacker
// access counts as the measurement vector. Event semantics match the
// timing campaigns (one RunCompleted per round, Cycles = accesses).
func (r *Runner) runSecurity(ctx context.Context, index int, req Request, res *Result, done *atomic.Int64, finish func(error) (Result, error)) (Result, error) {
	if req.Baseline {
		return finish(errors.New("core: security campaigns cannot use the baseline protocol"))
	}
	if req.Analyze {
		return finish(errors.New("core: the MBPTA analysis does not apply to security campaigns"))
	}
	spec, err := req.Security.Normalized()
	if err != nil {
		return finish(fmt.Errorf("core: %w", err))
	}
	if req.Workload.Build != nil && spec.Protocol != security.Occupancy {
		return finish(fmt.Errorf("core: a victim workload only applies to the %s protocol", security.Occupancy))
	}

	// The occupancy victim's trace builds once per campaign, under a pool
	// slot like the MBPTA trace build; all workers share the read-only
	// compiled form.
	var vic *security.Victim
	if spec.Protocol == security.Occupancy && req.Workload.Build != nil {
		if err := r.pool().acquire(ctx); err != nil {
			return finish(fmt.Errorf("core: campaign %s aborted before any rounds: %w", res.Name, err))
		}
		layout := workload.DefaultLayout()
		if req.Layout != nil {
			layout = *req.Layout
		}
		vic, err = security.VictimFromTrace(req.Workload.Build(layout))
		r.pool().release()
		if err != nil {
			return finish(fmt.Errorf("core: compiling victim workload %s: %w", req.Workload.Name, err))
		}
		r.emit(Event{Kind: PhaseDone, Campaign: res.Name, CampaignKind: KindSecurity, Index: index,
			Phase: PhaseCompile, Total: req.Runs})
	}

	onRound := func(round int, accesses float64) {
		if r.Events == nil {
			done.Add(1)
			return
		}
		r.evmu.Lock()
		n := int(done.Add(1))
		r.Events(Event{
			Kind: RunCompleted, Campaign: res.Name, CampaignKind: KindSecurity, Index: index,
			Run: round, Cycles: accesses, Done: n, Total: req.Runs,
		})
		r.evmu.Unlock()
	}

	times := make([]float64, req.Runs)
	outs := make([]security.RoundOut, req.Runs)
	start := 0
	if req.Resume != nil {
		if err := req.Resume.validate(req); err != nil {
			return finish(err)
		}
		start = req.Resume.Frontier
		copy(outs, req.Resume.Rounds)
		for i := 0; i < start; i++ {
			times[i] = outs[i].Accesses
		}
		done.Store(int64(start))
	}
	// Checkpoints for security campaigns ride a round-index frontier over
	// the per-round outputs: a checkpoint's Rounds prefix is everything the
	// final Aggregate needs, so the accumulators stay exactly as they are.
	front := &secFrontier{frontier: start, lastCkpt: start, pending: make(map[int]int)}
	if req.CheckpointEvery > 0 && req.OnCheckpoint != nil {
		front.every = req.CheckpointEvery
		front.emit = func(frontier int) {
			req.OnCheckpoint(&Checkpoint{
				Kind:       KindSecurity,
				MasterSeed: req.MasterSeed,
				Runs:       req.Runs,
				KeepTimes:  req.KeepTimes,
				Frontier:   frontier,
				Rounds:     append([]security.RoundOut(nil), outs[:frontier]...),
			})
		}
	}
	err = shardChunksRange(ctx, r.pool(), start, req.Runs,
		func() (*security.Engine, error) { return security.NewEngine(spec, vic) },
		func(e *security.Engine, lo, hi int) error {
			for round := lo; round < hi; round++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				e.Round(prng.Derive(req.MasterSeed^securitySeedTag, round), &outs[round])
				times[round] = outs[round].Accesses
				onRound(round, outs[round].Accesses)
			}
			front.commit(lo, hi)
			return nil
		})
	// Security campaigns buffer per-round outputs regardless (Aggregate
	// consumes them), so KeepTimes only controls what the Result exposes.
	if req.KeepTimes == TimesKeep {
		res.Times = times
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("core: campaign %s aborted after %d/%d rounds: %w",
				res.Name, done.Load(), req.Runs, err)
		}
		return finish(err)
	}
	for _, x := range times {
		res.Summary.Moments.Add(x)
		res.Summary.Sketch.Add(x)
	}
	r.emit(Event{Kind: PhaseDone, Campaign: res.Name, CampaignKind: KindSecurity, Index: index,
		Phase: PhaseReplay, Done: int(done.Load()), Total: req.Runs})
	agg := security.Aggregate(spec, outs)
	res.Security = &agg
	return finish(nil)
}

// secFrontier is the security campaigns' run-index frontier: completed
// chunks commit in order (out-of-order arrivals park in pending), and
// each advance of at least `every` rounds past the last capture emits one
// checkpoint. The same mutex establishes the happens-before edge between
// the workers' writes to outs[round] and the emit closure's read of the
// covered prefix.
type secFrontier struct {
	mu       sync.Mutex
	pending  map[int]int // chunk lo -> hi
	frontier int
	every    int
	lastCkpt int
	emit     func(frontier int)
}

func (s *secFrontier) commit(lo, hi int) {
	s.mu.Lock()
	s.pending[lo] = hi
	for {
		next, ok := s.pending[s.frontier]
		if !ok {
			break
		}
		delete(s.pending, s.frontier)
		s.frontier = next
	}
	if s.emit != nil && s.frontier-s.lastCkpt >= s.every {
		s.lastCkpt = s.frontier
		s.emit(s.frontier)
	}
	s.mu.Unlock()
}
