package core

import (
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

func TestWireRequestRoundTrip(t *testing.T) {
	in := strings.NewReader(`{"name":"demo","placement":"rm","workload":"tblook01","runs":80,"seed":7,"analyze":true}`)
	w, err := DecodeWireRequest(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := w.Request()
	if err != nil {
		t.Fatal(err)
	}
	if req.Name != "demo" || req.Workload.Name != "tblook01" || req.Runs != 80 ||
		req.MasterSeed != 7 || !req.Analyze || req.Baseline {
		t.Fatalf("resolved request mismatch: %+v", req)
	}
	// "rm" selects the paper platform; "modulo" the deterministic baseline.
	if req.Spec != PaperPlatform(placement.RM) {
		t.Fatalf("rm resolved to %+v, want the paper RM platform", req.Spec)
	}
	det, err := WireRequest{Placement: "modulo", Workload: "tblook01", Runs: 1}.Request()
	if err != nil {
		t.Fatal(err)
	}
	if det.Spec != DeterministicPlatform() {
		t.Fatal("modulo did not resolve to the deterministic platform")
	}
}

func TestWireRequestUnknownFieldRejected(t *testing.T) {
	_, err := DecodeWireRequest(strings.NewReader(`{"workload":"tblook01","placement":"RM","runs":10,"sed":3}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWireRequestValidation(t *testing.T) {
	bad := []WireRequest{
		{Placement: "nope", Workload: "tblook01", Runs: 10},
		{Placement: "RM", Workload: "nope", Runs: 10},
		{Placement: "RM", Workload: "tblook01", Runs: 0},
	}
	for _, w := range bad {
		if _, err := w.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", w)
		}
		if _, err := w.Fingerprint(); err == nil {
			t.Errorf("Fingerprint accepted %+v", w)
		}
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	base := WireRequest{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q is not 32 hex chars", fp)
	}

	// Spelling of the placement and the display name do not change content.
	same := []WireRequest{
		{Placement: "rm", Workload: "tblook01", Runs: 100, Seed: 1},
		{Name: "another label", Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1},
	}
	for _, w := range same {
		got, err := w.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != fp {
			t.Errorf("fingerprint of %+v = %s, want %s", w, got, fp)
		}
	}

	// Every content field perturbation must change the hash.
	l := WireLayoutFrom(workload.DefaultLayout())
	diff := []WireRequest{
		{Placement: "hRP", Workload: "tblook01", Runs: 100, Seed: 1},
		{Placement: "RM", Workload: "matrix01", Runs: 100, Seed: 1},
		{Placement: "RM", Workload: "tblook01", Runs: 101, Seed: 1},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 2},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Baseline: true},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Analyze: true},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Layout: &l},
	}
	seen := map[string]string{fp: "base"}
	for _, w := range diff {
		got, err := w.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("fingerprint collision between %+v and %s", w, prev)
		}
		seen[got] = w.Placement + "/" + w.Workload
	}
}

func TestWireSecurityRoundTrip(t *testing.T) {
	in := strings.NewReader(`{"placement":"rm","runs":40,"seed":9,` +
		`"security":{"protocol":"prime+probe","replacement":"lru","probe_lines":256,"trials":8}}`)
	w, err := DecodeWireRequest(in)
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical form: resolved spellings and defaults written back.
	if n.Security.Protocol != "primeprobe" || n.Security.Replacement != "LRU" {
		t.Fatalf("canonical security block %+v", n.Security)
	}
	req, err := w.Request()
	if err != nil {
		t.Fatal(err)
	}
	if req.Security == nil || req.Security.Protocol != security.PrimeProbe ||
		req.Security.ProbeLines != 256 || req.Security.Trials != 8 {
		t.Fatalf("resolved security request %+v", req.Security)
	}
	if req.Kind() != KindSecurity {
		t.Fatalf("kind = %v", req.Kind())
	}
	if got := w.Label(); got != "security/prime+probe/rm/lru" {
		t.Fatalf("Label() = %q", got)
	}
}

func TestWireSecurityValidation(t *testing.T) {
	sec := func(s WireSecurity) WireRequest {
		return WireRequest{Placement: "RM", Runs: 10, Security: &s}
	}
	bad := []WireRequest{
		sec(WireSecurity{Protocol: "flushreload"}),
		sec(WireSecurity{Protocol: "eviction", Replacement: "clock"}),
		sec(WireSecurity{Protocol: "eviction", ProbeLines: 2}),
		sec(WireSecurity{Protocol: "eviction", ProbeStride: 33}),
		sec(WireSecurity{Protocol: "eviction", Trials: 8}),
		sec(WireSecurity{Protocol: "occupancy", VictimLines: -1}),
		{Placement: "RM", Runs: 10, Baseline: true, Security: &WireSecurity{Protocol: "eviction"}},
		{Placement: "RM", Runs: 10, Analyze: true, Security: &WireSecurity{Protocol: "eviction"}},
		// A victim workload is only meaningful for the occupancy channel.
		{Placement: "RM", Workload: "tblook01", Runs: 10, Security: &WireSecurity{Protocol: "eviction"}},
		{Placement: "RM", Workload: "nope", Runs: 10, Security: &WireSecurity{Protocol: "occupancy"}},
	}
	for _, w := range bad {
		if _, err := w.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v (security %+v)", w, w.Security)
		}
	}
	ok := WireRequest{Placement: "RM", Workload: "tblook01", Runs: 10,
		Security: &WireSecurity{Protocol: "occupancy"}}
	if _, err := ok.Normalize(); err != nil {
		t.Fatalf("occupancy victim workload rejected: %v", err)
	}
}

// TestWireSecurityFingerprint: spelling-insensitivity and default
// resolution keep equivalent security submissions on one fingerprint,
// while every content knob separates them.
func TestWireSecurityFingerprint(t *testing.T) {
	base := WireRequest{Placement: "RM", Runs: 50, Seed: 3,
		Security: &WireSecurity{Protocol: "eviction", Replacement: "Random", ProbeLines: 1024}}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	same := WireRequest{Placement: "rm", Runs: 50, Seed: 3,
		Security: &WireSecurity{Protocol: "EVICTION-SET", ProbeLines: 1024}}
	if got, err := same.Fingerprint(); err != nil || got != fp {
		t.Fatalf("equivalent security spellings diverge: %q vs %q (%v)", got, fp, err)
	}
	// The default probe pool for eviction is 8*sets = 1024: leaving it
	// implicit is the same campaign.
	implicit := WireRequest{Placement: "RM", Runs: 50, Seed: 3,
		Security: &WireSecurity{Protocol: "eviction"}}
	if got, err := implicit.Fingerprint(); err != nil || got != fp {
		t.Fatalf("default-resolved security fingerprint diverges: %q vs %q (%v)", got, fp, err)
	}
	diff := []WireRequest{
		{Placement: "RM", Runs: 50, Seed: 3, Security: &WireSecurity{Protocol: "primeprobe", ProbeLines: 1024}},
		{Placement: "RM", Runs: 50, Seed: 3, Security: &WireSecurity{Protocol: "eviction", Replacement: "LRU", ProbeLines: 1024}},
		{Placement: "RM", Runs: 50, Seed: 3, Security: &WireSecurity{Protocol: "eviction", ProbeLines: 512}},
		{Placement: "RM", Runs: 50, Seed: 3, Security: &WireSecurity{Protocol: "eviction", ProbeLines: 1024, ProbeStride: 4096}},
		{Placement: "Modulo", Runs: 50, Seed: 3, Security: &WireSecurity{Protocol: "eviction", ProbeLines: 1024}},
		{Placement: "RM", Runs: 50, Seed: 3}, // no security block at all
	}
	diff[len(diff)-1].Workload = "tblook01"
	seen := map[string]bool{fp: true}
	for i, w := range diff {
		got, err := w.Fingerprint()
		if err != nil {
			t.Fatalf("diff %d: %v", i, err)
		}
		if seen[got] {
			t.Errorf("diff %d (%+v) collides", i, w.Security)
		}
		seen[got] = true
	}
}

func TestWireLayoutRoundTrip(t *testing.T) {
	l := workload.DefaultLayout()
	l.Scatter[3] = 4242
	if got := WireLayoutFrom(l).Layout(); got != l {
		t.Fatalf("layout round trip: got %+v want %+v", got, l)
	}
}

func TestWireRequestLabel(t *testing.T) {
	w := WireRequest{Workload: "tblook01", Placement: "Modulo", Baseline: true}
	if got := w.Label(); got != "tblook01/hwm" {
		t.Fatalf("Label() = %q, want tblook01/hwm", got)
	}
	w.Name = "custom"
	if got := w.Label(); got != "custom" {
		t.Fatalf("Label() = %q, want custom", got)
	}
}

// TestWireKeepTimes: the keep_times knob decodes, resolves to the
// TimesMode enum, and enters the fingerprint only when false — so every
// pre-existing fingerprint is unchanged and an explicit true is the same
// content as unset.
func TestWireKeepTimes(t *testing.T) {
	base := WireRequest{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	tru, fls := true, false
	explicit := base
	explicit.KeepTimes = &tru
	if got, err := explicit.Fingerprint(); err != nil || got != fp {
		t.Fatalf("keep_times=true fingerprint %s (err %v), want %s (same as unset)", got, err, fp)
	}
	dropped := base
	dropped.KeepTimes = &fls
	got, err := dropped.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got == fp {
		t.Fatal("keep_times=false shares a fingerprint with keep — drop results would serve keep cache hits")
	}

	w, err := DecodeWireRequest(strings.NewReader(
		`{"placement":"rm","workload":"tblook01","runs":10,"seed":3,"keep_times":false}`))
	if err != nil {
		t.Fatal(err)
	}
	req, err := w.Request()
	if err != nil {
		t.Fatal(err)
	}
	if req.KeepTimes != TimesDrop {
		t.Fatalf("keep_times=false resolved to %v, want TimesDrop", req.KeepTimes)
	}
	if req2, err := base.Request(); err != nil || req2.KeepTimes != TimesKeep {
		t.Fatalf("unset keep_times resolved to %v (err %v), want TimesKeep", req2.KeepTimes, err)
	}

	n, err := explicit.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.KeepTimes != nil {
		t.Fatal("Normalize kept an explicit keep_times=true instead of canonicalizing to unset")
	}
}
