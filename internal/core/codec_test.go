package core

import (
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/workload"
)

func TestWireRequestRoundTrip(t *testing.T) {
	in := strings.NewReader(`{"name":"demo","placement":"rm","workload":"tblook01","runs":80,"seed":7,"analyze":true}`)
	w, err := DecodeWireRequest(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := w.Request()
	if err != nil {
		t.Fatal(err)
	}
	if req.Name != "demo" || req.Workload.Name != "tblook01" || req.Runs != 80 ||
		req.MasterSeed != 7 || !req.Analyze || req.Baseline {
		t.Fatalf("resolved request mismatch: %+v", req)
	}
	// "rm" selects the paper platform; "modulo" the deterministic baseline.
	if req.Spec != PaperPlatform(placement.RM) {
		t.Fatalf("rm resolved to %+v, want the paper RM platform", req.Spec)
	}
	det, err := WireRequest{Placement: "modulo", Workload: "tblook01", Runs: 1}.Request()
	if err != nil {
		t.Fatal(err)
	}
	if det.Spec != DeterministicPlatform() {
		t.Fatal("modulo did not resolve to the deterministic platform")
	}
}

func TestWireRequestUnknownFieldRejected(t *testing.T) {
	_, err := DecodeWireRequest(strings.NewReader(`{"workload":"tblook01","placement":"RM","runs":10,"sed":3}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWireRequestValidation(t *testing.T) {
	bad := []WireRequest{
		{Placement: "nope", Workload: "tblook01", Runs: 10},
		{Placement: "RM", Workload: "nope", Runs: 10},
		{Placement: "RM", Workload: "tblook01", Runs: 0},
	}
	for _, w := range bad {
		if _, err := w.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", w)
		}
		if _, err := w.Fingerprint(); err == nil {
			t.Errorf("Fingerprint accepted %+v", w)
		}
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	base := WireRequest{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1}
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q is not 32 hex chars", fp)
	}

	// Spelling of the placement and the display name do not change content.
	same := []WireRequest{
		{Placement: "rm", Workload: "tblook01", Runs: 100, Seed: 1},
		{Name: "another label", Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1},
	}
	for _, w := range same {
		got, err := w.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != fp {
			t.Errorf("fingerprint of %+v = %s, want %s", w, got, fp)
		}
	}

	// Every content field perturbation must change the hash.
	l := WireLayoutFrom(workload.DefaultLayout())
	diff := []WireRequest{
		{Placement: "hRP", Workload: "tblook01", Runs: 100, Seed: 1},
		{Placement: "RM", Workload: "matrix01", Runs: 100, Seed: 1},
		{Placement: "RM", Workload: "tblook01", Runs: 101, Seed: 1},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 2},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Baseline: true},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Analyze: true},
		{Placement: "RM", Workload: "tblook01", Runs: 100, Seed: 1, Layout: &l},
	}
	seen := map[string]string{fp: "base"}
	for _, w := range diff {
		got, err := w.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("fingerprint collision between %+v and %s", w, prev)
		}
		seen[got] = w.Placement + "/" + w.Workload
	}
}

func TestWireLayoutRoundTrip(t *testing.T) {
	l := workload.DefaultLayout()
	l.Scatter[3] = 4242
	if got := WireLayoutFrom(l).Layout(); got != l {
		t.Fatalf("layout round trip: got %+v want %+v", got, l)
	}
}

func TestWireRequestLabel(t *testing.T) {
	w := WireRequest{Workload: "tblook01", Placement: "Modulo", Baseline: true}
	if got := w.Label(); got != "tblook01/hwm" {
		t.Fatalf("Label() = %q, want tblook01/hwm", got)
	}
	w.Name = "custom"
	if got := w.Label(); got != "custom" {
		t.Fatalf("Label() = %q, want custom", got)
	}
}
