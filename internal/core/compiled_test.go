package core

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/workload"
)

// legacyCampaign replays the pre-compiled-path MBPTA protocol with the
// legacy per-access loop — sequentially, one platform, sim.Core.Run — and
// returns the reference Times and Levels the Runner must reproduce
// bit-for-bit now that it routes runs through RunCompiled.
func legacyCampaign(t *testing.T, spec PlatformSpec, w workload.Workload, runs int, seed uint64) ([]float64, LevelStats) {
	t.Helper()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Build(workload.DefaultLayout())
	times := make([]float64, runs)
	var levels LevelStats
	for run := 0; run < runs; run++ {
		p.Reseed(prng.Derive(seed, run))
		r := p.Run(tr)
		times[run] = float64(r.Cycles)
		levels.add(r)
	}
	return times, levels
}

// legacyBaseline replays the pre-compiled-path HWM protocol with the
// legacy loop (per-run randomized layout, sim.Core.Run).
func legacyBaseline(t *testing.T, spec PlatformSpec, w workload.Workload, runs int, seed uint64) []float64 {
	t.Helper()
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, runs)
	for run := 0; run < runs; run++ {
		s := prng.Derive(seed^hwmSeedTag, run)
		layout := workload.RandomizedLayout(prng.New(s))
		p.Reseed(s)
		times[run] = float64(p.Run(w.Build(layout)).Cycles)
	}
	return times
}

// engineWriteArrangements are the write setups the engine-level
// differential test applies to the store-visible levels (DL1 and L2):
// the platform default (write-through no-allocate DL1, write-back L2)
// plus the two inversions that bind every other write kernel.
var engineWriteArrangements = []struct {
	name string
	dl1  WriteSetup
	l2   WriteSetup
}{
	{"default", WriteDefault, WriteDefault},
	{"wta/wb", WriteThroughAlloc, WriteBackAlloc},
	{"wb/wt", WriteBackAlloc, WriteThroughNoAlloc},
}

// TestEngineRunMatchesLegacyHotLoop is the engine-level differential
// test of the compiled campaign path: for every placement kind, every
// replacement policy and every write arrangement, Engine.Run at workers
// 1 and 4 must reproduce the legacy per-access hot loop bit-for-bit —
// same Times, same summed per-level Stats — for both MBPTA and baseline
// protocols.
func TestEngineRunMatchesLegacyHotLoop(t *testing.T) {
	w, err := workload.ByName("bitmnp01")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 12
	for _, pk := range placement.Kinds() {
		for _, rk := range []cache.ReplacementKind{cache.LRU, cache.Random, cache.FIFO, cache.PLRU} {
			for _, wa := range engineWriteArrangements {
				spec := PaperPlatform(pk)
				spec.IL1.Replacement, spec.DL1.Replacement, spec.L2.Replacement = rk, rk, rk
				spec.DL1.Write, spec.L2.Write = wa.dl1, wa.l2
				seed := uint64(0xBEEF) ^ uint64(pk)<<8 ^ uint64(rk) ^ uint64(wa.dl1)<<16
				wantTimes, wantLevels := legacyCampaign(t, spec, w, runs, seed)
				wantBase := legacyBaseline(t, spec, w, runs, seed)

				for _, workers := range []int{1, 4} {
					eng := NewEngine(WithWorkers(workers))
					res, err := eng.Run(context.Background(), Request{
						Spec: spec, Workload: w, Runs: runs, MasterSeed: seed,
					})
					if err != nil {
						t.Fatalf("%v/%v/%s workers=%d: %v", pk, rk, wa.name, workers, err)
					}
					for i := range wantTimes {
						if res.Times[i] != wantTimes[i] {
							t.Fatalf("%v/%v/%s workers=%d: Times[%d] = %v, legacy hot loop %v",
								pk, rk, wa.name, workers, i, res.Times[i], wantTimes[i])
						}
					}
					if res.Levels != wantLevels {
						t.Fatalf("%v/%v/%s workers=%d: Levels = %+v, legacy %+v",
							pk, rk, wa.name, workers, res.Levels, wantLevels)
					}

					base, err := eng.Run(context.Background(), Request{
						Spec: spec, Workload: w, Runs: runs, MasterSeed: seed, Baseline: true,
					})
					if err != nil {
						t.Fatalf("%v/%v/%s workers=%d baseline: %v", pk, rk, wa.name, workers, err)
					}
					for i := range wantBase {
						if base.Times[i] != wantBase[i] {
							t.Fatalf("%v/%v/%s workers=%d: baseline Times[%d] = %v, legacy %v",
								pk, rk, wa.name, workers, i, base.Times[i], wantBase[i])
						}
					}
				}
			}
		}
	}
}

// TestBuildAppliesWriteSetup pins the WriteSetup-to-cache.Config mapping.
func TestBuildAppliesWriteSetup(t *testing.T) {
	spec := PaperPlatform(placement.RM)
	spec.DL1.Write = WriteBackAlloc
	spec.L2.Write = WriteThroughAlloc
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, dl1, l2 := p.Caches()
	if cfg := dl1.Config(); cfg.Write != cache.WriteBack {
		t.Fatalf("DL1 write = %v, want write-back", cfg.Write)
	}
	if cfg := l2.Config(); cfg.Write != cache.WriteThrough || !cfg.AllocOnWrite {
		t.Fatalf("L2 = %v alloc=%v, want write-through allocate", cfg.Write, cfg.AllocOnWrite)
	}
	// The default arrangement is unchanged by the zero value.
	def, err := PaperPlatform(placement.RM).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, ddl1, dl2 := def.Caches()
	if ddl1.Config().Write != cache.WriteThrough || ddl1.Config().AllocOnWrite {
		t.Fatal("default DL1 arrangement changed")
	}
	if dl2.Config().Write != cache.WriteBack {
		t.Fatal("default L2 arrangement changed")
	}
}
