package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/workload"
)

// workerCounts are the pool sizes the determinism tests sweep: the
// sequential path, a two-way split, the GOMAXPROCS default, and a pool
// wider than the host (and, for short campaigns, wider than the run count,
// exercising the workers>runs clamp).
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0), 2*runtime.GOMAXPROCS(0) + 3}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	w, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	var ref CampaignResult
	for i, workers := range workerCounts() {
		res, err := Campaign{
			Spec: PaperPlatform(placement.RM), Workload: w,
			Runs: 50, MasterSeed: 1234, Workers: workers,
		}.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if len(res.Times) != len(ref.Times) {
			t.Fatalf("workers=%d: %d times, want %d", workers, len(res.Times), len(ref.Times))
		}
		for run := range ref.Times {
			if res.Times[run] != ref.Times[run] {
				t.Fatalf("workers=%d: Times[%d] = %v, sequential %v (not bit-identical)",
					workers, run, res.Times[run], ref.Times[run])
			}
		}
		if res.Levels != ref.Levels {
			t.Errorf("workers=%d: Levels %+v, sequential %+v", workers, res.Levels, ref.Levels)
		}
		if res.IL1Miss != ref.IL1Miss || res.DL1Miss != ref.DL1Miss || res.L2Miss != ref.L2Miss {
			t.Errorf("workers=%d: miss ratios (%v %v %v) differ from sequential (%v %v %v)",
				workers, res.IL1Miss, res.DL1Miss, res.L2Miss,
				ref.IL1Miss, ref.DL1Miss, ref.L2Miss)
		}
		if res.Trace != ref.Trace {
			t.Errorf("workers=%d: trace accounting %+v, sequential %+v", workers, res.Trace, ref.Trace)
		}
	}
}

func TestHWMCampaignDeterministicAcrossWorkers(t *testing.T) {
	w, err := workload.ByName("ttsprk01")
	if err != nil {
		t.Fatal(err)
	}
	var ref HWMResult
	for i, workers := range workerCounts() {
		res, err := HWMCampaign{
			Spec: DeterministicPlatform(), Workload: w,
			Runs: 20, MasterSeed: 1234, Workers: workers,
		}.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		for run := range ref.Times {
			if res.Times[run] != ref.Times[run] {
				t.Fatalf("workers=%d: Times[%d] = %v, sequential %v (not bit-identical)",
					workers, run, res.Times[run], ref.Times[run])
			}
		}
		if res.HWM != ref.HWM || res.Mean != ref.Mean {
			t.Errorf("workers=%d: hwm/mean (%v, %v) differ from sequential (%v, %v)",
				workers, res.HWM, res.Mean, ref.HWM, ref.Mean)
		}
	}
}

func TestHWMCampaignDeterministicWithRandomizedSpec(t *testing.T) {
	// With a randomized platform the replacement PRNG must not carry state
	// across runs, or worker counts would diverge.
	w, err := workload.ByName("cacheb01")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []float64 {
		res, err := HWMCampaign{
			Spec: PaperPlatform(placement.RM), Workload: w,
			Runs: 12, MasterSeed: 77, Workers: workers,
		}.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Times
	}
	seq, par := run(1), run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("Times[%d]: sequential %v vs 4 workers %v", i, seq[i], par[i])
		}
	}
}

func TestHWMCampaignValidation(t *testing.T) {
	spec := DeterministicPlatform()
	if _, err := (HWMCampaign{Spec: spec, Runs: 5}).Run(); err == nil {
		t.Fatal("missing workload accepted")
	}
	empty := workload.Workload{
		Name:  "empty",
		Build: func(workload.Layout) trace.Trace { return nil },
	}
	if _, err := (HWMCampaign{Spec: spec, Workload: empty, Runs: 5}).Run(); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCampaignRejectsBadSpec(t *testing.T) {
	w, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	bad := PaperPlatform(placement.RM)
	bad.L1Ways = 3 // sets no longer a power of two
	if _, err := (Campaign{Spec: bad, Workload: w, Runs: 8, Workers: 4}).Run(); err == nil {
		t.Fatal("invalid platform spec accepted by the worker pool")
	}
	if _, err := (HWMCampaign{Spec: bad, Workload: w, Runs: 8, Workers: 4}).Run(); err == nil {
		t.Fatal("invalid platform spec accepted by the hwm worker pool")
	}
}

func TestNormWorkers(t *testing.T) {
	cases := []struct{ workers, runs, want int }{
		{1, 10, 1},
		{4, 10, 4},
		{8, 3, 3},                             // never more workers than runs
		{0, 5, min(runtime.GOMAXPROCS(0), 5)}, // default: GOMAXPROCS
		{-2, 5, min(runtime.GOMAXPROCS(0), 5)},
	}
	for _, c := range cases {
		if got := normWorkers(c.workers, c.runs); got != c.want {
			t.Errorf("normWorkers(%d, %d) = %d, want %d", c.workers, c.runs, got, c.want)
		}
	}
}

// TestWorkerPoolUnderRace gives the race detector a wide pool over a short
// campaign (go test -race ./internal/core/ exercises it).
func TestWorkerPoolUnderRace(t *testing.T) {
	w, err := workload.ByName("rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Campaign{
		Spec: PaperPlatform(placement.RM), Workload: w,
		Runs: 16, MasterSeed: 9, Workers: 8,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 16 {
		t.Fatalf("got %d times", len(res.Times))
	}
	for i, x := range res.Times {
		if x <= 0 {
			t.Fatalf("Times[%d] = %v: a shard left its slot unwritten", i, x)
		}
	}
}

func TestShardRunsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	err := ShardRunsContext(ctx, 2, 10000,
		func() (int, error) { return 0, nil },
		func(_ int, run int) error {
			if done.Add(1) == 5 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := done.Load(); n >= 10000 {
		t.Fatalf("sweep ran to completion (%d runs) despite cancellation", n)
	}
}

func TestShardRunsPoolShared(t *testing.T) {
	// Two sweeps over one 2-slot pool: concurrency never exceeds the
	// pool capacity, and both sweeps fill every run-indexed slot. A run
	// executes only while its shard holds a slot, so counting in-flight
	// do calls bounds the observed concurrency by the capacity.
	pool := NewPool(2)
	var inFlight, peak atomic.Int64
	sweep := func(out []int32) error {
		return ShardRunsPool(context.Background(), pool, len(out),
			func() (int, error) { return 0, nil },
			func(_ int, run int) error {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				out[run] = int32(run + 1)
				inFlight.Add(-1)
				return nil
			})
	}
	a := make([]int32, 64)
	b := make([]int32, 64)
	errc := make(chan error, 2)
	go func() { errc <- sweep(a) }()
	go func() { errc <- sweep(b) }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := range a {
		if a[i] == 0 || b[i] == 0 {
			t.Fatalf("slot %d left unwritten (a=%d b=%d)", i, a[i], b[i])
		}
	}
	if peak.Load() > 2 {
		t.Fatalf("pool admitted %d concurrent runs, capacity 2", peak.Load())
	}
}
