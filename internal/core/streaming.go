package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/evt"
	"repro/internal/iid"
	"repro/internal/stats"
)

// Summary is the streaming aggregate of a campaign's measurement vector:
// what every campaign retains even when Request.KeepTimes drops the
// per-run times. Count, Sum, extremes and the sketch's bucket counts are
// exact and identical for any worker count (cycle counts are integral, so
// the float64 Sum is exact below 2^53 and grouping-independent); the
// variance estimator inside Moments is numerically stable but its last
// ulps may depend on chunk boundaries, so it is excluded from the
// bit-identity contract.
type Summary struct {
	Moments stats.Moments
	Sketch  stats.QuantileSketch
}

// Snapshot is a deterministic mid-campaign view of the streaming
// accumulators, emitted on the event stream (SnapshotTaken) each time the
// merged contiguous run prefix advances and served by the campaign
// service while a campaign is in flight. Its content is a pure function
// of the first Runs measurements: two snapshots covering the same prefix
// are identical regardless of worker count or chunk scheduling (only
// *which* prefixes get snapshotted depends on chunking).
type Snapshot struct {
	Runs  int // contiguous completed-run prefix the snapshot covers
	Total int // campaign size (Request.Runs)

	// Exact aggregates of the covered prefix.
	Mean float64
	Min  float64
	Max  float64

	// Deterministic sketch quantile estimates of the covered prefix.
	P50 float64
	P95 float64
	P99 float64

	// Converging pWCET estimates fitted on the complete blocks within the
	// prefix (zero until the prefix affords enough maxima for a fit).
	Blocks  int
	PWCET12 float64
	PWCET15 float64

	// AccumBytes is the resident accumulator footprint — the O(1)-in-runs
	// steady-state memory claim, observable via rm_accumulator_peak_bytes.
	AccumBytes int
}

// campaignAccum is the streaming statistics state of one campaign: the
// central accumulators plus the frontier machinery that merges per-chunk
// accumulators in canonical run-index order. Chunks are claimed
// dynamically (ShardChunksPool), so they complete out of order; commit
// parks each one until the contiguous prefix reaches it, which makes the
// merge sequence — and every merged aggregate — independent of scheduling.
type campaignAccum struct {
	total int
	block int // evt.BlockFor(total)
	// window buffers the first min(total, iid.Window) measurements for the
	// sequence-based admissibility tests (see iid.Window). Workers write
	// disjoint run-indexed slots, so it needs no lock.
	window []float64

	mu       sync.Mutex
	moments  stats.Moments
	sketch   stats.QuantileSketch
	maxima   *stats.BlockMax // central per-block maxima, blocks [0, total/block)
	levels   LevelStats      // per-level counters, merged in frontier order
	pending  map[int]*chunkAccum
	frontier int // runs [0, frontier) are merged
	badRun   int // lowest invalid-measurement run index (-1: none)
	badVal   float64
	// onProgress, if set, observes a Snapshot after every frontier
	// advance, under the accumulator lock (snapshots are delivered in
	// increasing Runs order).
	onProgress func(Snapshot)

	// Checkpoint capture (see checkpoint.go). meta carries the request
	// identity stamped into every checkpoint; times aliases the caller's
	// buffered vector (run-indexed writes for merged runs happen-before the
	// commit that advanced the frontier past them, so reading the prefix
	// under mu is race-free). onCheckpoint observes a freshly built
	// Checkpoint each time the frontier advances ckptEvery runs past the
	// last capture, under the accumulator lock.
	meta         ckptMeta
	times        []float64
	ckptEvery    int
	lastCkpt     int
	onCheckpoint func(*Checkpoint)
}

// ckptMeta is the request identity stamped into checkpoints.
type ckptMeta struct {
	kind      Kind
	seed      uint64
	keepTimes TimesMode
}

func newCampaignAccum(total int) *campaignAccum {
	block := evt.BlockFor(total)
	w := total
	if w > iid.Window {
		w = iid.Window
	}
	return &campaignAccum{
		total:   total,
		block:   block,
		window:  make([]float64, w),
		maxima:  stats.NewBlockMax(block, 0, total/block),
		pending: make(map[int]*chunkAccum),
		badRun:  -1,
	}
}

// chunkAccum accumulates one claimed chunk of runs [lo, hi) privately (no
// locks on the per-run path); commit merges it centrally once the chunk
// completes.
type chunkAccum struct {
	lo, hi  int
	moments stats.Moments
	sketch  stats.QuantileSketch
	maxima  *stats.BlockMax // blocks intersecting [lo, hi)
	levels  LevelStats
	badRun  int
	badVal  float64
}

// newChunk returns a private accumulator for runs [lo, hi).
func (a *campaignAccum) newChunk(lo, hi int) *chunkAccum {
	return &chunkAccum{
		lo: lo, hi: hi,
		maxima: stats.NewBlockMax(a.block, lo/a.block, (hi-1)/a.block+1),
		badRun: -1,
	}
}

// add accumulates one run's execution time. This is the streaming hot
// path: every run of every campaign passes through it, so it must stay
// allocation-free.
//
//rm:hotpath
func (c *chunkAccum) add(run int, x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		if c.badRun < 0 || run < c.badRun {
			c.badRun, c.badVal = run, x
		}
	}
	c.moments.Add(x)
	c.sketch.Add(x)
	c.maxima.Add(run, x)
}

// mergeChunk folds one completed chunk into the central accumulators.
// Chunks arrive here in run-index order (the commit frontier guarantees
// it), so the merged aggregates are identical for any worker count.
//
//rm:hotpath
func (a *campaignAccum) mergeChunk(c *chunkAccum) {
	a.moments.Merge(&c.moments)
	a.sketch.Merge(&c.sketch)
	a.maxima.Merge(c.maxima)
	a.levels.IL1 = addStats(a.levels.IL1, c.levels.IL1)
	a.levels.DL1 = addStats(a.levels.DL1, c.levels.DL1)
	a.levels.L2 = addStats(a.levels.L2, c.levels.L2)
	if c.badRun >= 0 && (a.badRun < 0 || c.badRun < a.badRun) {
		a.badRun, a.badVal = c.badRun, c.badVal
	}
}

// commit hands a completed chunk to the central merger: chunks merge
// strictly in run-index order, out-of-order arrivals park in pending
// (bounded by the chunk count, a few per worker). Each frontier advance
// produces one Snapshot for the progress observer.
func (a *campaignAccum) commit(c *chunkAccum) {
	a.mu.Lock()
	a.pending[c.lo] = c
	advanced := false
	for {
		n, ok := a.pending[a.frontier]
		if !ok {
			break
		}
		delete(a.pending, a.frontier)
		a.mergeChunk(n)
		a.frontier = n.hi
		advanced = true
	}
	if advanced && a.onProgress != nil {
		a.onProgress(a.snapshotLocked())
	}
	if advanced && a.onCheckpoint != nil && a.frontier-a.lastCkpt >= a.ckptEvery {
		a.lastCkpt = a.frontier
		a.onCheckpoint(a.checkpointLocked())
	}
	a.mu.Unlock()
}

// checkpointLocked captures the merged frontier as a self-contained
// Checkpoint (all slices copied: the accumulators keep mutating after the
// capture). Called with mu held.
func (a *campaignAccum) checkpointLocked() *Checkpoint {
	cp := &Checkpoint{
		Kind:       a.meta.kind,
		MasterSeed: a.meta.seed,
		Runs:       a.total,
		KeepTimes:  a.meta.keepTimes,
		Frontier:   a.frontier,
		Moments:    a.moments,
		Sketch:     a.sketch,
		BadRun:     a.badRun,
		BadVal:     a.badVal,
		Levels:     a.levels,
	}
	cp.Window = append([]float64(nil), a.window[:min(a.frontier, len(a.window))]...)
	cp.Maxima = stats.NewBlockMax(a.maxima.Block, 0, len(a.maxima.Max))
	copy(cp.Maxima.Max, a.maxima.Max)
	if a.times != nil {
		cp.Times = append([]float64(nil), a.times[:a.frontier]...)
	}
	return cp
}

// restore rewinds the accumulator to a validated checkpoint's frontier.
// Must run before the first chunk is claimed (no lock needed: the
// accumulator is still private to the Runner).
func (a *campaignAccum) restore(cp *Checkpoint) {
	a.moments = cp.Moments
	a.sketch = cp.Sketch
	copy(a.maxima.Max, cp.Maxima.Max)
	a.levels = cp.Levels
	copy(a.window, cp.Window)
	a.frontier = cp.Frontier
	a.lastCkpt = cp.Frontier
	a.badRun, a.badVal = cp.BadRun, cp.BadVal
	if a.times != nil {
		copy(a.times, cp.Times)
	}
}

// levelsTotal returns the merged per-level counters.
func (a *campaignAccum) levelsTotal() LevelStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.levels
}

// snapshotLocked builds the deterministic view of the merged prefix.
// Called with mu held; the pWCET fit runs at most once per chunk merge,
// far off the per-run path.
func (a *campaignAccum) snapshotLocked() Snapshot {
	s := Snapshot{
		Runs:       a.frontier,
		Total:      a.total,
		AccumBytes: a.footprintLocked(),
	}
	if a.moments.N > 0 {
		s.Mean = a.moments.Mean()
		s.Min = a.moments.Min
		s.Max = a.moments.Max
		s.P50 = a.sketch.Quantile(0.50)
		s.P95 = a.sketch.Quantile(0.95)
		s.P99 = a.sketch.Quantile(0.99)
	}
	nb := a.frontier / a.block
	if nb > len(a.maxima.Max) {
		nb = len(a.maxima.Max)
	}
	if nb >= 2 {
		if model, err := evt.AnalyzeMaxima(a.maxima.Max[:nb], a.block, a.frontier); err == nil {
			s.Blocks = nb
			s.PWCET12 = model.AtExceedance(CutoffLow)
			s.PWCET15 = model.AtExceedance(CutoffHigh)
		}
	}
	return s
}

// footprintLocked estimates the resident accumulator bytes: the IID
// window, the central block maxima, and one sketch-sized accumulator per
// parked chunk plus the central one. O(iid.Window + total/block +
// workers), independent of the run count beyond the maxima vector.
func (a *campaignAccum) footprintLocked() int {
	return 8*(len(a.window)+len(a.maxima.Max)) + a.sketch.Footprint()*(1+len(a.pending))
}

// summary returns the merged aggregates (the frontier prefix; the whole
// campaign once it completed).
func (a *campaignAccum) summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Summary{Moments: a.moments, Sketch: a.sketch}
}

// analysis computes the campaign's MBPTA analysis from the streaming
// accumulators. For a completed campaign it is bit-identical to the
// buffered Analyze(times) — the admissibility tests read the same
// iid.Window prefix and the EVT fit the same exact block maxima — which
// the differential tests pin across campaign kinds and worker counts.
func (a *campaignAccum) analysis() (Analysis, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.badRun >= 0 {
		return Analysis{}, fmt.Errorf("core: invalid measurement: %w", &evt.InvalidTimeError{Index: a.badRun, Value: a.badVal})
	}
	var merr error
	if len(a.maxima.Max) < 2 {
		merr = evt.ErrBadSample
	}
	return analyzeParts(a.window, a.maxima.Max, merr, a.block, a.total)
}

// iidWindow returns the measurement prefix the admissibility tests run on
// (the whole vector for campaigns within iid.Window).
func iidWindow(times []float64) []float64 {
	if len(times) > iid.Window {
		return times[:iid.Window]
	}
	return times
}

// analyzeParts is the shared back half of the MBPTA pipeline: the
// buffered Analyze and the streaming accumulator path both land here with
// the same inputs (admissibility window, exact block maxima), which is
// what makes their outputs bit-identical. merr defers a block-maxima
// reduction failure to the EVT stage so both paths report errors in the
// same pipeline order (WW, KS, EVT, ET).
func analyzeParts(win, maxima []float64, merr error, block, runs int) (Analysis, error) {
	var a Analysis
	dithered := ditherTies(win)
	ww, err := iid.WaldWolfowitz(dithered)
	if err != nil {
		return a, fmt.Errorf("core: WW test: %w", err)
	}
	ks, err := iid.KSSplit(dithered)
	if err != nil {
		return a, fmt.Errorf("core: KS test: %w", err)
	}
	if merr != nil {
		return a, fmt.Errorf("core: EVT fit: %w", merr)
	}
	model, err := evt.AnalyzeMaxima(maxima, block, runs)
	if err != nil {
		return a, fmt.Errorf("core: EVT fit: %w", err)
	}
	// ET examines the extreme tail under the peaks-over-threshold protocol:
	// search the threshold grid for an acceptable exponential tail, which
	// EVT guarantees exists when block maxima converge to a Gumbel law.
	et, err := iid.ETTestSearch(dithered, nil)
	if err != nil {
		return a, fmt.Errorf("core: ET test: %w", err)
	}
	a.WW, a.KS, a.ET, a.Model = ww, ks, et, model
	a.PWCET15 = model.AtExceedance(CutoffHigh)
	a.PWCET12 = model.AtExceedance(CutoffLow)
	a.IIDPass = ww.Pass && ks.Pass
	return a, nil
}
