package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %f", Mean(xs))
	}
	if !almost(Variance(xs), 32.0/7, 1e-12) {
		t.Fatalf("variance = %f", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %f", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("quantile(%f) = %f, want %f", c.p, got, c.want)
		}
	}
	if Quantile([]float64{42}, 0.9) != 42 {
		t.Error("single-element quantile wrong")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad p did not panic")
		}
	}()
	Quantile([]float64{1, 2}, 1.5)
}

func TestQuickQuantileMonotone(t *testing.T) {
	g := prng.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = g.Float64() * 100
	}
	s := Sorted(xs)
	f := func(a, b uint16) bool {
		pa := float64(a) / 65535
		pb := float64(b) / 65535
		if pa > pb {
			pa, pb = pb, pa
		}
		return QuantileSorted(s, pa) <= QuantileSorted(s, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("ECDF(%f) = %f, want %f", c.x, got, c.want)
		}
	}
	if !almost(e.Exceedance(2), 0.25, 1e-12) {
		t.Errorf("exceedance(2) = %f", e.Exceedance(2))
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty ECDF accepted")
	}
}

func TestQuickECDFMonotone(t *testing.T) {
	g := prng.New(3)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = g.Float64()*200 - 100
	}
	e, _ := NewECDF(xs)
	f := func(a, b int16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return e.At(x) <= e.At(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	// Density integrates to ~1.
	area := 0.0
	for i := range h.Counts {
		area += h.Density(i) * h.BinWidth
	}
	if !almost(area, 1, 1e-12) {
		t.Fatalf("density area = %f", area)
	}
	if h.BinCenter(0) <= h.Lo || h.BinCenter(4) >= h.Hi+h.BinWidth {
		t.Fatal("bin centers out of range")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatal("constant sample mishandled")
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Fatal("empty histogram accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestGammaPAgainstKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almost(got, want, 1e-10) {
			t.Errorf("GammaP(1,%f) = %g, want %g", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almost(got, want, 1e-10) {
			t.Errorf("GammaP(0.5,%f) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid arguments not NaN")
	}
	if GammaP(3, 0) != 0 {
		t.Error("GammaP(a,0) != 0")
	}
	if !almost(GammaQ(1, 1), math.Exp(-1), 1e-10) {
		t.Error("GammaQ wrong")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Known values: chi2 CDF with k=2 is 1-e^{-x/2}.
	for _, x := range []float64{0.5, 1, 2, 6} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !almost(got, want, 1e-10) {
			t.Errorf("ChiSquareCDF(%f,2) = %g, want %g", x, got, want)
		}
	}
	// Median of chi2_k is ~ k(1-2/(9k))^3.
	for _, k := range []int{5, 20, 100} {
		med := float64(k) * math.Pow(1-2.0/(9*float64(k)), 3)
		if got := ChiSquareCDF(med, k); !almost(got, 0.5, 0.01) {
			t.Errorf("ChiSquareCDF(median,%d) = %f", k, got)
		}
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x CDF not 0")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5}, {1.96, 0.975}, {-1.96, 0.025}, {3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almost(got, c.want, 1e-3) {
			t.Errorf("NormalCDF(%f) = %f, want %f", c.z, got, c.want)
		}
	}
}

func TestKolmogorovSurvival(t *testing.T) {
	// Known value: Q(1.36) ~= 0.049 (the classic 5% critical value).
	if got := KolmogorovSurvival(1.36); !almost(got, 0.049, 0.002) {
		t.Errorf("KolmogorovSurvival(1.36) = %f", got)
	}
	if KolmogorovSurvival(0) != 1 || KolmogorovSurvival(-1) != 1 {
		t.Error("non-positive lambda must give 1")
	}
	if got := KolmogorovSurvival(10); got > 1e-10 {
		t.Errorf("huge lambda survival = %g", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		cur := KolmogorovSurvival(l)
		if cur > prev+1e-12 {
			t.Fatalf("KolmogorovSurvival not monotone at %f", l)
		}
		prev = cur
	}
}

func TestChiSquareUniformity(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	stat, p := ChiSquareUniformity([]int{10, 10, 10, 10})
	if stat != 0 || p != 1 {
		t.Fatalf("uniform counts: stat=%f p=%f", stat, p)
	}
	// Extremely skewed counts: tiny p-value.
	_, p = ChiSquareUniformity([]int{100, 0, 0, 0})
	if p > 1e-10 {
		t.Fatalf("skewed counts p = %g", p)
	}
	// Degenerate inputs.
	if _, p := ChiSquareUniformity(nil); p != 1 {
		t.Fatal("nil counts mishandled")
	}
}

func TestChiSquareUniformityOnPRNG(t *testing.T) {
	g := prng.New(123)
	counts := make([]int, 64)
	for i := 0; i < 64*200; i++ {
		counts[g.Intn(64)]++
	}
	_, p := ChiSquareUniformity(counts)
	if p < 1e-4 {
		t.Fatalf("PRNG uniformity rejected: p = %g", p)
	}
}
