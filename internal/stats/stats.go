// Package stats provides the numeric substrate shared by the MBPTA
// pipeline: descriptive statistics, empirical distribution functions,
// histograms (the PDFs of Figure 5), quantiles, and the special functions
// needed by the statistical tests (regularized incomplete gamma for
// chi-square, the Kolmogorov distribution for KS).
//
// Everything is implemented from scratch on the stdlib math package; no
// external numeric dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports an empty sample where one or more values are required.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; it panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value -- the high-water mark (hwm) of the
// industrial practice in Section 4.4; it panics on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (Hyndman-Fan type 7, the common
// default). It panics on an empty sample or p outside [0,1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("stats: quantile probability out of [0,1]")
	}
	s := Sorted(xs)
	return QuantileSorted(s, p)
}

// QuantileSorted is Quantile for an already-sorted sample.
func QuantileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 0 {
		panic(ErrEmpty)
	}
	if n == 1 {
		return s[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	return &ECDF{sorted: Sorted(xs)}, nil
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// advance over ties to count values <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Exceedance returns P(X > x) = 1 - At(x): the empirical CCDF, the form in
// which the paper plots pWCET curves (Figure 1, Figure 5(c)).
func (e *ECDF) Exceedance(x float64) float64 { return 1 - e.At(x) }

// Values returns the sorted sample (shared slice; do not modify).
func (e *ECDF) Values() []float64 { return e.sorted }

// Histogram is a fixed-width binned density estimate, the representation
// behind the probability density plots of Figure 5(a,b).
type Histogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into bins equal-width bins spanning [min, max].
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate sample: single bin of width 1
	}
	h := &Histogram{
		Lo:       lo,
		Hi:       hi,
		BinWidth: (hi - lo) / float64(bins),
		Counts:   make([]int, bins),
		Total:    len(xs),
	}
	for _, x := range xs {
		i := int((x - lo) / h.BinWidth)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h, nil
}

// Density returns the estimated probability density of bin i.
func (h *Histogram) Density(i int) float64 {
	return float64(h.Counts[i]) / (float64(h.Total) * h.BinWidth)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// --- special functions -----------------------------------------------

// GammaP returns the regularized lower incomplete gamma function P(a, x),
// via the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes construction, stdlib-only).
func GammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaCF(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function Q(a, x).
func GammaQ(a, x float64) float64 { return 1 - GammaP(a, x) }

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(float64(k)/2, x/2)
}

// ChiSquareSurvival returns P(X > x), the p-value of a chi-square statistic.
func ChiSquareSurvival(x float64, k int) float64 { return 1 - ChiSquareCDF(x, k) }

// NormalCDF returns the standard normal CDF.
func NormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// KolmogorovSurvival returns Q_KS(lambda) = 2 sum_{j>=1} (-1)^{j-1}
// exp(-2 j^2 lambda^2), the asymptotic survival function of the Kolmogorov
// statistic used to convert two-sample KS distances into p-values.
func KolmogorovSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) || math.Abs(term) < 1e-300 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// ChiSquareUniformity computes the chi-square statistic of observed counts
// against a uniform expectation and its p-value (counts-1 degrees of
// freedom). Used by the placement-uniformity analyses.
func ChiSquareUniformity(counts []int) (stat, pvalue float64) {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(counts) < 2 {
		return 0, 1
	}
	expected := float64(n) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, ChiSquareSurvival(stat, len(counts)-1)
}
