package stats

import (
	"math"
	"testing"

	"repro/internal/prng"
)

// randomShards cuts [0, n) into 1..maxShards contiguous shards at random
// boundaries drawn from g.
func randomShards(g *prng.PRNG, n, maxShards int) [][2]int {
	if n < 2 {
		return [][2]int{{0, n}}
	}
	k := 1 + g.Intn(maxShards)
	cuts := map[int]bool{}
	for i := 0; i < k-1; i++ {
		cuts[1+g.Intn(n-1)] = true
	}
	bounds := []int{0}
	for c := 1; c < n; c++ {
		if cuts[c] {
			bounds = append(bounds, c)
		}
	}
	bounds = append(bounds, n)
	var out [][2]int
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, [2]int{bounds[i], bounds[i+1]})
	}
	return out
}

// shuffle permutes idx deterministically from g (Fisher-Yates).
func shuffle(g *prng.PRNG, idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// TestMomentsMergeMatchesBatch: for random data, random shardings and
// random merge orders, the merged Moments reproduce the batch statistics.
// Count and extremes must be exact; mean and variance within floating
// tolerance (merge order perturbs only the last ulps of the Welford term).
func TestMomentsMergeMatchesBatch(t *testing.T) {
	g := prng.New(0xACC1)
	for trial := 0; trial < 60; trial++ {
		n := 2 + g.Intn(800)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 1e5 + 1e4*g.Float64() // large offset: cancellation stress
		}
		shards := randomShards(g, n, 12)
		accs := make([]Moments, len(shards))
		for si, s := range shards {
			for _, x := range xs[s[0]:s[1]] {
				accs[si].Add(x)
			}
		}
		order := make([]int, len(shards))
		for i := range order {
			order[i] = i
		}
		shuffle(g, order)
		var merged Moments
		for _, si := range order {
			merged.Merge(&accs[si])
		}
		if merged.N != int64(n) {
			t.Fatalf("trial %d: merged N = %d, want %d", trial, merged.N, n)
		}
		if merged.Min != Min(xs) || merged.Max != Max(xs) {
			t.Fatalf("trial %d: merged extremes (%v, %v) != batch (%v, %v)",
				trial, merged.Min, merged.Max, Min(xs), Max(xs))
		}
		if m, want := merged.Mean(), Mean(xs); math.Abs(m-want) > 1e-9*math.Abs(want) {
			t.Fatalf("trial %d: merged mean %v, batch %v", trial, m, want)
		}
		if v, want := merged.Variance(), Variance(xs); math.Abs(v-want) > 1e-6*want+1e-9 {
			t.Fatalf("trial %d: merged variance %v, batch %v", trial, v, want)
		}
	}
}

// TestMomentsExactForIntegralInputs pins the bit-identity contract the
// engine relies on: for integral observations (cycle counts), the merged
// Sum — and therefore Mean — equals the sequential batch computation
// bit-for-bit, for any sharding merged in stream order.
func TestMomentsExactForIntegralInputs(t *testing.T) {
	g := prng.New(0xACC2)
	for trial := 0; trial < 60; trial++ {
		n := 1 + g.Intn(1000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(100000 + g.Intn(5000000)) // integral, like cycles
		}
		shards := randomShards(g, n, 9)
		var merged Moments
		for _, s := range shards {
			var acc Moments
			for _, x := range xs[s[0]:s[1]] {
				acc.Add(x)
			}
			merged.Merge(&acc)
		}
		var seq Moments
		for _, x := range xs {
			seq.Add(x)
		}
		if merged.Sum != seq.Sum {
			t.Fatalf("trial %d: merged Sum %v != sequential %v", trial, merged.Sum, seq.Sum)
		}
		if merged.Mean() != Mean(xs) {
			t.Fatalf("trial %d: merged Mean %v != batch stats.Mean %v", trial, merged.Mean(), Mean(xs))
		}
	}
}

// TestSketchMergeMatchesBatch: merged sketches are identical (bucket by
// bucket) to the batch-filled sketch for any sharding and merge order,
// and quantile estimates stay within the documented bucket resolution.
func TestSketchMergeMatchesBatch(t *testing.T) {
	g := prng.New(0x5CE7)
	for trial := 0; trial < 40; trial++ {
		n := 2 + g.Intn(600)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(14 * g.Float64()) // spread across many octaves
		}
		var batch QuantileSketch
		for _, x := range xs {
			batch.Add(x)
		}
		shards := randomShards(g, n, 10)
		accs := make([]QuantileSketch, len(shards))
		for si, s := range shards {
			for _, x := range xs[s[0]:s[1]] {
				accs[si].Add(x)
			}
		}
		order := make([]int, len(shards))
		for i := range order {
			order[i] = i
		}
		shuffle(g, order)
		var merged QuantileSketch
		for _, si := range order {
			merged.Merge(&accs[si])
		}
		if merged != batch {
			t.Fatalf("trial %d: merged sketch differs from batch sketch", trial)
		}
		// A rank-based histogram estimate must land within bucket
		// resolution (1/8 octave = 12.5%) of the order-statistic range
		// bracketing the target rank.
		s := Sorted(xs)
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			got := merged.Quantile(p)
			h := p * float64(n-1)
			lo, hi := s[int(math.Floor(h))], s[int(math.Ceil(h))]
			if got < lo/1.125-1 || got > hi*1.125+1 {
				t.Fatalf("trial %d: q(%v) = %v outside [%v, %v] ± bucket resolution", trial, p, got, lo, hi)
			}
		}
	}
}

// TestSketchQuantileMonotone: quantile estimates never decrease in p.
func TestSketchQuantileMonotone(t *testing.T) {
	g := prng.New(0x5CE8)
	var q QuantileSketch
	for i := 0; i < 500; i++ {
		q.Add(1 + 1e6*g.Float64())
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := q.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone: q(%v) = %v < %v", p, v, prev)
		}
		prev = v
	}
}

// TestSketchEdgeValues: out-of-range inputs land in the boundary buckets
// without panicking, and the empty sketch reports zero.
func TestSketchEdgeValues(t *testing.T) {
	var q QuantileSketch
	if q.Quantile(0.5) != 0 {
		t.Errorf("empty sketch quantile = %v, want 0", q.Quantile(0.5))
	}
	for _, x := range []float64{0, -3, 0.5, math.Inf(1), math.Inf(-1), math.NaN(), 1e300} {
		q.Add(x)
	}
	if q.N != 7 {
		t.Errorf("N = %d, want 7", q.N)
	}
	if q.Footprint() <= 0 {
		t.Errorf("Footprint() = %d", q.Footprint())
	}
}

// TestBlockMaxMergeMatchesBatch: per-shard partial block maxima merged in
// any order are bit-identical to the batch per-block reduction.
func TestBlockMaxMergeMatchesBatch(t *testing.T) {
	g := prng.New(0xB10C)
	for trial := 0; trial < 60; trial++ {
		n := 4 + g.Intn(900)
		block := 2 + g.Intn(25)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(1000 + g.Intn(1000000))
		}
		nb := n / block
		if nb == 0 {
			continue
		}
		shards := randomShards(g, n, 11)
		parts := make([]*BlockMax, len(shards))
		for si, s := range shards {
			lo, hi := s[0], s[1]
			parts[si] = NewBlockMax(block, lo/block, (hi-1)/block+1)
			for run := lo; run < hi; run++ {
				parts[si].Add(run, xs[run])
			}
		}
		order := make([]int, len(shards))
		for i := range order {
			order[i] = i
		}
		shuffle(g, order)
		central := NewBlockMax(block, 0, nb)
		for _, si := range order {
			central.Merge(parts[si])
		}
		for b := 0; b < nb; b++ {
			want := Max(xs[b*block : (b+1)*block])
			if central.Max[b] != want {
				t.Fatalf("trial %d: block %d max = %v, want %v", trial, b, central.Max[b], want)
			}
		}
	}
}
