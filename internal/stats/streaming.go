// Streaming, mergeable accumulators: the online half of the MBPTA
// statistics path. A campaign sharded into chunks accumulates each chunk
// into private accumulators and merges them in canonical run-index order,
// so the aggregate of a million-run campaign needs O(1) memory in the run
// count instead of buffering the full measurement vector.
//
// Exactness contract. Counts, minima, maxima, block maxima and the
// sketch's bucket counts are exact and independent of how the stream was
// sharded or in which order shards merged. The running Sum is a float64
// addition chain: for integral inputs (simulated cycle counts) it is
// exact while the total stays below 2^53, which makes Mean bit-identical
// to the batch stats.Mean for any sharding — the property the repo's
// determinism gate (BENCH_PR*.json) pins. The variance term uses the
// numerically stable Welford/Chan combination; it is accurate for any
// merge order but its last few ulps may depend on shard boundaries, so it
// is never part of the bit-identity contract.
package stats

import "math"

// Moments is a mergeable streaming accumulator for the count, sum,
// extremes and second central moment of a sample. The zero value is an
// empty accumulator ready for Add.
type Moments struct {
	N   int64
	Sum float64
	Min float64
	Max float64

	// Welford running mean and sum of squared deviations, maintained
	// separately from Sum: Sum/N is the exact (grouping-independent) mean
	// for integral inputs, while mean/m2 give a cancellation-free variance.
	mean float64
	m2   float64
}

// Add accumulates one observation.
//
//rm:hotpath
func (m *Moments) Add(x float64) {
	if m.N == 0 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.N++
	m.Sum += x
	d := x - m.mean
	m.mean += d / float64(m.N)
	m.m2 += d * (x - m.mean)
}

// Merge folds o into m (Chan et al.'s parallel combination for the
// variance term). Merging shard accumulators in stream order reproduces
// the sequential N, Sum, Min and Max exactly.
//
//rm:hotpath
func (m *Moments) Merge(o *Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = *o
		return
	}
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	n, on := float64(m.N), float64(o.N)
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*n*on/(n+on)
	m.mean += d * on / (n + on)
	m.Sum += o.Sum
	m.N += o.N
}

// Mean returns Sum/N (0 for an empty accumulator) — bit-identical to the
// batch stats.Mean for integral inputs under any sharding.
func (m *Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Variance returns the unbiased sample variance (0 for N < 2).
func (m *Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.m2 / float64(m.N-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Welford returns the internal running mean and squared-deviation sum, so
// checkpoint codecs outside the package can serialize the complete
// accumulator state (N/Sum/Min/Max alone cannot rebuild the variance).
func (m *Moments) Welford() (mean, m2 float64) { return m.mean, m.m2 }

// SetWelford restores the internal Welford terms captured by Welford —
// the other half of a checkpoint round trip.
func (m *Moments) SetWelford(mean, m2 float64) { m.mean, m.m2 = mean, m2 }

// Quantile sketch geometry: values >= 1 land in one of 64 binary octaves
// [2^o, 2^(o+1)), each split into sketchSub equal-width sub-buckets;
// values below 1 share the underflow bucket 0. Bucket boundaries are
// fixed constants, so the bucket of a value — and therefore every count
// and every interpolated quantile — is a pure function of the data,
// independent of sharding, merge order or worker count.
const (
	sketchSub     = 8
	sketchOctaves = 64
	sketchBuckets = 1 + sketchOctaves*sketchSub
)

// QuantileSketch is a mergeable fixed-size histogram sketch for
// deterministic streaming quantile estimates. The zero value is empty and
// ready for Add. Within an octave a bucket spans 1/8 of the octave, so a
// quantile estimate carries at most ~12.5% relative error (far less in
// practice, via in-bucket interpolation); counts and merges are exact.
type QuantileSketch struct {
	N       int64
	Buckets [sketchBuckets]int64
}

// sketchBucket maps x to its bucket index.
func sketchBucket(x float64) int {
	if !(x >= 1) { // negatives, zero, NaN: underflow bucket
		return 0
	}
	if math.IsInf(x, 1) {
		return sketchBuckets - 1
	}
	f, e := math.Frexp(x)   // x = f * 2^e, f in [0.5, 1)
	o := e - 1              // x in [2^o, 2^(o+1))
	if o >= sketchOctaves { // anything past 2^64
		return sketchBuckets - 1
	}
	s := int((f - 0.5) * (2 * sketchSub))
	if s >= sketchSub {
		s = sketchSub - 1
	}
	return 1 + o*sketchSub + s
}

// sketchBounds returns the value range [lo, hi) of bucket i.
func sketchBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	o := (i - 1) / sketchSub
	s := (i - 1) % sketchSub
	base := math.Ldexp(1, o) // 2^o
	step := base / sketchSub
	return base + float64(s)*step, base + float64(s+1)*step
}

// Add accumulates one observation.
//
//rm:hotpath
func (q *QuantileSketch) Add(x float64) {
	q.N++
	q.Buckets[sketchBucket(x)]++
}

// Merge folds o into q. Bucket counts are integers, so the merged sketch
// is identical for any merge order.
//
//rm:hotpath
func (q *QuantileSketch) Merge(o *QuantileSketch) {
	q.N += o.N
	for i, c := range o.Buckets {
		q.Buckets[i] += c
	}
}

// Quantile returns the deterministic p-quantile estimate (0 <= p <= 1) by
// linear interpolation inside the bucket holding the target rank. It
// returns 0 for an empty sketch.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if q.N == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(q.N-1) // fractional rank in [0, N-1]
	var cum int64
	last := 0.0
	for i, c := range q.Buckets {
		if c == 0 {
			continue
		}
		// Ranks [cum, cum+c) live in this bucket.
		if target < float64(cum+c) {
			lo, hi := sketchBounds(i)
			t := (target - float64(cum)) / float64(c)
			if t < 0 {
				t = 0
			}
			return lo + t*(hi-lo)
		}
		cum += c
		_, last = sketchBounds(i)
	}
	return last
}

// Footprint returns the resident size of the sketch in bytes, for
// accumulator-memory accounting.
func (q *QuantileSketch) Footprint() int { return 8 * (1 + sketchBuckets) }

// BlockMax is a mergeable exact block-maxima accumulator: the streaming
// form of the EVT reduction (evt.BlockMaxima). The stream's run indices
// [0, runs) are partitioned into fixed blocks of Block runs; Max[i] holds
// the running maximum of block First+i. Because max is associative and
// commutative, the merged per-block maxima are bit-identical to the batch
// reduction for any sharding and any merge order.
//
// A shard covering runs [lo, hi) only needs the blocks intersecting that
// range: NewBlockMax(block, lo/block, (hi-1)/block+1) keeps shard
// accumulators O(shard size / block) while the campaign-level accumulator
// spans every complete block.
type BlockMax struct {
	Block int
	First int // block index of Max[0]
	Max   []float64
}

// NewBlockMax returns an accumulator for blocks [first, last) of a stream
// with the given block size. block must be >= 1 and last > first.
func NewBlockMax(block, first, last int) *BlockMax {
	b := &BlockMax{Block: block, First: first, Max: make([]float64, last-first)}
	for i := range b.Max {
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// Add accumulates the observation of one run index. Runs outside the
// accumulator's block range are ignored.
//
//rm:hotpath
func (b *BlockMax) Add(run int, x float64) {
	i := run/b.Block - b.First
	if i < 0 || i >= len(b.Max) {
		return
	}
	if x > b.Max[i] {
		b.Max[i] = x
	}
}

// Merge folds o's per-block partial maxima into b (blocks outside b's
// range are ignored). Merging every shard of a partition of [0, runs)
// reproduces the batch block maxima exactly.
//
//rm:hotpath
func (b *BlockMax) Merge(o *BlockMax) {
	for i, m := range o.Max {
		j := o.First + i - b.First
		if j < 0 || j >= len(b.Max) {
			continue
		}
		if m > b.Max[j] {
			b.Max[j] = m
		}
	}
}
