package workload

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/trace"
)

func TestAllWorkloadsBuildNonEmpty(t *testing.T) {
	l := DefaultLayout()
	for _, w := range All() {
		tr := w.Build(l)
		if len(tr) < 1000 {
			t.Errorf("%s: trace only %d accesses", w.Name, len(tr))
		}
		f, ld, st := tr.Counts()
		if f == 0 || ld == 0 {
			t.Errorf("%s: degenerate trace (f=%d l=%d s=%d)", w.Name, f, ld, st)
		}
	}
}

func TestEEMBCCountAndOrder(t *testing.T) {
	ws := EEMBC()
	if len(ws) != 11 {
		t.Fatalf("EEMBC suite has %d kernels, want 11 (Table 2)", len(ws))
	}
	want := []string{"a2time01", "basefp01", "bitmnp01", "cacheb01", "canrdr01",
		"matrix01", "pntrch01", "puwmod01", "rspeed01", "tblook01", "ttsprk01"}
	for i, w := range ws {
		if w.Name != want[i] {
			t.Fatalf("kernel %d = %s, want %s", i, w.Name, want[i])
		}
		if w.Description == "" {
			t.Errorf("%s has no description", w.Name)
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	// The program (including its pseudo-random content) is fixed: two
	// builds under the same layout must be identical. This is what makes
	// run-to-run variation attributable to the hardware seed alone.
	l := DefaultLayout()
	for _, w := range All() {
		a := w.Build(l)
		b := w.Build(l)
		if len(a) != len(b) {
			t.Fatalf("%s: build lengths differ", w.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: traces diverge at access %d", w.Name, i)
			}
		}
	}
}

func TestLayoutShiftsAddressesOnly(t *testing.T) {
	// Moving the layout must not change the access structure (kinds and
	// relative offsets within each object), only the absolute addresses.
	w, err := ByName("a2time01")
	if err != nil {
		t.Fatal(err)
	}
	a := w.Build(DefaultLayout())
	l2 := DefaultLayout()
	l2.Data += 4096
	l2.Code += 8192
	b := w.Build(l2)
	if len(a) != len(b) {
		t.Fatal("layout changed trace length")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatalf("layout changed access kind at %d", i)
		}
	}
}

func TestRandomizedLayoutVaries(t *testing.T) {
	g := prng.New(1)
	seen := make(map[Layout]bool)
	for i := 0; i < 50; i++ {
		seen[RandomizedLayout(g)] = true
	}
	if len(seen) < 45 {
		t.Fatalf("only %d distinct layouts in 50 draws", len(seen))
	}
	// Displacements are line-aligned and within the 16KB window.
	base := DefaultLayout()
	for i := 0; i < 200; i++ {
		l := RandomizedLayout(g)
		checks := []struct{ got, base uint64 }{
			{l.Code, base.Code}, {l.Data, base.Data}, {l.Table, base.Table},
			{l.Stack, base.Stack}, {l.Pool, base.Pool},
		}
		for _, c := range checks {
			d := c.got - c.base
			if d%LineBytes != 0 || d >= 16*1024 {
				t.Fatalf("displacement %d not line-aligned within 16KB", d)
			}
		}
		for _, s := range l.Scatter {
			if s%LineBytes != 0 || s >= 16*1024 {
				t.Fatalf("scatter %d not line-aligned within 16KB", s)
			}
		}
	}
}

func TestSyntheticFootprints(t *testing.T) {
	// Paper Section 4: vector footprints of 8KB, 20KB, 160KB traversed 50
	// times. The built trace must touch the stated number of data lines.
	for _, kb := range []int{8, 20, 160} {
		w := Synthetic(kb*1024, 2, 4) // 2 sweeps keep the test fast
		tr := w.Build(DefaultLayout())
		dataLines := map[uint64]bool{}
		for _, a := range tr {
			if a.Kind != trace.Fetch {
				dataLines[a.Addr>>5] = true
			}
		}
		want := kb * 1024 / 32
		if len(dataLines) != want {
			t.Errorf("%dKB kernel touches %d data lines, want %d", kb, len(dataLines), want)
		}
	}
}

func TestSyntheticSweepsScaleTraceLength(t *testing.T) {
	short := Synthetic(8*1024, 10, 4).Build(DefaultLayout())
	long := Synthetic(8*1024, 50, 4).Build(DefaultLayout())
	if len(long) < 4*len(short) {
		t.Fatalf("50 sweeps (%d) not ~5x of 10 sweeps (%d)", len(long), len(short))
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("tblook01"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("synth20k"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFootprintsMatchCharacterization(t *testing.T) {
	// Structural expectations that drive the cache behaviour: cacheb must
	// exceed the 16KB L1; a2time and puwmod must fit comfortably; tblook's
	// table spans multiple 4KB segments.
	l := DefaultLayout()
	lines := func(name string) int {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return w.Build(l).Footprint(32)
	}
	if n := lines("cacheb01"); n < 600 {
		t.Errorf("cacheb01 footprint %d lines, want > 600 (exceeds L1)", n)
	}
	if n := lines("puwmod01"); n > 200 {
		t.Errorf("puwmod01 footprint %d lines, want small", n)
	}
	if n := lines("tblook01"); n < 380 {
		t.Errorf("tblook01 footprint %d lines, want >= 384 (12KB table)", n)
	}
}

func TestStackTrafficPresent(t *testing.T) {
	w, err := ByName("a2time01")
	if err != nil {
		t.Fatal(err)
	}
	l := DefaultLayout()
	tr := w.Build(l)
	stack := 0
	for _, a := range tr {
		if a.Addr < l.Stack && a.Addr > l.Stack-4096 {
			stack++
		}
	}
	if stack == 0 {
		t.Fatal("a2time01 has no stack traffic")
	}
}

func TestPointerChaseIsIrregular(t *testing.T) {
	// pntrch's chain must not be a sequential walk: consecutive pool loads
	// should jump around the pool.
	w, err := ByName("pntrch01")
	if err != nil {
		t.Fatal(err)
	}
	l := DefaultLayout()
	tr := w.Build(l)
	var hops []uint64
	for _, a := range tr {
		if a.Kind == trace.Load && a.Addr >= l.Pool && a.Addr%32 == 0 {
			hops = append(hops, a.Addr)
		}
	}
	if len(hops) < 100 {
		t.Fatal("too few pool hops")
	}
	sequential := 0
	for i := 1; i < len(hops); i++ {
		if hops[i] == hops[i-1]+32 {
			sequential++
		}
	}
	if sequential > len(hops)/4 {
		t.Fatalf("pointer chase looks sequential: %d/%d consecutive hops", sequential, len(hops))
	}
}

func TestRandomizedLayoutFrom(t *testing.T) {
	// The legacy stream is preserved: RandomizedLayout equals
	// RandomizedLayoutFrom over the default bases with the deliberate
	// scatter zeroed (absolute scatter replacement), for the same PRNG
	// state.
	legacyBase := DefaultLayout()
	legacyBase.Scatter = [ScatterSlots]uint64{}
	for seed := uint64(1); seed < 20; seed++ {
		if got, want := RandomizedLayoutFrom(legacyBase, prng.New(seed)), RandomizedLayout(prng.New(seed)); got != want {
			t.Fatalf("seed %d: From(default/zero-scatter) %+v != legacy %+v", seed, got, want)
		}
	}
	// Displacements are applied relative to the supplied base.
	base := DefaultLayout()
	base.Data += 12
	base.Scatter[3] = 5
	l := RandomizedLayoutFrom(base, prng.New(7))
	ref := RandomizedLayoutFrom(DefaultLayout(), prng.New(7))
	if l.Data != ref.Data+12 {
		t.Errorf("Data base shift lost: got %d, want %d", l.Data, ref.Data+12)
	}
	if l.Scatter[3] != ref.Scatter[3]-DefaultLayout().Scatter[3]+5 {
		t.Errorf("scatter base not honoured: got %d", l.Scatter[3])
	}
	// Same PRNG state, same base -> identical layout (purity, the HWM
	// determinism contract).
	if RandomizedLayoutFrom(base, prng.New(7)) != RandomizedLayoutFrom(base, prng.New(7)) {
		t.Error("RandomizedLayoutFrom is not a pure function of (base, seed)")
	}
}
