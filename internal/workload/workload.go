// Package workload provides the benchmark programs of the paper's
// evaluation as address-trace generators: the synthetic vector kernel of
// Section 4 (8KB / 20KB / 160KB footprints traversed 50 times) and eleven
// EEMBC-Automotive-like kernels standing in for the proprietary EEMBC
// suite (a2time .. ttsprk).
//
// Each kernel is a deterministic program: given a memory Layout it always
// produces the same trace. This mirrors the paper's setup, where the same
// binary is run repeatedly and only the hardware placement seed changes.
// The deterministic baseline instead varies the Layout across runs
// (RandomizedLayout), modelling the memory-mapping variability that
// industrial measurement-based practice must chase: programs consist of
// several independently-placed objects (buffers, tables, stack, pools)
// whose relative cache alignment shifts with linking, integration order
// and stack depth, occasionally stacking more lines into a set than the
// cache has ways -- the cache risk patterns of the paper's introduction.
//
// The kernels are synthetic reconstructions, not EEMBC source: they
// reproduce the published structural character of each benchmark (hot-loop
// code footprints of a few KB, multiple KB-scale data objects, lookup
// tables, pointer chases, stack traffic) because those are the features
// cache placement reacts to. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/prng"
	"repro/internal/trace"
)

// LineBytes is the cache line size of the platform (32B in the paper).
const LineBytes = 32

// ScatterSlots is the number of independently-placed sub-objects a layout
// supports per region.
const ScatterSlots = 8

// Layout fixes the memory placement of the program's objects: the base
// address of each region plus the displacement of each sub-object within
// its region. Sub-objects are spaced far apart (so they never overlap) but
// their low address bits -- which decide cache alignment -- come from
// Scatter.
type Layout struct {
	Code  uint64 // program text
	Data  uint64 // data buffers
	Table uint64 // lookup tables
	Stack uint64 // stack frames (grows down from here)
	Pool  uint64 // heap pool (linked structures)
	// Scatter holds line-aligned displacements for sub-objects; entry k
	// displaces the k-th object of a region. This is where link/load-time
	// alignment variability lives.
	Scatter [ScatterSlots]uint64
}

// Obj returns the base address of the k-th sub-object of a region.
// Sub-objects are spaced 128KB apart so they are disjoint for any
// reasonable object size, while Scatter decides their cache alignment.
func (l Layout) Obj(region uint64, k int) uint64 {
	return region + uint64(k)*0x20000 + l.Scatter[k%ScatterSlots]
}

// DefaultLayout returns the fixed layout used for all randomized-placement
// campaigns: with MBPTA-compliant caches the layout is irrelevant by
// design, so any fixed one works (paper, Section 1: the end user "only
// needs to control the number of runs ... but not how program objects are
// allocated in memory").
func DefaultLayout() Layout {
	return Layout{
		Code:  0x0004_0000,
		Data:  0x0100_0000,
		Table: 0x0200_0000,
		Stack: 0x0300_8000,
		Pool:  0x0400_0000,
		Scatter: [ScatterSlots]uint64{
			0 * 1664, 1 * 1664, 2 * 1664, 3 * 1664,
			4 * 1664, 5 * 1664, 6 * 1664, 7 * 1664,
		},
	}
}

// RandomizedLayout draws a layout with line-granular random displacements
// (16KB windows for the region bases, way-sized windows for the
// sub-object scatter), modelling the memory-mapping variability that
// changes conflict patterns on deterministic caches: module placement,
// library and table alignment, stack depth. Used by the high-water-mark
// baseline of Figure 4(b).
func RandomizedLayout(g *prng.PRNG) Layout {
	// The default layout's deliberate scatter is replaced, not compounded:
	// zeroing it first makes RandomizedLayoutFrom reproduce the historical
	// absolute displacements bit-for-bit.
	base := DefaultLayout()
	base.Scatter = [ScatterSlots]uint64{}
	return RandomizedLayoutFrom(base, g)
}

// RandomizedLayoutFrom draws the same displacement stream as
// RandomizedLayout but applies it to a caller-supplied base layout:
// region bases shift by 0..16KB-32 and each scatter slot gains a
// line-granular displacement on top of the base's. This is what
// HWMCampaign's optional Layout override perturbs, letting the baseline
// explore mapping variability around a specific link map instead of the
// default one. The result is a pure function of (base, the PRNG state),
// so campaigns built on it stay bit-identical for any worker count.
func RandomizedLayoutFrom(base Layout, g *prng.PRNG) Layout {
	d := func() uint64 { return uint64(g.Intn(512)) * LineBytes } // 0..16KB-32
	l := base
	l.Code += d()
	l.Data += d()
	l.Table += d()
	l.Stack += d()
	l.Pool += d()
	for i := range l.Scatter {
		l.Scatter[i] += d()
	}
	return l
}

// Workload is a benchmark program: a named, deterministic trace generator.
type Workload struct {
	Name        string
	Description string
	Build       func(l Layout) trace.Trace
}

// FromTrace wraps an externally captured address trace (e.g. a valgrind
// lackey capture parsed by trace.ParseLackey) as a Workload. The trace is
// fixed: Build ignores the Layout, because the capture's addresses are
// the program's real placement. That makes MBPTA campaigns over it exact
// replays, while baseline (layout-randomizing) campaigns see no run-to-run
// variation — a captured trace cannot be relinked, so the HWM protocol
// degenerates to repetition and is not meaningful for these workloads.
func FromTrace(name, description string, tr trace.Trace) Workload {
	return Workload{
		Name:        name,
		Description: description,
		Build:       func(Layout) trace.Trace { return tr },
	}
}

// kernel carries the trace builder plus the program-internal pseudo-random
// state. The PRNG is seeded from the kernel name only: its draws are part
// of the program (input data, branch history), identical on every run.
type kernel struct {
	b   *trace.Builder
	l   Layout
	rng *prng.PRNG
	ops []trace.Access // per-iteration data-op scratch
}

func newKernel(name string, l Layout, sizeHint int) *kernel {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return &kernel{
		b:   trace.NewBuilder(sizeHint),
		l:   l,
		rng: prng.New(h),
	}
}

// Data-op emitters (queued, then interleaved with fetches by loopIter).

func (k *kernel) load(addr uint64) { k.ops = append(k.ops, trace.Access{Addr: addr, Kind: trace.Load}) }
func (k *kernel) store(addr uint64) {
	k.ops = append(k.ops, trace.Access{Addr: addr, Kind: trace.Store})
}

// stackFrame emits the entry/exit traffic of a small call frame.
func (k *kernel) stackFrame(words int) {
	for i := 0; i < words; i++ {
		k.store(k.l.Stack - uint64(4*i) - 4)
	}
	for i := 0; i < words; i++ {
		k.load(k.l.Stack - uint64(4*i) - 4)
	}
}

// loopIter emits one loop iteration: the codeLines-line loop body is
// fetched sequentially with the queued data operations interleaved evenly,
// approximating an in-order pipeline issuing one line's worth of
// instructions between data references. The scratch queue is consumed.
func (k *kernel) loopIter(codeOff uint64, codeLines int) {
	base := k.l.Code + codeOff
	n := len(k.ops)
	for j := 0; j < codeLines; j++ {
		k.b.Fetch(base + uint64(j*LineBytes))
		lo, hi := j*n/codeLines, (j+1)*n/codeLines
		for _, op := range k.ops[lo:hi] {
			k.b.Append(op)
		}
	}
	k.ops = k.ops[:0]
}

// initPhase stores through a buffer once, modelling program initialisation
// and giving the write path realistic work.
func (k *kernel) initPhase(base uint64, bytes int, codeOff uint64, codeLines int) {
	perIter := codeLines * 8 * 4 // bytes initialised per loop pass (8 words/line)
	for off := 0; off < bytes; off += perIter {
		for b := off; b < off+perIter && b < bytes; b += 4 {
			k.store(base + uint64(b))
		}
		k.loopIter(codeOff, codeLines)
	}
}

// Synthetic returns the paper's synthetic kernel: a vector of
// footprintBytes traversed sequentially (strideBytes between elements)
// sweeps times inside a small loop. Paper Section 4: footprints 8KB (fits
// in L1), 20KB (fits only in L2) and 160KB (exceeds the 128KB L2
// partition), 50 traversals, 4-byte elements.
func Synthetic(footprintBytes, sweeps, strideBytes int) Workload {
	name := fmt.Sprintf("synth%dk", footprintBytes/1024)
	return Workload{
		Name: name,
		Description: fmt.Sprintf("synthetic vector kernel: %d KB footprint, %d sweeps, stride %d",
			footprintBytes/1024, sweeps, strideBytes),
		Build: func(l Layout) trace.Trace {
			const codeLines = 4
			elems := footprintBytes / strideBytes
			vec := l.Obj(l.Data, 0)
			k := newKernel(name, l, sweeps*(elems+elems/8))
			// Initialisation sweep: write the vector once.
			for e := 0; e < elems; e += codeLines * 8 {
				for j := e; j < e+codeLines*8 && j < elems; j++ {
					k.store(vec + uint64(j*strideBytes))
				}
				k.loopIter(0, codeLines)
			}
			// Main traversals: the loop body walks codeLines*8 elements per
			// pass so fetches interleave with loads as in an unrolled loop.
			perPass := codeLines * 8
			for s := 0; s < sweeps; s++ {
				for e := 0; e < elems; e += perPass {
					for j := e; j < e+perPass && j < elems; j++ {
						k.load(vec + uint64(j*strideBytes))
					}
					k.loopIter(0, codeLines)
				}
			}
			return k.b.Trace()
		},
	}
}

// eembcSpec describes one EEMBC-like kernel generically; the table below
// instantiates the eleven benchmarks of the paper's Table 2.
type eembcSpec struct {
	name, desc string
	build      func(k *kernel)
}

// EEMBC returns the eleven EEMBC-Automotive-like kernels in the order of
// the paper's Table 2 (identified there by their initials: A2 BA BI CB CN
// MA PN PU RS TB TT).
func EEMBC() []Workload {
	specs := []eembcSpec{
		{"a2time01", "angle-to-time conversion: small hot loop over sensor ring buffer", buildA2time},
		{"basefp01", "basic floating-point: arithmetic sweeps over working arrays", buildBasefp},
		{"bitmnp01", "bit manipulation: shifts and masks over bit arrays with a lookup table", buildBitmnp},
		{"cacheb01", "cache buster: large strided buffer deliberately exceeding the L1", buildCacheb},
		{"canrdr01", "CAN remote data request: message queue walk with ID table lookups", buildCanrdr},
		{"matrix01", "matrix arithmetic: row and column sweeps over three matrices", buildMatrix},
		{"pntrch01", "pointer chase: linked-list traversal over a node pool", buildPntrch},
		{"puwmod01", "pulse-width modulation: tiny control loop over a small state block", buildPuwmod},
		{"rspeed01", "road speed calculation: table-driven conversion of wheel pulses", buildRspeed},
		{"tblook01", "table lookup and interpolation over a large calibration table", buildTblook},
		{"ttsprk01", "tooth-to-spark: multi-phase ignition computation over several arrays", buildTtsprk},
	}
	out := make([]Workload, len(specs))
	for i, s := range specs {
		s := s
		out[i] = Workload{
			Name:        s.name,
			Description: s.desc,
			Build: func(l Layout) trace.Trace {
				k := newKernel(s.name, l, 1<<16)
				s.build(k)
				return k.b.Trace()
			},
		}
	}
	return out
}

// All returns every named workload: the EEMBC-like set plus the three
// synthetic footprints of the paper.
func All() []Workload {
	out := EEMBC()
	out = append(out,
		Synthetic(8*1024, 50, 4),
		Synthetic(20*1024, 50, 4),
		Synthetic(160*1024, 50, 4),
	)
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	all := All()
	for _, w := range all {
		if w.Name == name {
			return w, nil
		}
	}
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("workload: unknown name %q (have %v)", name, names)
}

// --- the eleven kernels ------------------------------------------------
//
// Object sizes are deliberately not multiples of the 4KB cache segment:
// partial-segment objects are the ones whose per-set pressure depends on
// relative alignment, which is what makes deterministic caches
// layout-sensitive (and what RM's per-segment permutation randomizes away).

// buildA2time: angle-to-time. Hot loop of 70 code lines; a 1KB sample
// ring, a 768B history window and a 256B state block; stack frames for the
// conversion call.
func buildA2time(k *kernel) {
	const codeLines = 70
	const ring = 1024
	samples := k.l.Obj(k.l.Data, 0)
	history := k.l.Obj(k.l.Data, 1)
	state := k.l.Obj(k.l.Table, 0)
	k.initPhase(samples, ring, 0, 8)
	k.initPhase(history, 768, 0, 8)
	for it := 0; it < 800; it++ {
		pos := uint64(it*4) % ring
		k.load(samples + pos)
		k.load(history + uint64(it*8)%768)
		k.load(history + uint64(it*8+384)%768)
		k.store(samples + pos)
		for w := 0; w < 4; w++ {
			k.load(state + uint64(w*64))
		}
		k.stackFrame(4)
		k.loopIter(0, codeLines)
	}
}

// buildBasefp: floating-point sweeps over a 6KB working array with a
// 2.5KB coefficient table and a 256B result block; 90-line loop body.
func buildBasefp(k *kernel) {
	const codeLines = 90
	const arr = 6 * 1024
	const coef = 2560
	work := k.l.Obj(k.l.Data, 0)
	coefs := k.l.Obj(k.l.Data, 1)
	result := k.l.Obj(k.l.Data, 2)
	k.initPhase(work, arr, 0, 8)
	k.initPhase(coefs, coef, 0, 8)
	for it := 0; it < 450; it++ {
		off := uint64(it%48) * 128
		for e := uint64(0); e < 128; e += 4 {
			k.load(work + off + e)
		}
		k.load(coefs + uint64(it*32)%coef)
		k.load(coefs + uint64(it*32+coef/2)%coef)
		k.store(result + uint64(it%64)*4)
		k.stackFrame(2)
		k.loopIter(0, codeLines)
	}
}

// buildBitmnp: forward and backward passes over two 2.5KB bit arrays with
// lookups into a 1KB nibble table; 110-line loop body.
func buildBitmnp(k *kernel) {
	const codeLines = 110
	const arr = 2560
	bits0 := k.l.Obj(k.l.Data, 0)
	bits1 := k.l.Obj(k.l.Data, 1)
	table := k.l.Obj(k.l.Table, 0)
	k.initPhase(bits0, arr, 0, 8)
	k.initPhase(bits1, arr, 0, 8)
	for it := 0; it < 400; it++ {
		base := bits0
		if it%2 == 1 {
			base = bits1
		}
		win := uint64(it%10) * 256
		if it%2 == 0 {
			for e := uint64(0); e < 256; e += 8 {
				k.load(base + win + e)
			}
		} else {
			for e := uint64(256); e > 0; e -= 8 {
				k.load(base + win + e - 8)
			}
		}
		for t := 0; t < 6; t++ {
			k.load(table + uint64(k.rng.Intn(1024))&^3)
		}
		k.store(base + win)
		k.loopIter(0, codeLines)
	}
}

// buildCacheb: the suite's cache stresser: a 24KB buffer (1.5x the L1)
// walked with a 128B stride so successive accesses hop sets; 40-line loop.
func buildCacheb(k *kernel) {
	const codeLines = 40
	const buf = 24 * 1024
	b := k.l.Obj(k.l.Data, 0)
	k.initPhase(b, buf, 0, 8)
	for it := 0; it < 500; it++ {
		start := uint64(it%16) * 32
		for e := uint64(0); e < buf; e += 128 * 16 {
			k.load(b + start + e)
			k.store(b + start + e + 64)
		}
		k.loopIter(0, codeLines)
	}
}

// buildCanrdr: a 5KB message queue consumed FIFO with identifier lookups
// in a 1KB table and a 512B status block; 85-line loop body.
func buildCanrdr(k *kernel) {
	const codeLines = 85
	const queue = 5 * 1024
	q := k.l.Obj(k.l.Data, 0)
	status := k.l.Obj(k.l.Data, 1)
	idtab := k.l.Obj(k.l.Table, 0)
	k.initPhase(q, queue, 0, 8)
	for it := 0; it < 550; it++ {
		msg := uint64(it*64) % queue
		for w := uint64(0); w < 64; w += 4 { // read the message
			k.load(q + msg + w)
		}
		k.load(idtab + uint64(k.rng.Intn(1024))&^3) // ID match
		k.load(idtab + uint64(k.rng.Intn(1024))&^3)
		k.store(status + uint64(it%16)*32)
		k.store(q + msg) // mark consumed
		k.stackFrame(3)
		k.loopIter(0, codeLines)
	}
}

// buildMatrix: row sweeps of A, column sweeps of B (stride = one row) and
// stores into C; three 40x40 matrices of 4-byte elements (6.25KB each,
// deliberately not a whole number of cache segments); 75-line loop body.
func buildMatrix(k *kernel) {
	const codeLines = 75
	const dim = 40
	const mat = dim * dim * 4
	a := k.l.Obj(k.l.Data, 0)
	bm := k.l.Obj(k.l.Data, 1)
	cm := k.l.Obj(k.l.Data, 2)
	k.initPhase(a, mat, 0, 8)
	k.initPhase(bm, mat, 0, 8)
	k.initPhase(cm, mat, 0, 8)
	for pass := 0; pass < 16; pass++ {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				k.load(a + uint64((i*dim+j)*4))  // row walk
				k.load(bm + uint64((j*dim+i)*4)) // column walk
			}
			k.store(cm + uint64((i*dim+pass%dim)*4))
			k.loopIter(0, codeLines)
		}
	}
}

// buildPntrch: pointer chase across an 8KB node pool along a precomputed
// random cycle, recording hits in a 2.5KB visited bitmap; 50-line loop
// body, one hop per iteration plus payload.
func buildPntrch(k *kernel) {
	const codeLines = 50
	const nodes = 256 // 8KB pool, 32B nodes
	pool := k.l.Obj(k.l.Pool, 0)
	visited := k.l.Obj(k.l.Data, 0)
	// Build a random Hamiltonian cycle over the pool (Sattolo's algorithm),
	// identical on every run: it is program data.
	next := make([]int, nodes)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := k.rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < nodes-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[nodes-1]] = perm[0]
	k.initPhase(pool, nodes*32, 0, 8)
	cur := 0
	for it := 0; it < 2200; it++ {
		k.load(pool + uint64(cur*32))         // node header (next pointer)
		k.load(pool + uint64(cur*32) + 8)     // payload
		k.load(visited + (uint64(cur)*10)&^3) // visited bitmap (2.5KB)
		if it%16 == 0 {
			k.store(pool + uint64(cur*32) + 16)
		}
		cur = next[cur]
		k.loopIter(0, codeLines)
	}
}

// buildPuwmod: pulse-width modulation: a tiny 30-line control loop over a
// 512B state block, store-heavy, very many iterations. Deliberately the
// smallest footprint of the suite: on such kernels every placement policy
// behaves alike, which anchors the low end of Figure 4(a).
func buildPuwmod(k *kernel) {
	const codeLines = 30
	state := k.l.Obj(k.l.Data, 0)
	k.initPhase(state, 512, 0, 8)
	for it := 0; it < 1500; it++ {
		s := uint64(it%16) * 32
		k.load(state + s)
		k.load(state + s + 8)
		k.store(state + s + 16)
		k.store(state + s + 24)
		k.loopIter(0, codeLines)
	}
}

// buildRspeed: road-speed computation: 45-line loop, a 512B pulse buffer,
// a 2KB conversion table and a 2.5KB calibration block hit per iteration.
func buildRspeed(k *kernel) {
	const codeLines = 45
	pulses := k.l.Obj(k.l.Data, 0)
	conv := k.l.Obj(k.l.Table, 0)
	calib := k.l.Obj(k.l.Table, 1)
	k.initPhase(pulses, 512, 0, 8)
	for it := 0; it < 850; it++ {
		k.load(pulses + uint64(it*8)%512)
		idx := uint64(k.rng.Intn(2048)) &^ 3
		k.load(conv + idx)
		k.load(conv + (idx+4)%2048)
		k.load(calib + uint64(it*52)%2560)
		k.store(pulses + uint64(it*8+4)%512)
		k.stackFrame(2)
		k.loopIter(0, codeLines)
	}
}

// buildTblook: table lookup and interpolation over a 12KB calibration
// table (3 L1 ways' worth) with a 512B result buffer and a 768B index
// block: four lookup pairs per 80-line iteration.
func buildTblook(k *kernel) {
	const codeLines = 80
	const table = 12 * 1024
	tab := k.l.Obj(k.l.Table, 0)
	result := k.l.Obj(k.l.Data, 0)
	index := k.l.Obj(k.l.Data, 1)
	k.initPhase(tab, table, 0, 8)
	for it := 0; it < 650; it++ {
		for p := 0; p < 4; p++ {
			k.load(index + uint64((it*4+p)*12)%768)
			idx := uint64(k.rng.Intn(table-8)) &^ 3
			k.load(tab + idx)     // y0
			k.load(tab + idx + 4) // y1 (interpolation pair)
		}
		k.store(result + uint64(it%16)*32)
		k.stackFrame(3)
		k.loopIter(0, codeLines)
	}
}

// buildTtsprk: tooth-to-spark: three phases with their own loop bodies
// (60/50/40 lines at distinct code offsets) over three independently
// placed 2KB arrays and a 2KB table, repeated 250 times.
func buildTtsprk(k *kernel) {
	const arr = 2 * 1024
	a0 := k.l.Obj(k.l.Data, 0)
	a1 := k.l.Obj(k.l.Data, 1)
	a2 := k.l.Obj(k.l.Data, 2)
	table := k.l.Obj(k.l.Table, 0)
	k.initPhase(a0, arr, 0, 8)
	k.initPhase(a1, arr, 0, 8)
	k.initPhase(a2, arr, 0, 8)
	for it := 0; it < 250; it++ {
		// Phase 1: tooth wheel scan.
		for e := uint64(0); e < 512; e += 8 {
			k.load(a0 + (uint64(it%4)*512 + e))
		}
		k.loopIter(0, 60)
		// Phase 2: spark angle from calibration table.
		for p := 0; p < 6; p++ {
			k.load(table + uint64(k.rng.Intn(2048))&^3)
		}
		for e := uint64(0); e < 256; e += 8 {
			k.load(a1 + (uint64(it%8)*256 + e))
		}
		k.loopIter(60*LineBytes, 50)
		// Phase 3: dwell update.
		for e := uint64(0); e < 256; e += 16 {
			k.load(a2 + (uint64(it%8)*256 + e))
			k.store(a2 + (uint64(it%8)*256 + e + 8))
		}
		k.stackFrame(4)
		k.loopIter((60+50)*LineBytes, 40)
	}
}
