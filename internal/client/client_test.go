package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
)

// recorded swaps the client's sleeper for one that records the schedule
// without real time passing.
func recorded(c *Client) *[]time.Duration {
	var ds []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		ds = append(ds, d)
		return ctx.Err()
	}
	return &ds
}

// flakyServer answers 429 (with Retry-After) for the first fail
// requests, then succeeds.
func flakyServer(t *testing.T, fail int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "job queue full, retry later"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{"id": "c-000001", "state": "queued"})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestBackoffDeterministic: the retry schedule is a pure function of the
// jitter seed — same seed, same delays; different seed, different
// delays.
func TestBackoffDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		ts, _ := flakyServer(t, 3)
		c := New(ts.URL, WithJitterSeed(seed),
			WithBackoff(Backoff{Tries: 5, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}))
		ds := recorded(c)
		if _, err := c.Submit(context.Background(), core.WireRequest{Workload: "x", Placement: "RM", Runs: 1}); err != nil {
			t.Fatalf("submit with retries: %v", err)
		}
		return *ds
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedules %v / %v, want 3 delays each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Every delay honours the server's Retry-After: 1 hint (it exceeds
	// the 80ms backoff cap, and flattens the jitter — seed divergence is
	// checked in TestJitterBounds, where no hint applies).
	for i, d := range a {
		if d != time.Second {
			t.Fatalf("delay %d = %v, want the 1s Retry-After floor", i, d)
		}
	}
}

// TestJitterBounds: without a Retry-After hint the delays stay inside
// the jitter window [base/2, base) of the exponential schedule, and
// different jitter seeds produce different schedules.
func TestJitterBounds(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	t.Cleanup(ts.Close)
	schedule := func(seed uint64) []time.Duration {
		c := New(ts.URL, WithJitterSeed(seed),
			WithBackoff(Backoff{Tries: 4, Base: 100 * time.Millisecond, Max: time.Second}))
		ds := recorded(c)
		if _, err := c.Status(context.Background(), "c-000001"); err == nil {
			t.Fatal("exhausted retries reported success")
		}
		return *ds
	}
	ds := schedule(3)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(ds) != len(want) {
		t.Fatalf("%d delays, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d < want[i]/2 || d >= want[i] {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, want[i]/2, want[i])
		}
	}
	other := schedule(4)
	same := true
	for i := range ds {
		if ds[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestPermanentErrorNoRetry: a 400 is final — one attempt, a typed
// *APIError, no backoff.
func TestPermanentErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "unknown workload"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithJitterSeed(1))
	ds := recorded(c)
	_, err := c.Submit(context.Background(), core.WireRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Temporary() {
		t.Fatalf("err = %v, want permanent 400 APIError", err)
	}
	if ae.Message != "unknown workload" {
		t.Fatalf("message = %q", ae.Message)
	}
	if calls.Load() != 1 || len(*ds) != 0 {
		t.Fatalf("calls=%d delays=%v, want exactly one attempt", calls.Load(), *ds)
	}
}

// TestRetryCounters: the obs counters move with the retry loop.
func TestRetryCounters(t *testing.T) {
	ts, _ := flakyServer(t, 2)
	reg := obs.NewRegistry()
	c := New(ts.URL, WithJitterSeed(1), WithRegistry(reg),
		WithBackoff(Backoff{Tries: 4, Base: time.Millisecond, Max: 2 * time.Millisecond}))
	recorded(c)
	if _, err := c.Submit(context.Background(), core.WireRequest{Workload: "x", Placement: "RM", Runs: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := c.rejections.Value(); got != 2 {
		t.Fatalf("rejections = %d, want 2", got)
	}
	if got := c.exhausted.Value(); got != 0 {
		t.Fatalf("exhaustions = %d, want 0", got)
	}
}

// TestDeadlinePropagation: a context deadline cuts the retry loop short
// — during the backoff sleep, not after the budget.
func TestDeadlinePropagation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithJitterSeed(1),
		WithBackoff(Backoff{Tries: 10, Base: time.Second, Max: time.Second}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Status(ctx, "c-000001")
	if err == nil || !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, ctx = %v", err, ctx.Err())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

// TestEndToEnd drives the client against the real service: submit, wait,
// stream, health.
func TestEndToEnd(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := New(ts.URL, WithJitterSeed(1))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := c.Submit(ctx, core.WireRequest{Workload: "tblook01", Placement: "RM", Runs: 40, Seed: 9, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Fingerprint == "" {
		t.Fatalf("submit = %+v", sub)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("wait = %+v", st)
	}
	var res struct {
		Runs  int       `json:"runs"`
		Times []float64 `json:"times"`
	}
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Runs != 40 || len(res.Times) != 40 {
		t.Fatalf("result runs=%d times=%d", res.Runs, len(res.Times))
	}

	var events []Event
	if err := c.Stream(ctx, sub.ID, func(ev Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].Kind != "end" || events[len(events)-1].State != "done" {
		t.Fatalf("stream ended with %+v", events)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(h, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("health = %s", h)
	}

	// Unknown id: 404 is permanent and typed.
	_, err = c.Status(ctx, "c-999999")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown id err = %v", err)
	}
}
