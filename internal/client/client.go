// Package client is the resilient Go client for the rmserved campaign
// API: submit, poll, and stream with context-deadline propagation,
// jittered exponential backoff, and typed handling of the service's
// pressure signals (429 + Retry-After for a full queue, 503 for a
// draining server).
//
// The retry jitter draws from an injected PRNG seed, never from ambient
// entropy or the clock, so a given (seed, response sequence) always
// produces the same delay schedule — retry behaviour is testable
// bit-exactly, the same determinism discipline the simulation core
// follows (and rmlint enforces on this package).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prng"
)

// APIError is a non-2xx answer from the service, with the pieces a
// caller needs to react in a typed way instead of string-matching.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the service's error text.
	Message string
	// RetryAfter is the parsed Retry-After hint on 429 responses (zero
	// when the service sent none).
	RetryAfter time.Duration
}

// Error renders the status and service message.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Temporary reports whether retrying the same request can succeed: queue
// pressure (429), a draining server (503), and transient server-side
// failures (5xx). Validation errors (4xx) are permanent.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests ||
		e.Status == http.StatusServiceUnavailable ||
		e.Status >= http.StatusInternalServerError
}

// Backoff shapes the retry schedule: Tries attempts total, exponential
// delays from Base capped at Max, each jittered into [d/2, d) by the
// client's PRNG. A 429's Retry-After hint raises a delay that would
// undercut it.
type Backoff struct {
	Tries int
	Base  time.Duration
	Max   time.Duration
}

// DefaultBackoff is five attempts spanning roughly two seconds.
func DefaultBackoff() Backoff {
	return Backoff{Tries: 5, Base: 100 * time.Millisecond, Max: 2 * time.Second}
}

// Client talks to one rmserved instance. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	bo   Backoff

	mu sync.Mutex // guards g
	g  *prng.PRNG

	// sleep waits out a backoff delay; tests replace it to record the
	// schedule without real time passing. Must honour ctx.
	sleep func(ctx context.Context, d time.Duration) error

	retries    *obs.Counter // rm_client_retries_total
	exhausted  *obs.Counter // rm_client_retry_exhaustions_total
	rejections *obs.Counter // rm_client_busy_total
}

// Option configures a Client.
type Option func(*clientConfig)

type clientConfig struct {
	hc   *http.Client
	bo   Backoff
	seed uint64
	reg  *obs.Registry
}

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test servers).
func WithHTTPClient(hc *http.Client) Option { return func(c *clientConfig) { c.hc = hc } }

// WithBackoff replaces the retry schedule.
func WithBackoff(bo Backoff) Option { return func(c *clientConfig) { c.bo = bo } }

// WithJitterSeed seeds the backoff jitter stream. Two clients with the
// same seed retry on an identical schedule.
func WithJitterSeed(seed uint64) Option { return func(c *clientConfig) { c.seed = seed } }

// WithRegistry registers the client's retry counters on reg (they land
// on a private registry otherwise).
func WithRegistry(reg *obs.Registry) Option { return func(c *clientConfig) { c.reg = reg } }

// New builds a client for the service at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	cfg := clientConfig{hc: &http.Client{}, bo: DefaultBackoff()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.bo.Tries < 1 {
		cfg.bo.Tries = 1
	}
	if cfg.bo.Base <= 0 {
		cfg.bo.Base = 100 * time.Millisecond
	}
	if cfg.bo.Max < cfg.bo.Base {
		cfg.bo.Max = cfg.bo.Base
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   cfg.hc,
		bo:   cfg.bo,
		g:    prng.New(cfg.seed),
		retries: cfg.reg.Counter("rm_client_retries_total",
			"Requests retried after a temporary failure."),
		exhausted: cfg.reg.Counter("rm_client_retry_exhaustions_total",
			"Requests abandoned with the retry budget spent."),
		rejections: cfg.reg.Counter("rm_client_busy_total",
			"429 queue-full rejections observed."),
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	return c
}

// delay computes the jittered delay before retry number attempt (0 for
// the first retry), honouring a Retry-After hint from the last answer.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := c.bo.Base
	for i := 0; i < attempt && d < c.bo.Max; i++ {
		d *= 2
	}
	if d > c.bo.Max {
		d = c.bo.Max
	}
	c.mu.Lock()
	j := c.g.Float64()
	c.mu.Unlock()
	d = d/2 + time.Duration(j*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// do runs one API call through the retry loop: permanent failures and
// context expiry return immediately, temporary ones back off and retry
// until the budget is spent.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var last error
	for attempt := 0; attempt < c.bo.Tries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			var ra time.Duration
			var ae *APIError
			if errors.As(last, &ae) {
				ra = ae.RetryAfter
			}
			if err := c.sleep(ctx, c.delay(attempt-1, ra)); err != nil {
				return fmt.Errorf("client: giving up during backoff: %w (last error: %v)", err, last)
			}
		}
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		last = err
		var ae *APIError
		if errors.As(err, &ae) {
			if ae.Status == http.StatusTooManyRequests {
				c.rejections.Inc()
			}
			if !ae.Temporary() {
				return err
			}
		}
		if ctx.Err() != nil {
			return err
		}
	}
	c.exhausted.Inc()
	return fmt.Errorf("client: %d attempts exhausted: %w", c.bo.Tries, last)
}

// once performs a single HTTP exchange and decodes the JSON answer.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiErrorOf(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s answer: %w", method, path, err)
	}
	return nil
}

// apiErrorOf turns a non-2xx response into a typed *APIError.
func apiErrorOf(resp *http.Response) error {
	var wire struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
		if json.Unmarshal(b, &wire) == nil && wire.Error != "" {
			msg = wire.Error
		}
	}
	ae := &APIError{Status: resp.StatusCode, Message: msg}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// SubmitResponse answers Submit.
type SubmitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	Cached      bool   `json:"cached"`
}

// CampaignStatus is the status/result view of one campaign. Result and
// Snapshot stay raw JSON: the client relays them, it does not interpret
// the statistics.
type CampaignStatus struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	State       string          `json:"state"`
	RunsDone    int             `json:"runs_done"`
	Error       string          `json:"error,omitempty"`
	Snapshot    json.RawMessage `json:"snapshot,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the campaign reached a final state.
func (s CampaignStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

// Event is one line of the campaign event stream.
type Event struct {
	Kind     string          `json:"kind"`
	Campaign string          `json:"campaign"`
	Phase    string          `json:"phase,omitempty"`
	Run      int             `json:"run,omitempty"`
	Cycles   float64         `json:"cycles,omitempty"`
	Done     int             `json:"done"`
	Total    int             `json:"total,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	State    string          `json:"state,omitempty"`
	Err      string          `json:"error,omitempty"`
}

// Submit sends one campaign request and returns the service's ticket.
// Queue-full rejections (429) are retried on the backoff schedule,
// honouring the service's Retry-After hint.
func (c *Client) Submit(ctx context.Context, wire core.WireRequest) (SubmitResponse, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("client: encoding request: %w", err)
	}
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", body, &out); err != nil {
		return SubmitResponse{}, err
	}
	return out, nil
}

// Status fetches the current status of a campaign.
func (c *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	var out CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out); err != nil {
		return CampaignStatus{}, err
	}
	return out, nil
}

// Wait polls a campaign until it reaches a terminal state, the context
// expires, or the retry budget of a poll is spent. poll <= 0 defaults to
// 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (CampaignStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return CampaignStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return st, fmt.Errorf("client: waiting for %s: %w", id, err)
		}
	}
}

// Stream consumes the campaign's NDJSON event stream, invoking fn per
// event until the terminal "end" line (delivered to fn as well), a
// callback error, or context expiry. A connection that drops mid-stream
// reconnects on the backoff schedule; intermediate events may be lost
// across the gap (the stream is live-only), the terminal line is not.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	var last error
	for attempt := 0; attempt < c.bo.Tries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := c.sleep(ctx, c.delay(attempt-1, 0)); err != nil {
				return fmt.Errorf("client: giving up during backoff: %w (last error: %v)", err, last)
			}
		}
		ended, err := c.streamOnce(ctx, id, fn)
		if ended || err == nil {
			return err
		}
		last = err
		var ae *APIError
		if errors.As(err, &ae) && !ae.Temporary() {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	c.exhausted.Inc()
	return fmt.Errorf("client: %d stream attempts exhausted: %w", c.bo.Tries, last)
}

// streamOnce consumes one connection's worth of events. ended reports
// that the terminal line was seen or the callback stopped the stream —
// either way the stream is over and err is the final word.
func (c *Client) streamOnce(ctx context.Context, id string, fn func(Event) error) (ended bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, apiErrorOf(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false, fmt.Errorf("client: bad stream line %q: %w", sc.Text(), err)
		}
		if err := fn(ev); err != nil {
			return true, err
		}
		if ev.Kind == "end" {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("client: stream interrupted: %w", err)
	}
	return false, errors.New("client: stream closed before the end line")
}

// Health fetches /healthz as raw JSON.
func (c *Client) Health(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
