package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyScale keeps integration tests fast; statistical assertions are left
// to the bench harness at proper scale. Runs stays at 80 so that halved
// campaigns (ablations) still meet the statistical tests' sample floors.
func tinyScale() Scale {
	return Scale{Runs: 80, HWMLayouts: 8, SynthRuns: 80, Synth160Run: 10}
}

func TestScales(t *testing.T) {
	d, f := DefaultScale(), FullScale()
	if f.Runs != 1000 {
		t.Fatalf("full scale runs = %d, paper uses 1000", f.Runs)
	}
	if d.Runs >= f.Runs {
		t.Fatal("default scale not smaller than full scale")
	}
	t.Setenv("REPRO_FULL", "1")
	if FromEnv().Runs != f.Runs {
		t.Fatal("REPRO_FULL=1 did not select full scale")
	}
	t.Setenv("REPRO_FULL", "")
	if FromEnv().Runs != d.Runs {
		t.Fatal("default env did not select default scale")
	}
}

func TestInitials(t *testing.T) {
	cases := map[string]string{
		"a2time01": "A2", "cacheb01": "CB", "canrdr01": "CN",
		"tblook01": "TB", "ttsprk01": "TT", "unknown": "UN",
		// Regression: names shorter than two characters used to panic on
		// the name[:2] fallback.
		"x": "X", "": "",
	}
	for name, want := range cases {
		if got := Initials(name); got != want {
			t.Errorf("Initials(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestWorkersFromEnv(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "3")
	if got := WorkersFromEnv(); got != 3 {
		t.Errorf("WorkersFromEnv() = %d, want 3", got)
	}
	if got := FromEnv().Workers; got != 3 {
		t.Errorf("FromEnv().Workers = %d, want 3", got)
	}
	t.Setenv("REPRO_WORKERS", "garbage")
	if got := WorkersFromEnv(); got != 0 {
		t.Errorf("WorkersFromEnv() on garbage = %d, want 0 (GOMAXPROCS default)", got)
	}
	t.Setenv("REPRO_WORKERS", "-4")
	if got := WorkersFromEnv(); got != 0 {
		t.Errorf("WorkersFromEnv() on negative = %d, want 0", got)
	}
}

// TestDriversDeterministicAcrossWorkers pins the tentpole property at the
// driver level: a full experiment renders identically for any pool size.
func TestDriversDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	s := tinyScale()
	render := func(workers int) string {
		s.Workers = workers
		r, err := Figure5(context.Background(), NewEngine(s), s, 8)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r.Render()
	}
	seq, par := render(1), render(4)
	if seq != par {
		t.Errorf("Figure5 renders differ between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

func TestTable1Relations(t *testing.T) {
	r := Table1()
	if r.ASIC.AreaRatio < 5 {
		t.Errorf("area ratio %.1f below the ~10x regime", r.ASIC.AreaRatio)
	}
	if r.FPGA.RM.FMHz != 100 || r.FPGA.HRP.FMHz >= 100 {
		t.Errorf("FPGA frequencies RM=%d hRP=%d", r.FPGA.RM.FMHz, r.FPGA.HRP.FMHz)
	}
	out := r.Render()
	for _, want := range []string{"Table 1", "ASIC area", "FPGA occupancy", "paper:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 render missing %q", want)
		}
	}
}

func TestTable2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := Table2(context.Background(), NewEngine(tinyScale()), tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("Table 2 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.WW < 0 || row.KSp < 0 || row.KSp > 1 {
			t.Errorf("%s: implausible stats %+v", row.Bench, row)
		}
	}
	if !strings.Contains(r.Render(), "A2") {
		t.Error("render missing benchmark initials")
	}
}

func TestFigure5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := Figure5(context.Background(), NewEngine(tinyScale()), tinyScale(), 20)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core claim at any scale: RM is tighter than hRP.
	if r.RM.StdDev >= r.HRP.StdDev {
		t.Errorf("RM sd %.0f >= hRP sd %.0f", r.RM.StdDev, r.HRP.StdDev)
	}
	if r.RM.PWCET15 >= r.HRP.PWCET15 {
		t.Errorf("RM pWCET %.0f >= hRP pWCET %.0f", r.RM.PWCET15, r.HRP.PWCET15)
	}
	if len(r.RM.Curve) == 0 || len(r.HRP.Curve) != len(r.RM.Curve) {
		t.Fatal("curves malformed")
	}
	if !strings.Contains(r.Render(), "pWCET@1e-15") {
		t.Error("render missing pWCET summary")
	}
}

func TestCollisionAnalysisGuarantee(t *testing.T) {
	r, err := CollisionAnalysis(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	sawHRPOverload := false
	for _, row := range r.Rows {
		// RM and RM-rot cannot overload while the footprint fits the cache
		// (Section 3.2 guarantee).
		if row.Lines <= 512 && (row.RMProb != 0 || row.RotProb != 0) {
			t.Errorf("%d lines: RM=%f RM-rot=%f, want 0", row.Lines, row.RMProb, row.RotProb)
		}
		if row.Lines >= 128 && row.HRPProb > 0 {
			sawHRPOverload = true
		}
	}
	if !sawHRPOverload {
		t.Error("hRP never overloaded a set (paper 3.1: non-negligible probability)")
	}
}

func TestFigure1Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := Figure1(context.Background(), NewEngine(tinyScale()), tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curve) < 10 {
		t.Fatalf("curve has %d points", len(r.Curve))
	}
	if r.PWCET <= 0 {
		t.Fatal("no pWCET estimate")
	}
	if !strings.Contains(r.Render(), "pWCET curve") {
		t.Error("render missing title")
	}
}

func TestAblationRMVariantSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := AblationRMVariant(context.Background(), NewEngine(tinyScale()), tinyScale(), "puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Mean <= 0 || row.PWCET15 <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
}
