package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/placement"
	"repro/internal/workload"
)

// --- Table 1: ASIC & FPGA implementation results ------------------------

// Table1Result reproduces Table 1: area/delay of the RM and hRP modules in
// isolation (ASIC, 128-set cache) and occupancy/frequency of the full
// integration (FPGA prototype).
type Table1Result struct {
	ASIC hwcost.ASICReport
	FPGA hwcost.FPGAReport
}

// Table1 evaluates the hardware-cost models at the paper's design point.
func Table1() Table1Result {
	return Table1Result{
		ASIC: hwcost.ASIC(hwcost.Generic45(), 128, placement.HashedAddressBits),
		FPGA: hwcost.FPGA(hwcost.DefaultFPGA(), 128, 1024, placement.HashedAddressBits),
	}
}

// Render formats the result next to the paper's numbers.
func (r Table1Result) Render() string {
	var b strings.Builder
	header(&b, "Table 1: ASIC & FPGA implementation results",
		"                         RM            hRP")
	fmt.Fprintf(&b, "ASIC area (um2)   %9.1f      %9.1f   (paper: 336.6 / 3514.7)\n",
		r.ASIC.RM.AreaUm2, r.ASIC.HRP.AreaUm2)
	fmt.Fprintf(&b, "ASIC delay (ns)   %9.2f      %9.2f   (paper: 0.46 / 0.59)\n",
		r.ASIC.RM.DelayNs, r.ASIC.HRP.DelayNs)
	fmt.Fprintf(&b, "area ratio        %9.1fx                (paper: ~10x)\n", r.ASIC.AreaRatio)
	fmt.Fprintf(&b, "delay reduction   %9.0f%%                (paper: ~27%%)\n", 100*r.ASIC.DelayGain)
	fmt.Fprintf(&b, "FPGA occupancy    %8.1f%%      %8.1f%%   (paper: 72%% / 80%%, baseline %8.1f%%)\n",
		r.FPGA.RM.OccupancyPct, r.FPGA.HRP.OccupancyPct, r.FPGA.Baseline.OccupancyPct)
	fmt.Fprintf(&b, "FPGA frequency    %6d MHz     %6d MHz   (paper: 100 / 80, baseline %d)\n",
		r.FPGA.RM.FMHz, r.FPGA.HRP.FMHz, r.FPGA.Baseline.FMHz)
	return b.String()
}

// --- Table 2: WW and KS results for EEMBC -------------------------------

// Table2Row is one benchmark's i.i.d. assessment under RM caches.
type Table2Row struct {
	Bench    string
	Initials string
	WW       float64 // Wald-Wolfowitz statistic (pass < 1.96)
	KSp      float64 // KS p-value (pass > 0.05)
	ETp      float64 // ET test p-value (pass > 0.05), the Section 4.2 supplement
	Pass     bool    // WW and KS pass (the paper's Table 2 criteria)
	ETPass   bool
}

// Table2Result reproduces Table 2 plus the ET row of Section 4.2.
type Table2Result struct {
	Rows []Table2Row
	Runs int
}

// Table2 runs every EEMBC-like benchmark on the RM platform as one batch
// over the engine's shared pool and applies the MBPTA admissibility
// tests. Batch scheduling is invisible in the numbers: each campaign's
// randomness derives from (MasterSeed, run index) alone.
func Table2(ctx context.Context, eng *core.Engine, s Scale) (Table2Result, error) {
	res := Table2Result{Runs: s.Runs}
	ws := workload.EEMBC()
	reqs := make([]core.Request, len(ws))
	for i, w := range ws {
		reqs[i] = analyzedRequest("table2/"+w.Name, placement.RM, w, s.Runs)
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		return res, fmt.Errorf("table2: %w", err)
	}
	for i, r := range results {
		an := r.Analysis
		res.Rows = append(res.Rows, Table2Row{
			Bench:    ws[i].Name,
			Initials: Initials(ws[i].Name),
			WW:       an.WW.Stat,
			KSp:      an.KS.P,
			ETp:      an.ET.P,
			Pass:     an.IIDPass,
			ETPass:   an.ET.Pass,
		})
	}
	return res, nil
}

// Render formats the rows in the layout of Table 2.
func (r Table2Result) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 2: WW and KS results for EEMBC under RM (%d runs)", r.Runs),
		"      "+rowOf(r.Rows, func(x Table2Row) string { return fmt.Sprintf("%5s", x.Initials) }))
	fmt.Fprintf(&b, "WW    %s   (pass: < 1.96)\n",
		rowOf(r.Rows, func(x Table2Row) string { return fmt.Sprintf("%5.2f", x.WW) }))
	fmt.Fprintf(&b, "KS    %s   (pass: > 0.05)\n",
		rowOf(r.Rows, func(x Table2Row) string { return fmt.Sprintf("%5.2f", x.KSp) }))
	fmt.Fprintf(&b, "ET    %s   (pass: > 0.05)\n",
		rowOf(r.Rows, func(x Table2Row) string { return fmt.Sprintf("%5.2f", x.ETp) }))
	pass, etPass := 0, 0
	for _, row := range r.Rows {
		if row.Pass {
			pass++
		}
		if row.ETPass {
			etPass++
		}
	}
	fmt.Fprintf(&b, "i.i.d. (WW+KS, the Table 2 criteria): %d/%d pass; ET Gumbel convergence: %d/%d pass\n",
		pass, len(r.Rows), etPass, len(r.Rows))
	fmt.Fprintf(&b, "(5%%-level tests: ~1 false rejection per ~20 benchmark-tests is expected)\n")
	return b.String()
}

func rowOf[T any](rows []T, f func(T) string) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = f(r)
	}
	return strings.Join(parts, " ")
}

// --- Section 4.4: average performance ------------------------------------

// AvgPerfRow compares RM's mean execution time against deterministic
// modulo+LRU for one benchmark.
type AvgPerfRow struct {
	Bench    string
	RMMean   float64
	ModMean  float64
	Slowdown float64 // RMMean/ModMean - 1
}

// AvgPerfResult reproduces the Section 4.4 average-performance claim:
// "RM is on average only 1.6% worse than modulo placement with a maximum
// degradation of 8%".
type AvgPerfResult struct {
	Rows         []AvgPerfRow
	MeanSlowdown float64
	MaxSlowdown  float64
}

// AveragePerformance runs both platforms over the EEMBC-like suite as a
// single 2x11-campaign batch on the engine's shared pool.
func AveragePerformance(ctx context.Context, eng *core.Engine, s Scale) (AvgPerfResult, error) {
	var res AvgPerfResult
	ws := workload.EEMBC()
	var reqs []core.Request
	for _, w := range ws {
		reqs = append(reqs,
			core.Request{
				Name: "avgperf/" + w.Name + "/rm",
				Spec: core.PaperPlatform(placement.RM), Workload: w,
				Runs: s.Runs / 4, MasterSeed: MasterSeed,
			},
			core.Request{
				Name: "avgperf/" + w.Name + "/det",
				Spec: core.DeterministicPlatform(), Workload: w,
				Runs: 2, MasterSeed: MasterSeed, // deterministic: runs identical
			})
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		return res, err
	}
	for i, w := range ws {
		rm, det := results[2*i], results[2*i+1]
		row := AvgPerfRow{
			Bench:    w.Name,
			RMMean:   rm.Mean(),
			ModMean:  det.Mean(),
			Slowdown: rm.Mean()/det.Mean() - 1,
		}
		res.Rows = append(res.Rows, row)
		res.MeanSlowdown += row.Slowdown
		if row.Slowdown > res.MaxSlowdown {
			res.MaxSlowdown = row.Slowdown
		}
	}
	res.MeanSlowdown /= float64(len(res.Rows))
	return res, nil
}

// Render formats the comparison.
func (r AvgPerfResult) Render() string {
	var b strings.Builder
	header(&b, "Section 4.4: average performance, RM vs deterministic modulo+LRU",
		"benchmark     RM mean      modulo mean   slowdown")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f   %+6.2f%%\n",
			row.Bench, row.RMMean, row.ModMean, 100*row.Slowdown)
	}
	fmt.Fprintf(&b, "average slowdown %+.2f%% (paper: ~1.6%%), max %+.2f%% (paper: 8%%)\n",
		100*r.MeanSlowdown, 100*r.MaxSlowdown)
	return b.String()
}
