package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/security"
)

// --- Security evaluation: attacker success vs placement policy ----------
//
// The paper argues random modulo hampers cache side channels because an
// attacker cannot deterministically colocate lines with a victim's set.
// This driver quantifies that claim with the three attacker protocols of
// internal/security, swept over every placement policy and replacement
// policy: deterministic modulo is the undefended baseline, hRP/RM the
// randomized designs, and the replacement axis reproduces the observation
// (Peters et al.) that the replacement policy modulates attack effort.

// SecurityRow is one placement x replacement design point.
type SecurityRow struct {
	Placement   string
	Replacement string
	Agg         security.Result
}

// SecurityResult is the success-vs-effort sweep for one protocol.
type SecurityResult struct {
	Protocol string
	Rounds   int
	Efforts  []int // shared effort axis (accesses budget per curve column)
	Rows     []SecurityRow
}

// securityReplacements is the replacement-policy axis of the sweep.
func securityReplacements() []cache.ReplacementKind {
	return cache.ReplacementKinds()
}

// SecuritySweep runs one attacker protocol against every placement and
// replacement policy: a 20-campaign batch over the engine's shared pool,
// each campaign s.SecRounds Monte-Carlo rounds. All sizing knobs stay at
// the protocol defaults so the sweep measures the design points the
// service would serve for a bare submission.
func SecuritySweep(ctx context.Context, eng *core.Engine, s Scale, proto security.Protocol) (SecurityResult, error) {
	out := SecurityResult{Protocol: proto.String(), Rounds: s.SecRounds}
	var reqs []core.Request
	for _, kind := range placement.Kinds() {
		for _, repl := range securityReplacements() {
			spec := security.Spec{Protocol: proto, Placement: kind, Replacement: repl}
			reqs = append(reqs, core.Request{
				Name:       fmt.Sprintf("security/%s/%s/%s", proto, kind, repl),
				Runs:       s.SecRounds,
				MasterSeed: MasterSeed,
				Security:   &spec,
			})
		}
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		return out, fmt.Errorf("security/%s: %w", proto, err)
	}
	for i, res := range results {
		if res.Security == nil {
			return out, fmt.Errorf("security/%s: campaign %s returned no aggregate", proto, reqs[i].Name)
		}
		out.Rows = append(out.Rows, SecurityRow{
			Placement:   reqs[i].Security.Placement.String(),
			Replacement: reqs[i].Security.Replacement.String(),
			Agg:         *res.Security,
		})
	}
	if len(out.Rows) > 0 {
		for _, p := range out.Rows[0].Agg.Curve {
			out.Efforts = append(out.Efforts, p.Effort)
		}
	}
	return out, nil
}

// Render draws the sweep as one success-probability table: a row per
// placement x replacement, a column per effort level, plus the
// protocol-specific statistic (eviction-set construction rate for
// eviction and Prime+Probe, channel capacity for occupancy).
func (r SecurityResult) Render() string {
	var b strings.Builder
	extra := "constructed"
	if r.Protocol == security.Occupancy.String() {
		extra = "capacity(bits)"
	}
	cols := fmt.Sprintf("%-8s %-7s", "policy", "repl")
	for _, e := range r.Efforts {
		cols += fmt.Sprintf(" %10s", fmt.Sprintf("p@%d", e))
	}
	cols += fmt.Sprintf("  %s", extra)
	header(&b, fmt.Sprintf("Security: %s attack success vs effort (%d rounds)", r.Protocol, r.Rounds), cols)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-7s", row.Placement, row.Replacement)
		for _, p := range row.Agg.Curve {
			fmt.Fprintf(&b, " %10.3f", p.Success)
		}
		if r.Protocol == security.Occupancy.String() {
			fmt.Fprintf(&b, "  %8.3f", row.Agg.Capacity)
		} else {
			fmt.Fprintf(&b, "  %8.3f", row.Agg.Constructed)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
