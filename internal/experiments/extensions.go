package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- Multicore contention study (extension) -------------------------------
//
// The paper's platform is a 4-core LEON3 with per-core L2 partitions; its
// evaluation runs benchmarks in isolation. This extension exercises the
// multicore arrangement the paper's Section 2 cites (shared bus,
// partitioned storage): the subject benchmark runs against memory-hungry
// co-runners and its execution-time distribution under RM remains
// analyzable, just shifted by the bounded bus interference.

// MulticoreResult reports the contention study.
type MulticoreResult struct {
	Subject        string
	SoloMean       float64
	SoloHWM        float64
	ContendedMean  float64
	ContendedHWM   float64
	MeanSlowdown   float64 // contended/solo - 1
	SoloPWCET      float64
	ContendedPWCET float64
	IIDPassSolo    bool
	IIDPassCont    bool
}

// Multicore runs the subject benchmark solo and against three streaming
// co-runners on the 4-core shared-bus platform, with RM L1 caches,
// collecting runs-many seeds for both configurations. The seed sweeps
// execute over the engine's shared pool via core.ShardRunsPool -- the
// extension point for drivers whose execution context is not a single
// sim.Core.
func Multicore(ctx context.Context, eng *core.Engine, s Scale, subjectName string) (MulticoreResult, error) {
	res := MulticoreResult{Subject: subjectName}
	subject, err := workload.ByName(subjectName)
	if err != nil {
		return res, err
	}
	hog := workload.Synthetic(160*1024, 4, 4)
	layout := workload.DefaultLayout()
	subjectTrace := subject.Build(layout)
	hogTrace := hog.Build(layout)

	spec := core.PaperPlatform(placement.RM)
	mkSystem := func() (*sim.System, error) {
		return sim.NewSystem(sim.Config{
			IL1: cacheCfg("IL1", spec, spec.IL1, false),
			DL1: cacheCfg("DL1", spec, spec.DL1, false),
			L2:  cacheCfg("L2", spec, spec.L2, true),
			Lat: spec.Lat,
		}, 4)
	}

	runs := s.Runs / 4
	if runs < 40 {
		runs = 40
	}
	collect := func(withHogs bool) ([]float64, error) {
		times := make([]float64, runs)
		err := core.ShardRunsPool(ctx, eng.Pool(), runs, mkSystem, func(sys *sim.System, r int) error {
			sys.Reseed(prng.Derive(MasterSeed, r))
			traces := []trace.Trace{subjectTrace, nil, nil, nil}
			if withHogs {
				traces = []trace.Trace{subjectTrace, hogTrace, hogTrace, hogTrace}
			}
			out := sys.RunAll(traces)
			times[r] = float64(out[0].Cycles)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return times, nil
	}

	solo, err := collect(false)
	if err != nil {
		return res, err
	}
	cont, err := collect(true)
	if err != nil {
		return res, err
	}
	res.SoloMean, res.SoloHWM = stats.Mean(solo), stats.Max(solo)
	res.ContendedMean, res.ContendedHWM = stats.Mean(cont), stats.Max(cont)
	res.MeanSlowdown = res.ContendedMean/res.SoloMean - 1

	if an, err := core.Analyze(solo); err == nil {
		res.SoloPWCET = an.PWCET15
		res.IIDPassSolo = an.IIDPass
	}
	if an, err := core.Analyze(cont); err == nil {
		res.ContendedPWCET = an.PWCET15
		res.IIDPassCont = an.IIDPass
	}
	return res, nil
}

// cacheCfg translates a core.CacheSetup into a cache.Config for the
// multicore system builder.
func cacheCfg(name string, spec core.PlatformSpec, cs core.CacheSetup, isL2 bool) cache.Config {
	size := spec.L1SizeBytes
	ways := spec.L1Ways
	write := cache.WriteThrough
	if isL2 {
		size = spec.L2SizeBytes
		ways = spec.L2Ways
		write = cache.WriteBack
	}
	return cache.Config{
		Name: name, SizeBytes: size, Ways: ways, LineBytes: spec.LineBytes,
		Placement: cs.Placement, Replacement: cs.Replacement, Write: write,
	}
}

// Render formats the contention study.
func (r MulticoreResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Multicore contention study (extension): %s vs 3 streaming co-runners", r.Subject),
		"configuration        mean          hwm      pWCET@1e-15   iid")
	fmt.Fprintf(&b, "solo        %13.0f %12.0f %12.0f   %v\n",
		r.SoloMean, r.SoloHWM, r.SoloPWCET, r.IIDPassSolo)
	fmt.Fprintf(&b, "contended   %13.0f %12.0f %12.0f   %v\n",
		r.ContendedMean, r.ContendedHWM, r.ContendedPWCET, r.IIDPassCont)
	fmt.Fprintf(&b, "bus interference: +%.1f%% mean slowdown (storage isolated by the L2 partition)\n",
		100*r.MeanSlowdown)
	return b.String()
}

// --- MBPTA convergence protocol (Section 2) -------------------------------

// ConvergencePoint is one step of the convergence study.
type ConvergencePoint struct {
	Runs     int
	Estimate float64 // pWCET@1e-15 with this many runs
	Delta    float64 // relative change vs the previous step
}

// ConvergenceResult reproduces the MBPTA protocol of Section 2: collect
// measurements until the pWCET estimate stabilizes ("MBPTA dictates the
// number of runs").
type ConvergenceResult struct {
	Bench     string
	Points    []ConvergencePoint
	Converged bool
	NeedRuns  int
}

// ConvergenceStudy grows the campaign in steps and tracks the pWCET
// estimate until it stabilizes within 2%.
func ConvergenceStudy(ctx context.Context, eng *core.Engine, s Scale, benchName string) (ConvergenceResult, error) {
	res := ConvergenceResult{Bench: benchName}
	w, err := workload.ByName(benchName)
	if err != nil {
		return res, err
	}
	total := s.Runs * 2
	c, err := eng.Run(ctx, core.Request{
		Name: "convergence/" + benchName,
		Spec: core.PaperPlatform(placement.RM), Workload: w,
		Runs: total, MasterSeed: MasterSeed,
	})
	if err != nil {
		return res, err
	}
	step := total / 8
	if step < evt.DefaultBlock*2 {
		step = evt.DefaultBlock * 2
	}
	var prev float64
	for n := step; n <= total; n += step {
		model, err := evt.Analyze(c.Times[:n], 0)
		if err != nil {
			return res, err
		}
		pt := ConvergencePoint{Runs: n, Estimate: model.AtExceedance(core.CutoffHigh)}
		if prev > 0 {
			pt.Delta = abs(pt.Estimate-prev) / prev
			if pt.Delta < 0.02 && !res.Converged {
				res.Converged = true
				res.NeedRuns = n
			}
		}
		prev = pt.Estimate
		res.Points = append(res.Points, pt)
	}
	if !res.Converged {
		res.NeedRuns = total
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render formats the convergence study.
func (r ConvergenceResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("MBPTA convergence protocol on %s (RM)", r.Bench),
		"runs       pWCET@1e-15     step delta")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%5d   %14.0f      %8.4f\n", pt.Runs, pt.Estimate, pt.Delta)
	}
	fmt.Fprintf(&b, "converged: %v (analysis would request %d runs)\n", r.Converged, r.NeedRuns)
	return b.String()
}
