// Package experiments contains one driver per table and figure of the
// paper's evaluation, shared by the paperbench command and the top-level
// benchmark harness. Every driver returns a structured result plus a
// Render method producing the text table the paper reports.
//
// Scale controls campaign sizes: the paper uses 1000 runs per benchmark;
// DefaultScale trims that so the whole suite regenerates in minutes, and
// FullScale (REPRO_FULL=1) restores the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/workload"
)

// Scale sizes the measurement campaigns.
type Scale struct {
	Runs        int // runs per randomized campaign (paper: 1000)
	HWMLayouts  int // layouts for the deterministic hwm baseline
	SynthRuns   int // runs for the synthetic-kernel campaigns
	Synth160Run int // runs for the 160KB synthetic kernel (costliest)
	SecRounds   int // attack rounds per security campaign
	// Workers sizes the shared engine pool built by NewEngine. Zero (the
	// default) selects runtime.GOMAXPROCS(0); results are bit-identical
	// for any value. The drivers themselves no longer read it -- they run
	// whatever *core.Engine they are handed.
	Workers int
}

// DefaultScale returns the reduced scale used by `go test -bench`.
func DefaultScale() Scale {
	return Scale{Runs: 300, HWMLayouts: 40, SynthRuns: 300, Synth160Run: 60, SecRounds: 120}
}

// FullScale returns the paper's campaign sizes.
func FullScale() Scale {
	return Scale{Runs: 1000, HWMLayouts: 100, SynthRuns: 1000, Synth160Run: 300, SecRounds: 400}
}

// SmokeScale returns the smallest scale at which every driver still
// clears the statistical floors (the admissibility tests want 40+
// measurements, and ablations halve Runs), used by `paperbench -short`
// and the CI smoke run.
func SmokeScale() Scale {
	return Scale{Runs: 80, HWMLayouts: 10, SynthRuns: 80, Synth160Run: 40, SecRounds: 24}
}

// NewEngine builds the shared campaign engine the drivers run on, sized
// from the scale's Workers knob; extra options (events, pool sharing)
// pass through to core.NewEngine.
func NewEngine(s Scale, opts ...core.EngineOption) *core.Engine {
	return core.NewEngine(append([]core.EngineOption{core.WithWorkers(s.Workers)}, opts...)...)
}

// FromEnv returns FullScale when REPRO_FULL=1 is set, DefaultScale
// otherwise, with the worker-pool size from REPRO_WORKERS.
func FromEnv() Scale {
	s := DefaultScale()
	if os.Getenv("REPRO_FULL") == "1" {
		s = FullScale()
	}
	s.Workers = WorkersFromEnv()
	return s
}

// WorkersFromEnv reads the REPRO_WORKERS override; zero (unset or
// unparsable) defers to the GOMAXPROCS default.
func WorkersFromEnv() int {
	n, err := strconv.Atoi(os.Getenv("REPRO_WORKERS"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// MasterSeed is the campaign seed used across the harness; change it to
// check robustness of every experiment to the random stream.
const MasterSeed = 0x9A9E6

// eembcInitials maps workload names to the initials used in Table 2.
var eembcInitials = map[string]string{
	"a2time01": "A2", "basefp01": "BA", "bitmnp01": "BI", "cacheb01": "CB",
	"canrdr01": "CN", "matrix01": "MA", "pntrch01": "PN", "puwmod01": "PU",
	"rspeed01": "RS", "tblook01": "TB", "ttsprk01": "TT",
}

// Initials returns the paper's abbreviation for an EEMBC workload name.
// Unknown names fall back to their first two letters.
func Initials(name string) string {
	if s, ok := eembcInitials[name]; ok {
		return s
	}
	if len(name) < 2 {
		return strings.ToUpper(name)
	}
	return strings.ToUpper(name[:2])
}

// analyzedRequest is an MBPTA campaign request with the given L1
// placement, named for the driver that issues it.
func analyzedRequest(name string, l1 placement.Kind, w workload.Workload, runs int) core.Request {
	return core.Request{
		Name:       name,
		Spec:       core.PaperPlatform(l1),
		Workload:   w,
		Runs:       runs,
		MasterSeed: MasterSeed,
		Analyze:    true,
	}
}

// runAnalyzed runs an MBPTA campaign with the given L1 placement on the
// engine and returns times plus analysis.
func runAnalyzed(ctx context.Context, eng *core.Engine, l1 placement.Kind, w workload.Workload, runs int) (core.CampaignResult, core.Analysis, error) {
	res, err := eng.Run(ctx, analyzedRequest(w.Name, l1, w, runs))
	if err != nil {
		return res.CampaignResult, core.Analysis{}, err
	}
	return res.CampaignResult, *res.Analysis, nil
}

// header renders a fixed-width table header with a rule.
func header(b *strings.Builder, title, cols string) {
	fmt.Fprintf(b, "%s\n%s\n%s\n", title, cols, strings.Repeat("-", len(cols)))
}
