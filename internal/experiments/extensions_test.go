package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestMulticoreContention(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := Multicore(context.Background(), NewEngine(tinyScale()), tinyScale(), "puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	if r.ContendedMean <= r.SoloMean {
		t.Errorf("no bus interference: contended %.0f <= solo %.0f", r.ContendedMean, r.SoloMean)
	}
	if r.MeanSlowdown < 0 || r.MeanSlowdown > 3 {
		t.Errorf("implausible slowdown %.2f", r.MeanSlowdown)
	}
	out := r.Render()
	for _, want := range []string{"solo", "contended", "bus interference"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestConvergenceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := ConvergenceStudy(context.Background(), NewEngine(tinyScale()), tinyScale(), "rspeed01")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("only %d convergence points", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Runs <= r.Points[i-1].Runs {
			t.Fatal("run counts not increasing")
		}
	}
	if r.NeedRuns <= 0 {
		t.Fatal("no run requirement reported")
	}
	if !strings.Contains(r.Render(), "convergence protocol") {
		t.Error("render missing title")
	}
}

func TestEstimatorAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	r, err := AblationEstimator(context.Background(), NewEngine(Scale{Runs: 80}), Scale{Runs: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// On reliable bounded-tail fits, GEV must be tighter than the
		// forced Gumbel; unreliable fits are flagged, not asserted (their
		// instability is the finding).
		if row.Reliable && row.Shape > 0.05 && row.GEV15 > row.Gumbel15*1.01 {
			t.Errorf("%s: bounded-tail GEV %.0f above Gumbel %.0f", row.Bench, row.GEV15, row.Gumbel15)
		}
		if row.HWM <= 0 {
			t.Errorf("%s: degenerate hwm", row.Bench)
		}
	}
	if !strings.Contains(r.Render(), "Estimator ablation") {
		t.Error("render missing title")
	}
}
