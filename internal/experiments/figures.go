package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- Figure 1: illustrative pWCET curve ----------------------------------

// Fig1Result is the EVT projection of Figure 1: a pWCET curve (CCDF in log
// scale) for one benchmark, with the empirical part and the extrapolated
// tail down to the cutoff.
type Fig1Result struct {
	Bench     string
	Curve     []evt.CurvePoint
	Empirical []evt.CurvePoint // empirical exceedance (observable region)
	Cutoff    float64
	PWCET     float64
}

// Figure1 builds the illustrative curve on the a2time01 campaign.
func Figure1(ctx context.Context, eng *core.Engine, s Scale) (Fig1Result, error) {
	w, err := workload.ByName("a2time01")
	if err != nil {
		return Fig1Result{}, err
	}
	res, an, err := runAnalyzed(ctx, eng, placement.RM, w, s.Runs)
	if err != nil {
		return Fig1Result{}, err
	}
	out := Fig1Result{
		Bench:  w.Name,
		Curve:  an.Model.Curve(core.CutoffHigh),
		Cutoff: core.CutoffHigh,
		PWCET:  an.PWCET15,
	}
	e, err := stats.NewECDF(res.Times)
	if err != nil {
		return out, err
	}
	for p := 0.5; p >= 1.5/float64(len(res.Times)); p /= 10 {
		out.Empirical = append(out.Empirical, evt.CurvePoint{
			X: stats.QuantileSorted(e.Values(), 1-p), P: p,
		})
	}
	return out, nil
}

// Render draws the curve as a text table (log10 exceedance per row).
func (r Fig1Result) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Figure 1: pWCET curve (%s, RM caches)", r.Bench),
		"exceedance / run      execution time (cycles)")
	for _, pt := range r.Curve {
		fmt.Fprintf(&b, "1e%-6.0f %24.0f\n", math.Log10(pt.P), pt.X)
	}
	fmt.Fprintf(&b, "pWCET at cutoff %.0e: %.0f cycles\n", r.Cutoff, r.PWCET)
	return b.String()
}

// --- Figure 4(a): RM vs hRP pWCET ----------------------------------------

// Fig4aRow compares pWCET estimates at the high-criticality cutoff.
type Fig4aRow struct {
	Bench string
	RM    float64 // pWCET@1e-15, RM L1s
	HRP   float64 // pWCET@1e-15, hRP L1s
	Ratio float64 // RM / hRP (paper: 0.38 .. 0.75)
	RM12  float64 // pWCET@1e-12 (paper: "similar results")
	HRP12 float64
}

// Fig4aResult reproduces Figure 4(a): RM pWCET normalized to hRP.
type Fig4aResult struct {
	Rows      []Fig4aRow
	MeanRatio float64 // paper: ~0.57 (43% tighter on average)
	BestRatio float64 // paper: 0.38 (62% tighter, a2time)
}

// Figure4a runs every EEMBC-like benchmark under both placements: one
// 22-campaign batch over the engine's shared pool.
func Figure4a(ctx context.Context, eng *core.Engine, s Scale) (Fig4aResult, error) {
	var res Fig4aResult
	res.BestRatio = math.Inf(1)
	ws := workload.EEMBC()
	var reqs []core.Request
	for _, w := range ws {
		reqs = append(reqs,
			analyzedRequest("fig4a/"+w.Name+"/rm", placement.RM, w, s.Runs),
			analyzedRequest("fig4a/"+w.Name+"/hrp", placement.HRP, w, s.Runs))
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		return res, fmt.Errorf("fig4a: %w", err)
	}
	for i, w := range ws {
		rm, hrp := results[2*i].Analysis, results[2*i+1].Analysis
		row := Fig4aRow{
			Bench: w.Name,
			RM:    rm.PWCET15, HRP: hrp.PWCET15,
			RM12: rm.PWCET12, HRP12: hrp.PWCET12,
			Ratio: rm.PWCET15 / hrp.PWCET15,
		}
		res.Rows = append(res.Rows, row)
		res.MeanRatio += row.Ratio
		if row.Ratio < res.BestRatio {
			res.BestRatio = row.Ratio
		}
	}
	res.MeanRatio /= float64(len(res.Rows))
	return res, nil
}

// Render formats the normalized comparison.
func (r Fig4aResult) Render() string {
	var b strings.Builder
	header(&b, "Figure 4(a): RM pWCET normalized to hRP (cutoff 1e-15)",
		"benchmark    pWCET(RM)    pWCET(hRP)   RM/hRP   tighter")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f   %6.2f   %5.0f%%\n",
			row.Bench, row.RM, row.HRP, row.Ratio, 100*(1-row.Ratio))
	}
	fmt.Fprintf(&b, "average reduction %.0f%% (paper: 43%%), best %.0f%% (paper: 62%%)\n",
		100*(1-r.MeanRatio), 100*(1-r.BestRatio))
	return b.String()
}

// --- Figure 4(b): RM vs deterministic hwm ---------------------------------

// Fig4bRow compares the RM pWCET against the deterministic high-water mark.
type Fig4bRow struct {
	Bench string
	PWCET float64 // RM pWCET@1e-15
	HWM   float64 // hwm over randomized layouts, modulo+LRU platform
	Ratio float64 // paper: <= 1.07, mostly <= 1.01
}

// Fig4bResult reproduces Figure 4(b).
type Fig4bResult struct {
	Rows     []Fig4bRow
	MaxRatio float64
}

// Figure4b runs the RM campaigns and the industrial hwm baseline; MBPTA
// and Baseline requests mix freely in one batch.
func Figure4b(ctx context.Context, eng *core.Engine, s Scale) (Fig4bResult, error) {
	var res Fig4bResult
	ws := workload.EEMBC()
	var reqs []core.Request
	for _, w := range ws {
		reqs = append(reqs,
			analyzedRequest("fig4b/"+w.Name+"/rm", placement.RM, w, s.Runs),
			core.Request{
				Name:       "fig4b/" + w.Name + "/hwm",
				Spec:       core.DeterministicPlatform(),
				Workload:   w,
				Runs:       s.HWMLayouts,
				MasterSeed: MasterSeed,
				Baseline:   true,
			})
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		return res, fmt.Errorf("fig4b: %w", err)
	}
	for i, w := range ws {
		rm, hwm := results[2*i].Analysis, results[2*i+1].HWM()
		row := Fig4bRow{Bench: w.Name, PWCET: rm.PWCET15, HWM: hwm, Ratio: rm.PWCET15 / hwm}
		res.Rows = append(res.Rows, row)
		if row.Ratio > res.MaxRatio {
			res.MaxRatio = row.Ratio
		}
	}
	return res, nil
}

// Render formats the comparison with the industrial 20% margin reference.
func (r Fig4bResult) Render() string {
	var b strings.Builder
	header(&b, "Figure 4(b): RM pWCET vs deterministic high-water mark",
		"benchmark    pWCET(RM)     hwm(DET)    ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f   %6.3f\n", row.Bench, row.PWCET, row.HWM, row.Ratio)
	}
	fmt.Fprintf(&b, "max ratio %.3f (paper: <= 1.07; industrial practice adds a 20%% margin)\n", r.MaxRatio)
	return b.String()
}

// --- Figure 5: synthetic kernel PDFs and pWCET curves --------------------

// Fig5Policy is one placement's view of the synthetic kernel campaign.
type Fig5Policy struct {
	Placement placement.Kind
	Times     []float64
	Hist      *stats.Histogram
	Curve     []evt.CurvePoint
	Mean, Max float64
	StdDev    float64
	PWCET15   float64
}

// Fig5Result reproduces Figure 5 for one footprint: the execution-time
// PDFs under RM and hRP (a, b) and the pWCET curves (c).
type Fig5Result struct {
	FootprintKB int
	RM, HRP     Fig5Policy
}

// Figure5 runs the synthetic kernel with the given footprint under both
// placements.
func Figure5(ctx context.Context, eng *core.Engine, s Scale, footprintKB int) (Fig5Result, error) {
	runs := s.SynthRuns
	if footprintKB >= 160 {
		runs = s.Synth160Run
	}
	if runs < 40 {
		runs = 40 // floor: the admissibility tests need 40+ measurements
	}
	w := workload.Synthetic(footprintKB*1024, 50, 4)
	res := Fig5Result{FootprintKB: footprintKB}
	for _, kind := range []placement.Kind{placement.RM, placement.HRP} {
		c, an, err := runAnalyzed(ctx, eng, kind, w, runs)
		if err != nil {
			return res, fmt.Errorf("fig5 %dKB %v: %w", footprintKB, kind, err)
		}
		h, err := stats.NewHistogram(c.Times, 40)
		if err != nil {
			return res, err
		}
		p := Fig5Policy{
			Placement: kind,
			Times:     c.Times,
			Hist:      h,
			Curve:     an.Model.Curve(core.CutoffHigh),
			Mean:      c.Mean(),
			Max:       c.HWM(),
			StdDev:    stats.StdDev(c.Times),
			PWCET15:   an.PWCET15,
		}
		if kind == placement.RM {
			res.RM = p
		} else {
			res.HRP = p
		}
	}
	return res, nil
}

// Render draws compact text histograms and the pWCET summary.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: synthetic kernel, %dKB footprint\n", r.FootprintKB)
	for _, p := range []Fig5Policy{r.RM, r.HRP} {
		fmt.Fprintf(&b, "\n(%s) execution-time PDF: mean=%.0f sd=%.0f max=%.0f\n",
			p.Placement, p.Mean, p.StdDev, p.Max)
		renderHist(&b, p.Hist)
	}
	fmt.Fprintf(&b, "\n(c) pWCET curves (cycles at decreasing exceedance):\n")
	fmt.Fprintf(&b, "%-10s", "exceed.")
	fmt.Fprintf(&b, "%14s %14s\n", "RM", "hRP")
	for i := range r.RM.Curve {
		fmt.Fprintf(&b, "1e%-8.0f %13.0f %14.0f\n",
			math.Log10(r.RM.Curve[i].P), r.RM.Curve[i].X, r.HRP.Curve[i].X)
	}
	fmt.Fprintf(&b, "pWCET@1e-15: RM %.0f vs hRP %.0f (RM/hRP = %.2f)\n",
		r.RM.PWCET15, r.HRP.PWCET15, r.RM.PWCET15/r.HRP.PWCET15)
	return b.String()
}

func renderHist(b *strings.Builder, h *stats.Histogram) {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+c*50/maxCount)
		fmt.Fprintf(b, "%10.0f %s %d\n", h.BinCenter(i), bar, c)
	}
}
