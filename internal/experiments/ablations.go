package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/workload"
)

// --- Section 3.1 analysis: within-segment collision probability ----------

// CollisionRow reports, for a contiguous footprint of Lines cache lines,
// the per-seed probability that some cache set receives more lines than
// the cache has ways (the precondition for a conflict storm).
type CollisionRow struct {
	Lines   int
	HRPProb float64
	RMProb  float64 // zero while the footprint fits, by construction
	RotProb float64 // rotation-only ablation (also zero within capacity)
}

// CollisionResult reproduces the Section 3.1 analysis: "even when a
// program uses few contiguous cache lines, those lines can be (randomly)
// mapped to the same cache set with a non-negligible probability" under
// hRP, while RM keeps same-segment lines apart by construction.
type CollisionResult struct {
	Sets, Ways int
	Seeds      int
	Rows       []CollisionRow
}

// CollisionAnalysis sweeps contiguous footprints on the paper's L1
// geometry (128 sets, 4 ways) and measures overload probability per seed.
func CollisionAnalysis(seeds int) (CollisionResult, error) {
	const sets, ways = 128, 4
	res := CollisionResult{Sets: sets, Ways: ways, Seeds: seeds}
	pols := make(map[string]placement.Policy)
	for _, k := range []placement.Kind{placement.HRP, placement.RM, placement.RMRot} {
		p, err := placement.New(k, sets)
		if err != nil {
			return res, err
		}
		pols[k.String()] = p
	}
	counts := make([]int, sets)
	overloaded := func(p placement.Policy, lines, seed int) bool {
		p.Reseed(prng.Derive(0xC0111, seed*1000+lines))
		for i := range counts {
			counts[i] = 0
		}
		for l := 0; l < lines; l++ {
			counts[p.Index(uint64(l))]++
		}
		for _, c := range counts {
			if c > ways {
				return true
			}
		}
		return false
	}
	for _, lines := range []int{16, 32, 64, 128, 256, 512} {
		row := CollisionRow{Lines: lines}
		for s := 0; s < seeds; s++ {
			if overloaded(pols["hRP"], lines, s) {
				row.HRPProb++
			}
			if overloaded(pols["RM"], lines, s) {
				row.RMProb++
			}
			if overloaded(pols["RM-rot"], lines, s) {
				row.RotProb++
			}
		}
		row.HRPProb /= float64(seeds)
		row.RMProb /= float64(seeds)
		row.RotProb /= float64(seeds)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep.
func (r CollisionResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Section 3.1: P(some set overloaded) for contiguous lines (%d sets, %d ways, %d seeds)",
		r.Sets, r.Ways, r.Seeds),
		"lines    footprint     hRP        RM     RM-rot")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5d %9dB   %7.4f  %7.4f  %7.4f\n",
			row.Lines, row.Lines*32, row.HRPProb, row.RMProb, row.RotProb)
	}
	b.WriteString("(RM cannot overload a set while the footprint fits in the cache: Section 3.2 guarantee)\n")
	return b.String()
}

// --- Ablations of the design choices DESIGN.md calls out ------------------

// AblationRow is one design point of an ablation sweep.
type AblationRow struct {
	Design  string
	Mean    float64
	HWM     float64
	PWCET15 float64
	IIDPass bool
}

// AblationResult is a labelled set of design points on one workload.
type AblationResult struct {
	Workload string
	Rows     []AblationRow
}

// Render formats an ablation table.
func (r AblationResult) Render() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Ablation on %s", r.Workload),
		"design                          mean          hwm      pWCET@1e-15  iid")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %12.0f %12.0f %12.0f   %v\n",
			row.Design, row.Mean, row.HWM, row.PWCET15, row.IIDPass)
	}
	return b.String()
}

func ablationPoint(ctx context.Context, eng *core.Engine, design string, spec core.PlatformSpec, w workload.Workload, runs int) (AblationRow, error) {
	res, err := eng.Run(ctx, core.Request{
		Name: "ablation/" + design,
		Spec: spec, Workload: w, Runs: runs, MasterSeed: MasterSeed, Analyze: true,
	})
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s: %w", design, err)
	}
	return AblationRow{
		Design: design, Mean: res.Mean(), HWM: res.HWM(),
		PWCET15: res.Analysis.PWCET15, IIDPass: res.Analysis.IIDPass,
	}, nil
}

// AblationReplacement quantifies the cost of MBPTA-required random
// replacement against LRU under RM placement (DESIGN.md, Section 7).
func AblationReplacement(ctx context.Context, eng *core.Engine, s Scale, benchName string) (AblationResult, error) {
	w, err := workload.ByName(benchName)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Workload: benchName}
	for _, repl := range []cache.ReplacementKind{cache.Random, cache.LRU, cache.FIFO, cache.PLRU} {
		spec := core.PaperPlatform(placement.RM)
		spec.IL1.Replacement = repl
		spec.DL1.Replacement = repl
		row, err := ablationPoint(ctx, eng, fmt.Sprintf("RM + %v L1 replacement", repl), spec, w, s.Runs/2)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationL2Policy sweeps the L2 placement while the L1s stay RM,
// including the paper's caveated RM-at-L2 option (Section 3.2
// "Applicability": RM at L2 requires page-alignment guarantees from the
// RTOS; hRP is the safe default).
func AblationL2Policy(ctx context.Context, eng *core.Engine, s Scale, benchName string) (AblationResult, error) {
	w, err := workload.ByName(benchName)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Workload: benchName}
	for _, l2 := range []placement.Kind{placement.HRP, placement.RM, placement.Modulo, placement.XORFold} {
		spec := core.PaperPlatform(placement.RM)
		spec.L2.Placement = l2
		if l2 == placement.Modulo || l2 == placement.XORFold {
			spec.L2.Replacement = cache.LRU
		}
		row, err := ablationPoint(ctx, eng, fmt.Sprintf("RM L1 + %v L2", l2), spec, w, s.Runs/2)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// EstimatorRow compares pWCET estimators on one benchmark's RM campaign.
type EstimatorRow struct {
	Bench    string
	HWM      float64
	Gumbel15 float64 // paper's estimator (forced Gumbel), pWCET@1e-15
	GEV15    float64 // full GEV fit (shape free), pWCET@1e-15
	Shape    float64 // fitted GEV shape (positive = bounded tail)
	Reliable bool    // enough maxima and moderate shape for the GEV fit
}

// EstimatorResult quantifies how much of the pWCET-above-hwm margin is
// estimator conservatism: the paper's method forces a Gumbel (shape-zero)
// model, which upper-bounds light/bounded tails loosely; the GEV fit with
// free shape shows the tighter defensible bound. (Extension experiment;
// see EXPERIMENTS.md, Figure 4(b) discussion.)
type EstimatorResult struct {
	Rows []EstimatorRow
}

// AblationEstimator runs RM campaigns over the EEMBC-like suite and
// compares Gumbel vs GEV pWCET estimates at 1e-15.
func AblationEstimator(ctx context.Context, eng *core.Engine, s Scale) (EstimatorResult, error) {
	var res EstimatorResult
	for _, w := range workload.EEMBC() {
		c, err := eng.Run(ctx, core.Request{
			Name: "estimator/" + w.Name,
			Spec: core.PaperPlatform(placement.RM), Workload: w,
			Runs: s.Runs, MasterSeed: MasterSeed,
		})
		if err != nil {
			return res, err
		}
		gum, err := evt.Analyze(c.Times, 0)
		if err != nil {
			return res, err
		}
		gev, err := evt.AnalyzeGEV(c.Times, 0)
		if err != nil {
			return res, err
		}
		maxima := gev.Runs / gev.Block
		res.Rows = append(res.Rows, EstimatorRow{
			Bench:    w.Name,
			HWM:      c.HWM(),
			Gumbel15: gum.AtExceedance(core.CutoffHigh),
			GEV15:    gev.AtExceedance(core.CutoffHigh),
			Shape:    gev.Fit.K,
			// A free-shape fit on few maxima is unstable -- negative shape
			// noise explodes the 1e-15 quantile. This instability is the
			// reason the paper's method forces the Gumbel model; the flag
			// makes it visible instead of hiding it.
			Reliable: maxima >= 30 && gev.Fit.K > -0.25 && gev.Fit.K < 0.75,
		})
	}
	return res, nil
}

// Render formats the estimator comparison.
func (r EstimatorResult) Render() string {
	var b strings.Builder
	header(&b, "Estimator ablation: Gumbel (paper) vs free-shape GEV, pWCET@1e-15 under RM",
		"benchmark         hwm   Gumbel@1e-15      GEV@1e-15   GEV/hwm  shape")
	for _, row := range r.Rows {
		note := ""
		if !row.Reliable {
			note = "  (GEV fit unstable: too few maxima or extreme shape)"
		}
		fmt.Fprintf(&b, "%-10s %10.0f   %12.0f   %12.0f   %7.3f  %+5.2f%s\n",
			row.Bench, row.HWM, row.Gumbel15, row.GEV15, row.GEV15/row.HWM, row.Shape, note)
	}
	b.WriteString("(positive shape = bounded tail, which the forced Gumbel over-extrapolates;\n")
	b.WriteString(" unstable free-shape fits on few maxima are why MBPTA forces the Gumbel model)\n")
	return b.String()
}

// AblationRMVariant compares full Benes-permutation RM against the
// rotation-only variant and hRP on one benchmark: layout diversity versus
// hardware cost (DESIGN.md, Section 7).
func AblationRMVariant(ctx context.Context, eng *core.Engine, s Scale, benchName string) (AblationResult, error) {
	w, err := workload.ByName(benchName)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Workload: benchName}
	for _, l1 := range []placement.Kind{placement.RM, placement.RMRot, placement.HRP} {
		row, err := ablationPoint(ctx, eng, fmt.Sprintf("%v L1 placement", l1), core.PaperPlatform(l1), w, s.Runs/2)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
