package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReproducibility(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverge at step %d: %x vs %x", i, got, want)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	const n = 256
	for i := 0; i < n; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/%d identical words", same, n)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	p := New(0)
	s32, s31, s29 := p.State()
	if s32 == 0 || s31 == 0 || s29 == 0 {
		t.Fatalf("zero seed left an LFSR in lock-up state: %x %x %x", s32, s31, s29)
	}
	// The stream must not be constant.
	first := p.Uint32()
	varies := false
	for i := 0; i < 16; i++ {
		if p.Uint32() != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("zero-seeded stream appears constant")
	}
}

func TestMonobitBalance(t *testing.T) {
	// NIST-style frequency test: the fraction of ones over a long stream
	// must be near 1/2. With n bits, |ones - n/2| should be within ~4 sigma
	// (sigma = sqrt(n)/2).
	p := New(0xC0FFEE)
	const n = 1 << 16
	ones := 0
	for i := 0; i < n/64; i++ {
		v := p.Uint64()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	dev := math.Abs(float64(ones) - n/2)
	if dev > 4*math.Sqrt(n)/2 {
		t.Fatalf("monobit imbalance: %d ones of %d bits (dev %.1f)", ones, n, dev)
	}
}

func TestByteChiSquare(t *testing.T) {
	// Chi-square over byte values: 255 degrees of freedom, mean 255,
	// stddev ~= sqrt(2*255) ~= 22.6. Accept within 255 +- 6 sigma.
	p := New(987654321)
	const n = 1 << 16
	var counts [256]int
	for i := 0; i < n; i++ {
		counts[p.Bits(8)]++
	}
	expected := float64(n) / 256
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if chi < 255-6*22.6 || chi > 255+6*22.6 {
		t.Fatalf("byte chi-square %f out of plausible range", chi)
	}
}

func TestSerialCorrelation(t *testing.T) {
	// Lag-1 serial correlation of successive 32-bit outputs should be
	// near zero for a sound generator.
	p := New(42)
	const n = 8192
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(p.Uint32())
	}
	var sx, sxx, sxy float64
	for i := 0; i < n-1; i++ {
		sx += xs[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * xs[i+1]
	}
	m := sx / float64(n-1)
	cov := sxy/float64(n-1) - m*m
	varx := sxx/float64(n-1) - m*m
	r := cov / varx
	if math.Abs(r) > 0.05 {
		t.Fatalf("lag-1 serial correlation too high: %f", r)
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(7)
	for _, n := range []int{1, 2, 3, 7, 10, 128, 1000} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformSmall(t *testing.T) {
	p := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(n)]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Intn(%d): value %d drawn %d times, expected ~%.0f", n, v, c, expected)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bits(65) did not panic")
		}
	}()
	New(1).Bits(65)
}

func TestFloat64Range(t *testing.T) {
	p := New(31337)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %f", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(2024)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(555)
	a.Uint64()
	b := a.Clone()
	// Clone must continue the same stream...
	av, bv := a.Uint64(), b.Uint64()
	if av != bv {
		t.Fatalf("clone diverged immediately: %x vs %x", av, bv)
	}
	// ...but advancing one must not affect the other: b's third stream
	// word must match a fresh generator's third word.
	a.Uint64()
	a.Uint64()
	bv2 := b.Uint64()
	c := New(555)
	c.Uint64()
	c.Uint64()
	if bv2 != c.Uint64() {
		t.Fatal("advancing the original perturbed the clone")
	}
}

func TestDeriveDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	const master = 0xDEADBEEF
	for run := 0; run < 4096; run++ {
		s := Derive(master, run)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Derive collision: runs %d and %d both yield %x", prev, run, s)
		}
		seen[s] = run
	}
}

func TestDeriveDeterministic(t *testing.T) {
	if Derive(1, 2) != Derive(1, 2) {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(1, 2) == Derive(1, 3) || Derive(1, 2) == Derive(2, 2) {
		t.Fatal("Derive ignores one of its inputs")
	}
}

// Property: reseeding with the same value always resets to the same stream.
func TestQuickReseedDeterminism(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		p := New(seed)
		want := make([]uint32, 8)
		for i := range want {
			want[i] = p.Uint32()
		}
		for i := 0; i < int(steps); i++ {
			p.Uint32()
		}
		p.Reseed(seed)
		for i := range want {
			if p.Uint32() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: no LFSR ever reaches the all-zero lock-up state.
func TestQuickNoLockup(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed)
		for i := 0; i < 512; i++ {
			p.step()
			s32, s31, s29 := p.State()
			if s32 == 0 || s31 == 0 || s29 == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// referenceBits reproduces the pre-batching Bits implementation: n single
// LFSR clockings via step(). The production Bits batches eight clocks at a
// time through the precomputed feedback tables; this is the oracle that
// pins the batched stream (and the post-call LFSR state) bit-for-bit.
func referenceBits(p *PRNG, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(p.step())
	}
	return v
}

// TestBatchedStepMatchesReference drives the batched Bits and the naive
// single-step reference in lockstep over many seeds and widths: identical
// outputs and identical LFSR states after every draw, including widths
// that exercise the partial-batch tail (n not a multiple of 8).
func TestBatchedStepMatchesReference(t *testing.T) {
	widths := []int{0, 1, 2, 5, 7, 8, 9, 15, 16, 24, 31, 32, 33, 53, 63, 64}
	for seed := uint64(0); seed < 25; seed++ {
		a := New(seed * 0x9E3779B9)
		b := a.Clone()
		for i, n := range append(widths, widths...) {
			got, want := a.Bits(n), referenceBits(b, n)
			if got != want {
				t.Fatalf("seed %d draw %d: Bits(%d) = %#x, reference %#x", seed, i, n, got, want)
			}
			a32, a31, a29 := a.State()
			b32, b31, b29 := b.State()
			if a32 != b32 || a31 != b31 || a29 != b29 {
				t.Fatalf("seed %d draw %d: state diverged after Bits(%d)", seed, i, n)
			}
		}
	}
}

// TestBatchTablesMatchSingleSteps checks the table construction directly:
// step8 must equal eight step() calls from any reachable state.
func TestBatchTablesMatchSingleSteps(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := New(seed)
		b := a.Clone()
		var want uint32
		for j := 0; j < 8; j++ {
			want |= b.step() << uint(j)
		}
		if got := a.step8(); got != want {
			t.Fatalf("seed %d: step8 = %#x, eight steps %#x", seed, got, want)
		}
		a32, a31, a29 := a.State()
		b32, b31, b29 := b.State()
		if a32 != b32 || a31 != b31 || a29 != b29 {
			t.Fatalf("seed %d: step8 state (%#x,%#x,%#x) != stepped (%#x,%#x,%#x)",
				seed, a32, a31, a29, b32, b31, b29)
		}
	}
}

func TestSource64Contract(t *testing.T) {
	s := Source64{P: New(11)}
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
	s.Seed(11)
	t1 := Source64{P: New(11)}
	if s.Uint64() != t1.Uint64() {
		t.Fatal("Seed did not reset the stream")
	}
}

func BenchmarkUint32(b *testing.B) {
	p := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Uint32()
	}
}

func BenchmarkDerive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Derive(42, i)
	}
}
