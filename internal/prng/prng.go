// Package prng implements the hardware-style pseudo-random number generator
// used by the MBPTA-compliant cache designs of the Random Modulo paper.
//
// The paper relies on the IEC-61508 SIL3-compliant PRNG of Agirre et al.
// (DSD 2015): a small combination generator built from maximal-length linear
// feedback shift registers (LFSRs) whose outputs are combined so that the
// result is cheap in hardware yet statistically sound enough to pass the
// MBPTA independence and identical-distribution tests. This package
// reproduces that design point: three Galois LFSRs with coprime periods
// (degrees 32, 31 and 29) stepped in lockstep and XOR-combined. The joint
// period is (2^32-1)(2^31-1)(2^29-1) ~= 2^92, far beyond any campaign length
// used in probabilistic timing analysis.
//
// The generator is deterministic: a given seed always produces the same
// stream, which makes every experiment in this repository reproducible. Use
// Derive to obtain statistically-independent per-run seeds from a master
// seed, mirroring how an analysis campaign draws a fresh hardware seed for
// every program run.
package prng

import "math/bits"

// Feedback polynomials (primitive over GF(2)) for the three Galois LFSRs.
// Taps are written with the convention that bit 0 is the output bit.
const (
	poly32 = 0xE0000200 // x^32 + x^31 + x^30 + x^10 + 1 (primitive, period 2^32-1)
	poly31 = 0x48000000 // x^31 + x^28 + 1              (primitive, period 2^31-1)
	poly29 = 0x14000000 // x^29 + x^27 + 1              (primitive, period 2^29-1)

	mask31 = 1<<31 - 1
	mask29 = 1<<29 - 1
)

// PRNG is a deterministic hardware-style pseudo-random number generator.
// The zero value is not valid; use New.
type PRNG struct {
	s32 uint32
	s31 uint32
	s29 uint32
}

// New returns a generator initialized from seed. Any seed is legal,
// including zero: the seed is first diffused through an integer hash so
// that no LFSR starts in the forbidden all-zero state.
func New(seed uint64) *PRNG {
	p := &PRNG{}
	p.Reseed(seed)
	return p
}

// Reseed reinitializes the generator from seed, as a hardware reseed line
// would latch a new value into the LFSR state registers.
func (p *PRNG) Reseed(seed uint64) {
	// SplitMix64-style diffusion: consecutive seeds yield uncorrelated
	// starting states. Three rounds feed the three registers.
	z := seed
	p.s32 = uint32(mix(&z))
	p.s31 = uint32(mix(&z)) & mask31
	p.s29 = uint32(mix(&z)) & mask29
	// A Galois LFSR locks up in the all-zero state; nudge if needed.
	if p.s32 == 0 {
		p.s32 = 0xACE1ACE1
	}
	if p.s31 == 0 {
		p.s31 = 0x1BADB002 & mask31
	}
	if p.s29 == 0 {
		p.s29 = 0x0EA7BEEF & mask29
	}
}

// mix advances a SplitMix64 state and returns the next diffused value.
func mix(z *uint64) uint64 {
	*z += 0x9E3779B97F4A7C15
	x := *z
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Batch stepping tables: stepping a Galois LFSR k times is linear over
// GF(2), and as long as k does not exceed the lowest feedback tap no bit
// injected by the feedback XOR can reach the output (or trigger a second
// feedback) within the batch. The lowest taps here are bits 9 (poly32),
// 27 (poly31) and 26 (poly29), so an 8-step batch is safe for all three
// registers: the 8 output bits are exactly the low byte of the pre-batch
// state, and the post-batch state is (s >> 8) XOR the accumulated
// feedback, a pure function of the consumed byte. The tables hold that
// accumulated feedback per consumed byte, making Bits(64) 8 table steps
// instead of 64 serial clockings while producing the identical stream
// (pinned by TestBatchedStepMatchesReference).
var batch32, batch31, batch29 [256]uint32

func init() {
	for b := 0; b < 256; b++ {
		for j := 0; j < 8; j++ {
			if b>>uint(j)&1 == 1 {
				// The bit consumed at batch step j is XORed in as poly and
				// then shifted right for the remaining 7-j steps.
				batch32[b] ^= poly32 >> uint(7-j)
				batch31[b] ^= poly31 >> uint(7-j)
				batch29[b] ^= poly29 >> uint(7-j)
			}
		}
	}
}

// step8 advances all three LFSRs by eight clocks and returns the eight
// combined output bits, bit j being the output of clock j.
func (p *PRNG) step8() uint32 {
	out := (p.s32 ^ p.s31 ^ p.s29) & 0xFF
	p.s32 = p.s32>>8 ^ batch32[p.s32&0xFF]
	p.s31 = p.s31>>8 ^ batch31[p.s31&0xFF]
	p.s29 = p.s29>>8 ^ batch29[p.s29&0xFF]
	return out
}

// step advances all three LFSRs by one clock and returns the combined
// output bit, exactly as the hardware combiner XORs the register outputs.
func (p *PRNG) step() uint32 {
	out := (p.s32 ^ p.s31 ^ p.s29) & 1

	if p.s32&1 != 0 {
		p.s32 = (p.s32 >> 1) ^ poly32
	} else {
		p.s32 >>= 1
	}
	if p.s31&1 != 0 {
		p.s31 = ((p.s31 >> 1) ^ poly31) & mask31
	} else {
		p.s31 >>= 1
	}
	if p.s29&1 != 0 {
		p.s29 = ((p.s29 >> 1) ^ poly29) & mask29
	} else {
		p.s29 >>= 1
	}
	return out
}

// Bits returns the next n pseudo-random bits (0 <= n <= 64), most recently
// generated bit in the least-significant position.
func (p *PRNG) Bits(n int) uint64 {
	if n < 0 || n > 64 {
		panic("prng: Bits count out of range")
	}
	var v uint64
	// Most recently generated bit lands in the least-significant position,
	// so a batch of eight (output bit j = clock j) enters bit-reversed.
	for ; n >= 8; n -= 8 {
		v = v<<8 | uint64(bits.Reverse8(uint8(p.step8())))
	}
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(p.step())
	}
	return v
}

// Uint32 returns the next 32 pseudo-random bits.
func (p *PRNG) Uint32() uint32 { return uint32(p.Bits(32)) }

// Uint64 returns the next 64 pseudo-random bits.
func (p *PRNG) Uint64() uint64 { return p.Bits(64) }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Rejection sampling removes modulo bias.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return int(p.Uint64() & uint64(n-1))
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := p.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Bits(53)) / (1 << 53)
}

// Derive returns a fresh seed for run number run, derived from master.
// Distinct (master, run) pairs yield statistically independent seeds, the
// software analogue of drawing a new hardware seed before every program run.
func Derive(master uint64, run int) uint64 {
	z := master ^ (uint64(run)+1)*0xD1B54A32D192ED03
	mix(&z)
	return mix(&z)
}

// Clone returns an independent copy of the generator in its current state.
func (p *PRNG) Clone() *PRNG {
	q := *p
	return &q
}

// State returns the packed LFSR state, for golden tests and debugging.
func (p *PRNG) State() (s32, s31, s29 uint32) { return p.s32, p.s31, p.s29 }

// Source64 adapts PRNG to the math/rand Source64 contract so callers can
// plug it into stdlib machinery when convenient.
type Source64 struct{ P *PRNG }

// Int63 returns a non-negative 63-bit value.
func (s Source64) Int63() int64 { return int64(s.P.Uint64() >> 1) }

// Uint64 returns the next 64 pseudo-random bits.
func (s Source64) Uint64() uint64 { return s.P.Uint64() }

// Seed reseeds the underlying generator.
func (s Source64) Seed(seed int64) { s.P.Reseed(uint64(seed)) }
