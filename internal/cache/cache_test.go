package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/prng"
)

// dl1Config returns the paper's L1 geometry: 16KB, 4-way, 32B lines ->
// 128 sets, 4KB way (segment) size.
func dl1Config(p placement.Kind, r ReplacementKind) Config {
	return Config{
		Name:        "DL1",
		SizeBytes:   16 * 1024,
		Ways:        4,
		LineBytes:   32,
		Placement:   p,
		Replacement: r,
		Write:       WriteThrough,
	}
}

func TestGeometry(t *testing.T) {
	cfg := dl1Config(placement.Modulo, LRU)
	if cfg.Sets() != 128 {
		t.Fatalf("sets = %d, want 128", cfg.Sets())
	}
	if cfg.WaySizeBytes() != 4096 {
		t.Fatalf("way size = %d, want 4096 (the paper's cache segment)", cfg.WaySizeBytes())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Config{
		{Name: "z", SizeBytes: 0, Ways: 4, LineBytes: 32},
		{Name: "n", SizeBytes: 16384, Ways: 0, LineBytes: 32},
		{Name: "l", SizeBytes: 16384, Ways: 4, LineBytes: 24},
		{Name: "d", SizeBytes: 16384 + 32, Ways: 4, LineBytes: 32},
		{Name: "s", SizeBytes: 128, Ways: 2, LineBytes: 64}, // 1 set
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated", cfg.Name)
		}
	}
}

func TestNewRejectsPLRUOddWays(t *testing.T) {
	cfg := Config{Name: "x", SizeBytes: 3 * 2 * 32 * 64, Ways: 3, LineBytes: 32, Replacement: PLRU}
	if _, err := New(cfg); err == nil {
		t.Fatal("PLRU with 3 ways accepted")
	}
}

func TestStringers(t *testing.T) {
	if LRU.String() != "LRU" || Random.String() != "Random" || FIFO.String() != "FIFO" || PLRU.String() != "PLRU" {
		t.Fatal("replacement stringer wrong")
	}
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Fatal("write policy stringer wrong")
	}
	if ReplacementKind(9).String() == "" {
		t.Fatal("unknown replacement stringer empty")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(dl1Config(placement.Modulo, LRU))
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Read(0x1000); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Read(0x1000); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Read(0x101F); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Read(0x1020); r.Hit {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 4-way set: fill with A,B,C,D, touch A, insert E -> B (the LRU) must go.
	c, err := New(dl1Config(placement.Modulo, LRU))
	if err != nil {
		t.Fatal(err)
	}
	way := uint64(4096) // stride of one way keeps the modulo set fixed
	addrs := []uint64{0, way, 2 * way, 3 * way}
	for _, a := range addrs {
		c.Read(a)
	}
	c.Read(0)           // touch A
	c.Read(4 * way)     // insert E, evict B
	if !c.Read(0).Hit { // A stays
		t.Fatal("A evicted despite being MRU")
	}
	if !c.Read(2 * way).Hit { // C stays
		t.Fatal("C evicted")
	}
	// Check the victim last: this read refills B and evicts again.
	if c.Read(way).Hit {
		t.Fatal("B survived despite being LRU")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	// FIFO: fill A,B,C,D, touch A many times, insert E -> A still evicted.
	c, err := New(dl1Config(placement.Modulo, FIFO))
	if err != nil {
		t.Fatal(err)
	}
	way := uint64(4096)
	for _, a := range []uint64{0, way, 2 * way, 3 * way} {
		c.Read(a)
	}
	for i := 0; i < 10; i++ {
		c.Read(0)
	}
	c.Read(4 * way) // evicts A (first in)
	if !c.Read(way).Hit {
		t.Fatal("FIFO evicted the wrong line")
	}
	// Check the victim last: this read refills A and evicts again.
	if c.Read(0).Hit {
		t.Fatal("FIFO kept the first-inserted line after touches")
	}
}

func TestPLRUProtectsMRU(t *testing.T) {
	c, err := New(dl1Config(placement.Modulo, PLRU))
	if err != nil {
		t.Fatal(err)
	}
	way := uint64(4096)
	for _, a := range []uint64{0, way, 2 * way, 3 * way} {
		c.Read(a)
	}
	c.Read(0) // A is MRU
	c.Read(4 * way)
	if !c.Read(0).Hit {
		t.Fatal("PLRU evicted the most recently used line")
	}
}

func TestRandomReplacementEvictsWithinSet(t *testing.T) {
	c, err := New(dl1Config(placement.Modulo, Random))
	if err != nil {
		t.Fatal(err)
	}
	c.Reseed(42)
	way := uint64(4096)
	for i := uint64(0); i < 4; i++ {
		c.Read(i * way)
	}
	// Insert 100 more conflicting lines; occupancy of the set never
	// exceeds the ways. Evict-on-miss random replacement may stack early
	// fills into the same way, so between 100 and 103 fills displace a
	// valid line.
	for i := uint64(4); i < 104; i++ {
		c.Read(i * way)
	}
	if got := len(c.SetContents(0)); got > 4 {
		t.Fatalf("set 0 holds %d lines, want <= 4", got)
	}
	if ev := c.Stats().Evictions; ev < 100 || ev > 103 {
		t.Fatalf("evictions = %d, want 100..103", ev)
	}
}

func TestRandomReplacementIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		c, err := New(dl1Config(placement.Modulo, Random))
		if err != nil {
			t.Fatal(err)
		}
		c.Reseed(7)
		var hits []bool
		g := prng.New(1)
		for i := 0; i < 3000; i++ {
			hits = append(hits, c.Read(uint64(g.Intn(1<<16))&^31).Hit)
		}
		return hits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random replacement not reproducible at access %d", i)
		}
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c, err := New(dl1Config(placement.Modulo, LRU))
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Write(0x2000); r.Hit || r.Filled {
		t.Fatalf("WT store miss allocated: %+v", r)
	}
	if c.Occupancy() != 0 {
		t.Fatal("WT no-allocate store installed a line")
	}
	// After a read brings the line in, a store hits and leaves it clean.
	c.Read(0x2000)
	if r := c.Write(0x2000); !r.Hit {
		t.Fatal("store to present line missed")
	}
	if c.DirtyLines() != 0 {
		t.Fatal("write-through line marked dirty")
	}
}

func TestWriteThroughWithAllocate(t *testing.T) {
	cfg := dl1Config(placement.Modulo, LRU)
	cfg.AllocOnWrite = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Write(0x2000); !r.Filled {
		t.Fatal("WT allocate-on-write store did not fill")
	}
	if c.DirtyLines() != 0 {
		t.Fatal("write-through line marked dirty")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	cfg := dl1Config(placement.Modulo, LRU)
	cfg.Write = WriteBack
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	way := uint64(4096)
	c.Write(0) // allocate dirty
	if c.DirtyLines() != 1 {
		t.Fatal("store did not dirty the line")
	}
	for i := uint64(1); i <= 3; i++ {
		c.Read(i * way)
	}
	r := c.Write(4 * way) // evicts line 0, which is dirty
	if !r.Evicted || !r.Writeback {
		t.Fatalf("dirty eviction not reported: %+v", r)
	}
	if r.WritebackAddr != 0 {
		t.Fatalf("writeback addr = %#x, want 0", r.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := dl1Config(placement.Modulo, LRU)
	cfg.Write = WriteBack
	c, _ := New(cfg)
	way := uint64(4096)
	for i := uint64(0); i <= 4; i++ {
		c.Read(i * way)
	}
	if c.Stats().Writebacks != 0 {
		t.Fatal("clean eviction produced a writeback")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestFlushInvalidatesEverything(t *testing.T) {
	c, _ := New(dl1Config(placement.Modulo, LRU))
	for i := uint64(0); i < 100; i++ {
		c.Read(i * 32)
	}
	if c.Occupancy() != 100 {
		t.Fatalf("occupancy %d before flush", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
	if c.Read(0).Hit {
		t.Fatal("hit after flush")
	}
}

func TestReseedFlushesAndRemaps(t *testing.T) {
	cfg := dl1Config(placement.RM, Random)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Reseed(1)
	c.Read(0x8000)
	if !c.Read(0x8000).Hit {
		t.Fatal("miss after fill")
	}
	c.Reseed(2)
	if c.Read(0x8000).Hit {
		t.Fatal("hit survived a reseed (contents must be flushed)")
	}
}

func TestLookupDoesNotDisturbState(t *testing.T) {
	c, _ := New(dl1Config(placement.Modulo, LRU))
	c.Read(0)
	st := c.Stats()
	if !c.Lookup(0) || c.Lookup(4096) {
		t.Fatal("Lookup wrong")
	}
	if c.Stats() != st {
		t.Fatal("Lookup changed counters")
	}
}

func TestSetUniquenessInvariant(t *testing.T) {
	// Property: after arbitrary access sequences, no set contains two
	// copies of the same line, and occupancy per set never exceeds ways.
	for _, pk := range []placement.Kind{placement.Modulo, placement.HRP, placement.RM} {
		for _, rk := range []ReplacementKind{LRU, Random, FIFO, PLRU} {
			c, err := New(dl1Config(pk, rk))
			if err != nil {
				t.Fatal(err)
			}
			c.Reseed(99)
			g := prng.New(uint64(pk)<<8 | uint64(rk))
			for i := 0; i < 20000; i++ {
				addr := uint64(g.Intn(1 << 17))
				if g.Intn(4) == 0 {
					c.Write(addr)
				} else {
					c.Read(addr)
				}
			}
			for set := 0; set < 128; set++ {
				contents := c.SetContents(set)
				if len(contents) > 4 {
					t.Fatalf("%v/%v: set %d holds %d lines", pk, rk, set, len(contents))
				}
				seen := map[uint64]bool{}
				for _, la := range contents {
					if seen[la] {
						t.Fatalf("%v/%v: duplicate line %#x in set %d", pk, rk, la, set)
					}
					seen[la] = true
				}
			}
		}
	}
}

func TestHitConsistencyWithRMPlacement(t *testing.T) {
	// Property: a line just read always hits immediately afterwards, for
	// any placement/seed (placement is stable within a run).
	c, err := New(dl1Config(placement.RM, Random))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, addrs []uint16) bool {
		c.Reseed(seed)
		for _, a16 := range addrs {
			a := uint64(a16) * 32
			c.Read(a)
			if !c.Read(a).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSegmentFitsUnderRM(t *testing.T) {
	// The RM guarantee at cache level: a footprint that fits in one way
	// (one line per modulo set) never self-conflicts, so after the first
	// sweep every subsequent sweep hits 100%, for every seed.
	cfg := dl1Config(placement.RM, Random)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 25; seed++ {
		c.Reseed(seed)
		for i := uint64(0); i < 128; i++ { // one full segment
			c.Read(i * 32)
		}
		c.ResetStats()
		for sweep := 0; sweep < 3; sweep++ {
			for i := uint64(0); i < 128; i++ {
				if !c.Read(i * 32).Hit {
					t.Fatalf("seed %d: RM missed on a single-segment footprint", seed)
				}
			}
		}
	}
}

func TestHRPCanSelfConflictWithinSegment(t *testing.T) {
	// The contrast to the previous test: under hRP some seeds map >4 lines
	// of a single segment into one set, producing misses on re-sweeps even
	// though the footprint fits in the cache. This is the cache risk
	// pattern the paper attributes to hRP.
	cfg := dl1Config(placement.HRP, LRU) // LRU makes overload misses certain
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conflictSeeds := 0
	for seed := uint64(0); seed < 200; seed++ {
		c.Reseed(seed)
		for i := uint64(0); i < 128; i++ {
			c.Read(i * 32)
		}
		c.ResetStats()
		for i := uint64(0); i < 128; i++ {
			c.Read(i * 32)
		}
		if c.Stats().Misses > 0 {
			conflictSeeds++
		}
	}
	// With 128 lines into 128 sets, P(some set gets >= 5 lines) is
	// non-negligible (paper 3.1); expect at least a handful in 200 seeds.
	if conflictSeeds == 0 {
		t.Fatal("hRP never self-conflicted on a one-segment footprint in 200 seeds")
	}
	t.Logf("hRP self-conflicted in %d/200 seeds (paper: non-negligible probability)", conflictSeeds)
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c, _ := New(dl1Config(placement.HRP, Random))
	c.Reseed(5)
	g := prng.New(11)
	for i := 0; i < 50000; i++ {
		c.Read(uint64(g.Intn(1 << 20)))
	}
	if c.Occupancy() > 512 {
		t.Fatalf("occupancy %d exceeds capacity 512", c.Occupancy())
	}
}

func TestStatsMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("zero-access miss ratio not 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRatio() != 0.3 {
		t.Fatalf("miss ratio = %f", s.MissRatio())
	}
}

func BenchmarkAccessModuloLRU(b *testing.B) { benchAccess(b, placement.Modulo, LRU) }
func BenchmarkAccessRMRandom(b *testing.B)  { benchAccess(b, placement.RM, Random) }
func BenchmarkAccessHRPRandom(b *testing.B) { benchAccess(b, placement.HRP, Random) }

func benchAccess(b *testing.B, pk placement.Kind, rk ReplacementKind) {
	c, err := New(dl1Config(pk, rk))
	if err != nil {
		b.Fatal(err)
	}
	c.Reseed(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i) * 32 & (1<<18 - 1))
	}
}
