// Package cache implements the set-associative cache model used by the
// LEON3-like platform simulator: configurable geometry, pluggable placement
// (modulo, XOR-fold, hRP, Random Modulo), the replacement policies relevant
// to MBPTA (random) and to the deterministic baseline (LRU, plus FIFO and
// PLRU for ablations), and write-through/write-back handling.
//
// The model is behavioural, not cycle-structural: Access reports hits,
// misses, and evictions; the simulator in internal/sim converts those into
// cycles. Placement is consulted once per access with the line address, so
// the policies behave bit-exactly as their hardware counterparts would.
package cache

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"strings"

	"repro/internal/placement"
	"repro/internal/prng"
)

// ReplacementKind enumerates replacement policies.
type ReplacementKind int

// Replacement policies.
const (
	LRU    ReplacementKind = iota // least recently used (deterministic baseline)
	Random                        // random replacement (MBPTA-compliant, paper's choice)
	FIFO                          // first-in first-out (ablation)
	PLRU                          // tree pseudo-LRU (ablation)
)

// String returns the report name of the replacement policy.
func (r ReplacementKind) String() string {
	switch r {
	case LRU:
		return "LRU"
	case Random:
		return "Random"
	case FIFO:
		return "FIFO"
	case PLRU:
		return "PLRU"
	default:
		return fmt.Sprintf("ReplacementKind(%d)", int(r))
	}
}

// ReplacementKinds returns every replacement policy in declaration order,
// for service catalogs and usage messages.
func ReplacementKinds() []ReplacementKind {
	return []ReplacementKind{LRU, Random, FIFO, PLRU}
}

// ParseReplacement maps a user-facing replacement-policy name
// (case-insensitive) to its kind, mirroring placement.ParseKind for the
// CLIs and the campaign wire codec.
func ParseReplacement(s string) (ReplacementKind, error) {
	for _, k := range ReplacementKinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q (valid: LRU, Random, FIFO, PLRU)", s)
}

// WritePolicy selects how stores interact with the cache level.
type WritePolicy int

// Write policies. The paper's safety-critical design point is write-through
// no-allocate L1s (Section 3.2: "most processor designs targeting safety
// critical applications typically rely on write-through first-level
// caches") with a write-back L2.
const (
	WriteThrough WritePolicy = iota // stores propagate immediately; no dirty lines
	WriteBack                       // stores dirty the line; dirty victims write back
)

// String returns the report name of the write policy.
func (w WritePolicy) String() string {
	if w == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Config describes one cache level.
type Config struct {
	Name         string          // for reports, e.g. "DL1"
	SizeBytes    int             // total capacity
	Ways         int             // associativity
	LineBytes    int             // line size (32 in the paper's LEON3)
	Placement    placement.Kind  // set-placement function
	Replacement  ReplacementKind // replacement policy
	Write        WritePolicy     // write handling
	AllocOnWrite bool            // allocate line on store miss (ignored for WriteThrough L1 style if false)
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// WaySizeBytes returns the size of one way, which is the cache segment size
// of the paper.
func (c Config) WaySizeBytes() int { return c.Sets() * c.LineBytes }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	if c.Ways > 64 {
		// The tag state packs per-set valid/dirty flags into one uint64
		// bitmask per set (see Cache), and no modelled platform exceeds
		// 64-way associativity.
		return fmt.Errorf("cache %s: %d ways exceeds the modelled maximum of 64", c.Name, c.Ways)
	}
	s := c.Sets()
	if s < 2 || s&(s-1) != 0 {
		return fmt.Errorf("cache %s: %d sets, must be a power of two >= 2", c.Name, s)
	}
	return nil
}

// Stats accumulates per-level counters across a run.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty victims pushed down
	Flushes    uint64
}

// MissRatio returns misses/accesses (0 if no accesses).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result reports the outcome of one access.
type Result struct {
	Hit           bool
	Evicted       bool   // a valid line was displaced
	WritebackAddr uint64 // line address pushed down (valid only if Writeback)
	Writeback     bool   // the displaced line was dirty
	Filled        bool   // a new line was installed (miss with allocation)
}

// Cache is one cache level. Not safe for concurrent use.
//
// The tag state is struct-of-arrays: one flat line-address slice plus one
// packed valid/dirty bitmask per set (Validate caps Ways at 64). The
// simulator stores the full line address; the hardware-cost model accounts
// separately for whether the real tag array would need the index bits
// (placement.NeedsIndexInTag). Keeping the per-way metadata in set-local
// bitmasks lets the replay kernels probe a whole set with one load and a
// bit scan instead of striding across array-of-structs entries.
type Cache struct {
	cfg     Config
	pol     placement.Policy
	sets    int
	ways    int
	offBits uint
	addrs   []uint64 // sets*ways line addresses, set-major
	valid   []uint64 // per-set valid bitmask, bit w = way w
	dirty   []uint64 // per-set dirty bitmask, bit w = way w

	// Replacement state, one of the following depending on kind.
	repl    ReplacementKind
	lruTick []uint64 // LRU/FIFO: per-line timestamp
	tick    uint64
	plru    []uint64 // PLRU: per-set tree bits
	rng     *prng.PRNG

	stats Stats
}

// New builds a cache level. The placement policy is instantiated from
// cfg.Placement; use NewWithPolicy to inject a custom policy.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := placement.New(cfg.Placement, cfg.Sets())
	if err != nil {
		return nil, err
	}
	return NewWithPolicy(cfg, pol)
}

// NewWithPolicy builds a cache level around an existing placement policy.
// The policy's set count must match the geometry.
func NewWithPolicy(cfg Config, pol placement.Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol.Sets() != cfg.Sets() {
		return nil, fmt.Errorf("cache %s: policy maps %d sets, geometry has %d", cfg.Name, pol.Sets(), cfg.Sets())
	}
	c := &Cache{
		cfg:     cfg,
		pol:     pol,
		sets:    cfg.Sets(),
		ways:    cfg.Ways,
		offBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		addrs:   make([]uint64, cfg.Sets()*cfg.Ways),
		valid:   make([]uint64, cfg.Sets()),
		dirty:   make([]uint64, cfg.Sets()),
		repl:    cfg.Replacement,
		rng:     prng.New(initialStream(cfg.Name)),
	}
	switch cfg.Replacement {
	case LRU, FIFO:
		c.lruTick = make([]uint64, len(c.addrs))
	case PLRU:
		if cfg.Ways&(cfg.Ways-1) != 0 {
			return nil, fmt.Errorf("cache %s: PLRU needs power-of-two ways, got %d", cfg.Name, cfg.Ways)
		}
		c.plru = make([]uint64, cfg.Sets())
	case Random:
		// rng drawn per eviction
	default:
		return nil, fmt.Errorf("cache %s: unknown replacement %d", cfg.Name, int(cfg.Replacement))
	}
	return c, nil
}

// initialStream seeds the pre-Reseed replacement RNG from the level's
// configured name (FNV-1a over cfg.Name). Seeding every level with the
// same constant would hand all un-reseeded Random-replacement levels
// (IL1/DL1/L2) one identical victim stream and therefore correlated
// evictions; deriving per name keeps fresh distinctly-named levels
// independent (same-named caches — e.g. the IL1s of a multi-core
// System — still coincide until their Reseed, the documented run
// protocol). Reseed overwrites this state entirely, so every
// post-Reseed sequence is unchanged.
func initialStream(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the placement policy (for reports and hardware costing).
func (c *Cache) Policy() placement.Policy { return c.pol }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.offBits }

// Reseed installs a fresh per-run seed into the placement policy and the
// replacement randomness, then flushes contents: after a placement change
// the old contents are unreachable, so the hardware flushes for consistency
// (paper, Section 3: "on every seed change ... cache contents must be
// flushed for consistency purposes").
//
// Flushing discards dirty lines without reporting them: the run boundary is
// also a task boundary, and the paper's analysis unit is run-to-completion.
func (c *Cache) Reseed(seed uint64) {
	c.pol.Reseed(seed)
	c.rng.Reseed(seed ^ 0x52455045)
	c.Flush()
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = 0
		c.dirty[i] = 0
	}
	if c.lruTick != nil {
		for i := range c.lruTick {
			c.lruTick[i] = 0
		}
	}
	if c.plru != nil {
		for i := range c.plru {
			c.plru[i] = 0
		}
	}
	c.stats.Flushes++
}

// Lookup reports whether the line holding addr is present, without updating
// replacement state or counters.
func (c *Cache) Lookup(addr uint64) bool {
	la := c.LineAddr(addr)
	set := int(c.pol.Index(la))
	return c.probe(la, set) >= 0
}

// LookupLine is Lookup for a line address with a precomputed set index
// (see ReadLine for the plan contract): presence without updating
// replacement state or counters. The security attack kernels use it to
// test eviction without perturbing the replacement state under
// measurement.
//
//rm:hotpath
func (c *Cache) LookupLine(la uint64, set uint32) bool {
	return c.probe(la, int(set)) >= 0
}

// probe returns the way holding la in set, or -1. It scans only the valid
// ways via the set's bitmask.
func (c *Cache) probe(la uint64, set int) int {
	base := set * c.ways
	for m := c.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.addrs[base+w] == la {
			return w
		}
	}
	return -1
}

// Read performs a load or instruction fetch for addr.
func (c *Cache) Read(addr uint64) Result { return c.access(addr, false) }

// Write performs a store to addr. Under WriteThrough the line is updated if
// present and, unless AllocOnWrite is set, a miss does not allocate. Under
// WriteBack the line is allocated on miss (if AllocOnWrite) and dirtied.
func (c *Cache) Write(addr uint64) Result { return c.access(addr, true) }

// ReadLine is Read for a line address with a precomputed set index: the
// compiled campaign hot path, where the placement policy was consulted
// once per unique line at reseed time (an index plan, placement.IndexAll)
// instead of once per access. set must equal Policy().Index(la) under the
// current seed; behaviour, counters and replacement-RNG draws are then
// bit-identical to Read(la << offBits).
func (c *Cache) ReadLine(la uint64, set uint32) Result {
	return c.accessLine(la, int(set), false)
}

// WriteLine is Write for a line address with a precomputed set index; see
// ReadLine for the contract.
func (c *Cache) WriteLine(la uint64, set uint32) Result {
	return c.accessLine(la, int(set), true)
}

func (c *Cache) access(addr uint64, isWrite bool) Result {
	la := c.LineAddr(addr)
	return c.accessLine(la, int(c.pol.Index(la)), isWrite)
}

func (c *Cache) accessLine(la uint64, set int, isWrite bool) Result {
	c.stats.Accesses++

	if w := c.probe(la, set); w >= 0 {
		c.stats.Hits++
		c.touch(set, w)
		if isWrite && c.cfg.Write == WriteBack {
			c.dirty[set] |= 1 << uint(w)
		}
		return Result{Hit: true}
	}

	c.stats.Misses++
	if isWrite && !c.allocatesOnWrite() {
		// Write-through no-allocate: the store bypasses this level.
		return Result{}
	}
	res := Result{Filled: true}
	w := c.victim(set)
	bit := uint64(1) << uint(w)
	if c.valid[set]&bit != 0 {
		res.Evicted = true
		c.stats.Evictions++
		if c.dirty[set]&bit != 0 {
			res.Writeback = true
			res.WritebackAddr = c.addrs[set*c.ways+w]
			c.stats.Writebacks++
		}
	}
	c.addrs[set*c.ways+w] = la
	c.valid[set] |= bit
	if isWrite && c.cfg.Write == WriteBack {
		c.dirty[set] |= bit
	} else {
		c.dirty[set] &^= bit
	}
	c.touch(set, w)
	return res
}

func (c *Cache) allocatesOnWrite() bool {
	if c.cfg.Write == WriteBack {
		return true
	}
	return c.cfg.AllocOnWrite
}

// touch records a use of way w in set for the replacement policy.
func (c *Cache) touch(set, w int) {
	switch c.repl {
	case LRU:
		c.tick++
		c.lruTick[set*c.ways+w] = c.tick
	case FIFO:
		// FIFO only stamps on fill; access() calls touch on both hit and
		// fill, so stamp only when the slot was just (re)written. The fill
		// path overwrites addr first, hits keep the old stamp: emulate by
		// stamping only when the stamp is zero or the line was replaced.
		idx := set*c.ways + w
		if c.lruTick[idx] == 0 {
			c.tick++
			c.lruTick[idx] = c.tick
		}
	case PLRU:
		c.plruTouch(set, w)
	case Random:
		// stateless
	}
}

// victim picks the way to replace in set. Deterministic policies fill
// invalid ways first, as conventional hardware does. Random replacement
// deliberately does not: the MBPTA-compliant evict-on-miss design selects
// any way with probability 1/W on every miss (the LEON-style policy the
// MBPTA literature analyses), which makes even warm-up behaviour
// probabilistic -- the source of run-to-run variability for programs whose
// footprint fits in the cache.
func (c *Cache) victim(set int) int {
	base := set * c.ways
	if c.repl == Random {
		return c.rng.Intn(c.ways)
	}
	if free := ^c.valid[set] & (1<<uint(c.ways) - 1); free != 0 {
		w := bits.TrailingZeros64(free) // lowest invalid way, as a scan would find
		if c.repl == FIFO {
			c.lruTick[base+w] = 0 // force restamp on fill
		}
		return w
	}
	switch c.repl {
	case LRU, FIFO:
		oldest, oldestTick := 0, c.lruTick[base]
		for w := 1; w < c.ways; w++ {
			if c.lruTick[base+w] < oldestTick {
				oldest, oldestTick = w, c.lruTick[base+w]
			}
		}
		if c.repl == FIFO {
			c.lruTick[base+oldest] = 0 // restamp on fill
		}
		return oldest
	case PLRU:
		return c.plruVictim(set)
	default: // Random
		return c.rng.Intn(c.ways)
	}
}

// plruTouch updates the PLRU tree so the path to way w is protected.
func (c *Cache) plruTouch(set, w int) {
	levels := bits.TrailingZeros(uint(c.ways)) // tree depth
	node := 0
	treeBits := c.plru[set]
	for level := 0; level < levels; level++ {
		bit := (w >> uint(levels-1-level)) & 1
		if bit == 0 {
			treeBits |= 1 << uint(node) // point away: to the right
		} else {
			treeBits &^= 1 << uint(node) // point away: to the left
		}
		node = 2*node + 1 + bit
	}
	c.plru[set] = treeBits
}

// plruVictim follows the PLRU tree pointers to the least-recently-protected
// way.
func (c *Cache) plruVictim(set int) int {
	levels := bits.TrailingZeros(uint(c.ways))
	node := 0
	w := 0
	treeBits := c.plru[set]
	for level := 0; level < levels; level++ {
		bit := int(treeBits >> uint(node) & 1)
		w = w<<1 | bit
		node = 2*node + 1 + bit
	}
	return w
}

// Occupancy returns the number of valid lines, for tests.
func (c *Cache) Occupancy() int {
	n := 0
	for _, m := range c.valid {
		n += bits.OnesCount64(m)
	}
	return n
}

// DirtyLines returns the number of dirty lines, for tests.
func (c *Cache) DirtyLines() int {
	n := 0
	for set, m := range c.dirty {
		n += bits.OnesCount64(m & c.valid[set])
	}
	return n
}

// SetContents returns the line addresses currently valid in a set, for
// tests and debugging.
func (c *Cache) SetContents(set int) []uint64 {
	var out []uint64
	base := set * c.ways
	for m := c.valid[set]; m != 0; m &= m - 1 {
		out = append(out, c.addrs[base+bits.TrailingZeros64(m)])
	}
	return out
}
