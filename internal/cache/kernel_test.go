package cache

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/prng"
)

// kernelConfig builds a deliberately small level (2KB, 4-way, 32B lines ->
// 16 sets) so short access sequences already evict and write back.
func kernelConfig(pk placement.Kind, rk ReplacementKind, write WritePolicy, alloc bool) Config {
	return Config{
		Name:         "KT",
		SizeBytes:    2 * 1024,
		Ways:         4,
		LineBytes:    32,
		Placement:    pk,
		Replacement:  rk,
		Write:        write,
		AllocOnWrite: alloc,
	}
}

// resultBits converts a legacy Result to the kernel's flag form.
func resultBits(r Result) AccessBits {
	var b AccessBits
	if r.Hit {
		b |= BitHit
	}
	if r.Filled {
		b |= BitFilled
	}
	if r.Evicted {
		b |= BitEvicted
	}
	if r.Writeback {
		b |= BitWriteback
	}
	return b
}

// driveEquivalence replays one access sequence through the legacy access
// path and the kernel path on identically seeded caches and fails on any
// divergence: per-access outcomes, per-run Stats, cumulative Stats,
// occupancy, dirty lines, replacement tick and RNG state.
func driveEquivalence(t *testing.T, cfg Config, seed uint64, ops []uint16) {
	t.Helper()
	legacy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Reseed(seed)
	kc.Reseed(seed)
	k := NewKernel(kc)
	k.Begin()
	before := legacy.Stats()
	for i, op := range ops {
		la := uint64(op >> 1)
		set := kc.pol.Index(la)
		var want Result
		var got AccessBits
		if op&1 == 1 {
			want = legacy.Write(la << legacy.offBits)
			got = k.Write(la, set)
		} else {
			want = legacy.Read(la << legacy.offBits)
			got = k.Read(la, set)
		}
		if got != resultBits(want) {
			t.Fatalf("%v/%v/%v op %d (la %#x write=%v): kernel %04b, legacy %+v",
				cfg.Placement, cfg.Replacement, cfg.Write, i, la, op&1 == 1, got, want)
		}
	}
	delta := k.End()
	after := legacy.Stats()
	wantDelta := Stats{
		Accesses:   after.Accesses - before.Accesses,
		Hits:       after.Hits - before.Hits,
		Misses:     after.Misses - before.Misses,
		Evictions:  after.Evictions - before.Evictions,
		Writebacks: after.Writebacks - before.Writebacks,
	}
	if delta != wantDelta {
		t.Fatalf("%v/%v/%v: run delta %+v, legacy %+v", cfg.Placement, cfg.Replacement, cfg.Write, delta, wantDelta)
	}
	if kc.Stats() != legacy.Stats() {
		t.Fatalf("%v/%v/%v: cumulative stats %+v, legacy %+v", cfg.Placement, cfg.Replacement, cfg.Write, kc.Stats(), legacy.Stats())
	}
	if kc.Occupancy() != legacy.Occupancy() || kc.DirtyLines() != legacy.DirtyLines() {
		t.Fatalf("%v/%v/%v: occupancy %d/%d dirty %d/%d diverged", cfg.Placement, cfg.Replacement, cfg.Write,
			kc.Occupancy(), legacy.Occupancy(), kc.DirtyLines(), legacy.DirtyLines())
	}
	if kc.tick != legacy.tick {
		t.Fatalf("%v/%v/%v: tick %d, legacy %d", cfg.Placement, cfg.Replacement, cfg.Write, kc.tick, legacy.tick)
	}
	k32, k31, k29 := kc.rng.State()
	l32, l31, l29 := legacy.rng.State()
	if k32 != l32 || k31 != l31 || k29 != l29 {
		t.Fatalf("%v/%v/%v: replacement RNG state diverged", cfg.Placement, cfg.Replacement, cfg.Write)
	}
	for set := 0; set < kc.sets; set++ {
		kcs, lcs := kc.SetContents(set), legacy.SetContents(set)
		if len(kcs) != len(lcs) {
			t.Fatalf("%v/%v/%v: set %d contents diverged", cfg.Placement, cfg.Replacement, cfg.Write, set)
		}
		for i := range kcs {
			if kcs[i] != lcs[i] {
				t.Fatalf("%v/%v/%v: set %d way-order diverged", cfg.Placement, cfg.Replacement, cfg.Write, set)
			}
		}
	}
}

// writeArrangements enumerates the three write setups a kernel can be
// bound to.
var writeArrangements = []struct {
	name  string
	write WritePolicy
	alloc bool
}{
	{"wt-noalloc", WriteThrough, false},
	{"wt-alloc", WriteThrough, true},
	{"wb", WriteBack, false},
}

// TestKernelEquivalenceAllConfigs sweeps every placement kind ×
// replacement kind × write arrangement with a PRNG-generated mixed
// read/write sequence, the deterministic counterpart of
// FuzzAccessEquivalence.
func TestKernelEquivalenceAllConfigs(t *testing.T) {
	for _, pk := range placement.Kinds() {
		for _, rk := range []ReplacementKind{LRU, Random, FIFO, PLRU} {
			for _, wa := range writeArrangements {
				cfg := kernelConfig(pk, rk, wa.write, wa.alloc)
				g := prng.New(uint64(pk)<<16 | uint64(rk)<<8 | uint64(len(wa.name)))
				ops := make([]uint16, 6000)
				for i := range ops {
					ops[i] = uint16(g.Bits(10))<<1 | uint16(g.Intn(4)&1)
				}
				driveEquivalence(t, cfg, g.Uint64(), ops)
			}
		}
	}
}

// TestKernelReusableAcrossRuns checks the campaign pattern: one bound
// kernel, many Reseed+replay rounds, still bit-exact against a fresh
// legacy cache replaying the same rounds.
func TestKernelReusableAcrossRuns(t *testing.T) {
	cfg := kernelConfig(placement.RM, Random, WriteBack, false)
	legacy, _ := New(cfg)
	kc, _ := New(cfg)
	k := NewKernel(kc)
	g := prng.New(0x5EED)
	ops := make([]uint16, 4000)
	for i := range ops {
		ops[i] = uint16(g.Bits(11))
	}
	for run := 0; run < 5; run++ {
		seed := prng.Derive(77, run)
		legacy.Reseed(seed)
		kc.Reseed(seed)
		k.Begin()
		for _, op := range ops {
			la := uint64(op >> 1)
			set := kc.pol.Index(la)
			if op&1 == 1 {
				want := resultBits(legacy.Write(la << legacy.offBits))
				if got := k.Write(la, set); got != want {
					t.Fatalf("run %d: write diverged: %04b vs %04b", run, got, want)
				}
			} else {
				want := resultBits(legacy.Read(la << legacy.offBits))
				if got := k.Read(la, set); got != want {
					t.Fatalf("run %d: read diverged: %04b vs %04b", run, got, want)
				}
			}
		}
		k.End()
		if kc.Stats() != legacy.Stats() {
			t.Fatalf("run %d: stats diverged: %+v vs %+v", run, kc.Stats(), legacy.Stats())
		}
	}
}

// FuzzAccessEquivalence drives fuzzer-chosen access sequences through the
// kernel path and the legacy access path on identically configured caches
// and requires identical per-access Results, Stats, occupancy and
// replacement state. The configuration (placement, replacement, write
// arrangement) is part of the fuzz input, so the corpus explores every
// kernel.
func FuzzAccessEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(1), []byte("\x01\x02\x03\x04\x10\x20\x30\x40"))
	f.Add(uint8(0x5A), uint64(42), []byte("\xFF\x00\xFF\x00\x01\x01\x02\x02\x03\x03"))
	f.Add(uint8(0x27), uint64(7), []byte("ABABABCDCDCD"))
	f.Fuzz(func(t *testing.T, sel uint8, seed uint64, data []byte) {
		kinds := placement.Kinds()
		pk := kinds[int(sel)%len(kinds)]
		rk := []ReplacementKind{LRU, Random, FIFO, PLRU}[int(sel>>3)%4]
		wa := writeArrangements[int(sel>>5)%len(writeArrangements)]
		cfg := kernelConfig(pk, rk, wa.write, wa.alloc)
		if len(data) > 4096 {
			data = data[:4096]
		}
		ops := make([]uint16, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			ops = append(ops, uint16(data[i])<<8|uint16(data[i+1]))
		}
		driveEquivalence(t, cfg, seed, ops)
	})
}
