package cache

import (
	"math/bits"

	"repro/internal/prng"
)

// AccessBits is the compact outcome of one kernel access, the replay-loop
// counterpart of Result (which the legacy byte-address path keeps
// returning). The flags mirror Result's booleans; WritebackAddr has no
// kernel equivalent because the compiled replay only charges cycles for a
// writeback, it never routes the victim's address.
type AccessBits uint8

// Access outcome flags.
const (
	BitHit       AccessBits = 1 << iota // line was present
	BitFilled                           // a new line was installed
	BitEvicted                          // a valid line was displaced
	BitWriteback                        // the displaced line was dirty
)

// Kernel is the monomorphic replay engine of one cache level: the access
// paths of the compiled campaign loop with every per-access decision that
// is fixed by the configuration — replacement kind, write policy, write
// allocation — resolved once, when the kernel is bound, instead of
// branched on per access. Read and write dispatch through function values
// selected per (replacement kind × write arrangement); statistics
// accumulate in kernel-local counters and flush into the cache once per
// run (End), so the hot path touches no shared Stats fields.
//
// A Kernel aliases its cache's tag state (the SoA slices never reallocate
// after construction, Flush and Reseed clear them in place), so one Kernel
// bound at platform construction serves every subsequent run. Between
// Begin and End the kernel owns the cache: interleaving legacy Read/Write
// calls inside that window would race the tick and counter snapshots.
// Replacement-RNG draws go straight to the cache's own generator, in the
// same order as the legacy path, so post-run streams are bit-identical.
type Kernel struct {
	c *Cache

	// Aliased tag and replacement state (see Cache).
	addrs   []uint64
	valid   []uint64
	dirty   []uint64
	lruTick []uint64
	plru    []uint64
	rng     *prng.PRNG

	ways       int
	wayMask    uint64
	plruLevels int
	tick       uint64

	read  func(k *Kernel, la uint64, set uint32) AccessBits
	write func(k *Kernel, la uint64, set uint32) AccessBits

	accesses, hits, evictions, writebacks uint64
}

// NewKernel binds a replay kernel to a cache level, selecting the access
// functions for the level's replacement kind and write arrangement. The
// cache's configuration was validated at construction, so every
// combination has a kernel.
func NewKernel(c *Cache) *Kernel {
	k := &Kernel{
		c:          c,
		addrs:      c.addrs,
		valid:      c.valid,
		dirty:      c.dirty,
		lruTick:    c.lruTick,
		plru:       c.plru,
		rng:        c.rng,
		ways:       c.ways,
		wayMask:    1<<uint(c.ways) - 1,
		plruLevels: bits.TrailingZeros(uint(c.ways)),
	}
	type pair struct {
		read  func(k *Kernel, la uint64, set uint32) AccessBits
		write func(k *Kernel, la uint64, set uint32) AccessBits
	}
	// arrangement: 0 = write-through no-allocate, 1 = write-through
	// allocate-on-write, 2 = write-back (always allocates).
	arrangement := 0
	switch {
	case c.cfg.Write == WriteBack:
		arrangement = 2
	case c.cfg.AllocOnWrite:
		arrangement = 1
	}
	table := map[ReplacementKind][3]pair{
		LRU: {
			{readLRU, writeLRUThroughNoAlloc},
			{readLRU, writeLRUThroughAlloc},
			{readLRU, writeLRUBack},
		},
		FIFO: {
			{readFIFO, writeFIFOThroughNoAlloc},
			{readFIFO, writeFIFOThroughAlloc},
			{readFIFO, writeFIFOBack},
		},
		PLRU: {
			{readPLRU, writePLRUThroughNoAlloc},
			{readPLRU, writePLRUThroughAlloc},
			{readPLRU, writePLRUBack},
		},
		Random: {
			{readRandom, writeRandomThroughNoAlloc},
			{readRandom, writeRandomThroughAlloc},
			{readRandom, writeRandomBack},
		},
	}
	p := table[c.repl][arrangement]
	k.read, k.write = p.read, p.write
	return k
}

// Begin starts a run: counters reset and the replacement tick is
// snapshotted from the cache.
//
//rm:hotpath
func (k *Kernel) Begin() {
	k.tick = k.c.tick
	k.accesses, k.hits, k.evictions, k.writebacks = 0, 0, 0, 0
}

// End finishes a run: the tick and the accumulated counters flush back
// into the cache (so cumulative Cache.Stats stay exact), and the per-run
// Stats delta is returned.
//
//rm:hotpath
func (k *Kernel) End() Stats {
	k.c.tick = k.tick
	d := Stats{
		Accesses:   k.accesses,
		Hits:       k.hits,
		Misses:     k.accesses - k.hits,
		Evictions:  k.evictions,
		Writebacks: k.writebacks,
	}
	s := &k.c.stats
	s.Accesses += d.Accesses
	s.Hits += d.Hits
	s.Misses += d.Misses
	s.Evictions += d.Evictions
	s.Writebacks += d.Writebacks
	return d
}

// Read performs a load or fetch of line la with a precomputed set index;
// bit-identical in behaviour, counters and RNG draws to the legacy
// ReadLine (see the fuzz and differential tests).
//
//rm:hotpath
func (k *Kernel) Read(la uint64, set uint32) AccessBits { return k.read(k, la, set) }

// Write performs a store to line la with a precomputed set index; see Read.
//
//rm:hotpath
func (k *Kernel) Write(la uint64, set uint32) AccessBits { return k.write(k, la, set) }

// install places la into way w of set, accounting an eviction (and a
// writeback for a dirty victim), and returns the fill outcome. Shared cold
// path of every fill.
//
//rm:hotpath
func (k *Kernel) install(la uint64, set uint32, w int, dirty bool) AccessBits {
	bit := uint64(1) << uint(w)
	r := BitFilled
	if k.valid[set]&bit != 0 {
		r |= BitEvicted
		k.evictions++
		if k.dirty[set]&bit != 0 {
			r |= BitWriteback
			k.writebacks++
		}
	}
	k.addrs[int(set)*k.ways+w] = la
	k.valid[set] |= bit
	if dirty {
		k.dirty[set] |= bit
	} else {
		k.dirty[set] &^= bit
	}
	return r
}

// plruProtect updates the PLRU tree so the path to way w points away.
//
//rm:hotpath
func (k *Kernel) plruProtect(set uint32, w int) {
	node := 0
	treeBits := k.plru[set]
	for level := 0; level < k.plruLevels; level++ {
		bit := (w >> uint(k.plruLevels-1-level)) & 1
		if bit == 0 {
			treeBits |= 1 << uint(node)
		} else {
			treeBits &^= 1 << uint(node)
		}
		node = 2*node + 1 + bit
	}
	k.plru[set] = treeBits
}

// ---------------------------------------------------------------------------
// Fills: the per-replacement miss paths (victim selection + install).

//rm:hotpath
func (k *Kernel) fillLRU(la uint64, set uint32, dirty bool) AccessBits {
	base := int(set) * k.ways
	var w int
	if free := ^k.valid[set] & k.wayMask; free != 0 {
		w = bits.TrailingZeros64(free)
	} else {
		oldest, oldestTick := 0, k.lruTick[base]
		for i := 1; i < k.ways; i++ {
			if k.lruTick[base+i] < oldestTick {
				oldest, oldestTick = i, k.lruTick[base+i]
			}
		}
		w = oldest
	}
	r := k.install(la, set, w, dirty)
	k.tick++
	k.lruTick[base+w] = k.tick
	return r
}

//rm:hotpath
func (k *Kernel) fillFIFO(la uint64, set uint32, dirty bool) AccessBits {
	base := int(set) * k.ways
	var w int
	if free := ^k.valid[set] & k.wayMask; free != 0 {
		w = bits.TrailingZeros64(free)
	} else {
		oldest, oldestTick := 0, k.lruTick[base]
		for i := 1; i < k.ways; i++ {
			if k.lruTick[base+i] < oldestTick {
				oldest, oldestTick = i, k.lruTick[base+i]
			}
		}
		w = oldest
	}
	r := k.install(la, set, w, dirty)
	k.tick++ // FIFO restamps on every fill, never on hits
	k.lruTick[base+w] = k.tick
	return r
}

//rm:hotpath
func (k *Kernel) fillPLRU(la uint64, set uint32, dirty bool) AccessBits {
	var w int
	if free := ^k.valid[set] & k.wayMask; free != 0 {
		w = bits.TrailingZeros64(free)
	} else {
		node := 0
		treeBits := k.plru[set]
		for level := 0; level < k.plruLevels; level++ {
			bit := int(treeBits >> uint(node) & 1)
			w = w<<1 | bit
			node = 2*node + 1 + bit
		}
	}
	r := k.install(la, set, w, dirty)
	k.plruProtect(set, w)
	return r
}

//rm:hotpath
func (k *Kernel) fillRandom(la uint64, set uint32, dirty bool) AccessBits {
	// Evict-on-miss: any way with probability 1/W, invalid ways included,
	// drawn from the cache's replacement stream (same draw order as the
	// legacy victim path).
	return k.install(la, set, k.rng.Intn(k.ways), dirty)
}

// ---------------------------------------------------------------------------
// Read kernels, one per replacement kind. Reads never dirty a line, so the
// write arrangement only reaches them through the fill's dirty-victim
// check, which install handles uniformly (write-through levels simply
// never have dirty bits set).

//rm:hotpath
func readLRU(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.tick++
			k.lruTick[base+w] = k.tick
			return BitHit
		}
	}
	return k.fillLRU(la, set, false)
}

//rm:hotpath
func readFIFO(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++ // FIFO ignores touches: stamp only on fill
			return BitHit
		}
	}
	return k.fillFIFO(la, set, false)
}

//rm:hotpath
func readPLRU(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.plruProtect(set, w)
			return BitHit
		}
	}
	return k.fillPLRU(la, set, false)
}

//rm:hotpath
func readRandom(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++ // random replacement is stateless on hits
			return BitHit
		}
	}
	return k.fillRandom(la, set, false)
}

// ---------------------------------------------------------------------------
// Write kernels, one per (replacement kind × write arrangement).
//
// Write-through no-allocate: a store hit updates replacement state, a
// store miss bypasses the level entirely (no fill, no RNG draw).
// Write-through allocate: a store miss fills, but the line stays clean.
// Write-back: hits and fills dirty the line; misses always allocate.

//rm:hotpath
func writeLRUThroughNoAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.tick++
			k.lruTick[base+w] = k.tick
			return BitHit
		}
	}
	return 0
}

//rm:hotpath
func writeLRUThroughAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.tick++
			k.lruTick[base+w] = k.tick
			return BitHit
		}
	}
	return k.fillLRU(la, set, false)
}

//rm:hotpath
func writeLRUBack(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.tick++
			k.lruTick[base+w] = k.tick
			k.dirty[set] |= 1 << uint(w)
			return BitHit
		}
	}
	return k.fillLRU(la, set, true)
}

//rm:hotpath
func writeFIFOThroughNoAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			return BitHit
		}
	}
	return 0
}

//rm:hotpath
func writeFIFOThroughAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			return BitHit
		}
	}
	return k.fillFIFO(la, set, false)
}

//rm:hotpath
func writeFIFOBack(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.dirty[set] |= 1 << uint(w)
			return BitHit
		}
	}
	return k.fillFIFO(la, set, true)
}

//rm:hotpath
func writePLRUThroughNoAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.plruProtect(set, w)
			return BitHit
		}
	}
	return 0
}

//rm:hotpath
func writePLRUThroughAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.plruProtect(set, w)
			return BitHit
		}
	}
	return k.fillPLRU(la, set, false)
}

//rm:hotpath
func writePLRUBack(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.plruProtect(set, w)
			k.dirty[set] |= 1 << uint(w)
			return BitHit
		}
	}
	return k.fillPLRU(la, set, true)
}

//rm:hotpath
func writeRandomThroughNoAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			return BitHit
		}
	}
	return 0
}

//rm:hotpath
func writeRandomThroughAlloc(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			return BitHit
		}
	}
	return k.fillRandom(la, set, false)
}

//rm:hotpath
func writeRandomBack(k *Kernel, la uint64, set uint32) AccessBits {
	k.accesses++
	base := int(set) * k.ways
	for m := k.valid[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if k.addrs[base+w] == la {
			k.hits++
			k.dirty[set] |= 1 << uint(w)
			return BitHit
		}
	}
	return k.fillRandom(la, set, true)
}
