package cache

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/prng"
)

// TestReadWriteLineMatchesByteAPI pins the indexed entry points' contract:
// driving a cache through ReadLine/WriteLine with precomputed sets yields
// the same Results, counters and replacement-RNG draws as the byte-address
// API, for every placement and replacement policy.
func TestReadWriteLineMatchesByteAPI(t *testing.T) {
	for _, pk := range []placement.Kind{placement.Modulo, placement.XORFold, placement.HRP, placement.RM, placement.RMRot} {
		for _, rk := range []ReplacementKind{LRU, Random, FIFO, PLRU} {
			ref, err := New(dl1Config(pk, rk))
			if err != nil {
				t.Fatal(err)
			}
			idx, err := New(dl1Config(pk, rk))
			if err != nil {
				t.Fatal(err)
			}
			ref.Reseed(77)
			idx.Reseed(77)
			g := prng.New(123)
			for i := 0; i < 20000; i++ {
				addr := g.Bits(16)
				isWrite := g.Intn(4) == 0
				la := idx.LineAddr(addr)
				set := idx.Policy().Index(la)
				var rRef, rIdx Result
				if isWrite {
					rRef = ref.Write(addr)
					rIdx = idx.WriteLine(la, set)
				} else {
					rRef = ref.Read(addr)
					rIdx = idx.ReadLine(la, set)
				}
				if rRef != rIdx {
					t.Fatalf("%v/%v access %d: indexed %+v, byte API %+v", pk, rk, i, rIdx, rRef)
				}
			}
			if ref.Stats() != idx.Stats() {
				t.Fatalf("%v/%v: stats diverged: %+v vs %+v", pk, rk, idx.Stats(), ref.Stats())
			}
		}
	}
}

// TestFreshRandomCachesDrawIndependentVictims pins the initial-stream
// bugfix: two fresh (never reseeded) Random-replacement levels with
// different configured names must not share one victim stream. Before the
// fix every cache started at prng.New(0), so IL1/DL1/L2 evicted in
// lockstep until the first Reseed.
func TestFreshRandomCachesDrawIndependentVictims(t *testing.T) {
	mk := func(name string) *Cache {
		cfg := dl1Config(placement.Modulo, Random)
		cfg.Name = name
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	victims := func(c *Cache) []uint64 {
		// Overfill set 0 (modulo placement, 4 ways) and record which line
		// survives after each eviction round via SetContents.
		var seq []uint64
		for i := uint64(0); i < 40; i++ {
			c.Read(i * 4096) // all map to set 0
			for _, la := range c.SetContents(0) {
				seq = append(seq, la)
			}
		}
		return seq
	}
	a := victims(mk("IL1"))
	b := victims(mk("DL1"))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("fresh IL1 and DL1 Random caches evict in lockstep (shared initial victim stream)")
	}
}

// TestInitialStreamDoesNotChangePostReseedSequence guards the other half
// of the bugfix's contract: after any Reseed the victim stream is a pure
// function of the seed, regardless of the level's name-derived initial
// state.
func TestInitialStreamDoesNotChangePostReseedSequence(t *testing.T) {
	run := func(name string) []int {
		cfg := dl1Config(placement.Modulo, Random)
		cfg.Name = name
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Reseed(31337)
		var occ []int
		for i := uint64(0); i < 64; i++ {
			c.Read(i * 4096)
			occ = append(occ, c.Occupancy())
		}
		return occ
	}
	a, b := run("IL1"), run("L2")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-Reseed behaviour depends on the config name (step %d)", i)
		}
	}
}
