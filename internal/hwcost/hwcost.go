// Package hwcost models the hardware implementation cost of the two random
// placement modules, reproducing the structure behind the paper's Table 1:
// ASIC area/delay of the RM and hRP index-generation logic for a 128-set
// cache, and FPGA occupancy / maximum frequency for a 4-core LEON3-class
// integration.
//
// The model is structural, not curve-fitted: each module is expanded into
// a standard-cell netlist that follows the paper's circuit descriptions
// (Figure 2: seed-controlled rotate blocks feeding an XOR cascade;
// Figure 3: a Benes network of pass-gate switches driven by one row of
// XOR gates), and area/delay are accumulated from a 45nm-class cell table.
// The absolute numbers therefore land near, not on, the paper's (their
// exact TSMC library is proprietary); the claims under test are the
// relations: ~an order of magnitude less area for RM, a ~25-30% delay
// reduction, no FPGA frequency degradation for RM versus a 100->80MHz drop
// for hRP, and a few-fold smaller occupancy delta.
package hwcost

import (
	"fmt"
	"math"

	"repro/internal/benes"
)

// Cell is one standard cell: silicon area and propagation delay.
type Cell struct {
	AreaUm2 float64
	DelayNs float64
}

// Library is a 45nm-class standard cell table.
type Library struct {
	Name  string
	INV   Cell
	NAND2 Cell
	XOR2  Cell
	MUX2  Cell
	DFF   Cell
	// TGate is a transmission-gate pass switch; its delay entry is the
	// per-stage contribution in an unbuffered pass-gate chain (RC grows
	// with chain length, so this is calibrated for the short Benes chains
	// of the RM module).
	TGate Cell
}

// Generic45 returns a generic 45nm-class library with open-literature cell
// values (Nangate-like areas, conservative delays).
func Generic45() Library {
	return Library{
		Name:  "generic-45nm",
		INV:   Cell{AreaUm2: 0.53, DelayNs: 0.015},
		NAND2: Cell{AreaUm2: 0.80, DelayNs: 0.020},
		XOR2:  Cell{AreaUm2: 1.60, DelayNs: 0.055},
		MUX2:  Cell{AreaUm2: 1.86, DelayNs: 0.050},
		DFF:   Cell{AreaUm2: 4.52, DelayNs: 0.100},
		TGate: Cell{AreaUm2: 0.70, DelayNs: 0.070},
	}
}

// Netlist is a bag of cells plus a critical path description.
type Netlist struct {
	Module string
	INV    int
	NAND2  int
	XOR2   int
	MUX2   int
	DFF    int
	TGate  int
	// Path is the critical path as stage counts per cell type.
	PathINV, PathXOR2, PathMUX2, PathTGate int
}

// Area returns the total cell area in um^2.
func (n Netlist) Area(lib Library) float64 {
	return float64(n.INV)*lib.INV.AreaUm2 +
		float64(n.NAND2)*lib.NAND2.AreaUm2 +
		float64(n.XOR2)*lib.XOR2.AreaUm2 +
		float64(n.MUX2)*lib.MUX2.AreaUm2 +
		float64(n.DFF)*lib.DFF.AreaUm2 +
		float64(n.TGate)*lib.TGate.AreaUm2
}

// Delay returns the critical-path delay in ns.
func (n Netlist) Delay(lib Library) float64 {
	return float64(n.PathINV)*lib.INV.DelayNs +
		float64(n.PathXOR2)*lib.XOR2.DelayNs +
		float64(n.PathMUX2)*lib.MUX2.DelayNs +
		float64(n.PathTGate)*lib.TGate.DelayNs
}

// LUTs returns an FPGA logic estimate: combinational cells pack two per
// ALUT on average (wide LUT inputs absorb small gates); flip-flops ride in
// the same ALMs and are not double-counted.
func (n Netlist) LUTs() int {
	comb := n.INV + n.NAND2 + n.XOR2 + n.MUX2 + n.TGate
	return (comb + 1) / 2
}

// log2ceil returns ceil(log2(x)) for x >= 1.
func log2ceil(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}

// HRPModule builds the hash-based random placement netlist for a cache
// with indexBits of index hashed from addrBits of line address (paper
// Figure 2: one seed-controlled rotate block per index bit, each a full
// barrel rotator over the address word, followed by an XOR-cascade fold of
// each rotated word to one bit, combined with seed bits).
func HRPModule(addrBits, indexBits int) Netlist {
	rotStages := log2ceil(addrBits) // barrel rotator depth
	rotMux := addrBits * rotStages  // MUX2 per rotate block
	foldXor := addrBits - 1         // XOR fold word -> 1 bit
	n := Netlist{
		Module: fmt.Sprintf("hRP-%dx%d", addrBits, indexBits),
		MUX2:   indexBits * rotMux,
		XOR2:   indexBits*foldXor + indexBits, // folds + final seed XOR row
		DFF:    addrBits,                      // seed register
		INV:    2 * addrBits,                  // input/seed buffering
	}
	// Critical path: through one rotator, down the XOR fold tree, through
	// the seed-combination XOR.
	n.PathMUX2 = rotStages
	n.PathXOR2 = log2ceil(addrBits) + 1
	n.PathINV = 2
	return n
}

// RMModule builds the Random Modulo netlist for a cache with indexBits of
// index (paper Figure 3: a Benes network of pass-gate switches over the
// index bits; the control word is one XOR row combining upper address bits
// with the seed; a seed register holds the per-run seed).
func RMModule(indexBits int) Netlist {
	net := benes.MustNew(indexBits)
	switches := net.Switches()
	stages := 2*log2ceil(indexBits) - 1
	if indexBits == 1 {
		stages = 0
	}
	ctrl := switches // one XOR per control bit
	n := Netlist{
		Module: fmt.Sprintf("RM-%d", indexBits),
		TGate:  4 * switches, // a 2x2 pass-gate switch = 4 transmission gates
		XOR2:   ctrl,
		DFF:    ctrl + 1,         // seed register (control width + top bit)
		INV:    indexBits + ctrl, // index drivers + control buffers
	}
	// Critical path: the control XOR row resolves in parallel with index
	// arrival and feeds the first switch column; then the unbuffered
	// pass-gate chain.
	n.PathXOR2 = 1
	n.PathTGate = stages
	n.PathINV = 1
	return n
}

// ModuloModule is the baseline: plain modulo indexing is wiring only.
func ModuloModule(indexBits int) Netlist {
	return Netlist{Module: fmt.Sprintf("modulo-%d", indexBits)}
}

// ASICRow is one side of Table 1's ASIC half.
type ASICRow struct {
	Module  string
	AreaUm2 float64
	DelayNs float64
}

// ASICReport is the ASIC half of Table 1.
type ASICReport struct {
	RM, HRP   ASICRow
	AreaRatio float64 // hRP area / RM area (paper: ~10x)
	DelayGain float64 // 1 - RM delay / hRP delay (paper: ~27%)
}

// ASIC evaluates both modules for a cache with the given number of sets
// (128 in Table 1, "analogous to the instruction cache of the targeted
// processor") and address width.
func ASIC(lib Library, sets, addrBits int) ASICReport {
	idx := log2ceil(sets)
	rm := RMModule(idx)
	hrp := HRPModule(addrBits, idx)
	r := ASICReport{
		RM:  ASICRow{Module: rm.Module, AreaUm2: rm.Area(lib), DelayNs: rm.Delay(lib)},
		HRP: ASICRow{Module: hrp.Module, AreaUm2: hrp.Area(lib), DelayNs: hrp.Delay(lib)},
	}
	if r.RM.AreaUm2 > 0 {
		r.AreaRatio = r.HRP.AreaUm2 / r.RM.AreaUm2
	}
	if r.HRP.DelayNs > 0 {
		r.DelayGain = 1 - r.RM.DelayNs/r.HRP.DelayNs
	}
	return r
}

// FPGAParams describes the prototype integration (Stratix IV class).
type FPGAParams struct {
	DeviceALUTs        int     // logic capacity of the device
	BaselinePct        float64 // baseline design occupancy (paper: 70%)
	BaselineMHz        int     // baseline operating frequency (paper: 100)
	IndexPathSlackNs   float64 // timing slack available on the cache index path
	LUTLevelNs         float64 // delay per LUT level including routing
	PLLStepMHz         int     // frequency grid the prototype can target
	Cores              int     // core count (paper: 4)
	L1PerCore          int     // IL1 + DL1
	L2Banks            int     // per-core L2 partitions
	PortsPerCache      int     // index-generation instances per cache (CPU+snoop)
	PerCacheControlLUT int     // seed/flush management logic per cache
}

// DefaultFPGA returns the prototype parameters used for Table 1.
func DefaultFPGA() FPGAParams {
	return FPGAParams{
		DeviceALUTs:        182400, // EP4SGX230-class
		BaselinePct:        70,
		BaselineMHz:        100,
		IndexPathSlackNs:   1.8,
		LUTLevelNs:         0.55,
		PLLStepMHz:         10,
		Cores:              4,
		L1PerCore:          2,
		L2Banks:            4,
		PortsPerCache:      2,
		PerCacheControlLUT: 150,
	}
}

// FPGARow is one design point of Table 1's FPGA half.
type FPGARow struct {
	Design       string
	OccupancyPct float64
	FMHz         int
}

// FPGAReport is the FPGA half of Table 1.
type FPGAReport struct {
	Baseline, RM, HRP FPGARow
}

// lutDepth estimates LUT levels on the index path for a netlist: paired
// combinational stages pack two per LUT level (a LUT6 absorbs two 2-input
// stages), matching vendor synthesis of mux/xor cascades.
func lutDepth(n Netlist) int {
	stages := n.PathINV/2 + n.PathXOR2 + n.PathMUX2 + n.PathTGate
	return (stages + 1) / 2
}

// FPGA evaluates the full-system integration: the placement module is
// instantiated per cache port, the L1s use l1Sets and the L2 banks l2Sets.
func FPGA(p FPGAParams, l1Sets, l2Sets, addrBits int) FPGAReport {
	l1Idx, l2Idx := log2ceil(l1Sets), log2ceil(l2Sets)

	occupancy := func(l1n, l2n Netlist) float64 {
		caches := p.Cores*p.L1PerCore + p.L2Banks
		luts := p.Cores*p.L1PerCore*p.PortsPerCache*l1n.LUTs() +
			p.L2Banks*p.PortsPerCache*l2n.LUTs() +
			caches*p.PerCacheControlLUT
		return p.BaselinePct + 100*float64(luts)/float64(p.DeviceALUTs)
	}
	fmax := func(n Netlist) int {
		added := float64(lutDepth(n)) * p.LUTLevelNs
		cycle := 1000.0 / float64(p.BaselineMHz)
		if added <= p.IndexPathSlackNs {
			return p.BaselineMHz
		}
		newCycle := cycle - p.IndexPathSlackNs + added
		f := 1000.0 / newCycle
		return int(math.Floor(f/float64(p.PLLStepMHz))) * p.PLLStepMHz
	}

	rmL1, rmL2 := RMModule(l1Idx), RMModule(l2Idx)
	hrpL1, hrpL2 := HRPModule(addrBits, l1Idx), HRPModule(addrBits, l2Idx)

	return FPGAReport{
		Baseline: FPGARow{Design: "baseline (modulo)", OccupancyPct: p.BaselinePct, FMHz: p.BaselineMHz},
		RM:       FPGARow{Design: "RM all caches", OccupancyPct: occupancy(rmL1, rmL2), FMHz: fmax(rmL1)},
		HRP:      FPGARow{Design: "hRP all caches", OccupancyPct: occupancy(hrpL1, hrpL2), FMHz: fmax(hrpL1)},
	}
}

// TagOverheadBits returns the extra tag-array storage a placement needs
// per cache: hash placements must store the index bits alongside the tag
// (paper Section 3.1), RM and modulo need none on write-through caches
// (Section 3.2).
func TagOverheadBits(needsIndexInTag bool, sets, ways int) int {
	if !needsIndexInTag {
		return 0
	}
	return sets * ways * log2ceil(sets)
}
