package hwcost

import (
	"testing"
)

func TestASICRelationsTable1(t *testing.T) {
	// Table 1, ASIC half (128-set cache): RM needs ~10x less area than hRP
	// and ~27% less delay. The structural model must land in the same
	// regime: area ratio well above 5x, delay reduction 15-40%.
	rep := ASIC(Generic45(), 128, 27)
	t.Logf("RM : %8.1f um2  %.3f ns", rep.RM.AreaUm2, rep.RM.DelayNs)
	t.Logf("hRP: %8.1f um2  %.3f ns", rep.HRP.AreaUm2, rep.HRP.DelayNs)
	t.Logf("area ratio %.1fx, delay gain %.0f%%", rep.AreaRatio, 100*rep.DelayGain)

	if rep.AreaRatio < 5 {
		t.Errorf("area ratio %.1fx, paper reports ~10x", rep.AreaRatio)
	}
	if rep.DelayGain < 0.15 || rep.DelayGain > 0.45 {
		t.Errorf("delay gain %.0f%%, paper reports ~27%%", 100*rep.DelayGain)
	}
	// Sanity on absolute scales: same order of magnitude as Table 1
	// (RM 336.6 um2 / 0.46ns, hRP 3514.7 um2 / 0.59ns).
	if rep.RM.AreaUm2 < 50 || rep.RM.AreaUm2 > 1500 {
		t.Errorf("RM area %.1f um2 out of plausible range", rep.RM.AreaUm2)
	}
	if rep.HRP.AreaUm2 < 1000 || rep.HRP.AreaUm2 > 10000 {
		t.Errorf("hRP area %.1f um2 out of plausible range", rep.HRP.AreaUm2)
	}
	if rep.RM.DelayNs < 0.1 || rep.RM.DelayNs > 1.0 {
		t.Errorf("RM delay %.3f ns out of plausible range", rep.RM.DelayNs)
	}
	if rep.HRP.DelayNs < 0.3 || rep.HRP.DelayNs > 1.5 {
		t.Errorf("hRP delay %.3f ns out of plausible range", rep.HRP.DelayNs)
	}
}

func TestFPGARelationsTable1(t *testing.T) {
	// Table 1, FPGA half: baseline 70% @ 100MHz; RM 72% @ 100MHz; hRP 80%
	// @ 80MHz. Model must keep RM at the baseline frequency with a small
	// occupancy delta, and degrade hRP's frequency with a larger delta.
	rep := FPGA(DefaultFPGA(), 128, 1024, 27)
	t.Logf("baseline: %5.1f%% @ %dMHz", rep.Baseline.OccupancyPct, rep.Baseline.FMHz)
	t.Logf("RM      : %5.1f%% @ %dMHz", rep.RM.OccupancyPct, rep.RM.FMHz)
	t.Logf("hRP     : %5.1f%% @ %dMHz", rep.HRP.OccupancyPct, rep.HRP.FMHz)

	if rep.RM.FMHz != rep.Baseline.FMHz {
		t.Errorf("RM degraded frequency to %dMHz (paper: no degradation)", rep.RM.FMHz)
	}
	if rep.HRP.FMHz >= rep.Baseline.FMHz {
		t.Errorf("hRP did not degrade frequency (paper: 100 -> 80MHz)")
	}
	dRM := rep.RM.OccupancyPct - rep.Baseline.OccupancyPct
	dHRP := rep.HRP.OccupancyPct - rep.Baseline.OccupancyPct
	if dRM <= 0 || dHRP <= 0 {
		t.Fatalf("occupancy deltas not positive: RM %+.1f, hRP %+.1f", dRM, dHRP)
	}
	if dRM*2 > dHRP {
		t.Errorf("hRP occupancy delta (%.1fpp) not clearly larger than RM's (%.1fpp)", dHRP, dRM)
	}
	if dRM > 5 {
		t.Errorf("RM occupancy delta %.1fpp, paper reports ~2pp", dRM)
	}
}

func TestNetlistAccounting(t *testing.T) {
	lib := Generic45()
	n := Netlist{XOR2: 10, MUX2: 5, DFF: 2, PathXOR2: 3}
	wantArea := 10*lib.XOR2.AreaUm2 + 5*lib.MUX2.AreaUm2 + 2*lib.DFF.AreaUm2
	if n.Area(lib) != wantArea {
		t.Fatalf("area = %f, want %f", n.Area(lib), wantArea)
	}
	if n.Delay(lib) != 3*lib.XOR2.DelayNs {
		t.Fatalf("delay = %f", n.Delay(lib))
	}
	if n.LUTs() != 8 { // (10+5+1)/2 rounded up
		t.Fatalf("LUTs = %d", n.LUTs())
	}
}

func TestRMModuleScalesWithIndexWidth(t *testing.T) {
	lib := Generic45()
	small := RMModule(7)  // 128 sets (15 switches)
	large := RMModule(10) // 1024 sets (26 switches)
	if small.Area(lib) >= large.Area(lib) {
		t.Fatal("RM area does not grow with index width")
	}
	if small.TGate != 4*15 || large.TGate != 4*26 {
		t.Fatalf("switch counts wrong: %d, %d", small.TGate, large.TGate)
	}
}

func TestHRPModuleStructure(t *testing.T) {
	n := HRPModule(27, 7)
	// 7 rotate blocks, each a 27-wide 5-stage barrel rotator.
	if n.MUX2 != 7*27*5 {
		t.Fatalf("hRP MUX2 = %d, want %d", n.MUX2, 7*27*5)
	}
	// 7 fold trees of 26 XORs plus the final seed row.
	if n.XOR2 != 7*26+7 {
		t.Fatalf("hRP XOR2 = %d", n.XOR2)
	}
	if n.DFF != 27 {
		t.Fatalf("hRP seed register = %d bits", n.DFF)
	}
}

func TestModuloModuleIsFree(t *testing.T) {
	n := ModuloModule(7)
	lib := Generic45()
	if n.Area(lib) != 0 || n.Delay(lib) != 0 {
		t.Fatal("modulo indexing must cost nothing (it is wiring)")
	}
}

func TestTagOverheadBits(t *testing.T) {
	// hRP on the paper's L1: 128 sets x 4 ways x 7 index bits.
	if got := TagOverheadBits(true, 128, 4); got != 128*4*7 {
		t.Fatalf("tag overhead = %d", got)
	}
	if got := TagOverheadBits(false, 128, 4); got != 0 {
		t.Fatalf("RM/modulo tag overhead = %d, want 0", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 27: 5, 128: 7, 1024: 10}
	for x, want := range cases {
		if got := log2ceil(x); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestASICDeeperCacheCostsMore(t *testing.T) {
	lib := Generic45()
	small := ASIC(lib, 128, 27)
	large := ASIC(lib, 1024, 27)
	if large.RM.AreaUm2 <= small.RM.AreaUm2 {
		t.Fatal("RM area must grow with set count")
	}
	if large.HRP.AreaUm2 <= small.HRP.AreaUm2 {
		t.Fatal("hRP area must grow with set count")
	}
}
