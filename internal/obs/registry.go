package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric kinds as exposed in the TYPE line and the JSON dump.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one label set of one family, backed by exactly one of the
// instrument pointers (or a poll function for *Func registrations).
type series struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	gaugeFn   func() float64
	counterFn func() uint64
}

// family is one named metric with its registered series.
type family struct {
	name, help, typ string
	// scale multiplies values at exposition time (1 for plain metrics;
	// 1e-9 for latency histograms recorded in nanoseconds and exposed in
	// seconds, per Prometheus convention).
	scale  float64
	series []*series
}

// Registry holds named metrics and renders them as Prometheus text format
// (WritePrometheus, or ServeHTTP for a GET /metrics endpoint) and as a
// JSON document (MarshalJSON) with p50/p99/p999 extracted per histogram.
//
// Registration is idempotent: asking for a (name, labels) pair that
// already exists returns the same instance, so package-level wiring can
// re-derive its handles cheaply. Registering an existing name as a
// different metric type panics (a programming error, like a duplicate
// flag). A Registry is safe for concurrent use; recording through the
// returned instruments is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor finds or creates the named family, enforcing type agreement.
func (r *Registry) familyFor(name, help, typ string, scale float64) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, scale: scale}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// seriesFor finds or creates the series with the given labels.
func (f *family) seriesFor(labels []Label) (*series, bool) {
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s, false
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	sort.SliceStable(s.labels, func(i, j int) bool { return s.labels[i].Name < s.labels[j].Name })
	f.series = append(f.series, s)
	return s, true
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	// Registered label sets are sorted by name; sort the probe likewise.
	probe := append([]Label(nil), b...)
	sort.SliceStable(probe, func(i, j int) bool { return probe[i].Name < probe[j].Name })
	for i := range a {
		if a[i] != probe[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns) the counter with the given name and
// labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, created := r.familyFor(name, help, typeCounter, 1).seriesFor(labels)
	if created {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %s%s registered as a polled counter", name, renderLabels(labels)))
	}
	return s.counter
}

// Gauge registers (or returns) the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, created := r.familyFor(name, help, typeGauge, 1).seriesFor(labels)
	if created {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %s%s registered as a polled gauge", name, renderLabels(labels)))
	}
	return s.gauge
}

// Histogram registers (or returns) a plain histogram: raw int64
// observations, exposed unscaled.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, 1, labels)
}

// LatencyHistogram registers (or returns) a latency histogram: Observe
// takes nanoseconds, exposition divides by 1e9 so bucket bounds, sums and
// quantiles come out in seconds (name it *_seconds, per the Prometheus
// convention).
func (r *Registry) LatencyHistogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, 1e-9, labels)
}

func (r *Registry) histogram(name, help string, scale float64, labels []Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, created := r.familyFor(name, help, typeHistogram, scale).seriesFor(labels)
	if created {
		s.hist = &Histogram{}
	}
	return s.hist
}

// GaugeFunc registers a gauge polled at exposition time — for values that
// already live elsewhere (queue lengths, pool occupancy) and should not be
// double-tracked.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyFor(name, help, typeGauge, 1).seriesFor(labels)
	s.gaugeFn = fn
	s.gauge = nil
}

// CounterFunc registers a counter polled at exposition time — for
// monotone counts maintained elsewhere (store hit/miss/eviction atomics).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyFor(name, help, typeCounter, 1).seriesFor(labels)
	s.counterFn = fn
	s.counter = nil
}

// value reads the current value of a non-histogram series.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.counterFn != nil:
		return float64(s.counterFn())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.gaugeFn != nil:
		return s.gaugeFn()
	}
	return 0
}

// renderLabels formats a sorted label set as {a="x",b="y"} ("" when
// empty).
func renderLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range append(append([]Label(nil), labels...), extra...) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms render cumulative
// _bucket series for each non-empty bucket plus the mandatory le="+Inf",
// with bounds and sums scaled per the family (seconds for latency
// histograms). Output order is registration order, so scrapes diff
// cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		r.mu.Lock()
		srs := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range srs {
			if f.typ == typeHistogram {
				if err := writeHistogram(w, f, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, s *series) error {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, c := range snap.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := formatFloat(BucketUpper(i) * f.scale)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(float64(snap.Sum)*f.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), snap.Count)
	return err
}

// ServeHTTP makes the registry a GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// seriesJSON is the JSON form of one series.
type seriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram summary fields.
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
	P999  *float64 `json:"p999,omitempty"`
}

// familyJSON is the JSON form of one metric family.
type familyJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help"`
	Series []seriesJSON `json:"series"`
}

// MarshalJSON dumps the registry as an array of metric families — the
// same data as the Prometheus exposition, with histograms summarized as
// count/sum/p50/p99/p999 (in scaled units). paperbench -metrics writes
// this next to its CSVs.
func (r *Registry) MarshalJSON() ([]byte, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make([]familyJSON, 0, len(fams))
	for _, f := range fams {
		fj := familyJSON{Name: f.name, Type: f.typ, Help: f.help, Series: []seriesJSON{}}
		r.mu.Lock()
		srs := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range srs {
			sj := seriesJSON{}
			if len(s.labels) > 0 {
				sj.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sj.Labels[l.Name] = l.Value
				}
			}
			if f.typ == typeHistogram {
				snap := s.hist.Snapshot()
				count := snap.Count
				sum := float64(snap.Sum) * f.scale
				p50 := snap.Quantile(0.50) * f.scale
				p99 := snap.Quantile(0.99) * f.scale
				p999 := snap.Quantile(0.999) * f.scale
				sj.Count, sj.Sum, sj.P50, sj.P99, sj.P999 = &count, &sum, &p50, &p99, &p999
			} else {
				v := s.value()
				sj.Value = &v
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
	}
	return json.Marshal(out)
}
