package obs

import "sync/atomic"

// Counter is a monotonically increasing metric (requests served, runs
// completed, cache misses). The zero value is ready to use; obtain shared,
// named instances from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//rm:hotpath
func (c *Counter) Inc() {
	c.v.Add(1)
}

// Add adds n.
//
//rm:hotpath
func (c *Counter) Add(n uint64) {
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight jobs, queue depth).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//rm:hotpath
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
}

// Add adds n (negative to decrease).
//
//rm:hotpath
func (g *Gauge) Add(n int64) {
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
