package obs

import (
	"sync"
	"time"
)

// CampaignTrace is one completed campaign's trace span: what the engine
// spent its wall time on, phase by phase. Phases are recorded from the
// Engine's event stream at phase boundaries (compile → replay → analyze),
// so the replay kernels themselves stay untouched; phases a campaign kind
// does not have (baseline campaigns compile per run, security campaigns
// never analyze) stay zero.
type CampaignTrace struct {
	// Campaign is the display label of the campaign.
	Campaign string `json:"campaign"`
	// Fingerprint is a prefix of the content fingerprint when the
	// producer knows it (the service resolves it per job; CLI runs
	// leave it empty).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Kind is the campaign family ("mbpta", "baseline", "security").
	Kind string `json:"kind"`
	// Runs is the campaign size in runs (attack rounds for security).
	Runs int `json:"runs"`
	// Start is the wall-clock start of the campaign.
	Start time.Time `json:"start"`
	// Phase timings, in seconds. Total covers start to finish and
	// includes queueing inside the engine's worker pool.
	CompileSeconds float64 `json:"compile_seconds,omitempty"`
	ReplaySeconds  float64 `json:"replay_seconds,omitempty"`
	AnalyzeSeconds float64 `json:"analyze_seconds,omitempty"`
	TotalSeconds   float64 `json:"total_seconds"`
	// Error is set when the campaign finished with an error.
	Error string `json:"error,omitempty"`
}

// fingerprintPrefixLen bounds the fingerprint prefix stored on a trace:
// enough to paste into a store lookup, short enough to scan.
const fingerprintPrefixLen = 16

// Tracer retains the most recent completed campaign traces in a
// fixed-capacity ring. It is safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []CampaignTrace
	next  int
	total uint64
}

// NewTracer returns a tracer retaining the last capacity spans
// (non-positive selects 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{buf: make([]CampaignTrace, 0, capacity)}
}

// add records one completed span.
func (t *Tracer) add(tr CampaignTrace) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, tr)
	} else {
		t.buf[t.next] = tr
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total reports how many spans were ever recorded (including ones the
// ring has since dropped).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns the retained spans, most recent first.
func (t *Tracer) Recent() []CampaignTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]CampaignTrace, 0, len(t.buf))
	for i := 0; i < len(t.buf); i++ {
		idx := (t.next - 1 - i + len(t.buf)) % len(t.buf)
		out = append(out, t.buf[idx])
	}
	return out
}
