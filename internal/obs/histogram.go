package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every Histogram: one bucket per
// power of two, so any non-negative int64 observation lands in exactly one
// bucket without configuration, search, or allocation.
const histBuckets = 64

// Histogram is a fixed-boundary log2 histogram of non-negative int64
// observations (latencies in nanoseconds, by convention). Bucket i counts
// observations v with 2^i <= v < 2^(i+1), except bucket 0, which covers
// [0, 2). The boundaries are fixed at compile time, so Observe is a bucket
// index computation (bits.Len64) plus three atomic adds: no locks, no
// allocation, safe for any number of concurrent writers.
//
// The zero value is ready to use; obtain shared, named instances from a
// Registry.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // sum of (clamped) observations
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero (they only
// arise from clock anomalies, and dropping them would skew counts).
//
//rm:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v)) - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// Quantile is shorthand for h.Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot copies the histogram state for quantile extraction and
// exposition. Concurrent observations may land between the individual
// bucket loads; quantiles therefore derive their total from the copied
// buckets, keeping every snapshot self-consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Ldexp(1, i)
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) float64 { return math.Ldexp(1, i+1) }

// Quantile extracts the q-quantile (0 < q < 1; p50 is Quantile(0.5)) by
// rank-walking the buckets and interpolating linearly inside the bucket
// that contains the rank — the same estimator Prometheus applies to its
// histograms, made deterministic here by the fixed log2 boundaries. With
// total observations N, the target rank is q*N; the returned value is
//
//	lower + (upper-lower) * (rank - countBelowBucket) / countInBucket
//
// for the first bucket whose cumulative count reaches the rank. An empty
// histogram returns 0. The estimate is exact whenever the rank falls in a
// bucket whose observations are uniformly spread (and always within the
// bucket's bounds), which is what the unit tests pin against known
// recorded values.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			lo, hi := BucketLower(i), BucketUpper(i)
			return lo + (hi-lo)*(rank-cum)/fc
		}
		cum += fc
	}
	// Unreachable with a consistent snapshot; return the top bound.
	return BucketUpper(histBuckets - 1)
}
