package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/workload"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0, 1 and the clamped -5 land in bucket 0 ([0,2)); 2 and 3 in
	// bucket 1 ([2,4)); 4 and 7 in bucket 2; 8 in bucket 3; 1023 in
	// bucket 9 ([512,1024)); 1024 in bucket 10.
	want := map[int]uint64{0: 3, 1: 2, 2: 2, 3: 1, 9: 1, 10: 1}
	for i, c := range s.Buckets {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Count != 10 {
		t.Errorf("count = %d, want 10", s.Count)
	}
	if s.Sum != 0+1+2+3+4+7+8+1023+1024+0 {
		t.Errorf("sum = %d", s.Sum)
	}
}

// TestHistogramQuantiles pins the quantile estimator against hand-computed
// values: rank = q*N walked over the cumulative buckets, interpolated
// linearly inside the containing bucket.
func TestHistogramQuantiles(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		if got := h.Quantile(0.5); got != 0 {
			t.Fatalf("empty p50 = %v, want 0", got)
		}
	})
	t.Run("single observation", func(t *testing.T) {
		// 10 lands in [8,16); rank 0.5 of 1 interpolates to the bucket
		// midpoint 12.
		var h Histogram
		h.Observe(10)
		if got := h.Quantile(0.5); got != 12 {
			t.Fatalf("p50 = %v, want 12", got)
		}
	})
	t.Run("uniform bucket", func(t *testing.T) {
		// 100 observations in [4,8): p50 = 4 + 4*(50/100) = 6,
		// p99 = 4 + 4*(99/100) = 7.96, p999 = 7.996.
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Observe(4)
		}
		for _, tc := range []struct{ q, want float64 }{
			{0.50, 6}, {0.99, 7.96}, {0.999, 7.996},
		} {
			if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
			}
		}
	})
	t.Run("two buckets", func(t *testing.T) {
		// 50 in [2,4) and 50 in [1024,2048): p50 exhausts the first
		// bucket exactly (rank 50 -> its upper bound 4); p99 has rank 99,
		// 49 into the second bucket's 50: 1024 + 1024*(49/50) = 2027.52.
		var h Histogram
		for i := 0; i < 50; i++ {
			h.Observe(2)
			h.Observe(1024)
		}
		if got := h.Quantile(0.5); got != 4 {
			t.Errorf("p50 = %v, want 4", got)
		}
		if got := h.Quantile(0.99); math.Abs(got-2027.52) > 1e-9 {
			t.Errorf("p99 = %v, want 2027.52", got)
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestRegistryIdempotentAndTypeConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "help", L("k", "w")); c == a {
		t.Fatal("distinct labels shared an instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("rm_test_total", "A counter.", L("kind", "mbpta")).Add(3)
	r.Gauge("rm_test_gauge", "A gauge.").Set(-2)
	r.GaugeFunc("rm_test_polled", "A polled gauge.", func() float64 { return 1.5 })
	h := r.LatencyHistogram("rm_test_seconds", "A latency histogram.")
	h.Observe(1_500_000_000) // 1.5s -> bucket [2^30, 2^31) ns
	h.Observe(1_500_000_000)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP rm_test_total A counter.",
		"# TYPE rm_test_total counter",
		`rm_test_total{kind="mbpta"} 3`,
		"rm_test_gauge -2",
		"rm_test_polled 1.5",
		"# TYPE rm_test_seconds histogram",
		fmt.Sprintf(`rm_test_seconds_bucket{le="%g"} 2`, math.Ldexp(1, 31)*1e-9),
		`rm_test_seconds_bucket{le="+Inf"} 2`,
		"rm_test_seconds_sum 3",
		"rm_test_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("rm_j_total", "c").Add(5)
	h := r.LatencyHistogram("rm_j_seconds", "h")
	// 100 observations of 4ns: p50 = 6ns = 6e-9s after scaling.
	for i := 0; i < 100; i++ {
		h.Observe(4)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Value *float64 `json:"value"`
			Count *uint64  `json:"count"`
			P50   *float64 `json:"p50"`
			P99   *float64 `json:"p99"`
			P999  *float64 `json:"p999"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &fams); err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if *fams[0].Series[0].Value != 5 {
		t.Errorf("counter value = %v", *fams[0].Series[0].Value)
	}
	hs := fams[1].Series[0]
	if *hs.Count != 100 {
		t.Errorf("hist count = %d", *hs.Count)
	}
	if math.Abs(*hs.P50-6e-9) > 1e-18 {
		t.Errorf("p50 = %v, want 6e-9", *hs.P50)
	}
	if math.Abs(*hs.P99-7.96e-9) > 1e-18 {
		t.Errorf("p99 = %v, want 7.96e-9", *hs.P99)
	}
	if math.Abs(*hs.P999-7.996e-9) > 1e-18 {
		t.Errorf("p999 = %v, want 7.996e-9", *hs.P999)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.add(CampaignTrace{Campaign: fmt.Sprintf("c%d", i)})
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d spans, want 3", len(recent))
	}
	for i, want := range []string{"c4", "c3", "c2"} {
		if recent[i].Campaign != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].Campaign, want)
		}
	}
}

// TestEngineCollector drives the collector with a synthetic event
// sequence and checks the counters, histograms and trace span it
// produces.
func TestEngineCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewEngineCollector(reg, NewTracer(4))
	c.Resolve = func(campaign string) (string, string) {
		return "display-" + campaign, "abcdef0123456789deadbeef"
	}
	var forwarded []core.EventKind
	sink := c.Sink(func(ev core.Event) { forwarded = append(forwarded, ev.Kind) })

	evs := []core.Event{
		{Kind: core.CampaignStarted, Campaign: "fp1", CampaignKind: core.KindMBPTA, Total: 3},
		{Kind: core.PhaseDone, Campaign: "fp1", CampaignKind: core.KindMBPTA, Phase: core.PhaseCompile},
		{Kind: core.RunCompleted, Campaign: "fp1", CampaignKind: core.KindMBPTA, Run: 0, Done: 1, Total: 3},
		{Kind: core.RunCompleted, Campaign: "fp1", CampaignKind: core.KindMBPTA, Run: 1, Done: 2, Total: 3},
		{Kind: core.RunCompleted, Campaign: "fp1", CampaignKind: core.KindMBPTA, Run: 2, Done: 3, Total: 3},
		{Kind: core.PhaseDone, Campaign: "fp1", CampaignKind: core.KindMBPTA, Phase: core.PhaseReplay, Done: 3},
		{Kind: core.PhaseDone, Campaign: "fp1", CampaignKind: core.KindMBPTA, Phase: core.PhaseAnalyze, Done: 3},
		{Kind: core.CampaignFinished, Campaign: "fp1", CampaignKind: core.KindMBPTA, Done: 3, Total: 3},
	}
	for _, ev := range evs {
		sink(ev)
	}
	if len(forwarded) != len(evs) {
		t.Fatalf("forwarded %d events, want %d", len(forwarded), len(evs))
	}
	if got := reg.Counter("rm_runs_total", "", L("kind", "mbpta")).Value(); got != 3 {
		t.Errorf("rm_runs_total{mbpta} = %d, want 3", got)
	}
	if got := reg.Counter("rm_campaign_runs_total", "").Value(); got != 3 {
		t.Errorf("rm_campaign_runs_total = %d, want 3", got)
	}
	// The peak-accumulator gauge follows snapshot high-water marks and
	// never regresses on a smaller later snapshot.
	sink(core.Event{Kind: core.SnapshotTaken, Campaign: "fp1", CampaignKind: core.KindMBPTA,
		Snapshot: &core.Snapshot{Runs: 2, Total: 3, AccumBytes: 4096}, Done: 2, Total: 3})
	sink(core.Event{Kind: core.SnapshotTaken, Campaign: "fp1", CampaignKind: core.KindMBPTA,
		Snapshot: &core.Snapshot{Runs: 3, Total: 3, AccumBytes: 1024}, Done: 3, Total: 3})
	if got := reg.Gauge("rm_accumulator_peak_bytes", "").Value(); got != 4096 {
		t.Errorf("rm_accumulator_peak_bytes = %d, want 4096 (the peak)", got)
	}
	if got := reg.Counter("rm_campaigns_total", "", L("kind", "mbpta"), L("status", "ok")).Value(); got != 1 {
		t.Errorf("rm_campaigns_total{mbpta,ok} = %d, want 1", got)
	}
	if got := reg.Gauge("rm_campaigns_inflight", "").Value(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
	if got := reg.LatencyHistogram("rm_campaign_latency_seconds", "", L("kind", "mbpta")).Snapshot().Count; got != 1 {
		t.Errorf("latency count = %d, want 1", got)
	}
	for _, ph := range []string{"compile", "replay", "analyze"} {
		if got := reg.LatencyHistogram("rm_campaign_phase_seconds", "", L("kind", "mbpta"), L("phase", ph)).Snapshot().Count; got != 1 {
			t.Errorf("phase %s count = %d, want 1", ph, got)
		}
	}
	spans := c.Tracer().Recent()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Campaign != "display-fp1" {
		t.Errorf("span campaign = %q", sp.Campaign)
	}
	if sp.Fingerprint != "abcdef0123456789" {
		t.Errorf("span fingerprint = %q, want the 16-char prefix", sp.Fingerprint)
	}
	if sp.Kind != "mbpta" || sp.Runs != 3 || sp.Error != "" {
		t.Errorf("span = %+v", sp)
	}
	if sp.CompileSeconds < 0 || sp.ReplaySeconds < 0 || sp.AnalyzeSeconds < 0 || sp.TotalSeconds < 0 {
		t.Errorf("negative phase timing: %+v", sp)
	}

	// A failing campaign lands on the error counter and carries the error
	// on its span.
	sink(core.Event{Kind: core.CampaignStarted, Campaign: "fp2", CampaignKind: core.KindBaseline, Total: 1})
	sink(core.Event{Kind: core.CampaignFinished, Campaign: "fp2", CampaignKind: core.KindBaseline,
		Err: errors.New("boom"), Total: 1})
	if got := reg.Counter("rm_campaigns_total", "", L("kind", "baseline"), L("status", "error")).Value(); got != 1 {
		t.Errorf("rm_campaigns_total{baseline,error} = %d, want 1", got)
	}
	if spans := c.Tracer().Recent(); spans[0].Error != "boom" {
		t.Errorf("error span = %+v", spans[0])
	}
}

// TestEngineCollectorLive runs a real (tiny) campaign through an Engine
// with the collector installed and checks the end-to-end wiring: run
// counts match, exactly one latency observation, one trace span with the
// replay phase populated.
func TestEngineCollectorLive(t *testing.T) {
	w, err := workload.ByName("puwmod01")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	c := NewEngineCollector(reg, nil)
	eng := core.NewEngine(core.WithWorkers(2), core.WithEvents(c.Observe))
	req := core.Request{Spec: core.PaperPlatform(placement.RM), Workload: w, Runs: 8, MasterSeed: 1}
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rm_runs_total", "", L("kind", "mbpta")).Value(); got != 8 {
		t.Errorf("rm_runs_total = %d, want 8", got)
	}
	snap := reg.LatencyHistogram("rm_campaign_latency_seconds", "", L("kind", "mbpta")).Snapshot()
	if snap.Count != 1 {
		t.Fatalf("latency count = %d, want 1", snap.Count)
	}
	spans := c.Tracer().Recent()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].ReplaySeconds <= 0 {
		t.Errorf("replay phase not timed: %+v", spans[0])
	}
	if spans[0].TotalSeconds < spans[0].ReplaySeconds {
		t.Errorf("total %v < replay %v", spans[0].TotalSeconds, spans[0].ReplaySeconds)
	}
}
