package obs

import (
	"sync"
	"time"

	"repro/internal/core"
)

// EngineCollector turns the Engine's event stream into metrics and trace
// spans. It is the only place campaign wall time is measured: the engine
// emits clock-free phase markers (core.PhaseDone) and the collector
// timestamps them at delivery, so the nine deterministic packages never
// read a clock and results are byte-identical with metrics on or off.
//
// Wire it in front of an existing sink with Sink, or install Observe
// directly via core.WithEvents. Observe honours the Event sink contract:
// it is fast (atomic updates on pre-registered instruments), never
// blocks, and never calls back into the engine.
type EngineCollector struct {
	tracer *Tracer

	// Resolve optionally maps a campaign label (as carried by events) to
	// a display name and a content fingerprint for the trace span. The
	// service installs one so spans show the submitted name and the
	// store fingerprint; CLI runs leave it nil.
	Resolve func(campaign string) (display, fingerprint string)

	latency   map[string]*Histogram    // campaign latency by kind
	phases    map[[2]string]*Histogram // phase latency by kind, phase
	runs      map[string]*Counter      // completed runs by kind
	outcomes  map[[2]string]*Counter   // finished campaigns by kind, status
	inflight  *Gauge
	runsTotal *Counter // completed runs across all campaign kinds
	accumPeak *Gauge   // high-water mark of streaming accumulator bytes

	mu     sync.Mutex
	active map[spanKey]*span
}

// spanKey identifies an in-flight campaign: batch submissions reuse
// labels, so the batch index disambiguates.
type spanKey struct {
	campaign string
	index    int
}

// span accumulates one campaign's timings between its events.
type span struct {
	start                    time.Time
	last                     time.Time // end of the previous phase
	compile, replay, analyze float64
	kind                     core.Kind
	runs                     int
}

// phaseNames lists the phases a campaign can report, in pipeline order.
var phaseNames = []string{core.PhaseCompile, core.PhaseReplay, core.PhaseAnalyze}

// NewEngineCollector registers the engine metric families on reg and
// returns a collector recording into them and into tracer (nil selects a
// private NewTracer(0)). Instruments are pre-registered per campaign
// kind, so Observe allocates nothing.
func NewEngineCollector(reg *Registry, tracer *Tracer) *EngineCollector {
	if tracer == nil {
		tracer = NewTracer(0)
	}
	c := &EngineCollector{
		tracer:   tracer,
		latency:  make(map[string]*Histogram),
		phases:   make(map[[2]string]*Histogram),
		runs:     make(map[string]*Counter),
		outcomes: make(map[[2]string]*Counter),
		active:   make(map[spanKey]*span),
	}
	for _, kind := range core.KindNames() {
		c.latency[kind] = reg.LatencyHistogram("rm_campaign_latency_seconds",
			"End-to-end campaign latency by campaign kind.", L("kind", kind))
		c.runs[kind] = reg.Counter("rm_runs_total",
			"Completed simulation runs (attack rounds for security campaigns).", L("kind", kind))
		for _, ph := range phaseNames {
			c.phases[[2]string{kind, ph}] = reg.LatencyHistogram("rm_campaign_phase_seconds",
				"Campaign phase latency by kind and phase.", L("kind", kind), L("phase", ph))
		}
		for _, status := range []string{"ok", "error"} {
			c.outcomes[[2]string{kind, status}] = reg.Counter("rm_campaigns_total",
				"Finished campaigns by kind and outcome.", L("kind", kind), L("status", status))
		}
	}
	c.inflight = reg.Gauge("rm_campaigns_inflight",
		"Campaigns started but not yet finished.")
	c.runsTotal = reg.Counter("rm_campaign_runs_total",
		"Completed campaign runs across all campaign kinds.")
	c.accumPeak = reg.Gauge("rm_accumulator_peak_bytes",
		"Peak streaming-accumulator footprint reported by campaign snapshots.")
	return c
}

// Tracer returns the collector's trace ring.
func (c *EngineCollector) Tracer() *Tracer { return c.tracer }

// Sink wraps an existing event sink: observe, then forward. next may be
// nil.
func (c *EngineCollector) Sink(next func(core.Event)) func(core.Event) {
	if next == nil {
		return c.Observe
	}
	return func(ev core.Event) {
		c.Observe(ev)
		next(ev)
	}
}

// Observe records one engine event.
func (c *EngineCollector) Observe(ev core.Event) {
	key := spanKey{ev.Campaign, ev.Index}
	switch ev.Kind {
	case core.CampaignStarted:
		t := now()
		c.mu.Lock()
		c.active[key] = &span{start: t, last: t, kind: ev.CampaignKind, runs: ev.Total}
		c.mu.Unlock()
		c.inflight.Add(1)
	case core.RunCompleted:
		c.runsTotal.Inc()
		if ctr := c.runs[ev.CampaignKind.String()]; ctr != nil {
			ctr.Inc()
		}
	case core.SnapshotTaken:
		// Event deliveries are serialized (sink contract), so the
		// read-compare-set below never races with itself.
		if ev.Snapshot != nil {
			if v := int64(ev.Snapshot.AccumBytes); v > c.accumPeak.Value() {
				c.accumPeak.Set(v)
			}
		}
	case core.PhaseDone:
		t := now()
		c.mu.Lock()
		sp := c.active[key]
		var d float64
		if sp != nil {
			d = t.Sub(sp.last).Seconds()
			sp.last = t
			switch ev.Phase {
			case core.PhaseCompile:
				sp.compile += d
			case core.PhaseReplay:
				sp.replay += d
			case core.PhaseAnalyze:
				sp.analyze += d
			}
		}
		c.mu.Unlock()
		if sp != nil {
			if h := c.phases[[2]string{ev.CampaignKind.String(), ev.Phase}]; h != nil {
				h.Observe(int64(d * 1e9))
			}
		}
	case core.CampaignFinished:
		t := now()
		c.mu.Lock()
		sp := c.active[key]
		delete(c.active, key)
		c.mu.Unlock()
		c.inflight.Add(-1)
		status := "ok"
		if ev.Err != nil {
			status = "error"
		}
		if ctr := c.outcomes[[2]string{ev.CampaignKind.String(), status}]; ctr != nil {
			ctr.Inc()
		}
		if sp == nil {
			return
		}
		total := t.Sub(sp.start)
		if h := c.latency[ev.CampaignKind.String()]; h != nil {
			h.Observe(total.Nanoseconds())
		}
		tr := CampaignTrace{
			Campaign:       ev.Campaign,
			Kind:           ev.CampaignKind.String(),
			Runs:           sp.runs,
			Start:          sp.start,
			CompileSeconds: sp.compile,
			ReplaySeconds:  sp.replay,
			AnalyzeSeconds: sp.analyze,
			TotalSeconds:   total.Seconds(),
		}
		if ev.Err != nil {
			tr.Error = ev.Err.Error()
		}
		if c.Resolve != nil {
			display, fp := c.Resolve(ev.Campaign)
			if display != "" {
				tr.Campaign = display
			}
			if len(fp) > fingerprintPrefixLen {
				fp = fp[:fingerprintPrefixLen]
			}
			tr.Fingerprint = fp
		}
		c.tracer.add(tr)
	}
}

// RegisterPool exposes a core worker pool's occupancy on reg as polled
// gauges/counters: capacity, busy slots, and total acquisitions.
func RegisterPool(reg *Registry, pool *core.Pool) {
	reg.GaugeFunc("rm_pool_workers",
		"Simulation worker pool capacity.",
		func() float64 { return float64(pool.Workers()) })
	reg.GaugeFunc("rm_pool_workers_busy",
		"Simulation worker slots currently held.",
		func() float64 { return float64(pool.InUse()) })
	reg.CounterFunc("rm_pool_acquires_total",
		"Worker slot acquisitions since start.",
		pool.Acquires)
}
