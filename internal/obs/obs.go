// Package obs is the repository's allocation-free instrumentation kit:
// atomic counters and gauges, fixed-boundary log2 latency histograms with
// deterministic p50/p99/p999 extraction, a Registry with Prometheus
// text-format exposition and a JSON dump, and per-campaign trace spans
// built from the Engine's event stream.
//
// Two contracts shape the package:
//
//   - Zero-alloc recording. Counter.Inc/Add, Gauge.Set/Add and
//     Histogram.Observe are single atomic operations on pre-registered
//     state, annotated //rm:hotpath and gated by the same static and
//     escape-analysis checks as the replay kernels. Registration
//     (Registry.Counter and friends) may allocate; recording never does.
//
//   - Determinism. Campaign results are a pure function of the request;
//     instrumentation must observe without influencing. The package is
//     registered with the rmlint determinism analyzer, so its single
//     wall-clock read (now, below) carries an audited //rm:deterministic
//     justification, and no result-affecting package may read a clock at
//     all. All timing derives from core.Event deliveries at run/phase
//     boundaries — never from inside the replay kernels — so results are
//     byte-identical with metrics on or off.
package obs

import "time"

// now is the package's single wall-clock read. Every timestamp in obs
// (campaign latency, phase spans, trace starts) funnels through here, so
// the determinism analyzer audits exactly one waived call site.
func now() time.Time {
	return time.Now() //rm:deterministic observability timestamp at an event boundary; never feeds campaign results
}
