package security

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/workload"
)

// waySizeBytes is the paper's cache-segment size: candidates strided by
// it all land in the same set under modulo placement.
const waySizeBytes = CacheSets * CacheLineBytes

func round(t *testing.T, spec Spec, seed uint64) RoundOut {
	t.Helper()
	e, err := NewEngine(spec, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var out RoundOut
	e.Round(seed, &out)
	return out
}

// TestEvictionKATModuloStrided pins the analytic expectation on the
// deterministic design point: with candidates strided by the way size,
// every candidate maps to the target's modulo set, so group-testing
// reduction succeeds with probability exactly 1 at every pool size >=
// ways+1 and the reduced set has exactly `ways` members.
func TestEvictionKATModuloStrided(t *testing.T) {
	spec := Spec{
		Protocol:    EvictionSet,
		Placement:   placement.Modulo,
		Replacement: cache.LRU,
		ProbeLines:  64,
		ProbeStride: waySizeBytes,
	}
	e, err := NewEngine(spec, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		var out RoundOut
		e.Round(seed, &out)
		for j := range e.efforts {
			if out.Succ[j] != 1 {
				t.Fatalf("seed %d effort %d: success %v, want 1", seed, e.efforts[j], out.Succ[j])
			}
			if out.Acc[j] == 0 {
				t.Fatalf("seed %d effort %d: no accesses recorded", seed, e.efforts[j])
			}
		}
		if len(e.cur) != CacheWays {
			t.Fatalf("seed %d: reduced set has %d lines, want %d", seed, len(e.cur), CacheWays)
		}
		// The reduced set must actually be a same-set eviction set: every
		// member indexes to the target's set under modulo placement.
		want := e.plan[e.target]
		for _, id := range e.cur {
			if e.plan[id] != want {
				t.Fatalf("seed %d: eviction-set member maps to set %d, target set %d", seed, e.plan[id], want)
			}
		}
	}
}

// TestEvictionKATModuloLinear pins the complementary expectation: with
// line-stride candidates and a pool smaller than the set count, at most
// one candidate shares the target's modulo set, so construction fails
// with probability exactly 0 at every effort.
func TestEvictionKATModuloLinear(t *testing.T) {
	spec := Spec{
		Protocol:    EvictionSet,
		Placement:   placement.Modulo,
		Replacement: cache.LRU,
		ProbeLines:  64,
		ProbeStride: CacheLineBytes,
	}
	for seed := uint64(1); seed <= 10; seed++ {
		out := round(t, spec, seed)
		for j := 0; j < 4; j++ {
			if out.Succ[j] != 0 {
				t.Fatalf("seed %d effort slot %d: success %v, want 0", seed, j, out.Succ[j])
			}
		}
	}
}

// TestPrimeProbeKATModuloLRU: on modulo+LRU with a same-set candidate
// pool the channel is perfect -- the eviction set always builds and every
// trial's probe misses exactly when the victim ran.
func TestPrimeProbeKATModuloLRU(t *testing.T) {
	spec := Spec{
		Protocol:    PrimeProbe,
		Placement:   placement.Modulo,
		Replacement: cache.LRU,
		ProbeLines:  64,
		ProbeStride: waySizeBytes,
		Trials:      8,
	}
	outs := make([]RoundOut, 40)
	e, err := NewEngine(spec, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i := range outs {
		e.Round(uint64(i+1), &outs[i])
		if !outs[i].Constructed {
			t.Fatalf("round %d: eviction set not constructed", i)
		}
	}
	norm, _ := spec.Normalized()
	res := Aggregate(norm, outs)
	for _, p := range res.Curve {
		if p.Success != 1 {
			t.Fatalf("effort %d: success %v, want 1 (curve %+v)", p.Effort, p.Success, res.Curve)
		}
	}
	if res.Constructed != 1 {
		t.Fatalf("constructed fraction %v, want 1", res.Constructed)
	}
}

// TestOccupancyKATModuloLRU: attacker and victim footprints that each
// exactly fill the cache make a perfect occupancy channel on modulo+LRU
// (misses are 512 when the victim ran, 0 when idle), so best-threshold
// accuracy is 1 at every prefix and the channel carries ~1 bit per round.
func TestOccupancyKATModuloLRU(t *testing.T) {
	spec := Spec{
		Protocol:    Occupancy,
		Placement:   placement.Modulo,
		Replacement: cache.LRU,
		ProbeLines:  CacheSets * CacheWays,
		ProbeStride: CacheLineBytes,
		VictimLines: CacheSets * CacheWays,
	}
	e, err := NewEngine(spec, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	outs := make([]RoundOut, 64)
	for i := range outs {
		e.Round(uint64(i+1), &outs[i])
		want := uint32(0)
		if outs[i].Bit == 1 {
			want = uint32(CacheSets * CacheWays)
		}
		if outs[i].Miss != want {
			t.Fatalf("round %d: bit %d, misses %d, want %d", i, outs[i].Bit, outs[i].Miss, want)
		}
	}
	norm, _ := spec.Normalized()
	res := Aggregate(norm, outs)
	for _, p := range res.Curve {
		if p.Success != 1 {
			t.Fatalf("prefix %d: accuracy %v, want 1", p.Effort, p.Success)
		}
	}
	if res.MeanMissActive != float64(CacheSets*CacheWays) || res.MeanMissIdle != 0 {
		t.Fatalf("class means %v/%v, want %d/0", res.MeanMissActive, res.MeanMissIdle, CacheSets*CacheWays)
	}
	if res.Capacity < 0.9 {
		t.Fatalf("capacity %v bits, want ~1", res.Capacity)
	}
}

// TestOccupancyWorkloadVictim runs the channel against a compiled
// workload victim and checks the samples are sane and deterministic.
func TestOccupancyWorkloadVictim(t *testing.T) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		t.Fatal(err)
	}
	vic, err := VictimFromTrace(w.Build(workload.DefaultLayout()))
	if err != nil {
		t.Fatal(err)
	}
	if len(vic.Lines) == 0 || len(vic.Ops) == 0 {
		t.Fatalf("empty victim: %d lines, %d ops", len(vic.Lines), len(vic.Ops))
	}
	spec, err := Spec{
		Protocol:    Occupancy,
		Placement:   placement.RM,
		Replacement: cache.Random,
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewEngine(spec, vic)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(spec, vic)
	if err != nil {
		t.Fatal(err)
	}
	var active bool
	for seed := uint64(1); seed <= 16; seed++ {
		var a, b RoundOut
		e1.Round(seed, &a)
		e2.Round(seed, &b)
		if a != b {
			t.Fatalf("seed %d: rounds differ across engines: %+v vs %+v", seed, a, b)
		}
		if a.Bit == 1 && a.Miss > 0 {
			active = true
		}
	}
	if !active {
		t.Fatal("victim never left an occupancy footprint")
	}
}

// TestRoundDeterminism: Round is a pure function of the seed for every
// protocol on a randomized placement with random replacement (the
// noisiest configuration).
func TestRoundDeterminism(t *testing.T) {
	for _, proto := range Protocols() {
		spec := Spec{
			Protocol:    proto,
			Placement:   placement.RM,
			Replacement: cache.Random,
			ProbeLines:  256,
		}
		if proto == PrimeProbe {
			spec.Trials = 8
		}
		e1, err := NewEngine(spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		e2, err := NewEngine(spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		for seed := uint64(1); seed <= 8; seed++ {
			var a, b RoundOut
			e1.Round(seed, &a)
			// Re-running the same seed on a used engine must also agree:
			// no state may leak across rounds.
			e2.Round(seed^0xABCDEF, &b)
			e2.Round(seed, &b)
			if a != b {
				t.Fatalf("%s seed %d: %+v vs %+v", proto, seed, a, b)
			}
		}
	}
}

func TestParseProtocol(t *testing.T) {
	cases := map[string]Protocol{
		"eviction": EvictionSet, "EVICTION-SET": EvictionSet, "evict": EvictionSet,
		"occupancy": Occupancy, "occ": Occupancy,
		"primeprobe": PrimeProbe, "Prime+Probe": PrimeProbe, "pp": PrimeProbe,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProtocol("flushreload"); err == nil {
		t.Error("ParseProtocol accepted an unknown protocol")
	}
}

func TestNormalizedValidation(t *testing.T) {
	base := Spec{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random}
	norm, err := base.Normalized()
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if norm.ProbeLines != 8*CacheSets {
		t.Fatalf("default probe pool %d, want %d", norm.ProbeLines, 8*CacheSets)
	}
	bad := []Spec{
		{Protocol: Protocol(99), Placement: placement.RM, Replacement: cache.Random},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.ReplacementKind(99)},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random, ProbeLines: 2},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random, ProbeLines: MaxProbeLines + 1},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random, ProbeStride: 33},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random, Trials: 4},
		{Protocol: PrimeProbe, Placement: placement.RM, Replacement: cache.Random, Trials: MaxTrials + 1},
		{Protocol: EvictionSet, Placement: placement.RM, Replacement: cache.Random, VictimLines: 8},
		{Protocol: Occupancy, Placement: placement.RM, Replacement: cache.Random, VictimLines: MaxVictimLines + 1},
	}
	for i, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestLadder(t *testing.T) {
	if got := ladder(64, 5); !reflect.DeepEqual(got, []int{8, 16, 32, 64}) {
		t.Fatalf("ladder(64,5) = %v", got)
	}
	if got := ladder(16, 1); !reflect.DeepEqual(got, []int{2, 4, 8, 16}) {
		t.Fatalf("ladder(16,1) = %v", got)
	}
	if got := ladder(6, 5); !reflect.DeepEqual(got, []int{5, 6}) {
		t.Fatalf("ladder(6,5) = %v", got)
	}
	if got := ladder(4, 5); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("ladder(4,5) = %v", got)
	}
}
