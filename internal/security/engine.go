package security

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
)

// Attacker and victim address regions. The attacked cache indexes line
// addresses, so only the line-address images matter; the regions are
// disjoint (and clear of every workload layout base) so attacker probes
// never alias victim lines by accident. Under modulo placement both the
// target and the probe base map to set 0, which is what makes the strided
// known-answer expectations exact.
const (
	targetAddr      = 0x2000_0000 // victim line under attack (line 0x1000000, modulo set 0)
	synthVictimBase = 0x3000_0000 // synthetic occupancy victim footprint
	probeBase       = 0x4000_0000 // attacker probe region (line 0x2000000, modulo set 0)

	// probeWindowLines sizes the attacker's candidate window for
	// pseudo-random probe draws (ProbeStride 0): 1M lines = 32MB, large
	// enough that candidate sets are effectively uniform under every
	// placement kind.
	probeWindowLines = 1 << 20
)

// Per-round seed-derivation domains: the cache (placement + replacement
// randomness) and the attacker/victim draws (probe candidates, secret
// bits) get disjoint streams from the round seed.
const (
	seedDomainCache = 1
	seedDomainDraws = 2
)

// Engine executes attack rounds for one Spec. One Engine per campaign
// worker (it owns a private cache and scratch); Round is a pure function
// of the round seed, so any number of Engines replaying disjoint round
// ranges produce bit-identical round outcomes.
type Engine struct {
	spec Spec
	c    *cache.Cache
	k    *cache.Kernel
	pol  placement.Policy

	// lines is the campaign's unique-line table: probe candidates in
	// [0, ProbeLines), then the victim footprint, with the target line
	// last. plan holds the per-round set indices (placement.IndexAll).
	lines  []uint64
	plan   []uint32
	target int32

	randomProbes bool
	probeIDs     []int32 // identity over [0, ProbeLines): the fill set
	victimOps    []int32 // victim access order, indices into lines

	efforts []int
	cur     []int32 // group-testing working set / final eviction set
	rest    []int32 // group-testing complement scratch
	votes   []uint8 // per-trial probe verdicts (PrimeProbe)

	acc uint64 // attacker accesses this round
}

// NewEngine builds a per-worker attack engine. spec must be normalized
// (Spec.Normalized); vic supplies the occupancy victim's access pattern
// and may be nil, which selects the synthetic sequential victim sized by
// Spec.VictimLines.
func NewEngine(spec Spec, vic *Victim) (*Engine, error) {
	spec, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	c, err := cache.New(cache.Config{
		Name:        "SEC",
		SizeBytes:   CacheBytes,
		Ways:        CacheWays,
		LineBytes:   CacheLineBytes,
		Placement:   spec.Placement,
		Replacement: spec.Replacement,
		Write:       cache.WriteThrough,
	})
	if err != nil {
		return nil, fmt.Errorf("security: building attacked cache: %w", err)
	}
	e := &Engine{
		spec:    spec,
		c:       c,
		k:       cache.NewKernel(c),
		pol:     c.Policy(),
		efforts: spec.efforts(),
	}
	if len(e.efforts) > maxEfforts {
		return nil, fmt.Errorf("security: %d effort levels exceed the fixed curve size %d", len(e.efforts), maxEfforts)
	}

	p := spec.ProbeLines
	var victimLines []uint64
	switch {
	case spec.Protocol != Occupancy:
		// No victim footprint beyond the single target line.
	case vic != nil:
		victimLines = vic.Lines
	default:
		n := spec.VictimLines
		if n == 0 {
			n = CacheSets * CacheWays / 2
		}
		victimLines = make([]uint64, n)
		for i := range victimLines {
			victimLines[i] = synthVictimBase>>5 + uint64(i)
		}
	}

	e.lines = make([]uint64, p+len(victimLines)+1)
	e.plan = make([]uint32, len(e.lines))
	e.target = int32(p + len(victimLines))
	e.lines[e.target] = targetAddr >> 5
	copy(e.lines[p:], victimLines)

	if spec.ProbeStride == 0 {
		e.randomProbes = true
	} else {
		for i := 0; i < p; i++ {
			e.lines[i] = (probeBase + uint64(i)*uint64(spec.ProbeStride)) >> 5
		}
	}
	e.probeIDs = make([]int32, p)
	for i := range e.probeIDs {
		e.probeIDs[i] = int32(i)
	}
	if spec.Protocol == Occupancy {
		if vic != nil {
			e.victimOps = make([]int32, len(vic.Ops))
			for i, id := range vic.Ops {
				e.victimOps[i] = int32(p + int(id))
			}
		} else {
			e.victimOps = make([]int32, len(victimLines))
			for i := range e.victimOps {
				e.victimOps[i] = int32(p + i)
			}
		}
	}
	e.cur = make([]int32, 0, p)
	e.rest = make([]int32, 0, p)
	if spec.Protocol == PrimeProbe {
		e.votes = make([]uint8, 0, spec.Trials)
	}
	return e, nil
}

// Round executes attack round seed into out. The cache is reseeded and
// all attacker/victim randomness re-derived from the round seed, so the
// outcome is independent of every other round and of worker scheduling.
func (e *Engine) Round(seed uint64, out *RoundOut) {
	*out = RoundOut{}
	e.acc = 0
	e.c.Reseed(prng.Derive(seed, seedDomainCache))
	g := prng.New(prng.Derive(seed, seedDomainDraws))
	if e.randomProbes {
		for i := range e.probeIDs {
			e.lines[i] = probeBase>>5 + uint64(g.Intn(probeWindowLines))
		}
	}
	placement.IndexAll(e.pol, e.lines, e.plan)
	e.k.Begin()
	switch e.spec.Protocol {
	case EvictionSet:
		e.evictionRound(out)
	case Occupancy:
		e.occupancyRound(g, out)
	case PrimeProbe:
		e.primeProbeRound(g, out)
	}
	e.k.End()
	out.Accesses = float64(e.acc)
}

// evictionRound attempts a full group-testing reduction at every
// candidate-pool size of the effort ladder. Pools are prefixes of the
// per-round candidate draw, so effort level j+1 strictly extends level j
// (the attacker keeps its earlier candidates and adds more).
func (e *Engine) evictionRound(out *RoundOut) {
	for j, n := range e.efforts {
		ok, acc := e.construct(n)
		if ok {
			out.Succ[j] = 1
		}
		out.Acc[j] = float64(acc)
		if n == e.spec.ProbeLines {
			// The full-pool attempt doubles as the construction verdict, so
			// the aggregate's Constructed fraction is meaningful for this
			// protocol too.
			out.Constructed = ok
		}
	}
}

// occupancyRound is one sample of the occupancy channel: prime the whole
// probe set, let the victim run iff the secret bit is 1, re-probe and
// count misses.
func (e *Engine) occupancyRound(g *prng.PRNG, out *RoundOut) {
	e.touchAll(e.probeIDs)
	bit := uint8(g.Bits(1))
	if bit == 1 {
		e.sweepVictim()
	}
	out.Bit = bit
	out.Miss = uint32(e.probeMisses(e.probeIDs))
}

// primeProbeRound builds an eviction set from the full candidate pool,
// then runs Spec.Trials prime/victim/probe trials against one per-round
// secret bit; the effort ladder takes majority votes over trial prefixes.
func (e *Engine) primeProbeRound(g *prng.PRNG, out *RoundOut) {
	built, consAcc := e.construct(e.spec.ProbeLines)
	out.Constructed = built
	secret := uint8(g.Bits(1))
	votes := e.votes[:0]
	if built {
		es := e.cur
		for t := 0; t < e.spec.Trials; t++ {
			e.touchAll(es) // prime
			if secret == 1 {
				e.k.Read(e.lines[e.target], e.plan[e.target]) // the victim's secret-dependent access
			}
			v := uint8(0)
			if e.probeMisses(es) > 0 {
				v = 1
			}
			votes = append(votes, v)
		}
	}
	e.votes = votes
	for j, n := range e.efforts {
		if !built {
			out.Acc[j] = float64(consAcc)
			continue
		}
		ones := 0
		for t := 0; t < n; t++ {
			ones += int(votes[t])
		}
		guess := uint8(0)
		if 2*ones > n {
			guess = 1
		}
		if guess == secret {
			out.Succ[j] = 1
		}
		out.Acc[j] = float64(consAcc) + float64(2*len(e.cur)*n)
	}
}

// construct runs the group-testing eviction-set reduction (Vila et al.)
// over the first n probe candidates: while the working set exceeds the
// associativity, split it into ways+1 groups and drop the first group
// whose complement still evicts the target. On success e.cur holds the
// reduced eviction set. Returns success and the attacker accesses spent.
func (e *Engine) construct(n int) (bool, uint64) {
	start := e.acc
	cur := e.cur[:0]
	for i := 0; i < n; i++ {
		cur = append(cur, int32(i))
	}
	if !e.evicts(cur) {
		e.cur = cur
		return false, e.acc - start
	}
	rest := e.rest
	for len(cur) > CacheWays {
		// Balanced boundaries keep exactly ways+1 non-empty groups, which
		// the pigeonhole argument needs: a minimal eviction set has `ways`
		// members, so some group holds none of them and its complement
		// still evicts. A ceil-sized split can degenerate to fewer groups
		// (16 lines -> 4 groups of 4) and stall the reduction.
		groups := CacheWays + 1
		removed := false
		for gi := 0; gi < groups; gi++ {
			lo := gi * len(cur) / groups
			hi := (gi + 1) * len(cur) / groups
			if lo == hi {
				continue
			}
			rest = append(rest[:0], cur[:lo]...)
			rest = append(rest, cur[hi:]...)
			if e.evicts(rest) {
				cur, rest = rest, cur
				removed = true
				break
			}
		}
		if !removed {
			e.cur, e.rest = cur, rest
			return false, e.acc - start
		}
	}
	e.cur, e.rest = cur, rest
	return true, e.acc - start
}

// evicts is the group-testing membership test: install the target, access
// the candidate lines, and report whether the target was displaced. The
// presence check goes through LookupLine so it perturbs neither the
// replacement state nor the counters under measurement.
//
//rm:hotpath
func (e *Engine) evicts(ids []int32) bool {
	t := e.target
	e.k.Read(e.lines[t], e.plan[t])
	for _, id := range ids {
		e.k.Read(e.lines[id], e.plan[id])
	}
	e.acc += uint64(len(ids)) + 1
	return !e.c.LookupLine(e.lines[t], e.plan[t])
}

// touchAll accesses every listed line once (the prime/fill phase).
//
//rm:hotpath
func (e *Engine) touchAll(ids []int32) {
	for _, id := range ids {
		e.k.Read(e.lines[id], e.plan[id])
	}
	e.acc += uint64(len(ids))
}

// probeMisses re-accesses every listed line and counts misses (the probe
// phase).
//
//rm:hotpath
func (e *Engine) probeMisses(ids []int32) int {
	miss := 0
	for _, id := range ids {
		if e.k.Read(e.lines[id], e.plan[id])&cache.BitHit == 0 {
			miss++
		}
	}
	e.acc += uint64(len(ids))
	return miss
}

// sweepVictim replays the victim's access pattern. Victim accesses are
// not attacker effort, so they do not count toward acc.
//
//rm:hotpath
func (e *Engine) sweepVictim() {
	for _, id := range e.victimOps {
		e.k.Read(e.lines[id], e.plan[id])
	}
}
