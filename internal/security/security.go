// Package security evaluates the placement x replacement grid from the
// attacker's side: where the MBPTA campaigns measure timing variability
// as a safety property, these campaigns measure it as a leakage channel.
// Three measurement protocols from the randomized-cache security
// literature run against a single attacked cache level with the paper's
// L1 geometry (16KB, 4-way, 32B lines):
//
//   - EvictionSet: group-testing reduction of a candidate probe pool to a
//     minimal eviction set for a victim line (success probability and
//     accesses-to-success vs candidate-pool size).
//   - Occupancy: the attacker fills the cache, the victim either runs or
//     does not (one secret bit per round), the attacker re-probes and
//     counts misses; the curve is best-threshold classifier accuracy vs
//     number of observed rounds, plus a mutual-information estimate of
//     the channel.
//   - PrimeProbe: the attacker builds an eviction set, then runs repeated
//     prime/victim/probe trials against a per-round secret bit; the curve
//     is majority-vote success probability vs trials spent.
//
// Every round is a pure function of (master seed, round index): the cache
// is reseeded and the attacker/victim randomness re-derived per round, so
// campaign results are bit-identical for any worker count, exactly like
// the MBPTA campaigns. The probe kernels replay precomputed index plans
// through cache.Kernel under the //rm:hotpath zero-alloc contract.
package security

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Attacked-cache geometry: the paper's L1 design point (128 sets). The
// security literature's single-level randomized cache maps onto one L1;
// fixing the geometry keeps the wire surface small and the analytic
// known-answer expectations exact.
const (
	CacheBytes     = 16 << 10
	CacheWays      = 4
	CacheLineBytes = 32
	CacheSets      = CacheBytes / (CacheWays * CacheLineBytes)
)

// Protocol selects one of the three measurement protocols.
type Protocol int

// Measurement protocols.
const (
	EvictionSet Protocol = iota
	Occupancy
	PrimeProbe
)

// String returns the canonical wire name of the protocol.
func (p Protocol) String() string {
	switch p {
	case EvictionSet:
		return "eviction"
	case Occupancy:
		return "occupancy"
	case PrimeProbe:
		return "primeprobe"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Protocols returns all protocols in declaration order.
func Protocols() []Protocol { return []Protocol{EvictionSet, Occupancy, PrimeProbe} }

// ProtocolNames returns the canonical protocol names, for catalogs and
// usage messages.
func ProtocolNames() []string {
	ps := Protocols()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

// protocolAliases accepts the spellings the literature uses.
func protocolAliases(p Protocol) []string {
	switch p {
	case EvictionSet:
		return []string{"eviction-set", "evict"}
	case Occupancy:
		return []string{"occ"}
	case PrimeProbe:
		return []string{"prime+probe", "prime-probe", "pp"}
	}
	return nil
}

// ParseProtocol maps a user-facing protocol name (case-insensitive,
// aliases accepted) to its Protocol.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range Protocols() {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
		for _, a := range protocolAliases(p) {
			if strings.EqualFold(s, a) {
				return p, nil
			}
		}
	}
	return 0, fmt.Errorf("security: unknown protocol %q (valid: %s)",
		s, strings.Join(ProtocolNames(), ", "))
}

// Spec configures one security campaign on the attacked cache. The zero
// values of the sizing knobs select protocol-appropriate defaults (see
// Normalized); Placement and Replacement select the defended design
// point under attack.
type Spec struct {
	Protocol    Protocol
	Placement   placement.Kind
	Replacement cache.ReplacementKind
	// ProbeLines is the attacker's probe-set size in cache lines: the
	// candidate pool for eviction-set construction and Prime+Probe, the
	// fill set for the occupancy channel.
	ProbeLines int
	// ProbeStride is the byte stride between successive probe candidates.
	// Zero draws ProbeLines pseudo-random candidates from the attacker's
	// address window each round; a positive multiple of CacheLineBytes
	// lays the candidates out as a fixed arithmetic sequence (e.g. the
	// way size, 4096, targets a single set under modulo placement).
	ProbeStride int
	// Trials is the number of prime/victim/probe trials per Prime+Probe
	// round; the success curve's effort axis is a ladder of trial
	// prefixes.
	Trials int
	// VictimLines sizes the synthetic occupancy victim's footprint in
	// cache lines, used when no victim workload is supplied. Zero selects
	// half the cache.
	VictimLines int
}

// Probe-set and trial bounds enforced by Normalized (and therefore by the
// service's 400 path).
const (
	MaxProbeLines  = 1 << 16
	MaxProbeStride = 1 << 26
	MaxTrials      = 4096
	MaxVictimLines = 1 << 16
)

// Normalized validates the spec and resolves protocol defaults: the
// returned Spec is the canonical form that enters fingerprints, with
// knobs that do not apply to the protocol zeroed so equivalent requests
// hash identically.
func (s Spec) Normalized() (Spec, error) {
	switch s.Protocol {
	case EvictionSet, Occupancy, PrimeProbe:
	default:
		return Spec{}, fmt.Errorf("security: unknown protocol %d", int(s.Protocol))
	}
	switch s.Replacement {
	case cache.LRU, cache.Random, cache.FIFO, cache.PLRU:
	default:
		return Spec{}, fmt.Errorf("security: unknown replacement policy %d", int(s.Replacement))
	}
	if s.ProbeLines == 0 {
		if s.Protocol == Occupancy {
			s.ProbeLines = CacheSets * CacheWays // fill the whole cache
		} else {
			s.ProbeLines = 8 * CacheSets // E[candidates per set] = 2x ways
		}
	}
	if s.ProbeLines < CacheWays+1 || s.ProbeLines > MaxProbeLines {
		return Spec{}, fmt.Errorf("security: probe_lines %d out of range [%d, %d]",
			s.ProbeLines, CacheWays+1, MaxProbeLines)
	}
	if s.ProbeStride < 0 || s.ProbeStride > MaxProbeStride || s.ProbeStride%CacheLineBytes != 0 {
		return Spec{}, fmt.Errorf("security: probe_stride %d must be a multiple of %d in [0, %d]",
			s.ProbeStride, CacheLineBytes, MaxProbeStride)
	}
	if s.Protocol == PrimeProbe {
		if s.Trials == 0 {
			s.Trials = 16
		}
		if s.Trials < 1 || s.Trials > MaxTrials {
			return Spec{}, fmt.Errorf("security: trials %d out of range [1, %d]", s.Trials, MaxTrials)
		}
	} else if s.Trials != 0 {
		return Spec{}, fmt.Errorf("security: trials only applies to the %s protocol", PrimeProbe)
	}
	if s.Protocol == Occupancy {
		if s.VictimLines < 0 || s.VictimLines > MaxVictimLines {
			return Spec{}, fmt.Errorf("security: victim_lines %d out of range [0, %d]", s.VictimLines, MaxVictimLines)
		}
	} else if s.VictimLines != 0 {
		return Spec{}, fmt.Errorf("security: victim_lines only applies to the %s protocol", Occupancy)
	}
	return s, nil
}

// efforts returns the ascending effort ladder of the per-round curve:
// quarters of the protocol's budget (candidate-pool size for EvictionSet,
// trial count for PrimeProbe), deduplicated and floored. Occupancy's
// effort axis is observed rounds and is laddered at aggregation time.
func (s Spec) efforts() []int {
	switch s.Protocol {
	case EvictionSet:
		return ladder(s.ProbeLines, CacheWays+1)
	case PrimeProbe:
		return ladder(s.Trials, 1)
	}
	return nil
}

// ladder returns {max/8, max/4, max/2, max} clamped below at floor and
// deduplicated, ascending.
func ladder(maxv, floor int) []int {
	out := make([]int, 0, 4)
	for _, div := range []int{8, 4, 2, 1} {
		v := maxv / div
		if v < floor {
			v = floor
		}
		if n := len(out); n > 0 && out[n-1] >= v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// maxEfforts bounds the per-round curve so RoundOut stays a fixed-size
// value (no per-round allocation on the campaign hot path).
const maxEfforts = 8

// RoundOut is the fixed-size outcome of one attack round, written into a
// round-indexed slot by the sharded campaign loop.
type RoundOut struct {
	// Succ and Acc hold per-effort success (0 or 1) and attacker access
	// counts for the protocols with a per-round effort ladder
	// (EvictionSet, PrimeProbe); slots beyond len(Spec.efforts()) stay 0.
	Succ [maxEfforts]float64
	Acc  [maxEfforts]float64
	// Constructed reports that the PrimeProbe round obtained an eviction
	// set at all; a failed construction scores every effort level 0 (the
	// attack never reached the measurement phase).
	Constructed bool
	// Bit and Miss are the occupancy channel's per-round sample: the
	// victim's secret bit and the attacker's re-probe miss count.
	Bit  uint8
	Miss uint32
	// Accesses is the round's total attacker access count (the campaign's
	// measurement vector, reported as Event.Cycles).
	Accesses float64
}

// CurvePoint is one point of a success-vs-effort curve.
type CurvePoint struct {
	// Effort is protocol-specific: candidate-pool size (EvictionSet),
	// trials per decision (PrimeProbe), or observed rounds (Occupancy).
	Effort int `json:"effort"`
	// Success is the attack success probability at this effort: the
	// fraction of rounds whose eviction set was fully reduced, the
	// fraction of rounds whose majority vote recovered the secret bit,
	// or the best-threshold classifier accuracy over the round prefix.
	Success float64 `json:"success"`
	// Accesses is the mean attacker accesses spent to reach this effort.
	Accesses float64 `json:"accesses"`
}

// Result aggregates a security campaign.
type Result struct {
	Protocol    string       `json:"protocol"`
	Placement   string       `json:"placement"`
	Replacement string       `json:"replacement"`
	Rounds      int          `json:"rounds"`
	Curve       []CurvePoint `json:"curve"`
	// Constructed is the fraction of rounds whose full-pool eviction-set
	// construction succeeded (EvictionSet and PrimeProbe; the Peters et
	// al. observation: random replacement starves construction itself,
	// not just the probe phase).
	Constructed float64 `json:"constructed,omitempty"`
	// Occupancy-channel statistics: per-class mean re-probe miss counts,
	// the best separating threshold, and the empirical mutual information
	// (bits per round) of the thresholded channel.
	MeanMissActive float64 `json:"mean_miss_active,omitempty"`
	MeanMissIdle   float64 `json:"mean_miss_idle,omitempty"`
	Threshold      int     `json:"threshold,omitempty"`
	Capacity       float64 `json:"capacity_bits,omitempty"`
}

// Victim is a victim access pattern for the occupancy protocol: unique
// line addresses plus the access order over them. Immutable and shared by
// all campaign workers.
type Victim struct {
	Lines []uint64
	Ops   []uint32 // indices into Lines
}

// VictimFromTrace compiles a workload trace into a Victim at the attacked
// cache's line size, merging the instruction and data streams (the
// occupancy channel observes total footprint, not stream identity).
func VictimFromTrace(tr trace.Trace) (*Victim, error) {
	ct, err := trace.Compile(tr, CacheLineBytes)
	if err != nil {
		return nil, err
	}
	if len(ct.Ops) == 0 {
		return nil, errors.New("security: victim workload built an empty trace")
	}
	v := &Victim{
		Lines: make([]uint64, 0, len(ct.ILines)+len(ct.DLines)),
		Ops:   make([]uint32, len(ct.Ops)),
	}
	v.Lines = append(v.Lines, ct.ILines...)
	v.Lines = append(v.Lines, ct.DLines...)
	off := uint32(len(ct.ILines))
	for i, op := range ct.Ops {
		if op.Kind == trace.Fetch {
			v.Ops[i] = op.ID
		} else {
			v.Ops[i] = off + op.ID
		}
	}
	return v, nil
}

// Aggregate folds the round-indexed outcomes of a campaign into its
// Result. Every statistic is an order-independent function of the slots,
// so the aggregate inherits the sharded loop's worker-count determinism.
func Aggregate(spec Spec, outs []RoundOut) Result {
	res := Result{
		Protocol:    spec.Protocol.String(),
		Placement:   spec.Placement.String(),
		Replacement: spec.Replacement.String(),
		Rounds:      len(outs),
	}
	if len(outs) == 0 {
		return res
	}
	n := float64(len(outs))
	switch spec.Protocol {
	case EvictionSet, PrimeProbe:
		efforts := spec.efforts()
		res.Curve = make([]CurvePoint, len(efforts))
		for j, eff := range efforts {
			var succ, acc float64
			for i := range outs {
				succ += outs[i].Succ[j]
				acc += outs[i].Acc[j]
			}
			res.Curve[j] = CurvePoint{Effort: eff, Success: succ / n, Accesses: acc / n}
		}
		var built float64
		for i := range outs {
			if outs[i].Constructed {
				built++
			}
		}
		res.Constructed = built / n
	case Occupancy:
		res.Curve = occupancyCurve(outs)
		res.MeanMissActive, res.MeanMissIdle = classMeans(outs)
		res.Threshold, _ = bestThreshold(outs)
		res.Capacity = mutualInformation(outs, res.Threshold)
	}
	return res
}
