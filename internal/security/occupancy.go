package security

import (
	"math"
	"sort"
)

// occupancyCurve ladders the occupancy channel's effort axis over round
// prefixes: with n observed rounds the attacker's best strategy is the
// miss-count threshold that separates the two secret classes best, and
// the curve reports that classifier's accuracy as n grows. Prefixes of
// the round-indexed slots are deterministic regardless of which worker
// produced each slot.
func occupancyCurve(outs []RoundOut) []CurvePoint {
	curve := make([]CurvePoint, 0, 4)
	for _, prefix := range ladder(len(outs), 1) {
		_, correct := bestThreshold(outs[:prefix])
		var acc float64
		for i := 0; i < prefix; i++ {
			acc += outs[i].Accesses
		}
		curve = append(curve, CurvePoint{
			Effort:   prefix,
			Success:  float64(correct) / float64(prefix),
			Accesses: acc,
		})
	}
	return curve
}

// classMeans returns the mean re-probe miss counts of the active (secret
// bit 1) and idle rounds.
func classMeans(outs []RoundOut) (active, idle float64) {
	var sumA, sumI, nA, nI float64
	for i := range outs {
		if outs[i].Bit == 1 {
			sumA += float64(outs[i].Miss)
			nA++
		} else {
			sumI += float64(outs[i].Miss)
			nI++
		}
	}
	if nA > 0 {
		active = sumA / nA
	}
	if nI > 0 {
		idle = sumI / nI
	}
	return active, idle
}

// bestThreshold scans every distinct miss count for the threshold tau
// maximizing the accuracy of the classifier "active iff miss >= tau",
// returning tau and the number of rounds it classifies correctly. Ties
// prefer the lowest threshold, so the result is deterministic.
func bestThreshold(outs []RoundOut) (tau, correct int) {
	// Candidate thresholds: 0 (always guess active) and every distinct
	// miss count + the value above the maximum (never guess active).
	cand := make([]int, 0, len(outs)+2)
	cand = append(cand, 0)
	for i := range outs {
		cand = append(cand, int(outs[i].Miss), int(outs[i].Miss)+1)
	}
	sort.Ints(cand)
	best, bestCorrect := 0, -1
	prev := -1
	for _, t := range cand {
		if t == prev {
			continue
		}
		prev = t
		c := 0
		for i := range outs {
			guessActive := int(outs[i].Miss) >= t
			if guessActive == (outs[i].Bit == 1) {
				c++
			}
		}
		if c > bestCorrect {
			best, bestCorrect = t, c
		}
	}
	return best, bestCorrect
}

// mutualInformation estimates the empirical mutual information, in bits
// per round, between the victim's secret bit and the thresholded observer
// output "miss >= tau" -- a lower bound on the occupancy channel's
// capacity under the attacker's best single-threshold strategy.
func mutualInformation(outs []RoundOut, tau int) float64 {
	var joint [2][2]float64
	n := float64(len(outs))
	if n == 0 {
		return 0
	}
	for i := range outs {
		y := 0
		if int(outs[i].Miss) >= tau {
			y = 1
		}
		joint[outs[i].Bit][y]++
	}
	var mi float64
	for b := 0; b < 2; b++ {
		for y := 0; y < 2; y++ {
			pxy := joint[b][y] / n
			if pxy == 0 {
				continue
			}
			px := (joint[b][0] + joint[b][1]) / n
			py := (joint[0][y] + joint[1][y]) / n
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	if mi < 0 { // guard against float round-off on a null channel
		mi = 0
	}
	return mi
}
