package benes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSwitchCounts(t *testing.T) {
	// switches(n) = floor(n/2) + switches(floor(n/2)) + switches(ceil(n/2))
	//             + floor(n/2), with switches(2)=1, switches(1)=0.
	// Width 8 must give the paper's 20 control bits.
	want := map[int]int{1: 0, 2: 1, 3: 3, 4: 6, 5: 8, 6: 12, 7: 15, 8: 20, 10: 26, 16: 56}
	for w, exp := range want {
		n := MustNew(w)
		if n.Switches() != exp {
			t.Errorf("width %d: got %d switches, want %d", w, n.Switches(), exp)
		}
	}
}

func TestPaperQuote20Bits(t *testing.T) {
	// "When using a 8-bit Benes network 20 bits are required to drive the
	// actual permutation of the index bits."
	if got := MustNew(8).Switches(); got != 20 {
		t.Fatalf("8-wide network needs %d control bits, paper says 20", got)
	}
}

func TestNewRejectsBadWidth(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) succeeded")
	}
}

func TestIdentityControl(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
		n := MustNew(w)
		in := make([]int, w)
		out := make([]int, w)
		for i := range in {
			in[i] = i * 10
		}
		n.Permute(0, in, out)
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("width %d: zero control is not identity at wire %d", w, i)
			}
		}
	}
}

func TestPermuteIsBijectionForAnyControl(t *testing.T) {
	// Structural guarantee: every control word yields a permutation of the
	// wire values (no merge, no loss).
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{2, 3, 4, 5, 6, 7, 8, 9, 16} {
		n := MustNew(w)
		in := make([]int, w)
		out := make([]int, w)
		for i := range in {
			in[i] = i
		}
		for trial := 0; trial < 200; trial++ {
			ctrl := rng.Uint64()
			if n.Switches() < 64 {
				ctrl &= 1<<uint(n.Switches()) - 1
			}
			n.Permute(ctrl, in, out)
			seen := make([]bool, w)
			for _, v := range out {
				if v < 0 || v >= w || seen[v] {
					t.Fatalf("width %d ctrl %#x: output %v is not a permutation", w, ctrl, out)
				}
				seen[v] = true
			}
		}
	}
}

func TestPermuteBitsBijection(t *testing.T) {
	// For every control word, PermuteBits is a bijection on Width-bit
	// values. Exhaustive for small widths.
	for _, w := range []int{2, 3, 4, 7, 8} {
		n := MustNew(w)
		rng := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 100; trial++ {
			ctrl := rng.Uint64() & (1<<uint(n.Switches()) - 1)
			if err := n.CheckBijection(ctrl); err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
		}
	}
}

func TestQuickPermuteBitsBijection7(t *testing.T) {
	// The LEON3 L1 of the paper has 128 sets -> 7 index bits. Property:
	// arbitrary control words never merge two distinct 7-bit indices.
	n := MustNew(7)
	mask := uint64(1)<<uint(n.Switches()) - 1
	f := func(ctrl uint64, x, y uint8) bool {
		a := uint64(x) & 0x7F
		b := uint64(y) & 0x7F
		c := ctrl & mask
		pa := n.PermuteBits(c, a)
		pb := n.PermuteBits(c, b)
		if a == b {
			return pa == pb
		}
		return pa != pb && pa < 128 && pb < 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteIdentity(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8} {
		n := MustNew(w)
		perm := make([]int, w)
		for i := range perm {
			perm[i] = i
		}
		ctrl, err := n.Route(perm)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		in := make([]int, w)
		out := make([]int, w)
		for i := range in {
			in[i] = i + 100
		}
		n.Permute(ctrl, in, out)
		for o := range out {
			if out[o] != in[o] {
				t.Fatalf("width %d: identity route wrong at output %d", w, o)
			}
		}
	}
}

func TestRouteAllPermutationsSmall(t *testing.T) {
	// Exhaustively route every permutation for widths up to 6 and verify
	// the network realizes it: rearrangeability in action.
	for _, w := range []int{2, 3, 4, 5, 6} {
		n := MustNew(w)
		perm := make([]int, w)
		for i := range perm {
			perm[i] = i
		}
		in := make([]int, w)
		out := make([]int, w)
		var rec func(k int)
		count := 0
		rec = func(k int) {
			if k == w {
				count++
				ctrl, err := n.Route(perm)
				if err != nil {
					t.Fatalf("width %d perm %v: %v", w, perm, err)
				}
				for i := range in {
					in[i] = i
				}
				n.Permute(ctrl, in, out)
				for o := range out {
					if out[o] != perm[o] {
						t.Fatalf("width %d perm %v: got %v", w, perm, out)
					}
				}
				return
			}
			for i := k; i < w; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		wantCount := 1
		for i := 2; i <= w; i++ {
			wantCount *= i
		}
		if count != wantCount {
			t.Fatalf("width %d: enumerated %d permutations, want %d", w, count, wantCount)
		}
	}
}

func TestRouteRandomPermutationsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{7, 8, 10, 13, 16} {
		n := MustNew(w)
		in := make([]int, w)
		out := make([]int, w)
		for trial := 0; trial < 300; trial++ {
			perm := rng.Perm(w)
			ctrl, err := n.Route(perm)
			if err != nil {
				t.Fatalf("width %d perm %v: %v", w, perm, err)
			}
			for i := range in {
				in[i] = i
			}
			n.Permute(ctrl, in, out)
			for o := range out {
				if out[o] != perm[o] {
					t.Fatalf("width %d perm %v: realized %v", w, perm, out)
				}
			}
		}
	}
}

func TestRouteRejectsMalformed(t *testing.T) {
	n := MustNew(4)
	cases := [][]int{
		{0, 1, 2},       // too short
		{0, 1, 2, 3, 4}, // too long
		{0, 1, 2, 2},    // duplicate
		{0, 1, 2, 4},    // out of range
		{-1, 1, 2, 3},   // negative
		{3, 3, 3, 3},    // all duplicates
	}
	for _, c := range cases {
		if _, err := n.Route(c); err == nil {
			t.Errorf("Route(%v) accepted malformed permutation", c)
		}
	}
}

func TestRouteBitsRoundTrip(t *testing.T) {
	// Route a permutation, then check PermuteBits moves bit perm[o] of the
	// input to bit o of the output... i.e. out bit o = in bit perm[o].
	n := MustNew(8)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(8)
		ctrl, err := n.Route(perm)
		if err != nil {
			t.Fatal(err)
		}
		for bit := 0; bit < 8; bit++ {
			y := n.PermuteBits(ctrl, 1<<uint(bit))
			// input bit `bit` must land at the output position o with
			// perm[o] == bit.
			wantPos := -1
			for o, p := range perm {
				if p == bit {
					wantPos = o
					break
				}
			}
			if y != 1<<uint(wantPos) {
				t.Fatalf("perm %v: input bit %d landed at %#x, want bit %d", perm, bit, y, wantPos)
			}
		}
	}
}

func TestControlWordCoverage(t *testing.T) {
	// Distinct control words should reach many distinct permutations for
	// a width-4 network (24 possible; the 6-switch network has 64 controls
	// and must cover all 24).
	n := MustNew(4)
	seen := make(map[[4]int]bool)
	in := []int{0, 1, 2, 3}
	out := make([]int, 4)
	for ctrl := uint64(0); ctrl < 64; ctrl++ {
		n.Permute(ctrl, in, out)
		var key [4]int
		copy(key[:], out)
		seen[key] = true
	}
	if len(seen) != 24 {
		t.Fatalf("width-4 network reaches %d permutations, want all 24", len(seen))
	}
}

func TestQuickRouteRealizesPermutation(t *testing.T) {
	n := MustNew(8)
	in := make([]int, 8)
	out := make([]int, 8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(8)
		ctrl, err := n.Route(perm)
		if err != nil {
			return false
		}
		for i := range in {
			in[i] = i
		}
		n.Permute(ctrl, in, out)
		for o := range out {
			if out[o] != perm[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchAtBounds(t *testing.T) {
	n := MustNew(8)
	for i := 0; i < n.Switches(); i++ {
		sw := n.SwitchAt(i)
		if sw.A < 0 || sw.A >= 8 || sw.B < 0 || sw.B >= 8 || sw.A == sw.B {
			t.Fatalf("switch %d wires out of range: %+v", i, sw)
		}
	}
}

func BenchmarkPermuteBits8(b *testing.B) {
	n := MustNew(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.PermuteBits(uint64(i)*0x9E3779B9, uint64(i)&0xFF)
	}
}

func BenchmarkRoute8(b *testing.B) {
	n := MustNew(8)
	rng := rand.New(rand.NewSource(1))
	perms := make([][]int, 64)
	for i := range perms {
		perms[i] = rng.Perm(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Route(perms[i%len(perms)]); err != nil {
			b.Fatal(err)
		}
	}
}
