package benes_test

import (
	"fmt"

	"repro/internal/benes"
)

// The paper's reference design: an 8-wide Benes network needs 20 control
// bits to drive the permutation of the index bits.
func ExampleNetwork_Switches() {
	n := benes.MustNew(8)
	fmt.Println(n.Switches())
	// Output: 20
}

// Routing computes control bits that realize a requested permutation;
// PermuteBits then applies it to a bundle of index bits.
func ExampleNetwork_Route() {
	n := benes.MustNew(4)
	// Send input wire i to output wire (i+1) mod 4: out[o] = in[perm[o]].
	perm := []int{3, 0, 1, 2}
	ctrl, err := n.Route(perm)
	if err != nil {
		panic(err)
	}
	in := []int{10, 11, 12, 13}
	out := make([]int, 4)
	n.Permute(ctrl, in, out)
	fmt.Println(out)
	// Output: [13 10 11 12]
}

// Any control word — including ones derived from a random seed, as in
// Random Modulo — yields a bijection on the index bits: two distinct
// indices can never collide.
func ExampleNetwork_PermuteBits() {
	n := benes.MustNew(7) // the 128-set L1 of the paper
	const arbitraryCtrl = 0x5A5A
	a := n.PermuteBits(arbitraryCtrl, 0x01)
	b := n.PermuteBits(arbitraryCtrl, 0x02)
	fmt.Println(a != b)
	// Output: true
}
