// Package benes implements Benes/Waksman permutation networks, the hardware
// structure at the heart of the Random Modulo (RM) cache placement.
//
// RM randomizes the cache set index by pushing the index bits through a
// Benes network whose switch control bits are derived from the per-run
// random seed combined with the upper address bits (paper, Section 3.2 and
// Figure 3). Two properties of the network matter:
//
//  1. Any control-bit assignment realizes a *bijection* on the wires: every
//     2x2 switch either passes or crosses, so distinct inputs can never
//     merge. This is what guarantees that two addresses in the same cache
//     segment are never mapped to the same set, for every seed.
//  2. The network is *rearrangeable*: with the right control bits it can
//     realize any permutation of its wires, so the population of reachable
//     cache layouts is rich enough for MBPTA representativeness.
//
// The implementation supports arbitrary widths (not only powers of two) via
// the arbitrary-size Waksman construction, because real index widths such
// as 7 bits (128-set caches, as in the LEON3 L1 of the paper) are not
// powers of two. For width 8 the network has exactly 20 switches, matching
// the "20 bits are required to drive the permutation" figure in the paper.
package benes

import (
	"errors"
	"fmt"
)

// Switch identifies one 2x2 crossbar element by the two wire positions it
// connects. Switches are stored in topological (evaluation) order.
type Switch struct {
	A, B int
}

// Network is a Benes/Waksman permutation network over Width wires.
// Networks are immutable after construction and safe for concurrent use.
type Network struct {
	width    int
	switches []Switch
}

// New constructs a permutation network of the given width (>= 1).
func New(width int) (*Network, error) {
	if width < 1 {
		return nil, fmt.Errorf("benes: width %d out of range", width)
	}
	n := &Network{width: width}
	n.build(0, width)
	return n, nil
}

// MustNew is New for widths known to be valid at compile time.
func MustNew(width int) *Network {
	n, err := New(width)
	if err != nil {
		panic(err)
	}
	return n
}

// build appends the switches for the sub-network spanning wire positions
// [base, base+size) in evaluation order: input column, recursive lower and
// upper halves, output column.
//
// The input column pairs positions (base+i, base+h+i) where h = size/2; the
// value that stays in the lower half enters sub-network A, the one in the
// upper half enters sub-network B. For odd sizes the last wire is unpaired
// and flows directly into B, which has the extra capacity.
func (n *Network) build(base, size int) {
	switch {
	case size <= 1:
		return
	case size == 2:
		n.switches = append(n.switches, Switch{base, base + 1})
		return
	}
	h := size / 2
	for i := 0; i < h; i++ {
		n.switches = append(n.switches, Switch{base + i, base + h + i})
	}
	n.build(base, h)        // sub-network A: lower h wires
	n.build(base+h, size-h) // sub-network B: upper size-h wires
	for i := 0; i < h; i++ {
		n.switches = append(n.switches, Switch{base + i, base + h + i})
	}
}

// Width returns the number of wires.
func (n *Network) Width() int { return n.width }

// Switches returns the number of 2x2 switches, which equals the number of
// control bits. For width 8 this is 20, as quoted in the paper.
func (n *Network) Switches() int { return len(n.switches) }

// SwitchAt returns the wiring of switch i in evaluation order.
func (n *Network) SwitchAt(i int) Switch { return n.switches[i] }

// Permute applies the network to the wire values in, using bit i of ctrl to
// drive switch i (1 = cross, 0 = pass). The result is written to out, which
// must have length Width; in is not modified. Permute never merges wires:
// out is a permutation of in for every ctrl value.
func (n *Network) Permute(ctrl uint64, in, out []int) {
	if len(in) != n.width || len(out) != n.width {
		panic("benes: Permute slice length mismatch")
	}
	copy(out, in)
	for i, sw := range n.switches {
		if ctrl>>uint(i)&1 != 0 {
			out[sw.A], out[sw.B] = out[sw.B], out[sw.A]
		}
	}
}

// PermuteBits treats x as a bundle of Width single-bit wires (bit i of x on
// wire i) and returns the permuted bundle. This is the RM fast path: the
// cache index enters as Width bits and leaves rearranged according to the
// control word. The operation is a bijection on Width-bit values for every
// ctrl, which is the hardware guarantee RM builds on.
func (n *Network) PermuteBits(ctrl uint64, x uint64) uint64 {
	for i, sw := range n.switches {
		if ctrl>>uint(i)&1 != 0 {
			a := x >> uint(sw.A) & 1
			b := x >> uint(sw.B) & 1
			if a != b {
				x ^= 1<<uint(sw.A) | 1<<uint(sw.B)
			}
		}
	}
	return x
}

// ErrNotPermutation reports that the slice given to Route is not a
// permutation of 0..Width-1.
var ErrNotPermutation = errors.New("benes: not a permutation")

// Route computes a control word that makes the network realize perm, in the
// sense that output wire o carries the value presented on input wire
// perm[o]. It returns ErrNotPermutation if perm is malformed. Networks with
// more than 64 switches cannot be routed into a 64-bit control word and
// return an error.
//
// Routing uses the classic looping algorithm, expressed as a two-coloring
// of path terminals: each input/output pair sharing a switch must split
// across the two sub-networks, and each input must ride the same
// sub-network as the output it feeds.
func (n *Network) Route(perm []int) (uint64, error) {
	if len(perm) != n.width {
		return 0, ErrNotPermutation
	}
	seen := make([]bool, n.width)
	for _, v := range perm {
		if v < 0 || v >= n.width || seen[v] {
			return 0, ErrNotPermutation
		}
		seen[v] = true
	}
	if n.Switches() > 64 {
		return 0, fmt.Errorf("benes: %d switches exceed 64-bit control word", n.Switches())
	}
	var ctrl uint64
	next := 0 // next switch index in evaluation order
	p := make([]int, len(perm))
	copy(p, perm)
	if err := routeRec(len(p), p, &ctrl, &next); err != nil {
		return 0, err
	}
	if next != n.Switches() {
		return 0, fmt.Errorf("benes: router consumed %d switches, network has %d", next, n.Switches())
	}
	return ctrl, nil
}

const (
	subUnset = int8(-1)
	subA     = int8(0)
	subB     = int8(1)
)

// routeRec routes perm (output o carries input perm[o], both region-local)
// through the sub-network of the given size, consuming switch indices in
// evaluation order and setting bits in ctrl.
func routeRec(size int, perm []int, ctrl *uint64, next *int) error {
	switch {
	case size <= 1:
		return nil
	case size == 2:
		idx := *next
		*next++
		if perm[0] == 1 {
			*ctrl |= 1 << uint(idx)
		}
		return nil
	}
	h := size / 2
	sizeB := size - h
	inBase := *next
	*next += h // reserve input column switch indices

	// Terminal coloring. Node k in [0,size) is input wire k; node size+k is
	// output wire k. Color subA or subB says which sub-network that
	// terminal's path traverses.
	color := make([]int8, 2*size)
	for i := range color {
		color[i] = subUnset
	}
	inv := make([]int, size) // inv[input] = output fed by that input
	for o, i := range perm {
		inv[i] = o
	}

	// Constraint edges:
	//   eq:  input perm[o] <-> output o            (same path)
	//   neq: input i <-> input i+h   (i < h)       (share an input switch)
	//   neq: output o <-> output o+h (o < h)       (share an output switch)
	// partner returns the switch-mate of a terminal, or -1 if unpaired
	// (the hardwired last wire of an odd-size network).
	partner := func(w int) int {
		if size%2 == 1 && w == size-1 {
			return -1
		}
		if w < h {
			return w + h
		}
		return w - h
	}

	// propagate colors via BFS over the constraint graph.
	var queue []int
	setColor := func(node int, c int8) error {
		if color[node] == c {
			return nil
		}
		if color[node] != subUnset {
			return fmt.Errorf("benes: routing contradiction at terminal %d", node)
		}
		color[node] = c
		queue = append(queue, node)
		return nil
	}
	drain := func() error {
		for len(queue) > 0 {
			node := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			c := color[node]
			if node < size { // input terminal
				i := node
				if err := setColor(size+inv[i], c); err != nil { // eq edge
					return err
				}
				if ip := partner(i); ip >= 0 {
					if err := setColor(ip, 1-c); err != nil { // neq edge
						return err
					}
				}
			} else { // output terminal
				o := node - size
				if err := setColor(perm[o], c); err != nil { // eq edge
					return err
				}
				if op := partner(o); op >= 0 {
					if err := setColor(size+op, 1-c); err != nil { // neq edge
						return err
					}
				}
			}
		}
		return nil
	}

	// Hardwired constraints for odd sizes: the unpaired wire is in B.
	if size%2 == 1 {
		if err := setColor(size-1, subB); err != nil {
			return err
		}
		if err := setColor(size+size-1, subB); err != nil {
			return err
		}
		if err := drain(); err != nil {
			return err
		}
	}
	// Remaining components have a free choice; pick sub-network A.
	for node := 0; node < 2*size; node++ {
		if color[node] == subUnset {
			if err := setColor(node, subA); err != nil {
				return err
			}
			if err := drain(); err != nil {
				return err
			}
		}
	}

	// Input column control bits: switch i pairs inputs (i, i+h); control 0
	// sends input i to A_i and input i+h to B_i, control 1 swaps.
	for i := 0; i < h; i++ {
		if color[i] == subB {
			*ctrl |= 1 << uint(inBase+i)
		}
	}

	// Local wire index inside a sub-network: input/output w rides wire
	// (w mod h), except the hardwired odd wire which rides B's extra wire h.
	local := func(w int) int {
		if size%2 == 1 && w == size-1 {
			return h // == sizeB-1
		}
		if w < h {
			return w
		}
		return w - h
	}
	permA := make([]int, h)
	permB := make([]int, sizeB)
	for o := 0; o < size; o++ {
		i := perm[o]
		if color[size+o] == subA {
			permA[local(o)] = local(i)
		} else {
			permB[local(o)] = local(i)
		}
	}

	if err := routeRec(h, permA, ctrl, next); err != nil {
		return err
	}
	if err := routeRec(sizeB, permB, ctrl, next); err != nil {
		return err
	}

	// Output column: switch o pairs outputs (o, o+h); control 0 connects
	// A_o to output o, control 1 connects B_o to output o.
	outBase := *next
	*next += h
	for o := 0; o < h; o++ {
		if color[size+o] == subB {
			*ctrl |= 1 << uint(outBase+o)
		}
	}
	return nil
}

// CheckBijection exhaustively verifies that ctrl induces a bijection on
// Width-bit values for small widths (Width <= 20). It exists for tests and
// hardware-model validation; production code relies on the structural
// guarantee instead.
func (n *Network) CheckBijection(ctrl uint64) error {
	if n.width > 20 {
		return fmt.Errorf("benes: CheckBijection limited to width <= 20, have %d", n.width)
	}
	size := 1 << uint(n.width)
	seen := make([]bool, size)
	for x := 0; x < size; x++ {
		y := n.PermuteBits(ctrl, uint64(x))
		if y >= uint64(size) {
			return fmt.Errorf("benes: output %d out of range for input %d", y, x)
		}
		if seen[y] {
			return fmt.Errorf("benes: control %#x merges inputs at output %d", ctrl, y)
		}
		seen[y] = true
	}
	return nil
}
