package iid

import (
	"math"
	"testing"

	"repro/internal/prng"
)

// iidSample draws n independent uniforms.
func iidSample(seed uint64, n int) []float64 {
	g := prng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Float64()
	}
	return xs
}

func TestWWPassesOnIID(t *testing.T) {
	// Over many independent samples, the WW test should pass ~95% of the
	// time at the 5% level.
	pass := 0
	const trials = 200
	for s := 0; s < trials; s++ {
		r, err := WaldWolfowitz(iidSample(uint64(s)+1, 500))
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass {
			pass++
		}
	}
	if pass < trials*85/100 {
		t.Fatalf("WW passed only %d/%d i.i.d. samples", pass, trials)
	}
}

func TestWWRejectsTrend(t *testing.T) {
	// A strongly trended sequence has few runs and must fail.
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
	}
	r, err := WaldWolfowitz(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Fatalf("WW passed a monotone sequence (stat %f)", r.Stat)
	}
	if r.Runs != 2 {
		t.Fatalf("monotone sequence has %d runs, want 2", r.Runs)
	}
}

func TestWWRejectsAlternating(t *testing.T) {
	// A strictly alternating sequence has too many runs: also dependence.
	xs := make([]float64, 400)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = 2
		}
	}
	r, err := WaldWolfowitz(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Fatalf("WW passed an alternating sequence (stat %f)", r.Stat)
	}
}

func TestWWStatisticIsAbsolute(t *testing.T) {
	r, err := WaldWolfowitz(iidSample(7, 300))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stat < 0 || r.Stat != math.Abs(r.Z) {
		t.Fatalf("Stat=%f Z=%f", r.Stat, r.Z)
	}
}

func TestWWErrors(t *testing.T) {
	if _, err := WaldWolfowitz([]float64{1, 2, 3}); err == nil {
		t.Fatal("short sample accepted")
	}
	constant := make([]float64, 100)
	if _, err := WaldWolfowitz(constant); err == nil {
		t.Fatal("constant sample accepted")
	}
}

func TestKSPassesOnSameDistribution(t *testing.T) {
	pass := 0
	const trials = 200
	for s := 0; s < trials; s++ {
		a := iidSample(uint64(2*s+1), 400)
		b := iidSample(uint64(2*s+2), 400)
		r, err := KolmogorovSmirnov2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass {
			pass++
		}
	}
	if pass < trials*85/100 {
		t.Fatalf("KS passed only %d/%d identical-law pairs", pass, trials)
	}
}

func TestKSRejectsShiftedDistribution(t *testing.T) {
	a := iidSample(1, 500)
	b := iidSample(2, 500)
	for i := range b {
		b[i] += 0.3
	}
	r, err := KolmogorovSmirnov2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Fatalf("KS passed clearly shifted samples (D=%f p=%f)", r.D, r.P)
	}
}

func TestKSIdenticalSamplesDistanceZero(t *testing.T) {
	a := iidSample(5, 100)
	r, err := KolmogorovSmirnov2(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 || !r.Pass {
		t.Fatalf("KS on identical samples: D=%f", r.D)
	}
}

func TestKSSplit(t *testing.T) {
	r, err := KSSplit(iidSample(11, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("KS split failed on an i.i.d. sample (p=%f)", r.P)
	}
	if _, err := KSSplit(make([]float64, 5)); err == nil {
		t.Fatal("short sample accepted")
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov2([]float64{1}, iidSample(1, 50)); err == nil {
		t.Fatal("short first sample accepted")
	}
}

func TestETPassesOnExponentialTail(t *testing.T) {
	// Exponential data has an exactly exponential tail: ET must pass the
	// bulk of the time.
	g := prng.New(42)
	pass := 0
	const trials = 60
	for s := 0; s < trials; s++ {
		xs := make([]float64, 800)
		for i := range xs {
			xs[i] = -math.Log(1 - g.Float64())
		}
		r, err := ETTest(xs, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass {
			pass++
		}
	}
	if pass < trials*80/100 {
		t.Fatalf("ET passed only %d/%d exponential samples", pass, trials)
	}
}

func TestETRejectsUniformTail(t *testing.T) {
	// A bounded (uniform) tail is very much not exponential: with enough
	// tail points, ET must reject in the clear majority of trials.
	g := prng.New(17)
	reject := 0
	const trials = 40
	for s := 0; s < trials; s++ {
		xs := make([]float64, 1200)
		for i := range xs {
			xs[i] = g.Float64()
		}
		r, err := ETTest(xs, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass {
			reject++
		}
	}
	if reject < trials*60/100 {
		t.Fatalf("ET rejected only %d/%d uniform samples", reject, trials)
	}
}

func TestETReportFields(t *testing.T) {
	xs := iidSample(3, 500)
	r, err := ETTest(xs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if r.TailN < 100 || r.TailN > 150 {
		t.Fatalf("tail size %d, want ~125", r.TailN)
	}
	if r.Threshold <= 0.5 || r.Threshold >= 1 {
		t.Fatalf("threshold %f implausible for U(0,1) with 25%% tail", r.Threshold)
	}
	if r.P < 0 || r.P > 1 {
		t.Fatalf("p-value %f", r.P)
	}
}

func TestETErrors(t *testing.T) {
	if _, err := ETTest(iidSample(1, 500), 0); err == nil {
		t.Fatal("tailFrac 0 accepted")
	}
	if _, err := ETTest(iidSample(1, 500), 1); err == nil {
		t.Fatal("tailFrac 1 accepted")
	}
	if _, err := ETTest(iidSample(1, 10), 0.25); err == nil {
		t.Fatal("short sample accepted")
	}
}

func TestETDeterministic(t *testing.T) {
	xs := iidSample(9, 600)
	a, err := ETTest(xs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ETTest(xs, 0.25)
	if a != b {
		t.Fatal("ET test is not deterministic")
	}
}

func TestSampleSplitHalves(t *testing.T) {
	a, b := SampleSplitHalves([]float64{1, 2, 3, 4, 5})
	if len(a) != 2 || len(b) != 3 {
		t.Fatalf("split %d/%d", len(a), len(b))
	}
}

func TestETTestSearchPrefersPassingThreshold(t *testing.T) {
	// Exponential sample: the search should find a passing threshold and
	// report it.
	g := prng.New(23)
	xs := make([]float64, 800)
	for i := range xs {
		xs[i] = -math.Log(1 - g.Float64())
	}
	r, err := ETTestSearch(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("search failed on exponential data: p=%f", r.P)
	}
}

func TestETTestSearchCustomGrid(t *testing.T) {
	g := prng.New(29)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = -math.Log(1 - g.Float64())
	}
	r, err := ETTestSearch(xs, []int{30})
	if err != nil {
		t.Fatal(err)
	}
	if r.TailN != 30 {
		t.Fatalf("tail size %d, want 30", r.TailN)
	}
}

func TestETTestSearchErrorsOnTinySamples(t *testing.T) {
	if _, err := ETTestSearch([]float64{1, 2, 3}, nil); err == nil {
		t.Fatal("tiny sample accepted")
	}
	// A grid with no feasible entries must error, not panic.
	if _, err := ETTestSearch(make([]float64, 12), []int{100}); err == nil {
		t.Fatal("infeasible grid accepted")
	}
}
