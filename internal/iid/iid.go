// Package iid implements the statistical admissibility tests that MBPTA
// applies to execution-time measurements before EVT may be used (paper,
// Section 4.2 / Table 2):
//
//   - the Wald-Wolfowitz runs test for independence (pass when the
//     statistic is below 1.96 at the 5% significance level),
//   - the two-sample Kolmogorov-Smirnov test for identical distribution
//     (pass when the p-value exceeds 0.05),
//   - the ET test of Garrido and Diebolt for convergence of the
//     distribution tail to the exponential shape that characterizes the
//     Gumbel maximum domain of attraction.
package iid

import (
	"errors"
	"math"

	"repro/internal/prng"
	"repro/internal/stats"
)

// ErrTooFewSamples reports a sample too small for the requested test.
var ErrTooFewSamples = errors.New("iid: too few samples")

// Alpha is the significance level used throughout the paper.
const Alpha = 0.05

// Window is the admissibility-test window: the fixed-size measurement
// prefix the WW, KS and ET tests examine in the streaming analysis path.
// The tests are sequence tests — they need raw observations, not
// mergeable aggregates — so campaigns larger than the window test the
// first Window runs and stream the rest through the O(1) accumulators.
// Every historical campaign scale (the paper's 1000-run campaigns, the
// BENCH trajectories' <= 160 runs) fits inside the window, so windowing
// changes nothing for them: it only bounds memory for the million-run
// campaigns the streaming path enables. The power of the tests at n =
// 4096 is far past the point of diminishing returns for a 5% level.
const Window = 4096

// WWCritical is the two-sided 5% critical value of the standard normal,
// the acceptance threshold the paper quotes for the runs test.
const WWCritical = 1.96

// WWResult reports a Wald-Wolfowitz runs test.
type WWResult struct {
	Stat float64 // |Z|: the absolute standardized run count (Table 2 rows)
	Z    float64 // signed statistic
	Runs int     // observed runs
	N1   int     // observations above the median
	N2   int     // observations below the median
	Pass bool    // Stat < 1.96
}

// WaldWolfowitz applies the runs test for independence: the sequence is
// binarized against its median (ties dropped, the standard treatment), the
// number of runs is compared with its null distribution, and the
// standardized statistic is returned. Small |Z| means no evidence of serial
// dependence.
func WaldWolfowitz(xs []float64) (WWResult, error) {
	if len(xs) < 20 {
		return WWResult{}, ErrTooFewSamples
	}
	med := stats.Quantile(xs, 0.5)
	signs := make([]bool, 0, len(xs))
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	n1, n2 := 0, 0
	for _, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		return WWResult{}, errors.New("iid: degenerate sample (constant)")
	}
	runs := 1
	for i := 1; i < len(signs); i++ {
		if signs[i] != signs[i-1] {
			runs++
		}
	}
	n := float64(n1 + n2)
	f1, f2 := float64(n1), float64(n2)
	mu := 2*f1*f2/n + 1
	sigma2 := 2 * f1 * f2 * (2*f1*f2 - n) / (n * n * (n - 1))
	if sigma2 <= 0 {
		return WWResult{}, errors.New("iid: runs variance non-positive")
	}
	z := (float64(runs) - mu) / math.Sqrt(sigma2)
	r := WWResult{Stat: math.Abs(z), Z: z, Runs: runs, N1: n1, N2: n2}
	r.Pass = r.Stat < WWCritical
	return r, nil
}

// KSResult reports a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	D    float64 // sup distance between the two empirical CDFs
	P    float64 // asymptotic p-value (Table 2 rows)
	Pass bool    // P > 0.05
}

// KolmogorovSmirnov2 applies the two-sample KS identical-distribution
// test. Large p-values mean the two samples are compatible with a common
// distribution.
func KolmogorovSmirnov2(a, b []float64) (KSResult, error) {
	if len(a) < 10 || len(b) < 10 {
		return KSResult{}, ErrTooFewSamples
	}
	sa, sb := stats.Sorted(a), stats.Sorted(b)
	na, nb := len(sa), len(sb)
	var d float64
	i, j := 0, 0
	for i < na && j < nb {
		// Consume all ties of the smaller value on both sides before
		// comparing the CDFs, so equal observations never create a
		// spurious gap.
		va, vb := sa[i], sb[j]
		if va <= vb {
			for i < na && sa[i] == va {
				i++
			}
		}
		if vb <= va {
			for j < nb && sb[j] == vb {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	sqne := math.Sqrt(ne)
	lambda := (sqne + 0.12 + 0.11/sqne) * d
	p := stats.KolmogorovSurvival(lambda)
	return KSResult{D: d, P: p, Pass: p > Alpha}, nil
}

// KSSplit applies the two-sample KS test to the two halves of a
// measurement sequence, the standard MBPTA protocol for checking that the
// collected execution times are identically distributed over the campaign.
func KSSplit(xs []float64) (KSResult, error) {
	if len(xs) < 20 {
		return KSResult{}, ErrTooFewSamples
	}
	h := len(xs) / 2
	return KolmogorovSmirnov2(xs[:h], xs[h:])
}

// ETResult reports an ET (exponential tail) test.
type ETResult struct {
	Stat      float64 // KS distance between tail excesses and fitted exponential
	P         float64 // Monte-Carlo p-value (Lilliefors-adjusted)
	Threshold float64 // tail threshold u
	TailN     int     // number of excesses used
	Pass      bool    // P > 0.05
}

// ETTest applies the Garrido-Diebolt style goodness-of-fit test for an
// exponential distribution tail: excesses over the (1-tailFrac) empirical
// quantile are compared against an exponential with the estimated mean.
// Because the mean is estimated from the same data, critical values come
// from a deterministic Monte-Carlo simulation of the null (the Lilliefors
// construction). A pass supports convergence of block maxima to a Gumbel
// law, as required before applying EVT (paper, Section 4.2: "We also
// applied and passed the ET test for Gumbel convergence testing").
func ETTest(xs []float64, tailFrac float64) (ETResult, error) {
	if tailFrac <= 0 || tailFrac >= 1 {
		return ETResult{}, errors.New("iid: tail fraction must be in (0,1)")
	}
	if len(xs) < 40 {
		return ETResult{}, ErrTooFewSamples
	}
	u := stats.Quantile(xs, 1-tailFrac)
	var exc []float64
	for _, x := range xs {
		if x > u {
			exc = append(exc, x-u)
		}
	}
	if len(exc) < 10 {
		return ETResult{}, ErrTooFewSamples
	}
	d := ksExpDistance(exc)

	// Null distribution of the statistic for this tail size, by simulation
	// with a fixed seed so results are reproducible.
	const reps = 400
	//rm:deterministic fixed-seed null-distribution simulation: the ET-test p-value must be identical on every invocation (pinned by BENCH_PR*.json)
	g := prng.New(0xE7E7)
	ge := 0
	sim := make([]float64, len(exc))
	for r := 0; r < reps; r++ {
		for i := range sim {
			sim[i] = -math.Log(1 - g.Float64())
		}
		if ksExpDistance(sim) >= d {
			ge++
		}
	}
	p := float64(ge+1) / float64(reps+1)
	return ETResult{Stat: d, P: p, Threshold: u, TailN: len(exc), Pass: p > Alpha}, nil
}

// ETTestSearch applies the ET test over a grid of candidate tail sizes and
// returns the most favourable result. This is the standard
// peaks-over-threshold protocol: extreme value theory guarantees excesses
// become exponential beyond *some* threshold, so the analyst searches for
// a threshold at which the exponential fit is acceptable; failure at every
// threshold is evidence against Gumbel convergence.
func ETTestSearch(xs []float64, tailSizes []int) (ETResult, error) {
	if len(tailSizes) == 0 {
		tailSizes = []int{60, 40, 25, 15}
	}
	var best ETResult
	var lastErr error
	found := false
	for _, k := range tailSizes {
		if k < 10 || k >= len(xs) {
			continue
		}
		r, err := ETTest(xs, float64(k)/float64(len(xs)))
		if err != nil {
			lastErr = err
			continue
		}
		if !found || r.P > best.P {
			best = r
			found = true
		}
		if best.Pass {
			return best, nil
		}
	}
	if !found {
		if lastErr == nil {
			lastErr = ErrTooFewSamples
		}
		return ETResult{}, lastErr
	}
	return best, nil
}

// ksExpDistance returns the KS distance between a sample and the
// exponential distribution with the sample's own mean.
func ksExpDistance(exc []float64) float64 {
	mean := stats.Mean(exc)
	if mean <= 0 {
		return 1
	}
	s := stats.Sorted(exc)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := 1 - math.Exp(-x/mean)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d
}

// SampleSplitHalves returns the two halves of a sample (convenience used
// by reports).
func SampleSplitHalves(xs []float64) (a, b []float64) {
	h := len(xs) / 2
	return xs[:h], xs[h:]
}
