package sim

import (
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
)

// TestRunAllStatsArePerCall is the regression test for the cumulative-
// stats bug: RunAll used to copy each cache's lifetime counters into its
// Results, so a second RunAll on the same System (or any prior Core.Run)
// double-counted accesses and misses.
func TestRunAllStatsArePerCall(t *testing.T) {
	sys, err := NewSystem(paperConfig(placement.RM), 2)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reseed(5)
	b := trace.NewBuilder(0)
	for i := 0; i < 4000; i++ {
		b.Load(uint64(i*32) % (64 * 1024))
	}
	traces := []trace.Trace{b.Trace(), b.Trace()}

	first := sys.RunAll(traces)
	second := sys.RunAll(traces)
	for i := range first {
		if got := second[i].DL1.Accesses; got != first[i].DL1.Accesses {
			t.Fatalf("core %d: second RunAll reports %d DL1 accesses, first %d (cumulative, not per-call)",
				i, got, first[i].DL1.Accesses)
		}
		if second[i].DL1.Accesses != 4000 {
			t.Fatalf("core %d: DL1 accesses = %d, want 4000", i, second[i].DL1.Accesses)
		}
		// The warm second pass must show the hits it earned, not the cold
		// pass's misses again.
		if second[i].DL1.Misses >= first[i].DL1.Misses+second[i].DL1.Hits {
			t.Fatalf("core %d: second-call misses %d look cumulative", i, second[i].DL1.Misses)
		}
	}

	// Interleaving a direct Core.Run must not leak into RunAll either.
	sys.Cores()[0].Run(traces[0])
	third := sys.RunAll(traces)
	if third[0].DL1.Accesses != 4000 {
		t.Fatalf("RunAll after Core.Run reports %d DL1 accesses, want 4000", third[0].DL1.Accesses)
	}
}

// TestLatenciesValidation pins the normalization contract: the zero value
// selects the defaults, a partially-specified set with Memory left at
// zero is rejected at construction (it used to wrap uint64 in the bus
// model), and any set with Memory >= 1 is accepted as given.
func TestLatenciesValidation(t *testing.T) {
	if lat, err := (Latencies{}).Normalize(); err != nil || lat != DefaultLatencies() {
		t.Fatalf("zero Latencies normalized to %+v, %v; want defaults", lat, err)
	}
	partial := Latencies{L1Hit: 1, L2Hit: 8, StoreBus: 2} // Memory missing
	if err := partial.Validate(); err == nil {
		t.Fatal("Memory=0 with other fields set validated")
	}
	cfg := paperConfig(placement.Modulo)
	cfg.Lat = partial
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an underflowing latency set")
	}
	if _, err := NewSystem(cfg, 2); err == nil {
		t.Fatal("NewSystem accepted an underflowing latency set")
	} else if !strings.Contains(err.Error(), "Memory") {
		t.Fatalf("unhelpful latency error: %v", err)
	}

	// Minimal legal memory latency: no wraparound, sane cycle counts.
	cfg.Lat = Latencies{L1Hit: 1, Memory: 1}
	sys, err := NewSystem(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(0)
	for i := 0; i < 100; i++ {
		b.Load(uint64(i * 32))
	}
	res := sys.RunAll([]trace.Trace{b.Trace()})
	// 100 L1-cycle charges + 100 L2 misses at 1 memory cycle each bounds
	// the run far below any wrapped-uint64 absurdity.
	if res[0].Cycles == 0 || res[0].Cycles > 10000 {
		t.Fatalf("cycle count %d implausible for Memory=1", res[0].Cycles)
	}
}
