package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/trace"
)

// paperConfig builds the paper's single-core platform with the given L1
// placement kind.
func paperConfig(l1 placement.Kind) Config {
	mk := func(name string, size int, pk placement.Kind, w cache.WritePolicy, repl cache.ReplacementKind) cache.Config {
		return cache.Config{
			Name: name, SizeBytes: size, Ways: 4, LineBytes: 32,
			Placement: pk, Replacement: repl, Write: w,
		}
	}
	repl := cache.Random
	if l1 == placement.Modulo {
		repl = cache.LRU
	}
	return Config{
		IL1: mk("IL1", 16*1024, l1, cache.WriteThrough, repl),
		DL1: mk("DL1", 16*1024, l1, cache.WriteThrough, repl),
		L2:  mk("L2", 128*1024, placement.HRP, cache.WriteBack, cache.Random),
	}
}

func TestDefaultLatencies(t *testing.T) {
	lat := DefaultLatencies()
	if lat.L1Hit == 0 || lat.L2Hit <= lat.L1Hit || lat.Memory <= lat.L2Hit {
		t.Fatalf("latency ordering broken: %+v", lat)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := paperConfig(placement.Modulo)
	cfg.IL1.SizeBytes = 100 // invalid
	if _, err := New(cfg); err == nil {
		t.Fatal("bad IL1 accepted")
	}
}

func TestRunCyclesAllHitsAfterWarmup(t *testing.T) {
	c, err := New(paperConfig(placement.Modulo))
	if err != nil {
		t.Fatal(err)
	}
	// A loop touching 8 code lines and 8 data lines fits trivially.
	b := trace.NewBuilder(0)
	for it := 0; it < 100; it++ {
		for l := 0; l < 8; l++ {
			b.Fetch(uint64(0x1000 + l*32))
			b.Load(uint64(0x8000 + l*32))
		}
	}
	tr := b.Trace()
	c.Flush()
	r := c.Run(tr)
	// Warmup: 16 line fills; everything else hits at 1 cycle.
	lat := DefaultLatencies()
	warm := uint64(16) * (lat.L2Hit + lat.Memory)
	want := uint64(len(tr))*lat.L1Hit + warm
	if r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
	if r.IL1.Misses != 8 || r.DL1.Misses != 8 {
		t.Fatalf("L1 misses = %d/%d, want 8/8", r.IL1.Misses, r.DL1.Misses)
	}
}

func TestRunStoreAccounting(t *testing.T) {
	c, err := New(paperConfig(placement.Modulo))
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(0)
	b.Store(0x2000) // L2 write-allocate miss
	b.Store(0x2000) // L2 hit
	r := c.Run(b.Trace())
	lat := DefaultLatencies()
	want := 2*(lat.L1Hit+lat.StoreBus) + lat.Memory
	if r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
	if r.DL1.Misses != 2 { // WT no-allocate: both stores miss DL1
		t.Fatalf("DL1 misses = %d", r.DL1.Misses)
	}
	if r.L2.Hits != 1 || r.L2.Misses != 1 {
		t.Fatalf("L2 = %+v", r.L2)
	}
}

func TestRunResultPerRunStats(t *testing.T) {
	c, _ := New(paperConfig(placement.Modulo))
	b := trace.NewBuilder(0)
	for i := 0; i < 10; i++ {
		b.Load(uint64(i) * 32)
	}
	tr := b.Trace()
	r1 := c.Run(tr)
	r2 := c.Run(tr) // second run: all hits
	if r1.DL1.Misses != 10 {
		t.Fatalf("first run misses = %d", r1.DL1.Misses)
	}
	if r2.DL1.Misses != 0 || r2.DL1.Hits != 10 {
		t.Fatalf("second run stats not per-run: %+v", r2.DL1)
	}
	if r2.Cycles >= r1.Cycles {
		t.Fatal("warm run not faster than cold run")
	}
}

func TestReseedReproducibility(t *testing.T) {
	run := func() uint64 {
		c, err := New(paperConfig(placement.RM))
		if err != nil {
			t.Fatal(err)
		}
		b := trace.NewBuilder(0)
		for i := 0; i < 5000; i++ {
			b.Load(uint64(i*32) % (64 * 1024))
		}
		c.Reseed(1234)
		return c.Run(b.Trace()).Cycles
	}
	if run() != run() {
		t.Fatal("same seed produced different cycle counts")
	}
}

func TestReseedChangesTiming(t *testing.T) {
	c, err := New(paperConfig(placement.RM))
	if err != nil {
		t.Fatal(err)
	}
	// A footprint with L1 pressure so placement matters: 24KB strided.
	b := trace.NewBuilder(0)
	for s := 0; s < 30; s++ {
		for i := 0; i < 768; i++ {
			b.Load(uint64(i * 32))
		}
	}
	tr := b.Trace()
	seen := make(map[uint64]bool)
	for seed := uint64(0); seed < 12; seed++ {
		c.Reseed(seed)
		seen[c.Run(tr).Cycles] = true
	}
	if len(seen) < 2 {
		t.Fatal("execution time constant across seeds on a pressured footprint")
	}
}

func TestIPA(t *testing.T) {
	r := Result{Cycles: 100, Accesses: 50}
	if r.IPA() != 2 {
		t.Fatalf("IPA = %f", r.IPA())
	}
	if (Result{}).IPA() != 0 {
		t.Fatal("empty IPA not 0")
	}
}

func TestSystemRoundRobinBusContention(t *testing.T) {
	sys, err := NewSystem(paperConfig(placement.RM), 4)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reseed(7)
	// Each core streams through a large private buffer: lots of L2 misses
	// that must share the bus.
	mkTrace := func(base uint64) trace.Trace {
		b := trace.NewBuilder(0)
		for i := 0; i < 20000; i++ {
			b.Load(base + uint64(i*32)%(256*1024))
		}
		return b.Trace()
	}
	traces := []trace.Trace{mkTrace(0), mkTrace(1 << 24), mkTrace(2 << 24), mkTrace(3 << 24)}
	contended := sys.RunAll(traces)

	solo, err := NewSystem(paperConfig(placement.RM), 4)
	if err != nil {
		t.Fatal(err)
	}
	solo.Reseed(7)
	soloRes := solo.RunAll([]trace.Trace{mkTrace(0), nil, nil, nil})

	if contended[0].Cycles <= soloRes[0].Cycles {
		t.Fatalf("no bus interference: contended %d <= solo %d",
			contended[0].Cycles, soloRes[0].Cycles)
	}
	for i, r := range contended {
		if r.Accesses != 20000 {
			t.Fatalf("core %d retired %d accesses", i, r.Accesses)
		}
		if r.Cycles == 0 {
			t.Fatalf("core %d has zero cycles", i)
		}
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(paperConfig(placement.RM), 0); err == nil {
		t.Fatal("zero-core system accepted")
	}
	sys, _ := NewSystem(paperConfig(placement.RM), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("trace count mismatch not detected")
		}
	}()
	sys.RunAll([]trace.Trace{nil})
}

func TestSystemDeterministic(t *testing.T) {
	run := func() uint64 {
		sys, err := NewSystem(paperConfig(placement.RM), 2)
		if err != nil {
			t.Fatal(err)
		}
		sys.Reseed(99)
		b := trace.NewBuilder(0)
		for i := 0; i < 5000; i++ {
			b.Load(uint64(i*32) % (64 * 1024))
		}
		res := sys.RunAll([]trace.Trace{b.Trace(), b.Trace()})
		return res[0].Cycles + res[1].Cycles
	}
	if run() != run() {
		t.Fatal("multicore run not reproducible")
	}
}
