package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/trace"
)

// TestL2WritebackCycleAccounting forces dirty L2 victims and checks that
// the writeback charge lands in the cycle count.
func TestL2WritebackCycleAccounting(t *testing.T) {
	cfg := paperConfig(placement.Modulo)
	// A deterministic L2 so the way-strided addresses below stay in one set.
	cfg.L2.Placement = placement.Modulo
	cfg.L2.Replacement = cache.LRU
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := DefaultLatencies()

	// Dirty one L2 set's worth of lines via stores (write-allocate in L2),
	// then displace them with reads mapping to the same L2 set.
	l2WayBytes := uint64(cfg.L2.WaySizeBytes()) // 32KB: stride keeping the L2 set fixed
	b := trace.NewBuilder(0)
	for i := uint64(0); i < 4; i++ {
		b.Store(i * l2WayBytes) // fill + dirty all 4 ways of L2 set 0
	}
	for i := uint64(4); i < 8; i++ {
		b.Load(i * l2WayBytes) // displace the dirty lines
	}
	r := c.Run(b.Trace())
	if r.L2.Writebacks == 0 {
		t.Fatal("no L2 writebacks recorded")
	}
	// Expected: 4 stores (miss: L1 charge + StoreBus + Memory fill),
	// 4 loads (L1 miss: L1 + L2Hit + Memory + Writeback each, since every
	// displaced victim is dirty).
	want := 4*(lat.L1Hit+lat.StoreBus+lat.Memory) +
		4*(lat.L1Hit+lat.L2Hit+lat.Memory+lat.Writeback)
	if r.Cycles != want {
		t.Fatalf("cycles = %d, want %d (writebacks %d)", r.Cycles, want, r.L2.Writebacks)
	}
}

// TestWriteThroughL1NeverDirty checks the safety-critical design point:
// L1 lines never carry dirty state, so an L1 flush can never lose data.
func TestWriteThroughL1NeverDirty(t *testing.T) {
	c, err := New(paperConfig(placement.RM))
	if err != nil {
		t.Fatal(err)
	}
	c.Reseed(3)
	b := trace.NewBuilder(0)
	for i := 0; i < 5000; i++ {
		b.Store(uint64(i*64) % (32 * 1024))
		b.Load(uint64(i*32) % (32 * 1024))
	}
	c.Run(b.Trace())
	il1, dl1, _ := c.Caches()
	if il1.DirtyLines() != 0 || dl1.DirtyLines() != 0 {
		t.Fatalf("write-through L1 holds dirty lines: IL1=%d DL1=%d",
			il1.DirtyLines(), dl1.DirtyLines())
	}
}

// TestSystemSingleCoreMatchesNoContention checks that a 1-core system and
// a 4-core system with idle peers charge the subject the same cycles.
func TestSystemSingleCoreMatchesNoContention(t *testing.T) {
	b := trace.NewBuilder(0)
	for i := 0; i < 8000; i++ {
		b.Load(uint64(i*32) % (64 * 1024))
	}
	tr := b.Trace()

	one, err := NewSystem(paperConfig(placement.RM), 1)
	if err != nil {
		t.Fatal(err)
	}
	one.Reseed(9)
	r1 := one.RunAll([]trace.Trace{tr})

	four, err := NewSystem(paperConfig(placement.RM), 4)
	if err != nil {
		t.Fatal(err)
	}
	four.Reseed(9)
	r4 := four.RunAll([]trace.Trace{tr, nil, nil, nil})

	if r1[0].Cycles != r4[0].Cycles {
		t.Fatalf("idle peers changed timing: %d vs %d", r1[0].Cycles, r4[0].Cycles)
	}
}

// TestSystemFairness checks that four identical workloads finish within a
// reasonable band of each other under round-robin arbitration.
func TestSystemFairness(t *testing.T) {
	sys, err := NewSystem(paperConfig(placement.RM), 4)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reseed(4)
	mk := func(base uint64) trace.Trace {
		b := trace.NewBuilder(0)
		for i := 0; i < 10000; i++ {
			b.Load(base + uint64(i*32)%(128*1024))
		}
		return b.Trace()
	}
	res := sys.RunAll([]trace.Trace{mk(0), mk(1 << 26), mk(2 << 26), mk(3 << 26)})
	lo, hi := res[0].Cycles, res[0].Cycles
	for _, r := range res[1:] {
		if r.Cycles < lo {
			lo = r.Cycles
		}
		if r.Cycles > hi {
			hi = r.Cycles
		}
	}
	if float64(hi) > 1.25*float64(lo) {
		t.Fatalf("unfair arbitration: fastest %d, slowest %d", lo, hi)
	}
}

// TestStoreHeavyWorkloadAccounting checks stores hit the write-through
// path counters coherently across levels.
func TestStoreHeavyWorkloadAccounting(t *testing.T) {
	c, err := New(paperConfig(placement.Modulo))
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(0)
	const n = 1000
	for i := 0; i < n; i++ {
		b.Store(uint64(i*32) % 4096) // 128 lines, repeatedly stored
	}
	r := c.Run(b.Trace())
	if r.DL1.Accesses != n {
		t.Fatalf("DL1 saw %d accesses", r.DL1.Accesses)
	}
	if r.L2.Accesses != n {
		t.Fatalf("L2 saw %d store propagations, want %d (write-through)", r.L2.Accesses, n)
	}
	// 128 distinct lines allocate in L2 once; the rest hit.
	if r.L2.Misses != 128 {
		t.Fatalf("L2 store misses = %d, want 128", r.L2.Misses)
	}
}
