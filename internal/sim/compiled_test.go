package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/trace"
)

// mixedTrace builds a trace with code, strided data, random data and
// stores — enough pressure that every level misses, evicts and (for the
// write-back L2) writes back.
func mixedTrace(seed uint64, n int) trace.Trace {
	g := prng.New(seed)
	b := trace.NewBuilder(n)
	for i := 0; i < n; i++ {
		switch g.Intn(4) {
		case 0:
			b.Fetch(0x40_0000 + g.Bits(15))
		case 1:
			b.Load(uint64(i*32) % (48 * 1024))
		case 2:
			b.Load(0x100_0000 + g.Bits(18))
		default:
			b.Store(0x200_0000 + g.Bits(17))
		}
	}
	return b.Trace()
}

// TestRunCompiledBitExact is the differential property test of the
// compiled execution path: for every placement kind × replacement policy
// × L1/L2 write-policy arrangement, RunCompiled must reproduce the legacy
// Run bit-for-bit — cycles, per-level hit/miss/eviction/writeback
// counters, and (via the shared RNG state) every subsequent run too.
func TestRunCompiledBitExact(t *testing.T) {
	type writeSetup struct {
		name    string
		l1Write cache.WritePolicy
		l1Alloc bool
		l2Write cache.WritePolicy
	}
	writes := []writeSetup{
		{"wt-noalloc/wb", cache.WriteThrough, false, cache.WriteBack},
		{"wt-alloc/wb", cache.WriteThrough, true, cache.WriteBack},
		{"wb/wt", cache.WriteBack, false, cache.WriteThrough},
		{"wb/wb", cache.WriteBack, false, cache.WriteBack},
		{"wt-noalloc/wt", cache.WriteThrough, false, cache.WriteThrough},
	}
	for _, pk := range placement.Kinds() {
		for _, rk := range []cache.ReplacementKind{cache.LRU, cache.Random, cache.FIFO, cache.PLRU} {
			for _, ws := range writes {
				cfg := paperConfig(pk)
				cfg.IL1.Replacement, cfg.DL1.Replacement, cfg.L2.Replacement = rk, rk, rk
				cfg.DL1.Write, cfg.DL1.AllocOnWrite = ws.l1Write, ws.l1Alloc
				cfg.L2.Write = ws.l2Write

				legacy, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compiled, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tr := mixedTrace(0xD1FF, 30000)
				ct, err := trace.Compile(tr, cfg.IL1.LineBytes)
				if err != nil {
					t.Fatal(err)
				}
				for run := 0; run < 3; run++ {
					seed := prng.Derive(42, run)
					legacy.Reseed(seed)
					compiled.Reseed(seed)
					want := legacy.Run(tr)
					got := compiled.RunCompiled(ct)
					if got != want {
						t.Fatalf("%v/%v/%s run %d: compiled %+v, legacy %+v",
							pk, rk, ws.name, run, got, want)
					}
				}
			}
		}
	}
}

// TestRunCompiledSharedAcrossCores checks the campaign usage pattern: one
// immutable Compiled replayed on several cores stays bit-exact for each.
func TestRunCompiledSharedAcrossCores(t *testing.T) {
	cfg := paperConfig(placement.RM)
	tr := mixedTrace(7, 20000)
	ct, err := trace.Compile(tr, cfg.IL1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 3; core++ {
		legacy, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seed := prng.Derive(9, core)
		legacy.Reseed(seed)
		compiled.Reseed(seed)
		if got, want := compiled.RunCompiled(ct), legacy.Run(tr); got != want {
			t.Fatalf("core %d: compiled %+v, legacy %+v", core, got, want)
		}
	}
}

// TestRunCompiledPlanReuseDeterministic pins the deterministic-plan-reuse
// rule: on a hierarchy whose placements are all seed-invariant
// (Modulo/XORFold), repeat replays of the same Compiled skip the IndexAll
// rebuilds entirely after the first run — and stay bit-exact against the
// legacy loop across reseeds, which is what makes the skip legal.
func TestRunCompiledPlanReuseDeterministic(t *testing.T) {
	cfg := paperConfig(placement.Modulo)
	cfg.L2.Placement = placement.XORFold // fully deterministic hierarchy
	legacy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := mixedTrace(0xCAFE, 20000)
	ct, err := trace.Compile(tr, cfg.IL1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 4; run++ {
		seed := prng.Derive(11, run)
		legacy.Reseed(seed)
		compiled.Reseed(seed)
		if run == 1 {
			// Poison the plans after the first build: if the reuse rule
			// wrongly rebuilt them the poison would be repaired, and if it
			// wrongly kept them without this repair-check the replay would
			// diverge. Repair and verify the skip instead by checking
			// builtFor survives the reseed.
			if compiled.plan.builtFor != ct {
				t.Fatal("plan not retained for the same Compiled")
			}
		}
		if got, want := compiled.RunCompiled(ct), legacy.Run(tr); got != want {
			t.Fatalf("run %d: compiled %+v, legacy %+v", run, got, want)
		}
	}
}

// TestRunCompiledAlternatingTraces replays two different Compiled traces
// alternately on one core: every switch must rebuild the plans (even for
// deterministic placements) because the line tables differ.
func TestRunCompiledAlternatingTraces(t *testing.T) {
	cfg := paperConfig(placement.Modulo)
	legacy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trA := mixedTrace(0xA, 15000)
	trB := mixedTrace(0xB, 12000)
	ctA, err := trace.Compile(trA, cfg.IL1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := trace.Compile(trB, cfg.IL1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		seed := prng.Derive(23, run)
		legacy.Reseed(seed)
		compiled.Reseed(seed)
		tr, ct := trA, ctA
		if run%2 == 1 {
			tr, ct = trB, ctB
		}
		if got, want := compiled.RunCompiled(ct), legacy.Run(tr); got != want {
			t.Fatalf("run %d: compiled %+v, legacy %+v", run, got, want)
		}
	}
}

func TestRunCompiledRejectsLineSizeMismatch(t *testing.T) {
	c, err := New(paperConfig(placement.RM))
	if err != nil {
		t.Fatal(err)
	}
	if !c.SupportsCompiled(32) || c.SupportsCompiled(64) {
		t.Fatal("SupportsCompiled wrong for the paper platform (32B lines)")
	}
	ct, err := trace.Compile(mixedTrace(1, 10), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("line-size mismatch not rejected")
		}
	}()
	c.RunCompiled(ct)
}

func BenchmarkRunLegacy(b *testing.B) { benchRun(b, false) }

func BenchmarkRunCompiled(b *testing.B) { benchRun(b, true) }

func benchRun(b *testing.B, compiled bool) {
	cfg := paperConfig(placement.RM)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := mixedTrace(3, 200000)
	ct, err := trace.Compile(tr, cfg.IL1.LineBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reseed(prng.Derive(5, i))
		if compiled {
			c.RunCompiled(ct)
		} else {
			c.Run(tr)
		}
	}
	b.ReportMetric(float64(len(tr)), "accesses/op")
}
