// Package sim implements the LEON3-like platform timing model on which the
// paper's experiments run: an in-order core with private IL1 and DL1
// caches, a per-core partition of the shared L2, and a fixed-latency
// memory. It substitutes the paper's FPGA prototype (see DESIGN.md): the
// cache behaviour is modelled bit-exactly, the pipeline is reduced to
// cycle accounting, which preserves the placement-induced execution-time
// distributions that MBPTA analyses.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/prng"
	"repro/internal/trace"
)

// Latencies configures the cycle charges of the memory hierarchy.
// Defaults approximate a LEON3-class microcontroller: single-cycle L1,
// on-chip L2 partition, external SDRAM.
type Latencies struct {
	L1Hit     uint64 // cycles per instruction/data access served by L1
	L2Hit     uint64 // extra cycles for an L1 miss served by the L2 partition
	Memory    uint64 // extra cycles for an L2 miss served by memory
	StoreBus  uint64 // cycles per store spent in the write-through path
	Writeback uint64 // cycles per dirty L2 victim pushed to memory
}

// DefaultLatencies returns the LEON3-class latency set used throughout the
// evaluation.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 1, L2Hit: 8, Memory: 28, StoreBus: 2, Writeback: 6}
}

// Validate reports whether a non-zero latency set can drive the platform
// models. Memory must be at least one cycle: the shared-bus model carves
// its transfer slot out of it (busService = max(1, Memory/2)), so a zero
// memory latency would make Memory - busService wrap uint64 and charge
// absurd cycle counts. The other charges may legitimately be zero.
func (l Latencies) Validate() error {
	if l.Memory == 0 {
		return fmt.Errorf("sim: Memory latency must be at least 1 cycle (a fully zero Latencies selects DefaultLatencies)")
	}
	return nil
}

// Normalize resolves the latency set the platform constructors install:
// the zero value selects DefaultLatencies (the legacy convention), any
// partially-specified value must pass Validate. New and NewSystem apply
// this, so a struct with some fields set and Memory left at zero is a
// construction error instead of a uint64 underflow at run time.
func (l Latencies) Normalize() (Latencies, error) {
	if l == (Latencies{}) {
		return DefaultLatencies(), nil
	}
	if err := l.Validate(); err != nil {
		return Latencies{}, err
	}
	return l, nil
}

// Config assembles a single-core platform.
type Config struct {
	IL1, DL1, L2 cache.Config
	Lat          Latencies
}

// Result reports one run of a trace.
type Result struct {
	Cycles   uint64
	Accesses int
	IL1      cache.Stats
	DL1      cache.Stats
	L2       cache.Stats
}

// IPA returns cycles per access, a convenient normalized metric.
func (r Result) IPA() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Accesses)
}

// Core is a single LEON3-like core with its cache hierarchy.
// Not safe for concurrent use.
type Core struct {
	il1, dl1, l2 *cache.Cache
	lat          Latencies

	// plan is the reusable per-run index-plan scratch of the compiled
	// execution path (see RunCompiled).
	plan indexPlan
	// kil1/kdl1/kl2 are the monomorphic replay kernels of the compiled
	// path, bound once per level at construction (each kernel aliases its
	// cache's tag state and pre-selects the access functions for the
	// level's replacement kind and write arrangement).
	kil1, kdl1, kl2 *cache.Kernel
}

// New builds the platform. The L2 configuration describes this core's
// partition of the shared L2 (the paper partitions the L2 across the four
// cores, so a single-task experiment sees a private 128KB slice).
func New(cfg Config) (*Core, error) {
	il1, err := cache.New(cfg.IL1)
	if err != nil {
		return nil, fmt.Errorf("sim: IL1: %w", err)
	}
	dl1, err := cache.New(cfg.DL1)
	if err != nil {
		return nil, fmt.Errorf("sim: DL1: %w", err)
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("sim: L2: %w", err)
	}
	lat, err := cfg.Lat.Normalize()
	if err != nil {
		return nil, err
	}
	return &Core{
		il1: il1, dl1: dl1, l2: l2, lat: lat,
		kil1: cache.NewKernel(il1),
		kdl1: cache.NewKernel(dl1),
		kl2:  cache.NewKernel(l2),
	}, nil
}

// Caches returns the three levels, for inspection and reports.
func (c *Core) Caches() (il1, dl1, l2 *cache.Cache) { return c.il1, c.dl1, c.l2 }

// Reseed draws fresh, independent placement/replacement seeds for every
// cache level from the per-run seed and flushes contents, modelling the
// paper's per-run reseeding of the hardware PRNG.
func (c *Core) Reseed(runSeed uint64) {
	c.il1.Reseed(prng.Derive(runSeed, 1))
	c.dl1.Reseed(prng.Derive(runSeed, 2))
	c.l2.Reseed(prng.Derive(runSeed, 3))
}

// Flush empties all levels without changing seeds (used by the
// deterministic baseline, which has no seeds but starts runs cold).
func (c *Core) Flush() {
	c.il1.Flush()
	c.dl1.Flush()
	c.l2.Flush()
}

// Run executes the trace to completion and returns its cycle count and
// per-level statistics for this run only. Cache contents persist across
// calls; callers start runs with Reseed or Flush, matching the paper's
// run-to-completion analysis unit.
func (c *Core) Run(tr trace.Trace) Result {
	il1Before, dl1Before, l2Before := c.il1.Stats(), c.dl1.Stats(), c.l2.Stats()
	var cycles uint64
	lat := c.lat
	for _, a := range tr {
		switch a.Kind {
		case trace.Fetch:
			cycles += lat.L1Hit
			if !c.il1.Read(a.Addr).Hit {
				cycles += c.l2Read(a.Addr)
			}
		case trace.Load:
			cycles += lat.L1Hit
			if !c.dl1.Read(a.Addr).Hit {
				cycles += c.l2Read(a.Addr)
			}
		default: // Store
			cycles += lat.L1Hit + lat.StoreBus
			c.dl1.Write(a.Addr) // write-through: updates line if present
			r := c.l2.Write(a.Addr)
			if !r.Hit && r.Filled {
				cycles += lat.Memory // write-allocate fill
			}
			if r.Writeback {
				cycles += lat.Writeback
			}
		}
	}
	return Result{
		Cycles:   cycles,
		Accesses: len(tr),
		IL1:      diffStats(il1Before, c.il1.Stats()),
		DL1:      diffStats(dl1Before, c.dl1.Stats()),
		L2:       diffStats(l2Before, c.l2.Stats()),
	}
}

// l2Read serves an L1 read miss from the L2 partition and returns the
// extra cycles beyond the L1 hit charge.
func (c *Core) l2Read(addr uint64) uint64 {
	cycles := c.lat.L2Hit
	r := c.l2.Read(addr)
	if !r.Hit {
		cycles += c.lat.Memory
	}
	if r.Writeback {
		cycles += c.lat.Writeback
	}
	return cycles
}

func diffStats(before, after cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   after.Accesses - before.Accesses,
		Hits:       after.Hits - before.Hits,
		Misses:     after.Misses - before.Misses,
		Evictions:  after.Evictions - before.Evictions,
		Writebacks: after.Writebacks - before.Writebacks,
		Flushes:    after.Flushes - before.Flushes,
	}
}
