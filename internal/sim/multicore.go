package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/trace"
)

// System models the paper's four-core platform: per-core private L1s and
// L2 partitions, with a shared memory bus arbitrated round-robin. The L2
// partitioning removes storage interference (as in the paper); the bus
// model retains bandwidth interference, which is what the MBPTA multicore
// literature the paper cites analyses. This is the substrate behind the
// multicore example and the contention ablation bench.
type System struct {
	cores []*Core
	lat   Latencies
	// busService is the bus occupancy of one memory transaction.
	busService uint64
}

// NewSystem builds n identical cores from cfg.
func NewSystem(cfg Config, n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: system needs at least one core, got %d", n)
	}
	lat, err := cfg.Lat.Normalize()
	if err != nil {
		return nil, err
	}
	s := &System{lat: lat}
	s.busService = s.lat.Memory / 2 // transfer slot; the rest is DRAM latency
	if s.busService == 0 {
		s.busService = 1
	}
	for i := 0; i < n; i++ {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// Cores returns the core models.
func (s *System) Cores() []*Core { return s.cores }

// Reseed reseeds every core with seeds derived from runSeed.
func (s *System) Reseed(runSeed uint64) {
	for i, c := range s.cores {
		c.Reseed(runSeed ^ uint64(i+1)*0x9E3779B97F4A7C15)
	}
}

// RunAll executes one trace per core concurrently under the shared-bus
// model and returns per-core results. Cores with a nil trace idle. As
// with Core.Run, each Result reports this call only: per-level counters
// are diffed against snapshots taken on entry, so repeated RunAll calls
// (or interleaved Core.Run calls) never double-count.
//
// The model is event-driven: each core retires accesses in order; accesses
// that need a memory transaction (L2 miss or L2 writeback) must win the
// bus, which serves one transaction at a time. Arbitration is round-robin:
// among cores whose request is pending when the bus frees, the one
// following the last grantee wins. This is a time-composable bus in the
// sense of the MBPTA multicore designs the paper cites.
func (s *System) RunAll(traces []trace.Trace) []Result {
	n := len(s.cores)
	if len(traces) != n {
		panic("sim: RunAll needs one trace per core")
	}
	results := make([]Result, n)
	clocks := make([]uint64, n) // core-local completion time
	pos := make([]int, n)       // next access index per core
	// Per-call counters are diffs against these snapshots, matching
	// Core.Run: a second RunAll on the same System (or a prior Core.Run)
	// must not leak its accesses/misses into this call's Results.
	type levelSnap struct{ il1, dl1, l2 cache.Stats }
	before := make([]levelSnap, n)
	for i, c := range s.cores {
		il1, dl1, l2 := c.Caches()
		before[i] = levelSnap{il1.Stats(), dl1.Stats(), l2.Stats()}
	}
	var busFreeAt uint64
	lastGrant := n - 1

	for {
		// Pick the next core to advance: the unfinished core with the
		// earliest local clock; round-robin from lastGrant breaks ties so
		// bus contention resolves fairly.
		sel := -1
		for off := 1; off <= n; off++ {
			i := (lastGrant + off) % n
			if traces[i] == nil || pos[i] >= len(traces[i]) {
				continue
			}
			if sel == -1 || clocks[i] < clocks[sel] {
				sel = i
			}
		}
		if sel == -1 {
			break
		}
		c := s.cores[sel]
		a := traces[sel][pos[sel]]
		pos[sel]++
		results[sel].Accesses++

		local, memTxns := c.timeAccess(a)
		t := clocks[sel] + local
		for k := 0; k < memTxns; k++ {
			grant := t
			if busFreeAt > grant {
				grant = busFreeAt
			}
			busFreeAt = grant + s.busService
			lastGrant = sel
			t = grant + s.busService + (s.lat.Memory - s.busService)
		}
		clocks[sel] = t
	}

	for i, c := range s.cores {
		results[i].Cycles = clocks[i]
		il1, dl1, l2 := c.Caches()
		results[i].IL1 = diffStats(before[i].il1, il1.Stats())
		results[i].DL1 = diffStats(before[i].dl1, dl1.Stats())
		results[i].L2 = diffStats(before[i].l2, l2.Stats())
	}
	return results
}

// timeAccess performs the cache state updates of one access and returns the
// core-local cycles plus the number of memory-bus transactions it needs.
func (c *Core) timeAccess(a trace.Access) (local uint64, memTxns int) {
	lat := c.lat
	switch a.Kind {
	case trace.Fetch:
		local = lat.L1Hit
		if !c.il1.Read(a.Addr).Hit {
			local += lat.L2Hit
			r := c.l2.Read(a.Addr)
			if !r.Hit {
				memTxns++
			}
			if r.Writeback {
				memTxns++
			}
		}
	case trace.Load:
		local = lat.L1Hit
		if !c.dl1.Read(a.Addr).Hit {
			local += lat.L2Hit
			r := c.l2.Read(a.Addr)
			if !r.Hit {
				memTxns++
			}
			if r.Writeback {
				memTxns++
			}
		}
	default: // Store
		local = lat.L1Hit + lat.StoreBus
		c.dl1.Write(a.Addr)
		r := c.l2.Write(a.Addr)
		if !r.Hit && r.Filled {
			memTxns++
		}
		if r.Writeback {
			memTxns++
		}
	}
	return local, memTxns
}
