package sim

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/trace"
)

// indexPlan holds the per-run set-index lookup tables of a compiled run:
// one dense []uint32 per (cache level, line stream), materialized by
// placement.IndexAll right after a reseed fixes the mappings. The slices
// live on the Core and are reused across runs, so a campaign's steady
// state allocates nothing per run.
type indexPlan struct {
	il1 []uint32 // IL1 set per instruction line ID
	dl1 []uint32 // DL1 set per data line ID
	l2i []uint32 // L2 set per instruction line ID
	l2d []uint32 // L2 set per data line ID
}

func planSlot(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// SupportsCompiled reports whether compiled traces of the given line size
// can replay on this core: RunCompiled bypasses each level's LineAddr, so
// every level must share the compiled line size. Platforms built from a
// single sim.Config always do.
func (c *Core) SupportsCompiled(lineBytes int) bool {
	return c.il1.Config().LineBytes == lineBytes &&
		c.dl1.Config().LineBytes == lineBytes &&
		c.l2.Config().LineBytes == lineBytes
}

// RunCompiled executes a compiled trace to completion: identical cache
// state transitions, cycle counts, per-level statistics and
// replacement-RNG draws as Run on the source trace — the legacy Run stays
// as the differential oracle — but with the per-access placement hashing
// hoisted out of the loop. Callers fix the run's mapping first (Reseed or
// Flush, as with Run); RunCompiled then materializes one index plan per
// level over the trace's unique lines and replays with array lookups.
//
// This is the MBPTA campaign hot path: a campaign replays the same
// Compiled hundreds of times (it is immutable and shared across worker
// cores) while only the seeds change, so per run the placement policies
// are consulted once per unique line instead of once per access.
//
// RunCompiled panics if the compiled line size does not match every
// level (see SupportsCompiled).
func (c *Core) RunCompiled(ct *trace.Compiled) Result {
	if !c.SupportsCompiled(ct.LineBytes) {
		panic(fmt.Sprintf("sim: RunCompiled: compiled line size %dB does not match all cache levels", ct.LineBytes))
	}
	c.plan.il1 = planSlot(c.plan.il1, len(ct.ILines))
	c.plan.dl1 = planSlot(c.plan.dl1, len(ct.DLines))
	c.plan.l2i = planSlot(c.plan.l2i, len(ct.ILines))
	c.plan.l2d = planSlot(c.plan.l2d, len(ct.DLines))
	placement.IndexAll(c.il1.Policy(), ct.ILines, c.plan.il1)
	placement.IndexAll(c.dl1.Policy(), ct.DLines, c.plan.dl1)
	placement.IndexAll(c.l2.Policy(), ct.ILines, c.plan.l2i)
	placement.IndexAll(c.l2.Policy(), ct.DLines, c.plan.l2d)

	il1Before, dl1Before, l2Before := c.il1.Stats(), c.dl1.Stats(), c.l2.Stats()
	var cycles uint64
	lat := c.lat
	for _, op := range ct.Ops {
		switch op.Kind {
		case trace.Fetch:
			cycles += lat.L1Hit
			la := ct.ILines[op.ID]
			if !c.il1.ReadLine(la, c.plan.il1[op.ID]).Hit {
				cycles += c.l2ReadLine(la, c.plan.l2i[op.ID])
			}
		case trace.Load:
			cycles += lat.L1Hit
			la := ct.DLines[op.ID]
			if !c.dl1.ReadLine(la, c.plan.dl1[op.ID]).Hit {
				cycles += c.l2ReadLine(la, c.plan.l2d[op.ID])
			}
		default: // Store
			cycles += lat.L1Hit + lat.StoreBus
			la := ct.DLines[op.ID]
			c.dl1.WriteLine(la, c.plan.dl1[op.ID]) // write-through: updates line if present
			r := c.l2.WriteLine(la, c.plan.l2d[op.ID])
			if !r.Hit && r.Filled {
				cycles += lat.Memory // write-allocate fill
			}
			if r.Writeback {
				cycles += lat.Writeback
			}
		}
	}
	return Result{
		Cycles:   cycles,
		Accesses: len(ct.Ops),
		IL1:      diffStats(il1Before, c.il1.Stats()),
		DL1:      diffStats(dl1Before, c.dl1.Stats()),
		L2:       diffStats(l2Before, c.l2.Stats()),
	}
}

// l2ReadLine is l2Read with a precomputed L2 set index.
func (c *Core) l2ReadLine(la uint64, set uint32) uint64 {
	cycles := c.lat.L2Hit
	r := c.l2.ReadLine(la, set)
	if !r.Hit {
		cycles += c.lat.Memory
	}
	if r.Writeback {
		cycles += c.lat.Writeback
	}
	return cycles
}
