package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/trace"
)

// indexPlan holds the per-run set-index lookup tables of a compiled run:
// one dense []uint32 per (cache level, line stream), materialized by
// placement.IndexAll right after a reseed fixes the mappings. The slices
// live on the Core and are reused across runs, so a campaign's steady
// state allocates nothing per run.
//
// builtFor remembers which Compiled the current tables describe: plans of
// deterministic (non-Randomized) placement policies are seed-invariant,
// so as long as the same Compiled replays they are rebuilt once and then
// reused across reseeds — a baseline Modulo hierarchy stops paying
// O(uniqueLines) per run, and a mixed hierarchy (deterministic L1s,
// randomized L2) pays it only for the randomized levels.
type indexPlan struct {
	il1 []uint32 // IL1 set per instruction line ID
	dl1 []uint32 // DL1 set per data line ID
	l2i []uint32 // L2 set per instruction line ID
	l2d []uint32 // L2 set per data line ID

	builtFor *trace.Compiled
}

func planSlot(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// SupportsCompiled reports whether compiled traces of the given line size
// can replay on this core: RunCompiled bypasses each level's LineAddr, so
// every level must share the compiled line size. Platforms built from a
// single sim.Config always do.
func (c *Core) SupportsCompiled(lineBytes int) bool {
	return c.il1.Config().LineBytes == lineBytes &&
		c.dl1.Config().LineBytes == lineBytes &&
		c.l2.Config().LineBytes == lineBytes
}

// preparePlans refreshes the per-level index plans for ct. A new Compiled
// (or a first run) sizes and builds everything; on repeat replays of the
// same Compiled only the levels whose placement policy actually
// re-randomizes per seed are rebuilt.
func (c *Core) preparePlans(ct *trace.Compiled) {
	fresh := c.plan.builtFor != ct
	if fresh {
		c.plan.il1 = planSlot(c.plan.il1, len(ct.ILines))
		c.plan.dl1 = planSlot(c.plan.dl1, len(ct.DLines))
		c.plan.l2i = planSlot(c.plan.l2i, len(ct.ILines))
		c.plan.l2d = planSlot(c.plan.l2d, len(ct.DLines))
	}
	if fresh || c.il1.Policy().Randomized() {
		placement.IndexAll(c.il1.Policy(), ct.ILines, c.plan.il1)
	}
	if fresh || c.dl1.Policy().Randomized() {
		placement.IndexAll(c.dl1.Policy(), ct.DLines, c.plan.dl1)
	}
	if fresh || c.l2.Policy().Randomized() {
		placement.IndexAll(c.l2.Policy(), ct.ILines, c.plan.l2i)
		placement.IndexAll(c.l2.Policy(), ct.DLines, c.plan.l2d)
	}
	c.plan.builtFor = ct
}

// RunCompiled executes a compiled trace to completion: identical cache
// state transitions, cycle counts, per-level statistics and
// replacement-RNG draws as Run on the source trace — the legacy Run stays
// as the differential oracle — but with the per-access placement hashing
// hoisted out of the loop and the per-access replacement/write-policy
// branching compiled away into the monomorphic cache.Kernel triple bound
// at platform construction. Callers fix the run's mapping first (Reseed
// or Flush, as with Run); RunCompiled then refreshes the index plans
// (skipping seed-invariant deterministic placements, see preparePlans)
// and replays with array lookups, accumulating statistics in kernel-local
// counters that flush once at run end.
//
// This is the MBPTA campaign hot path: a campaign replays the same
// Compiled hundreds of times (it is immutable and shared across worker
// cores) while only the seeds change.
//
// RunCompiled panics if the compiled line size does not match every
// level (see SupportsCompiled).
//
//rm:hotpath
func (c *Core) RunCompiled(ct *trace.Compiled) Result {
	if !c.SupportsCompiled(ct.LineBytes) {
		badLineSize(ct.LineBytes)
	}
	c.preparePlans(ct)

	k1, kd, k2 := c.kil1, c.kdl1, c.kl2
	k1.Begin()
	kd.Begin()
	k2.Begin()
	il1Plan, dl1Plan, l2iPlan, l2dPlan := c.plan.il1, c.plan.dl1, c.plan.l2i, c.plan.l2d
	var cycles uint64
	lat := c.lat
	for _, op := range ct.Ops {
		switch op.Kind {
		case trace.Fetch:
			cycles += lat.L1Hit
			la := ct.ILines[op.ID]
			if k1.Read(la, il1Plan[op.ID])&cache.BitHit == 0 {
				cycles += lat.L2Hit
				b := k2.Read(la, l2iPlan[op.ID])
				if b&cache.BitHit == 0 {
					cycles += lat.Memory
				}
				if b&cache.BitWriteback != 0 {
					cycles += lat.Writeback
				}
			}
		case trace.Load:
			cycles += lat.L1Hit
			la := ct.DLines[op.ID]
			if kd.Read(la, dl1Plan[op.ID])&cache.BitHit == 0 {
				cycles += lat.L2Hit
				b := k2.Read(la, l2dPlan[op.ID])
				if b&cache.BitHit == 0 {
					cycles += lat.Memory
				}
				if b&cache.BitWriteback != 0 {
					cycles += lat.Writeback
				}
			}
		default: // Store
			cycles += lat.L1Hit + lat.StoreBus
			la := ct.DLines[op.ID]
			kd.Write(la, dl1Plan[op.ID]) // write-through: updates line if present
			b := k2.Write(la, l2dPlan[op.ID])
			if b&cache.BitFilled != 0 {
				cycles += lat.Memory // write-allocate fill
			}
			if b&cache.BitWriteback != 0 {
				cycles += lat.Writeback
			}
		}
	}
	return Result{
		Cycles:   cycles,
		Accesses: len(ct.Ops),
		IL1:      k1.End(),
		DL1:      kd.End(),
		L2:       k2.End(),
	}
}

// badLineSize is RunCompiled's cold panic helper: formatting stays off
// the annotated hot path so the escape-analysis gate
// (scripts/check-noalloc.sh) sees no heap traffic in its span. noinline
// keeps the compiler from folding the Sprintf escape back into the
// caller's span.
//
//go:noinline
func badLineSize(lineBytes int) {
	panic(fmt.Sprintf("sim: RunCompiled: compiled line size %dB does not match all cache levels", lineBytes))
}
