package placement

import (
	"math"
	"math/bits"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func allKinds() []Kind { return Kinds() }

// TestKindsRegistry pins the registry the parser, the CLIs and the
// service catalog derive from: every kind is listed, and every alias
// parses back to its kind.
func TestKindsRegistry(t *testing.T) {
	if got := Kinds(); len(got) != 5 {
		t.Fatalf("Kinds() = %v, want the 5 built-in kinds", got)
	}
	for _, k := range Kinds() {
		aliases := Aliases(k)
		if len(aliases) == 0 {
			t.Errorf("Aliases(%v) is empty", k)
		}
		found := false
		for _, a := range aliases {
			got, err := ParseKind(a)
			if err != nil || got != k {
				t.Errorf("ParseKind(%q) = %v, %v; want %v", a, got, err, k)
			}
			if a == strings.ToLower(k.String()) {
				found = true
			}
		}
		if !found {
			t.Errorf("Aliases(%v) = %v misses the canonical lower-cased %q", k, aliases, strings.ToLower(k.String()))
		}
	}
	if Aliases(Kind(99)) != nil {
		t.Error("Aliases of an unknown kind is not nil")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Modulo: "Modulo", XORFold: "XORFold", HRP: "hRP", RM: "RM"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind String = %q", Kind(99).String())
	}
}

func TestNewRejectsBadSets(t *testing.T) {
	for _, k := range allKinds() {
		for _, sets := range []int{0, 1, 3, 100, -8} {
			if _, err := New(k, sets); err == nil {
				t.Errorf("%v: New with %d sets succeeded", k, sets)
			}
		}
	}
	if _, err := New(Kind(42), 128); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestIndexInRangeAllPolicies(t *testing.T) {
	for _, k := range allKinds() {
		for _, sets := range []int{2, 64, 128, 1024} {
			p, err := New(k, sets)
			if err != nil {
				t.Fatalf("%v/%d: %v", k, sets, err)
			}
			g := prng.New(uint64(sets))
			for seedIdx := 0; seedIdx < 4; seedIdx++ {
				p.Reseed(g.Uint64())
				for i := 0; i < 2000; i++ {
					line := g.Uint64() >> 5
					if idx := p.Index(line); int(idx) >= sets {
						t.Fatalf("%v/%d: index %d out of range for line %#x", k, sets, idx, line)
					}
				}
			}
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	// Fundamental MBPTA requirement: within a run (fixed seed) the mapping
	// is a pure function of the address.
	for _, k := range allKinds() {
		p, err := New(k, 128)
		if err != nil {
			t.Fatal(err)
		}
		q, err := New(k, 128)
		if err != nil {
			t.Fatal(err)
		}
		p.Reseed(777)
		q.Reseed(777)
		g := prng.New(3)
		for i := 0; i < 5000; i++ {
			line := g.Uint64() >> 7
			if p.Index(line) != q.Index(line) {
				t.Fatalf("%v: same seed, different mapping for line %#x", k, line)
			}
		}
	}
}

func TestModuloMatchesMask(t *testing.T) {
	p, err := NewModulo(128)
	if err != nil {
		t.Fatal(err)
	}
	for line := uint64(0); line < 4096; line++ {
		if p.Index(line) != uint32(line%128) {
			t.Fatalf("modulo: line %d -> %d", line, p.Index(line))
		}
	}
}

func TestDeterministicPoliciesIgnoreSeed(t *testing.T) {
	for _, k := range []Kind{Modulo, XORFold} {
		p, err := New(k, 64)
		if err != nil {
			t.Fatal(err)
		}
		before := make([]uint32, 512)
		for i := range before {
			before[i] = p.Index(uint64(i) * 77)
		}
		p.Reseed(123456789)
		for i := range before {
			if p.Index(uint64(i)*77) != before[i] {
				t.Fatalf("%v: mapping changed after Reseed", k)
			}
		}
		if p.Randomized() {
			t.Errorf("%v: Randomized() = true", k)
		}
	}
}

func TestRandomPoliciesChangeAcrossSeeds(t *testing.T) {
	for _, k := range []Kind{HRP, RM} {
		p, err := New(k, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Randomized() {
			t.Fatalf("%v: Randomized() = false", k)
		}
		// Over many seeds, a fixed address must visit more than one set.
		const line = 0x12345
		seen := make(map[uint32]bool)
		for seed := uint64(0); seed < 64; seed++ {
			p.Reseed(seed)
			seen[p.Index(line)] = true
		}
		if len(seen) < 8 {
			t.Errorf("%v: address visited only %d sets over 64 seeds", k, len(seen))
		}
	}
}

func TestXORFoldBreaksWayStride(t *testing.T) {
	// Addresses separated by exactly the way size (same modulo index) are
	// spread by XORFold: that is the point of XOR indexing.
	p, err := NewXORFold(128)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	for i := uint64(0); i < 64; i++ {
		seen[p.Index(i*128)] = true // stride of one way
	}
	if len(seen) < 16 {
		t.Fatalf("XORFold spread way-strided lines over only %d sets", len(seen))
	}
}

// --- hRP behaviour --------------------------------------------------------

func TestHRPUniformAcrossSeeds(t *testing.T) {
	// Paper 3.1: "hRP maps addresses to sets with homogeneous probabilities
	// so that an address is mapped to a particular set with probability
	// 1/S". Chi-square over 8000 seeds for one address, 128 sets.
	p, err := NewHRP(128)
	if err != nil {
		t.Fatal(err)
	}
	const line = 0xABCDE
	const draws = 8000
	counts := make([]int, 128)
	for seed := 0; seed < draws; seed++ {
		p.Reseed(prng.Derive(42, seed))
		counts[p.Index(line)]++
	}
	expected := float64(draws) / 128
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 127 dof: mean 127, sd ~16; accept within 6 sigma.
	if chi > 127+6*16 {
		t.Fatalf("hRP per-address set distribution not uniform: chi2 = %.1f", chi)
	}
}

func TestHRPPairCollisionProbability(t *testing.T) {
	// Paper 3.1: even contiguous lines collide under hRP with probability
	// ~1/S per seed. Estimate over seeds for an adjacent pair.
	p, err := NewHRP(128)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 20000
	coll := 0
	for seed := 0; seed < draws; seed++ {
		p.Reseed(prng.Derive(7, seed))
		if p.Index(1000) == p.Index(1001) {
			coll++
		}
	}
	got := float64(coll) / draws
	want := 1.0 / 128
	// Standard error ~ sqrt(p(1-p)/n) ~ 0.00062; accept within 5 sigma.
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/draws) {
		t.Fatalf("hRP same-segment collision probability %.5f, want ~%.5f", got, want)
	}
}

func TestHRPAffineOverGF2(t *testing.T) {
	// For a fixed seed the hash must be affine: h(a)^h(b)^h(c)^h(d) == 0
	// whenever a^b^c^d == 0. This is the function class of the rotate/XOR
	// netlist in Figure 2.
	p, err := NewHRP(256)
	if err != nil {
		t.Fatal(err)
	}
	p.Reseed(99)
	g := prng.New(5)
	for i := 0; i < 2000; i++ {
		a := g.Bits(HashedAddressBits)
		b := g.Bits(HashedAddressBits)
		c := g.Bits(HashedAddressBits)
		d := a ^ b ^ c
		x := p.Index(a) ^ p.Index(b) ^ p.Index(c) ^ p.Index(d)
		if x != 0 {
			t.Fatalf("hRP not affine: residual %#x", x)
		}
	}
}

func TestHRPNeedsIndexInTag(t *testing.T) {
	p, _ := NewHRP(128)
	if !p.NeedsIndexInTag() {
		t.Fatal("hRP must store index bits in the tag array (paper 3.1)")
	}
	m, _ := NewModulo(128)
	if m.NeedsIndexInTag() {
		t.Fatal("modulo must not need index bits in the tag array")
	}
	r, _ := NewRM(128)
	if r.NeedsIndexInTag() {
		t.Fatal("RM must not need index bits in the tag array (paper 3.2)")
	}
}

// --- RM behaviour ----------------------------------------------------------

func TestRMSegmentInjectivityProperty(t *testing.T) {
	// THE property of the paper (Section 3.2):
	//   setmod(A) != setmod(B) and same segment  =>  setrm(A) != setrm(B)
	// for every seed.
	p, err := NewRM(128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, segment uint32, ia, ib uint8) bool {
		p.Reseed(seed)
		a := uint64(segment)<<7 | uint64(ia&0x7F)
		b := uint64(segment)<<7 | uint64(ib&0x7F)
		if a == b {
			return p.Index(a) == p.Index(b)
		}
		return p.Index(a) != p.Index(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRMFullSegmentCoversAllSets(t *testing.T) {
	// A full segment (one line per modulo index) must occupy every set
	// exactly once under RM: spatial locality is fully preserved.
	for _, sets := range []int{64, 128, 1024} {
		p, err := NewRM(sets)
		if err != nil {
			t.Fatal(err)
		}
		nb := uint(bits.TrailingZeros(uint(sets)))
		for seed := uint64(0); seed < 16; seed++ {
			p.Reseed(seed)
			seen := make([]bool, sets)
			segment := uint64(0x5A5A)
			for i := 0; i < sets; i++ {
				idx := p.Index(segment<<nb | uint64(i))
				if seen[idx] {
					t.Fatalf("sets=%d seed=%d: set %d hit twice within one segment", sets, seed, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestRMPreservesIndexPopcount(t *testing.T) {
	// RM permutes index *bits*, so the popcount of the modulo index is
	// invariant. This is a structural property of the design (and the
	// reason the paper notes the per-set probability need not be
	// homogeneous).
	p, err := NewRM(128)
	if err != nil {
		t.Fatal(err)
	}
	g := prng.New(8)
	for i := 0; i < 3000; i++ {
		line := g.Uint64() >> 3
		p.Reseed(g.Uint64())
		mod := int(line & 127)
		idx := int(p.Index(line))
		if bits.OnesCount(uint(mod)) != bits.OnesCount(uint(idx)) {
			t.Fatalf("popcount changed: mod %07b -> rm %07b", mod, idx)
		}
	}
}

func TestRMDifferentSegmentsDifferentPermutations(t *testing.T) {
	// Permutations must vary across segments for a fixed seed, otherwise
	// RM would be a single global bit-permutation with far fewer layouts.
	p, err := NewRM(128)
	if err != nil {
		t.Fatal(err)
	}
	p.Reseed(2718)
	distinct := 0
	const segments = 64
	base := make([]uint32, 128)
	for i := range base {
		base[i] = p.Index(uint64(i)) // segment 0
	}
	for s := uint64(1); s < segments; s++ {
		same := true
		for i := 0; i < 128; i++ {
			if p.Index(s<<7|uint64(i)) != base[i] {
				same = false
				break
			}
		}
		if !same {
			distinct++
		}
	}
	if distinct < segments/2 {
		t.Fatalf("only %d/%d segments got a permutation distinct from segment 0", distinct, segments-1)
	}
}

func TestRMSeedChangesLayout(t *testing.T) {
	p, err := NewRM(128)
	if err != nil {
		t.Fatal(err)
	}
	layout := func(seed uint64) []uint32 {
		p.Reseed(seed)
		out := make([]uint32, 256)
		for i := range out {
			out[i] = p.Index(uint64(i))
		}
		return out
	}
	a := layout(1)
	changed := 0
	for seed := uint64(2); seed < 34; seed++ {
		b := layout(seed)
		for i := range a {
			if a[i] != b[i] {
				changed++
				break
			}
		}
	}
	if changed < 30 {
		t.Fatalf("layout identical to seed 1 for %d of 32 seeds", 32-changed)
	}
}

func TestRMUpperBitChangeChangesControl(t *testing.T) {
	// Paper: "small changes in address upper bits lead to different index
	// permutations". Flipping any single upper bit must change the mapping
	// of at least one index for most seeds.
	p, err := NewRM(128)
	if err != nil {
		t.Fatal(err)
	}
	changedSeeds := 0
	for seed := uint64(0); seed < 32; seed++ {
		p.Reseed(seed)
		base := uint64(0x40) << 7
		flip := base ^ 1<<7 // flip lowest upper bit
		diff := false
		for i := uint64(0); i < 128; i++ {
			if p.Index(base|i) != p.Index(flip|i) {
				diff = true
				break
			}
		}
		if diff {
			changedSeeds++
		}
	}
	if changedSeeds < 24 {
		t.Fatalf("upper-bit flip changed the permutation for only %d/32 seeds", changedSeeds)
	}
}

func TestRMRotSegmentInjectivity(t *testing.T) {
	// The rotation-only ablation keeps RM's guarantee: same segment,
	// different modulo index => different set, for every seed.
	p, err := NewRMRot(128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, segment uint32, ia, ib uint8) bool {
		p.Reseed(seed)
		a := uint64(segment)<<7 | uint64(ia&0x7F)
		b := uint64(segment)<<7 | uint64(ib&0x7F)
		if a == b {
			return p.Index(a) == p.Index(b)
		}
		return p.Index(a) != p.Index(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRMRotReachesOnlyRotations(t *testing.T) {
	// Structural weakness vs full RM: for a fixed segment, the layouts
	// reachable across seeds are exactly the S cyclic rotations of the
	// modulo layout -- every index shifts by the same offset.
	p, err := NewRMRot(128)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 50; seed++ {
		p.Reseed(seed)
		off := (int(p.Index(0)) - 0 + 128) % 128
		for i := uint64(1); i < 128; i++ {
			want := (int(i) + off) % 128
			if int(p.Index(i)) != want {
				t.Fatalf("seed %d: index %d -> %d, expected rotation by %d", seed, i, p.Index(i), off)
			}
		}
	}
}

func TestRMRotUniformAcrossSeeds(t *testing.T) {
	p, err := NewRMRot(128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 128)
	const draws = 6400
	for seed := 0; seed < draws; seed++ {
		p.Reseed(prng.Derive(3, seed))
		counts[p.Index(0x51234)]++
	}
	expected := float64(draws) / 128
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if chi > 127+6*16 {
		t.Fatalf("RM-rot offset distribution not uniform: chi2 = %.1f", chi)
	}
}

func TestControlBitsAccessor(t *testing.T) {
	r, _ := NewRM(128) // 7 index bits -> 15 switches
	if got := ControlBits(r); got != 15 {
		t.Fatalf("RM(128 sets) control bits = %d, want 15", got)
	}
	r256, _ := NewRM(256) // 8 index bits -> 20 switches (paper's quote)
	if got := ControlBits(r256); got != 20 {
		t.Fatalf("RM(256 sets) control bits = %d, want 20", got)
	}
	m, _ := NewModulo(128)
	if got := ControlBits(m); got != 0 {
		t.Fatalf("ControlBits(modulo) = %d, want 0", got)
	}
}

func TestQuickHRPAndRMIndexStability(t *testing.T) {
	// Property: Index is a pure function between Reseeds, for both
	// randomized policies.
	h, _ := NewHRP(128)
	r, _ := NewRM(128)
	f := func(seed, line uint64) bool {
		h.Reseed(seed)
		r.Reseed(seed)
		hi, ri := h.Index(line), r.Index(line)
		for i := 0; i < 3; i++ {
			if h.Index(line) != hi || r.Index(line) != ri {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexModulo(b *testing.B)  { benchIndex(b, Modulo) }
func BenchmarkIndexXORFold(b *testing.B) { benchIndex(b, XORFold) }
func BenchmarkIndexHRP(b *testing.B)     { benchIndex(b, HRP) }
func BenchmarkIndexRM(b *testing.B)      { benchIndex(b, RM) }

func benchIndex(b *testing.B, k Kind) {
	p, err := New(k, 128)
	if err != nil {
		b.Fatal(err)
	}
	p.Reseed(1)
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= p.Index(uint64(i) * 0x9E3779B9)
	}
	_ = sink
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"modulo": Modulo, "Modulo": Modulo, "xor": XORFold, "XORFold": XORFold,
		"hRP": HRP, "HRP": HRP, "rm": RM, "RM-rot": RMRot, "rmrot": RMRot,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("random"); err == nil {
		t.Error("unknown placement name accepted")
	}
}

// TestKindRoundTrip: ParseKind(k.String()) succeeds and returns k, for
// every Kind -- the contract the wire codec and the CLIs lean on.
func TestKindRoundTrip(t *testing.T) {
	for _, k := range allKinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

// TestParseKindCaseInsensitive is a property test: ParseKind accepts any
// casing of every documented name and alias, always yielding the same
// Kind. The case mask drives which letters are upper-cased.
func TestParseKindCaseInsensitive(t *testing.T) {
	names := map[string]Kind{
		"modulo":  Modulo,
		"xorfold": XORFold, "xor": XORFold,
		"hrp":    HRP,
		"rm":     RM,
		"rm-rot": RMRot, "rmrot": RMRot,
	}
	// Canonical String() spellings are documented names too.
	for _, k := range allKinds() {
		names[strings.ToLower(k.String())] = k
	}
	recase := func(s string, mask uint64) string {
		b := []byte(strings.ToLower(s))
		for i := range b {
			if mask&(1<<uint(i%64)) != 0 && b[i] >= 'a' && b[i] <= 'z' {
				b[i] -= 'a' - 'A'
			}
		}
		return string(b)
	}
	f := func(mask uint64) bool {
		for name, want := range names {
			got, err := ParseKind(recase(name, mask))
			if err != nil || got != want {
				t.Logf("ParseKind(%q) = %v, %v; want %v", recase(name, mask), got, err, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
