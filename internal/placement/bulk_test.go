package placement

import (
	"testing"

	"repro/internal/prng"
)

// TestIndexAllMatchesIndex pins the index-plan primitive's contract: for
// every built-in policy, set count and seed, IndexAll fills exactly the
// values Index returns line by line — including interleavings with
// scalar Index calls, which must not perturb the bulk results (the RM
// memo is shared state).
func TestIndexAllMatchesIndex(t *testing.T) {
	for _, k := range Kinds() {
		for _, sets := range []int{2, 8, 128, 256} {
			p, err := New(k, sets)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 5; seed++ {
				p.Reseed(seed)
				g := prng.New(seed ^ 0xB0B)
				lines := make([]uint64, 500)
				for i := range lines {
					// Mix clustered lines (same segment, the common case for
					// first-touch tables) with far-flung ones.
					if i%4 == 0 {
						lines[i] = g.Bits(40)
					} else {
						lines[i] = lines[max(i-1, 0)] + g.Bits(3)
					}
				}
				out := make([]uint32, len(lines))
				IndexAll(p, lines, out)
				for i, line := range lines {
					if want := p.Index(line); out[i] != want {
						t.Fatalf("%v sets=%d seed=%d: IndexAll[%d]=%d, Index(%#x)=%d",
							k, sets, seed, i, out[i], line, want)
					}
				}
				// A second bulk pass after the scalar sweep must agree too.
				out2 := make([]uint32, len(lines))
				IndexAll(p, lines, out2)
				for i := range out {
					if out[i] != out2[i] {
						t.Fatalf("%v sets=%d seed=%d: IndexAll not idempotent at %d", k, sets, seed, i)
					}
				}
			}
		}
	}
}

// fallbackPolicy hides the bulk fast path to exercise IndexAll's generic
// branch.
type fallbackPolicy struct{ Policy }

func TestIndexAllFallback(t *testing.T) {
	p, err := New(RM, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.Reseed(9)
	lines := []uint64{0, 1, 63, 64, 1 << 20, 1<<20 + 1}
	fast := make([]uint32, len(lines))
	slow := make([]uint32, len(lines))
	IndexAll(p, lines, fast)
	IndexAll(fallbackPolicy{p}, lines, slow)
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("fast path disagrees with generic fallback at %d: %d vs %d", i, fast[i], slow[i])
		}
	}
}

func TestIndexAllLengthMismatchPanics(t *testing.T) {
	p, err := New(Modulo, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	IndexAll(p, make([]uint64, 3), make([]uint32, 2))
}
