// Package placement implements cache set-placement functions, including
// the Random Modulo (RM) policy that is the contribution of the paper, the
// hash-based random placement (hRP) it improves upon, and the deterministic
// baselines (modulo and XOR-fold) it is compared against.
//
// A placement policy maps a cache-line address (the memory address with the
// line-offset bits already stripped) to a set index. Deterministic policies
// fix this mapping forever; MBPTA-compliant policies re-randomize it on
// every Reseed, which the platform invokes once per program run.
//
// Terminology from the paper: for a cache with S sets and L-byte lines, the
// *cache way size* is CWb = S*L bytes, and all addresses with the same
// value of floor(addr/CWb) belong to the same *cache segment*. RM's
// defining guarantee is that two addresses in the same segment that map to
// different sets under modulo also map to different sets under RM, for
// every seed.
package placement

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/benes"
	"repro/internal/prng"
)

// Policy maps cache-line addresses to set indices.
//
// Implementations are deterministic functions of (current seed, line
// address); Reseed installs a new seed. Policies are not safe for
// concurrent use; each cache instance owns its policy.
type Policy interface {
	// Name returns the short policy name used in reports ("RM", "hRP", ...).
	Name() string
	// Sets returns the number of cache sets the policy maps onto.
	Sets() int
	// Index returns the set index for a cache-line address, in [0, Sets).
	Index(line uint64) uint32
	// Reseed installs a fresh per-run random seed. Deterministic policies
	// ignore it.
	Reseed(seed uint64)
	// Randomized reports whether the mapping changes across seeds, i.e.
	// whether the policy is a candidate for MBPTA compliance.
	Randomized() bool
	// NeedsIndexInTag reports whether the reference hardware design must
	// store the index bits in the tag array to reconstruct a victim's
	// address (true for hash placements, false for modulo and for RM on
	// the write-through caches the paper targets).
	NeedsIndexInTag() bool
}

// Kind enumerates the built-in policies.
type Kind int

// Placement policy kinds.
const (
	Modulo  Kind = iota // conventional modulo indexing (deterministic)
	XORFold             // deterministic XOR-folded indexing (Gonzalez-style)
	HRP                 // hash-based random placement (Kosmidis et al.)
	RM                  // random modulo (this paper)
	RMRot               // rotation-only random modulo (ablation: S layouts/segment)
)

// String returns the report name of the kind.
func (k Kind) String() string {
	switch k {
	case Modulo:
		return "Modulo"
	case XORFold:
		return "XORFold"
	case HRP:
		return "hRP"
	case RM:
		return "RM"
	case RMRot:
		return "RM-rot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every built-in placement kind in declaration order --
// the single registry behind ParseKind, the CLIs and the service
// catalog.
func Kinds() []Kind { return []Kind{Modulo, XORFold, HRP, RM, RMRot} }

// Aliases returns the lower-case spellings ParseKind accepts for a kind
// (the canonical String() form lower-cased, plus the documented short
// aliases). Unknown kinds return nil.
func Aliases(k Kind) []string {
	switch k {
	case Modulo:
		return []string{"modulo"}
	case XORFold:
		return []string{"xorfold", "xor"}
	case HRP:
		return []string{"hrp"}
	case RM:
		return []string{"rm"}
	case RMRot:
		return []string{"rm-rot", "rmrot"}
	}
	return nil
}

// ParseKind parses a user-facing placement name (case-insensitive; the
// String() forms plus the Aliases), the shared flag parser of the rmsim
// and mbpta commands and of the campaign service codec.
func ParseKind(s string) (Kind, error) {
	ls := strings.ToLower(s)
	for _, k := range Kinds() {
		for _, a := range Aliases(k) {
			if ls == a {
				return k, nil
			}
		}
	}
	return 0, fmt.Errorf("unknown placement %q (want Modulo, XORFold, hRP, RM or RM-rot)", s)
}

// New constructs a policy of the given kind for a cache with sets sets.
// sets must be a power of two and at least 2.
func New(kind Kind, sets int) (Policy, error) {
	switch kind {
	case Modulo:
		return NewModulo(sets)
	case XORFold:
		return NewXORFold(sets)
	case HRP:
		return NewHRP(sets)
	case RM:
		return NewRM(sets)
	case RMRot:
		return NewRMRot(sets)
	default:
		return nil, fmt.Errorf("placement: unknown kind %d", int(kind))
	}
}

// indexBits validates sets and returns log2(sets).
func indexBits(sets int) (uint, error) {
	if sets < 2 || sets&(sets-1) != 0 {
		return 0, fmt.Errorf("placement: sets must be a power of two >= 2, got %d", sets)
	}
	return uint(bits.TrailingZeros(uint(sets))), nil
}

// SegmentOf returns the cache segment of a line address for a cache with
// the given number of index bits: all lines sharing a segment fit in one
// cache way and are the subject of RM's no-conflict guarantee.
func SegmentOf(line uint64, idxBits uint) uint64 { return line >> idxBits }

// bulkIndexer is the optional fast path behind IndexAll: built-in
// policies implement it to map a whole slice of lines without the
// per-call interface dispatch (and, for RM, without re-deriving the Benes
// control word for every line of a segment).
type bulkIndexer interface {
	indexAll(lines []uint64, out []uint32)
}

// IndexAll maps every line address in lines to its set index under the
// policy's current seed, writing the results into out (which must have
// the same length). Results are bit-identical to calling p.Index on each
// line in order; the built-in policies merely do it faster. This is the
// campaign "index plan" primitive: each Reseed, one IndexAll per cache
// level over the trace's unique lines replaces per-access hashing for the
// whole run (see sim.Core.RunCompiled).
//
//rm:hotpath
func IndexAll(p Policy, lines []uint64, out []uint32) {
	if len(lines) != len(out) {
		indexAllMismatch(len(lines), len(out))
	}
	if b, ok := p.(bulkIndexer); ok {
		b.indexAll(lines, out)
		return
	}
	for i, line := range lines {
		out[i] = p.Index(line)
	}
}

// indexAllMismatch is IndexAll's cold panic helper: formatting stays off
// the annotated hot path so the escape-analysis gate sees no heap
// traffic in its span. noinline keeps the compiler from folding the
// Sprintf escape back into the caller's span.
//
//go:noinline
func indexAllMismatch(lines, out int) {
	panic(fmt.Sprintf("placement: IndexAll length mismatch: %d lines, %d out", lines, out))
}

// ---------------------------------------------------------------------------
// Modulo

// moduloPolicy is conventional power-of-two modulo placement.
type moduloPolicy struct {
	sets int
	mask uint64
}

// NewModulo returns conventional modulo placement over sets sets.
func NewModulo(sets int) (Policy, error) {
	if _, err := indexBits(sets); err != nil {
		return nil, err
	}
	return &moduloPolicy{sets: sets, mask: uint64(sets - 1)}, nil
}

func (p *moduloPolicy) Name() string             { return "Modulo" }
func (p *moduloPolicy) Sets() int                { return p.sets }
func (p *moduloPolicy) Index(line uint64) uint32 { return uint32(line & p.mask) }
func (p *moduloPolicy) Reseed(uint64)            {}
func (p *moduloPolicy) Randomized() bool         { return false }
func (p *moduloPolicy) NeedsIndexInTag() bool    { return false }

// indexAll and its siblings below call Index on the concrete receiver:
// one hash body per policy stays the single source of truth, and the
// bulk entry point only sheds the per-line interface dispatch (RM's
// variant additionally hoists the control-word derivation).
//
//rm:hotpath
func (p *moduloPolicy) indexAll(lines []uint64, out []uint32) {
	for i, line := range lines {
		out[i] = p.Index(line)
	}
}

// ---------------------------------------------------------------------------
// XORFold

// xorFoldPolicy is a deterministic hash placement in the family of
// XOR-based indexing functions (Gonzalez et al., ICS 1997): the set index
// is the XOR of consecutive index-width chunks of the line address. It
// breaks pathological strides but, being fixed, stays deterministic: a bad
// layout is bad on every run, which is why such designs are not
// MBPTA-compliant (paper, Section 5).
type xorFoldPolicy struct {
	sets    int
	idxBits uint
	mask    uint64
}

// NewXORFold returns deterministic XOR-folded placement over sets sets.
func NewXORFold(sets int) (Policy, error) {
	nb, err := indexBits(sets)
	if err != nil {
		return nil, err
	}
	return &xorFoldPolicy{sets: sets, idxBits: nb, mask: uint64(sets - 1)}, nil
}

func (p *xorFoldPolicy) Name() string { return "XORFold" }
func (p *xorFoldPolicy) Sets() int    { return p.sets }

func (p *xorFoldPolicy) Index(line uint64) uint32 {
	v := uint64(0)
	for x := line; x != 0; x >>= p.idxBits {
		v ^= x & p.mask
	}
	return uint32(v)
}

func (p *xorFoldPolicy) Reseed(uint64)         {}
func (p *xorFoldPolicy) Randomized() bool      { return false }
func (p *xorFoldPolicy) NeedsIndexInTag() bool { return true }

//rm:hotpath
func (p *xorFoldPolicy) indexAll(lines []uint64, out []uint32) {
	for i, line := range lines {
		out[i] = p.Index(line)
	}
}

// ---------------------------------------------------------------------------
// hRP

// HashedAddressBits is the number of line-address bits fed to the hRP
// parametric hash in the reference design: 32-bit addresses minus the
// 5 offset bits (paper, Section 3.1).
const HashedAddressBits = 27

// hrpPolicy is hash-based random placement: a per-seed random affine map
// over GF(2) from the line-address bits to the index bits.
//
// The hardware design (paper Figure 2) builds the hash from seed-controlled
// rotate blocks feeding a cascade of 2-input XOR gates; for any fixed seed
// the resulting function is affine over GF(2) in the address bits. The
// simulator implements exactly that function class: on Reseed it draws a
// random bit-matrix row per index bit plus an affine constant, and Index
// computes parity(line & row) ^ constant per bit. This preserves the two
// properties the paper analyses: (i) each address is mapped to each set
// with homogeneous probability 1/S across seeds, and (ii) any pair of
// distinct addresses collides with probability ~1/S per seed -- including
// pairs inside the same cache segment, which is the weakness RM removes.
type hrpPolicy struct {
	sets     int
	idxBits  uint
	addrMask uint64
	rows     []uint64 // one GF(2) row mask per index bit
	consts   uint32   // affine constant, one bit per index bit
}

// NewHRP returns hash-based random placement over sets sets, hashing the
// low HashedAddressBits bits of the line address. The policy must be
// Reseeded before first use; New installs seed 0 so the zero value is
// usable in tests.
func NewHRP(sets int) (Policy, error) {
	nb, err := indexBits(sets)
	if err != nil {
		return nil, err
	}
	p := &hrpPolicy{
		sets:     sets,
		idxBits:  nb,
		addrMask: 1<<HashedAddressBits - 1,
		rows:     make([]uint64, nb),
	}
	p.Reseed(0)
	return p, nil
}

func (p *hrpPolicy) Name() string { return "hRP" }
func (p *hrpPolicy) Sets() int    { return p.sets }

func (p *hrpPolicy) Reseed(seed uint64) {
	g := prng.New(seed ^ 0x68525021) // domain-separate from other seed users
	for i := range p.rows {
		// Draw until the row is non-zero so no index bit degenerates to a
		// constant; a zero row would make the placement ignore the address
		// in that bit, which the rotate/XOR netlist cannot do either.
		for {
			row := g.Bits(HashedAddressBits)
			if row != 0 {
				p.rows[i] = row
				break
			}
		}
	}
	p.consts = uint32(g.Bits(int(p.idxBits)))
}

func (p *hrpPolicy) Index(line uint64) uint32 {
	a := line & p.addrMask
	v := p.consts
	for i, row := range p.rows {
		v ^= uint32(bits.OnesCount64(a&row)&1) << uint(i)
	}
	return v
}

func (p *hrpPolicy) Randomized() bool      { return true }
func (p *hrpPolicy) NeedsIndexInTag() bool { return true }

//rm:hotpath
func (p *hrpPolicy) indexAll(lines []uint64, out []uint32) {
	for i, line := range lines {
		out[i] = p.Index(line)
	}
}

// ---------------------------------------------------------------------------
// RM

// rmPolicy is Random Modulo placement (paper, Section 3.2 / Figure 3): the
// modulo index bits are pushed through a Benes permutation network whose
// control word is derived by XOR-combining the upper address bits with the
// per-run random seed. Addresses in the same cache segment share upper bits
// and therefore the permutation, so distinct modulo indices stay distinct:
// contiguous footprints that fit in one way never self-conflict, for any
// seed. Across segments the permutations differ, and across seeds every
// segment's permutation is re-drawn.
type rmPolicy struct {
	sets     int
	idxBits  uint
	idxMask  uint64
	net      *benes.Network
	ctrlBits uint
	ctrlMask uint64
	seedLow  uint64 // expanded seed material XORed into the control word
	seedTop  uint64 // the "uppermost seed bit(s)" concatenated with the upper address bits

	// Segment-to-control memo: programs touch few segments and sweep them
	// repeatedly, so a small direct-mapped cache of derived control words
	// removes the fold from the hot path. Pure optimization; Index results
	// are identical with the memo disabled.
	memoSeg  [16]uint64
	memoCtrl [16]uint64
	memoOK   [16]bool
}

// NewRM returns Random Modulo placement over sets sets. The Benes network
// width equals the index width (7 for the paper's 128-set L1, for which the
// network has 15 switches; the paper's 8-bit illustration has 20).
func NewRM(sets int) (Policy, error) {
	nb, err := indexBits(sets)
	if err != nil {
		return nil, err
	}
	net, err := benes.New(int(nb))
	if err != nil {
		return nil, err
	}
	if net.Switches() > 64 {
		return nil, fmt.Errorf("placement: RM control word for %d sets exceeds 64 bits", sets)
	}
	p := &rmPolicy{
		sets:     sets,
		idxBits:  nb,
		idxMask:  uint64(sets - 1),
		net:      net,
		ctrlBits: uint(net.Switches()),
		ctrlMask: 1<<uint(net.Switches()) - 1,
	}
	p.Reseed(0)
	return p, nil
}

func (p *rmPolicy) Name() string { return "RM" }
func (p *rmPolicy) Sets() int    { return p.sets }

func (p *rmPolicy) Reseed(seed uint64) {
	// Expand the architectural seed register into the two words the
	// reference design consumes: the bits XORed against the upper address
	// bits, and the bits concatenated alongside them (paper: "we
	// concatenate the 19 upper address bits with the uppermost bit of the
	// random seed and XOR them with the following 20 bits of the seed").
	g := prng.New(seed ^ 0x524D5021) // domain-separate from other seed users
	p.seedLow = g.Uint64()
	p.seedTop = g.Uint64()
	p.memoOK = [16]bool{}
}

// control derives the Benes control word for a segment (the upper address
// bits above the index). A single-bit change in the segment flips at least
// one control bit, as the paper requires ("small changes in address upper
// bits lead to different index permutations").
//
//rm:hotpath
func (p *rmPolicy) control(segment uint64) uint64 {
	if p.ctrlBits == 0 {
		// A 2-set cache has a single index bit and nothing to permute:
		// RM degenerates to modulo.
		return 0
	}
	// Concatenate one seed bit above the segment bits, then fold to the
	// control width by XOR of ctrlBits-wide chunks, then XOR the seed.
	x := segment<<1 | (p.seedTop & 1)
	var folded uint64
	for ; x != 0; x >>= p.ctrlBits {
		folded ^= x & p.ctrlMask
	}
	return (folded ^ p.seedLow) & p.ctrlMask
}

func (p *rmPolicy) Index(line uint64) uint32 {
	mod := line & p.idxMask
	seg := line >> p.idxBits
	slot := seg & 15
	var ctrl uint64
	if p.memoOK[slot] && p.memoSeg[slot] == seg {
		ctrl = p.memoCtrl[slot]
	} else {
		ctrl = p.control(seg)
		p.memoSeg[slot], p.memoCtrl[slot], p.memoOK[slot] = seg, ctrl, true
	}
	return uint32(p.net.PermuteBits(ctrl, mod))
}

func (p *rmPolicy) Randomized() bool      { return true }
func (p *rmPolicy) NeedsIndexInTag() bool { return false }

// indexAll derives the Benes control word once per segment run instead of
// per line: unique-line tables arrive in first-touch order, so lines of
// the same segment cluster and the control fold amortizes away. The
// per-line permutation is the same PermuteBits walk as Index, so results
// are bit-identical (control is a pure function of the segment; the
// direct-mapped Index memo is left untouched).
//
//rm:hotpath
func (p *rmPolicy) indexAll(lines []uint64, out []uint32) {
	var (
		lastSeg  uint64
		lastCtrl uint64
		haveSeg  bool
	)
	for i, line := range lines {
		seg := line >> p.idxBits
		if !haveSeg || seg != lastSeg {
			lastSeg, lastCtrl, haveSeg = seg, p.control(seg), true
		}
		out[i] = uint32(p.net.PermuteBits(lastCtrl, line&p.idxMask))
	}
}

// ControlBits returns the number of Benes control bits of an RM policy,
// for hardware-cost accounting; it returns 0 for other policies.
func ControlBits(p Policy) int {
	if rm, ok := p.(*rmPolicy); ok {
		return int(rm.ctrlBits)
	}
	return 0
}

// ---------------------------------------------------------------------------
// RM-rot (ablation)

// rmRotPolicy is the rotation-only Random Modulo variant used as an
// ablation in the benchmark harness: instead of a Benes bit permutation it
// adds a seed- and segment-dependent offset to the modulo index (a
// circular rotation of the set array). It keeps RM's segment-injectivity
// guarantee -- the offset is constant within a segment, so distinct modulo
// indices stay distinct -- but reaches only S layouts per segment instead
// of the Benes network's factorially many, which weakens layout diversity
// across runs and therefore MBPTA representativeness.
type rmRotPolicy struct {
	sets    int
	idxBits uint
	idxMask uint64
	seedA   uint64
	seedB   uint64
}

// NewRMRot returns the rotation-only RM variant over sets sets.
func NewRMRot(sets int) (Policy, error) {
	nb, err := indexBits(sets)
	if err != nil {
		return nil, err
	}
	p := &rmRotPolicy{sets: sets, idxBits: nb, idxMask: uint64(sets - 1)}
	p.Reseed(0)
	return p, nil
}

func (p *rmRotPolicy) Name() string { return "RM-rot" }
func (p *rmRotPolicy) Sets() int    { return p.sets }

func (p *rmRotPolicy) Reseed(seed uint64) {
	g := prng.New(seed ^ 0x524F5421)
	p.seedA = g.Uint64()
	p.seedB = g.Uint64() | 1 // odd multiplier: bijective mixing of segments
}

func (p *rmRotPolicy) Index(line uint64) uint32 {
	mod := line & p.idxMask
	seg := line >> p.idxBits
	// Offset derived from (segment, seed) via a multiply-xor mix; constant
	// per segment, near-uniform across seeds.
	m := (seg ^ p.seedA) * p.seedB
	off := (m >> 32) & p.idxMask
	return uint32((mod + off) & p.idxMask)
}

func (p *rmRotPolicy) Randomized() bool      { return true }
func (p *rmRotPolicy) NeedsIndexInTag() bool { return false }

//rm:hotpath
func (p *rmRotPolicy) indexAll(lines []uint64, out []uint32) {
	for i, line := range lines {
		out[i] = p.Index(line)
	}
}
