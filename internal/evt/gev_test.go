package evt

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestGEVReducesToGumbelAtZeroShape(t *testing.T) {
	g := GEV{Xi: 100, Alpha: 10, K: 0}
	gu := Gumbel{Mu: 100, Beta: 10}
	for _, x := range []float64{80, 100, 120, 150} {
		if !almost(g.CDF(x), gu.CDF(x), 1e-12) {
			t.Fatalf("CDF mismatch at %f", x)
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if !almost(g.Quantile(p), gu.Quantile(p), 1e-9) {
			t.Fatalf("quantile mismatch at %f", p)
		}
	}
	if !almost(g.QuantileSurvival(1e-12), gu.QuantileSurvival(1e-12), 1e-6) {
		t.Fatal("deep survival quantile mismatch")
	}
}

func TestGEVCDFQuantileRoundTrip(t *testing.T) {
	for _, k := range []float64{-0.2, 0.15, 0.4} {
		g := GEV{Xi: 50, Alpha: 5, K: k}
		for _, p := range []float64{0.05, 0.3, 0.7, 0.99} {
			x := g.Quantile(p)
			if !almost(g.CDF(x), p, 1e-10) {
				t.Fatalf("k=%f: CDF(Quantile(%f)) = %f", k, p, g.CDF(x))
			}
		}
	}
}

func TestGEVBoundedTail(t *testing.T) {
	// Positive shape: finite upper endpoint; quantiles approach it.
	g := GEV{Xi: 100, Alpha: 10, K: 0.5}
	end := g.UpperEndpoint()
	if !almost(end, 120, 1e-12) {
		t.Fatalf("upper endpoint = %f, want 120", end)
	}
	q := g.QuantileSurvival(1e-15)
	if q > end || q < g.Xi {
		t.Fatalf("deep quantile %f outside (Xi, endpoint]", q)
	}
	if g.CDF(end+1) != 1 {
		t.Fatal("CDF beyond the endpoint must be 1")
	}
	// Heavy tail: infinite endpoint.
	h := GEV{Xi: 100, Alpha: 10, K: -0.3}
	if !math.IsInf(h.UpperEndpoint(), 1) {
		t.Fatal("negative shape must have infinite endpoint")
	}
}

func TestFitGEVRecoversShape(t *testing.T) {
	// Sample from a known GEV via inverse transform and refit.
	for _, truth := range []GEV{
		{Xi: 100, Alpha: 10, K: 0.25},
		{Xi: 100, Alpha: 10, K: -0.15},
	} {
		rng := prng.New(uint64(math.Float64bits(truth.K)))
		xs := make([]float64, 8000)
		for i := range xs {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			xs[i] = truth.Quantile(u)
		}
		fit, err := FitGEV(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.K-truth.K) > 0.06 {
			t.Fatalf("shape fit %f, truth %f", fit.K, truth.K)
		}
		if math.Abs(fit.Xi-truth.Xi) > 1 || math.Abs(fit.Alpha-truth.Alpha) > 1 {
			t.Fatalf("fit %+v, truth %+v", fit, truth)
		}
	}
}

func TestFitGEVOnGumbelDataGivesSmallShape(t *testing.T) {
	truth := Gumbel{Mu: 500, Beta: 20}
	rng := prng.New(77)
	xs := make([]float64, 8000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	fit, err := FitGEV(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K) > 0.05 {
		t.Fatalf("shape %f on Gumbel data, want ~0", fit.K)
	}
}

func TestFitGEVErrors(t *testing.T) {
	if _, err := FitGEV([]float64{1, 2, 3}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestAnalyzeGEVTighterThanGumbelOnBoundedTails(t *testing.T) {
	// Uniform execution times have a hard upper bound: the GEV fit
	// (Weibull domain) must give a much tighter 1e-15 estimate than the
	// Gumbel fit, which extrapolates linearly forever. This quantifies the
	// estimator conservatism discussed in EXPERIMENTS.md.
	rng := prng.New(5)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 1000 + 100*rng.Float64()
	}
	gumbel, err := Analyze(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	gev, err := AnalyzeGEV(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if gev.Fit.K <= 0 {
		t.Fatalf("bounded data fitted with non-positive shape %f", gev.Fit.K)
	}
	g15 := gumbel.AtExceedance(1e-15)
	v15 := gev.AtExceedance(1e-15)
	if v15 >= g15 {
		t.Fatalf("GEV estimate %f not tighter than Gumbel %f on bounded tails", v15, g15)
	}
	// The GEV estimate must still upper-bound the data.
	if v15 < 1100 {
		t.Fatalf("GEV estimate %f below the true bound 1100", v15)
	}
}

func TestAnalyzeGEVBlockAccounting(t *testing.T) {
	rng := prng.New(9)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	w, err := AnalyzeGEV(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Block != DefaultBlock || w.Runs != 1000 {
		t.Fatalf("meta %+v", w)
	}
	if !math.IsNaN(w.AtExceedance(0)) {
		t.Fatal("p=0 must be NaN")
	}
}
