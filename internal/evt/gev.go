package evt

import (
	"math"

	"repro/internal/stats"
)

// GEV is the generalized extreme value distribution in the Hosking
// parameterization: location Xi, scale Alpha > 0 and shape K, with
//
//	F(x) = exp(-(1 - K (x-Xi)/Alpha)^(1/K))   for K != 0,
//
// reducing to Gumbel(Xi, Alpha) as K -> 0. Positive K corresponds to the
// Weibull domain of attraction (bounded upper tail), negative K to
// Frechet (heavy tail).
//
// The original MBPTA method of the paper forces the Gumbel model (K = 0),
// which upper-bounds light tails conservatively; later MBPTA practice
// also considers the full GEV. This implementation exists as an extension
// so the estimator choice can be ablated (see EXPERIMENTS.md): on the
// simulated platform's light-tailed benchmarks the GEV fit shows how much
// of the pWCET-vs-hwm gap is estimator conservatism rather than platform
// behaviour.
type GEV struct {
	Xi    float64
	Alpha float64
	K     float64
}

// CDF returns P(X <= x).
func (g GEV) CDF(x float64) float64 {
	if g.K == 0 {
		return Gumbel{Mu: g.Xi, Beta: g.Alpha}.CDF(x)
	}
	y := 1 - g.K*(x-g.Xi)/g.Alpha
	if y <= 0 {
		if g.K > 0 {
			return 1 // beyond the finite upper endpoint
		}
		return 0 // below the finite lower endpoint
	}
	return math.Exp(-math.Pow(y, 1/g.K))
}

// Quantile returns the x with CDF(x) = p, 0 < p < 1.
func (g GEV) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	if g.K == 0 {
		return Gumbel{Mu: g.Xi, Beta: g.Alpha}.Quantile(p)
	}
	return g.Xi + g.Alpha*(1-math.Pow(-math.Log(p), g.K))/g.K
}

// QuantileSurvival returns the x with 1 - CDF(x) = q, accurate for tiny q.
func (g GEV) QuantileSurvival(q float64) float64 {
	if q <= 0 || q >= 1 {
		return math.NaN()
	}
	if g.K == 0 {
		return Gumbel{Mu: g.Xi, Beta: g.Alpha}.QuantileSurvival(q)
	}
	// -log(p) with p = 1-q, computed stably.
	l := -math.Log1p(-q)
	return g.Xi + g.Alpha*(1-math.Pow(l, g.K))/g.K
}

// UpperEndpoint returns the distribution's finite upper bound for K > 0,
// or +Inf otherwise.
func (g GEV) UpperEndpoint() float64 {
	if g.K > 0 {
		return g.Xi + g.Alpha/g.K
	}
	return math.Inf(1)
}

// FitGEV fits a GEV distribution by probability-weighted moments
// (Hosking, Wallis & Wood 1985): the standard robust estimator for the
// three-parameter family.
func FitGEV(xs []float64) (GEV, error) {
	n := len(xs)
	if n < 20 {
		return GEV{}, ErrBadSample
	}
	s := stats.Sorted(xs)
	var b0, b1, b2 float64
	for i, x := range s {
		fi := float64(i)
		b0 += x
		b1 += x * fi / float64(n-1)
		b2 += x * fi * (fi - 1) / (float64(n-1) * float64(n-2))
	}
	b0 /= float64(n)
	b1 /= float64(n)
	b2 /= float64(n)

	den := 3*b2 - b0
	if den == 0 {
		return GEV{}, ErrBadSample
	}
	c := (2*b1-b0)/den - math.Ln2/math.Log(3)
	k := 7.8590*c + 2.9554*c*c
	if math.Abs(k) < 1e-9 {
		// Effectively Gumbel.
		g, err := FitPWM(xs)
		if err != nil {
			return GEV{}, err
		}
		return GEV{Xi: g.Mu, Alpha: g.Beta, K: 0}, nil
	}
	gk := math.Gamma(1 + k)
	alpha := (2*b1 - b0) * k / (gk * (1 - math.Pow(2, -k)))
	if alpha <= 0 || math.IsNaN(alpha) {
		return GEV{}, ErrBadSample
	}
	xi := b0 + alpha*(gk-1)/k
	return GEV{Xi: xi, Alpha: alpha, K: k}, nil
}

// PWCETGEV is the GEV analogue of PWCET: a fitted model over block maxima
// with a per-run exceedance interface.
type PWCETGEV struct {
	Fit   GEV
	Block int
	Runs  int
}

// AnalyzeGEV fits a GEV pWCET model to execution times using block maxima.
// With block <= 0 the size adapts so at least twenty maxima remain (the
// three-parameter fit needs more support than the Gumbel one).
func AnalyzeGEV(times []float64, block int) (PWCETGEV, error) {
	if block <= 0 {
		block = DefaultBlock
		if len(times)/block < 20 {
			block = len(times) / 20
		}
		if block < 2 {
			block = 2
		}
	}
	maxima, err := BlockMaxima(times, block)
	if err != nil {
		return PWCETGEV{}, err
	}
	fit, err := FitGEV(maxima)
	if err != nil {
		return PWCETGEV{}, err
	}
	return PWCETGEV{Fit: fit, Block: block, Runs: len(times)}, nil
}

// AtExceedance returns the pWCET estimate at per-run exceedance p.
func (w PWCETGEV) AtExceedance(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	q := -math.Expm1(float64(w.Block) * math.Log1p(-p))
	return w.Fit.QuantileSurvival(q)
}
