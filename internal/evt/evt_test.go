package evt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGumbelCDFQuantileRoundTrip(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 7}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.999} {
		x := g.Quantile(p)
		if !almost(g.CDF(x), p, 1e-12) {
			t.Errorf("CDF(Quantile(%f)) = %g", p, g.CDF(x))
		}
	}
	if !math.IsNaN(g.Quantile(0)) || !math.IsNaN(g.Quantile(1)) {
		t.Error("boundary quantiles must be NaN")
	}
}

func TestGumbelSurvivalDeepTail(t *testing.T) {
	g := Gumbel{Mu: 1000, Beta: 50}
	for _, q := range []float64{1e-3, 1e-9, 1e-15} {
		x := g.QuantileSurvival(q)
		got := g.Survival(x)
		if got <= 0 {
			t.Fatalf("survival underflowed at q=%g", q)
		}
		if math.Abs(math.Log(got)-math.Log(q)) > 1e-6 {
			t.Errorf("QuantileSurvival(%g): survival=%g", q, got)
		}
	}
	// Deep-tail quantiles must increase as q decreases.
	if g.QuantileSurvival(1e-15) <= g.QuantileSurvival(1e-12) {
		t.Error("deep-tail quantiles not monotone")
	}
}

func TestGumbelPDFIntegratesToOne(t *testing.T) {
	g := Gumbel{Mu: 5, Beta: 2}
	// Trapezoid over a wide range.
	sum := 0.0
	const step = 0.01
	for x := -20.0; x < 60; x += step {
		sum += g.PDF(x) * step
	}
	if !almost(sum, 1, 1e-3) {
		t.Fatalf("PDF integral = %f", sum)
	}
}

func TestGumbelMeanAndSampling(t *testing.T) {
	g := Gumbel{Mu: 10, Beta: 3}
	rng := prng.New(1)
	const n = 60000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Sample(rng)
	}
	if !almost(sum/n, g.Mean(), 0.1) {
		t.Fatalf("sample mean %f, want %f", sum/n, g.Mean())
	}
}

func TestFitPWMRecoversParameters(t *testing.T) {
	truth := Gumbel{Mu: 500, Beta: 25}
	rng := prng.New(7)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	fit, err := FitPWM(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Mu, truth.Mu, 3) || !almost(fit.Beta, truth.Beta, 2) {
		t.Fatalf("PWM fit = %+v, truth %+v", fit, truth)
	}
}

func TestFitMLERecoversParameters(t *testing.T) {
	truth := Gumbel{Mu: 200, Beta: 12}
	rng := prng.New(9)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	fit, err := FitMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Mu, truth.Mu, 2) || !almost(fit.Beta, truth.Beta, 1) {
		t.Fatalf("MLE fit = %+v, truth %+v", fit, truth)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitPWM([]float64{1, 2}); err == nil {
		t.Fatal("tiny sample accepted")
	}
	constant := make([]float64, 100)
	for i := range constant {
		constant[i] = 5
	}
	if _, err := FitPWM(constant); err == nil {
		t.Fatal("constant sample accepted (beta would be 0)")
	}
}

func TestBlockMaxima(t *testing.T) {
	xs := []float64{1, 5, 2, 9, 3, 4, 8, 7, 6} // blocks of 3: 5, 9, 8
	m, err := BlockMaxima(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 9, 8}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("maxima = %v", m)
		}
	}
	// Trailing partial block dropped.
	m, _ = BlockMaxima([]float64{1, 2, 3, 4, 5, 6, 7}, 3)
	if len(m) != 2 {
		t.Fatalf("partial block not dropped: %v", m)
	}
	if _, err := BlockMaxima(xs, 0); err == nil {
		t.Fatal("block 0 accepted")
	}
	if _, err := BlockMaxima([]float64{1, 2}, 2); err == nil {
		t.Fatal("single block accepted")
	}
}

func TestQuickBlockMaximaDominate(t *testing.T) {
	// Property: every block maximum is >= every element of its block.
	f := func(seed uint64) bool {
		g := prng.New(seed)
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = g.Float64()
		}
		m, err := BlockMaxima(xs, 10)
		if err != nil {
			return false
		}
		for b := 0; b < len(m); b++ {
			for i := b * 10; i < (b+1)*10; i++ {
				if xs[i] > m[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAndExceedance(t *testing.T) {
	// Execution times = Gumbel noise; the pWCET at 1e-15 must sit far in
	// the tail, above the sample maximum, and grow as p shrinks.
	truth := Gumbel{Mu: 100000, Beta: 500}
	rng := prng.New(13)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = truth.Sample(rng)
	}
	w, err := Analyze(times, 0) // default block
	if err != nil {
		t.Fatal(err)
	}
	if w.Block != DefaultBlock || w.Runs != 1000 {
		t.Fatalf("model meta: %+v", w)
	}
	p15 := w.AtExceedance(1e-15)
	p12 := w.AtExceedance(1e-12)
	hwm := times[0]
	for _, x := range times {
		if x > hwm {
			hwm = x
		}
	}
	if p15 <= hwm {
		t.Fatalf("pWCET@1e-15 (%f) below hwm (%f)", p15, hwm)
	}
	if p15 <= p12 {
		t.Fatal("pWCET not monotone in exceedance probability")
	}
	if math.IsNaN(w.AtExceedance(0)) == false {
		t.Fatal("p=0 must be NaN")
	}
}

func TestAnalyzeConsistencyWithTruth(t *testing.T) {
	// Block maxima of Gumbel(mu, beta) over B samples are Gumbel(mu +
	// beta ln B, beta): the fitted tail must track the analytic one. The
	// location keeps every sample positive (valid execution times).
	truth := Gumbel{Mu: 50, Beta: 1}
	rng := prng.New(21)
	times := make([]float64, 20000)
	for i := range times {
		times[i] = truth.Sample(rng)
	}
	w, err := Analyze(times, 20)
	if err != nil {
		t.Fatal(err)
	}
	wantMu := truth.Mu + math.Log(20)
	if !almost(w.Fit.Mu, wantMu, 0.1) || !almost(w.Fit.Beta, 1, 0.1) {
		t.Fatalf("fit %+v, want mu~%f beta~1", w.Fit, wantMu)
	}
	// Per-run exceedance through the block model must approximate the
	// underlying law's quantile.
	got := w.AtExceedance(1e-6)
	want := truth.QuantileSurvival(1e-6)
	if math.Abs(got-want) > 1 {
		t.Fatalf("pWCET@1e-6 = %f, analytic %f", got, want)
	}
}

func TestCurveShape(t *testing.T) {
	w := PWCET{Fit: Gumbel{Mu: 1000, Beta: 10}, Block: 20, Runs: 1000}
	curve := w.Curve(1e-15)
	if len(curve) != 15 {
		t.Fatalf("curve has %d points, want 15 decades", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].X <= curve[i-1].X {
			t.Fatal("curve X not increasing as P decreases")
		}
		if curve[i].P >= curve[i-1].P {
			t.Fatal("curve P not decreasing")
		}
	}
}

func TestConvergence(t *testing.T) {
	truth := Gumbel{Mu: 100, Beta: 5}
	rng := prng.New(31)
	times := make([]float64, 3000)
	for i := range times {
		times[i] = truth.Sample(rng)
	}
	rep, err := Convergence(times, 20, 1e-12, 0.02, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge on clean Gumbel data: %+v", rep)
	}
	if rep.Estimate < truth.QuantileSurvival(1e-10) {
		t.Fatalf("converged estimate %f implausibly low", rep.Estimate)
	}
}

func TestConvergenceReportsWhenNotConverged(t *testing.T) {
	truth := Gumbel{Mu: 100, Beta: 5}
	rng := prng.New(33)
	times := make([]float64, 400)
	for i := range times {
		times[i] = truth.Sample(rng)
	}
	rep, err := Convergence(times, 20, 1e-12, 1e-9, 200) // impossible tol
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged {
		t.Fatal("claimed convergence at 1e-9 tolerance on 400 runs")
	}
	if rep.Estimate <= 0 {
		t.Fatal("no fallback estimate")
	}
}
