package evt_test

import (
	"fmt"

	"repro/internal/evt"
	"repro/internal/prng"
)

// The MBPTA estimation step: block maxima of execution times, a Gumbel
// fit, and a pWCET read off at the target exceedance probability.
func ExampleAnalyze() {
	truth := evt.Gumbel{Mu: 100000, Beta: 300}
	rng := prng.New(1)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = truth.Sample(rng)
	}
	model, err := evt.Analyze(times, 0)
	if err != nil {
		panic(err)
	}
	pwcet := model.AtExceedance(1e-15)
	fmt.Println("pWCET beyond all observations:", pwcet > 110000)
	fmt.Println("pWCET monotone in probability:", model.AtExceedance(1e-12) < pwcet)
	// Output:
	// pWCET beyond all observations: true
	// pWCET monotone in probability: true
}

// Deep-tail quantiles stay numerically exact at the cutoffs the paper
// uses (1e-15 for the highest criticality levels).
func ExampleGumbel_QuantileSurvival() {
	g := evt.Gumbel{Mu: 0, Beta: 1}
	x := g.QuantileSurvival(1e-15)
	fmt.Printf("%.2f\n", x)
	// Output: 34.54
}
