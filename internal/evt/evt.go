// Package evt implements the Extreme Value Theory machinery of MBPTA
// (paper, Section 2): block maxima extraction, Gumbel distribution fitting
// (probability-weighted moments and maximum likelihood), and probabilistic
// WCET (pWCET) estimation -- the execution-time value whose per-run
// exceedance probability is below a chosen cutoff such as 1e-15.
package evt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/prng"
	"repro/internal/stats"
)

// EulerGamma is the Euler-Mascheroni constant, the mean of the standard
// Gumbel distribution.
const EulerGamma = 0.5772156649015329

// Gumbel is the type-I extreme value distribution with location Mu and
// scale Beta: F(x) = exp(-exp(-(x-Mu)/Beta)).
type Gumbel struct {
	Mu   float64
	Beta float64
}

// CDF returns P(X <= x).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.Mu) / g.Beta))
}

// Survival returns P(X > x), computed stably for the deep tail.
func (g Gumbel) Survival(x float64) float64 {
	return -math.Expm1(-math.Exp(-(x - g.Mu) / g.Beta))
}

// PDF returns the density at x.
func (g Gumbel) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Beta
	return math.Exp(-z-math.Exp(-z)) / g.Beta
}

// Quantile returns the x with CDF(x) = p, 0 < p < 1.
func (g Gumbel) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	return g.Mu - g.Beta*math.Log(-math.Log(p))
}

// QuantileSurvival returns the x with Survival(x) = q. It is accurate for
// arbitrarily small q (the pWCET regime: q down to 1e-15 and below), where
// Quantile(1-q) would lose all precision.
func (g Gumbel) QuantileSurvival(q float64) float64 {
	if q <= 0 || q >= 1 {
		return math.NaN()
	}
	// Survival(x) = q  <=>  x = Mu - Beta*ln(-ln(1-q)); -ln(1-q) via Log1p.
	return g.Mu - g.Beta*math.Log(-math.Log1p(-q))
}

// Mean returns the distribution mean.
func (g Gumbel) Mean() float64 { return g.Mu + EulerGamma*g.Beta }

// Sample draws one variate using the inverse transform.
func (g Gumbel) Sample(rng *prng.PRNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return g.Quantile(u)
}

// ErrBadSample reports an unusable input sample.
var ErrBadSample = errors.New("evt: unusable sample")

// InvalidTimeError reports a measurement that can never be a valid
// execution time — NaN, an infinity, or a negative value. Feeding such a
// value into the Gumbel fit would silently poison every downstream pWCET
// estimate, so Analyze rejects the sample with this typed error instead.
type InvalidTimeError struct {
	Index int     // position of the offending measurement
	Value float64 // the offending value
}

func (e *InvalidTimeError) Error() string {
	return fmt.Sprintf("evt: invalid execution time at index %d: %v (times must be finite and non-negative)", e.Index, e.Value)
}

// ValidateTimes scans a measurement vector for NaN, infinite or negative
// values and returns an *InvalidTimeError for the first (lowest-index)
// offender, or nil when every value is a plausible execution time.
func ValidateTimes(xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return &InvalidTimeError{Index: i, Value: x}
		}
	}
	return nil
}

// FitPWM fits a Gumbel distribution by probability-weighted moments
// (Hosking's unbiased estimators), the robust default of the MBPTA
// literature: beta = (2*b1 - b0)/ln 2, mu = b0 - EulerGamma*beta.
func FitPWM(xs []float64) (Gumbel, error) {
	n := len(xs)
	if n < 10 {
		return Gumbel{}, ErrBadSample
	}
	s := stats.Sorted(xs)
	b0 := 0.0
	b1 := 0.0
	for i, x := range s {
		b0 += x
		b1 += x * float64(i) / float64(n-1)
	}
	b0 /= float64(n)
	b1 /= float64(n)
	beta := (2*b1 - b0) / math.Ln2
	if beta <= 0 || math.IsNaN(beta) {
		return Gumbel{}, ErrBadSample
	}
	return Gumbel{Mu: b0 - EulerGamma*beta, Beta: beta}, nil
}

// FitMLE fits a Gumbel distribution by maximum likelihood, iterating the
// fixed-point condition for beta (with a PWM start) and closing the form
// for mu. It falls back to the PWM fit if the iteration fails to converge.
func FitMLE(xs []float64) (Gumbel, error) {
	start, err := FitPWM(xs)
	if err != nil {
		return Gumbel{}, err
	}
	n := float64(len(xs))
	mean := stats.Mean(xs)
	beta := start.Beta
	for iter := 0; iter < 200; iter++ {
		// beta_{k+1} = mean - sum(x e^{-x/beta}) / sum(e^{-x/beta})
		var se, sxe float64
		for _, x := range xs {
			e := math.Exp(-x / beta)
			se += e
			sxe += x * e
		}
		if se == 0 || math.IsNaN(se) {
			return start, nil
		}
		next := mean - sxe/se
		if next <= 0 || math.IsNaN(next) {
			return start, nil
		}
		if math.Abs(next-beta) < 1e-9*beta {
			beta = next
			break
		}
		beta = next
	}
	var se float64
	for _, x := range xs {
		se += math.Exp(-x / beta)
	}
	mu := -beta * math.Log(se/n)
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return start, nil
	}
	return Gumbel{Mu: mu, Beta: beta}, nil
}

// BlockMaxima splits xs into consecutive blocks of size block and returns
// each block's maximum; a trailing partial block is dropped. This is the
// EVT reduction step of MBPTA.
func BlockMaxima(xs []float64, block int) ([]float64, error) {
	if block < 1 {
		return nil, errors.New("evt: block size must be >= 1")
	}
	nb := len(xs) / block
	if nb < 2 {
		return nil, ErrBadSample
	}
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		m := xs[b*block]
		for i := b*block + 1; i < (b+1)*block; i++ {
			if xs[i] > m {
				m = xs[i]
			}
		}
		out[b] = m
	}
	return out, nil
}

// PWCET is a fitted probabilistic WCET model: a Gumbel law over maxima of
// Block consecutive runs.
type PWCET struct {
	Fit   Gumbel
	Block int
	Runs  int // measurements consumed
}

// DefaultBlock is the block size used throughout the evaluation; with the
// paper's 1000-run campaigns it leaves 50 maxima for the fit.
const DefaultBlock = 20

// BlockFor returns the adaptive block size Analyze uses for an n-run
// campaign: DefaultBlock when the campaign affords at least ten maxima,
// smaller otherwise (never below 2), so reduced-scale campaigns remain
// analyzable. It is a pure function of the total run count, which lets
// streaming consumers size their block-maxima accumulators before the
// first measurement arrives.
func BlockFor(n int) int {
	block := DefaultBlock
	if n/block < 10 {
		block = n / 10
	}
	if block < 2 {
		block = 2
	}
	return block
}

// Analyze fits a pWCET model to a sequence of execution times using block
// maxima of the given size and a PWM Gumbel fit. With block <= 0 the size
// adapts via BlockFor. Times containing NaN, infinite or negative values
// are rejected with an *InvalidTimeError.
func Analyze(times []float64, block int) (PWCET, error) {
	if err := ValidateTimes(times); err != nil {
		return PWCET{}, err
	}
	if block <= 0 {
		block = BlockFor(len(times))
	}
	maxima, err := BlockMaxima(times, block)
	if err != nil {
		return PWCET{}, err
	}
	return AnalyzeMaxima(maxima, block, len(times))
}

// AnalyzeMaxima fits the pWCET model from an already-reduced block-maxima
// vector — the streaming entry point: a campaign that accumulated exact
// per-block maxima online (stats.BlockMax) fits the same model as Analyze
// without ever buffering the measurement vector. block is the size of the
// blocks the maxima were taken over and runs the measurement count the
// model consumed (recorded in PWCET.Runs).
func AnalyzeMaxima(maxima []float64, block, runs int) (PWCET, error) {
	if block < 1 {
		return PWCET{}, errors.New("evt: block size must be >= 1")
	}
	if len(maxima) < 2 {
		return PWCET{}, ErrBadSample
	}
	fit, err := FitPWM(maxima)
	if err != nil {
		return PWCET{}, err
	}
	return PWCET{Fit: fit, Block: block, Runs: runs}, nil
}

// AtExceedance returns the pWCET estimate at a per-run exceedance
// probability p (e.g. 1e-15, the cutoff the paper uses for the highest
// criticality levels): the execution time exceeded by one run with
// probability at most p.
//
// The fitted law describes maxima of Block runs; a per-run exceedance p
// corresponds to a block exceedance q = 1-(1-p)^Block, computed stably.
func (w PWCET) AtExceedance(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	q := -math.Expm1(float64(w.Block) * math.Log1p(-p))
	return w.Fit.QuantileSurvival(q)
}

// CurvePoint is one point of a pWCET CCDF curve: execution time X at
// per-run exceedance probability P.
type CurvePoint struct {
	X float64
	P float64
}

// Curve returns the pWCET curve from exceedance 1e-1 down to pMin in
// decade steps, the log-scale CCDF representation of Figure 1 and
// Figure 5(c).
func (w PWCET) Curve(pMin float64) []CurvePoint {
	if pMin <= 0 {
		pMin = 1e-16
	}
	var out []CurvePoint
	for p := 0.1; p >= pMin*0.999; p /= 10 {
		out = append(out, CurvePoint{X: w.AtExceedance(p), P: p})
	}
	return out
}

// ConvergenceReport describes the stability of the pWCET estimate as runs
// accumulate, the MBPTA criterion for "enough measurements".
type ConvergenceReport struct {
	Converged bool
	Runs      int     // runs at which the estimate stabilized (or total used)
	Estimate  float64 // pWCET at the probe probability using all runs
	Delta     float64 // final relative step between successive estimates
}

// Convergence applies the iterative MBPTA protocol: fit on growing
// prefixes (steps of step runs) and declare convergence when the pWCET
// estimate at probe probability changes by less than tol relatively across
// the last two steps.
func Convergence(times []float64, block int, probe, tol float64, step int) (ConvergenceReport, error) {
	if step < block*10 {
		step = block * 10
	}
	var prev float64
	havePrev := false
	rep := ConvergenceReport{}
	for n := step; n <= len(times); n += step {
		w, err := Analyze(times[:n], block)
		if err != nil {
			return rep, err
		}
		est := w.AtExceedance(probe)
		rep.Estimate = est
		rep.Runs = n
		if havePrev && prev > 0 {
			rep.Delta = math.Abs(est-prev) / prev
			if rep.Delta < tol {
				rep.Converged = true
				return rep, nil
			}
		}
		prev = est
		havePrev = true
	}
	// Use the full sample estimate even when not converged within tol.
	w, err := Analyze(times, block)
	if err != nil {
		return rep, err
	}
	rep.Estimate = w.AtExceedance(probe)
	rep.Runs = len(times)
	return rep, nil
}
