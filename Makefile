# Development targets; CI (.github/workflows/ci.yml) runs `make verify`
# and `make smoke` equivalents on every push.

GO ?= go

.PHONY: build test test-short race vet fmt lint rmlint check-noalloc vuln fuzz-short verify smoke smoke-security smoke-serve smoke-metrics smoke-chaos serve bench bench-hotpath bench-json bench-json-resumed bench-compare full-bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails when any file needs gofmt; CI's lint gate. rmlint is the house
# static-analysis suite (determinism / hotpath / prngdiscipline / ctxflow
# contracts; see README "Static analysis").
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/rmlint ./...

# The custom analyzers alone (also runs as a vettool:
# go build -o /tmp/rmlint ./cmd/rmlint && go vet -vettool=/tmp/rmlint ./...).
rmlint:
	$(GO) run ./cmd/rmlint ./...

# Escape-analysis half of the zero-alloc contract: no //rm:hotpath span
# may contain heap traffic per go build -gcflags=-m.
check-noalloc:
	sh scripts/check-noalloc.sh

# Known-vulnerability scan; skipped gracefully where govulncheck (or the
# network its database needs) is unavailable, so offline verify still
# passes.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: govulncheck failed (offline?); not blocking verify"; \
	else \
		echo "vuln: govulncheck not installed; skipping"; \
	fi

# Seed-corpus fuzz pass over the compiled-replay equivalence oracle and
# the lackey trace parser (CI runs the same targets with a time budget).
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzAccessEquivalence -fuzztime=10s ./internal/cache
	$(GO) test -run='^$$' -fuzz=FuzzParseLackey -fuzztime=10s ./internal/trace

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The tier-1 gate plus lint, the zero-alloc gate, the vulnerability scan
# and the race detector.
verify: lint build check-noalloc vuln race

# Exercise the binaries end-to-end at smoke scale (what CI runs).
smoke:
	$(GO) run ./cmd/paperbench -exp table2 -short -timeout 10m

# Security-evaluation smoke: all three attacker protocols swept over every
# placement x replacement design point at smoke scale.
smoke-security:
	$(GO) run ./cmd/paperbench -exp security-evict -short -timeout 10m
	$(GO) run ./cmd/paperbench -exp security-occupancy -short -timeout 10m
	$(GO) run ./cmd/paperbench -exp security-primeprobe -short -timeout 10m

# Campaign service smoke: submit, poll to completion, verify the cached
# resubmission (same fingerprint, no re-run). What CI's service step runs.
smoke-serve:
	sh scripts/smoke-serve.sh

# Observability smoke: after one campaign, /metrics must serve nonzero
# campaign/store/HTTP series, /v1/traces the campaign's span, and every
# response an X-Request-Id header.
smoke-metrics:
	sh scripts/smoke-metrics.sh

# Kill-resume chaos smoke: SIGKILL rmserved mid-campaign with the durable
# tier and deterministic storage fault injection active, restart it on the
# same data dir, and assert the resumed result is bit-identical to a
# clean memory-only run. What CI's chaos step runs.
smoke-chaos:
	sh scripts/smoke-chaos.sh

# Run the campaign service daemon locally.
serve:
	$(GO) run ./cmd/rmserved -addr :8080

bench:
	$(GO) test -bench=. -benchtime=1x -v .

# Hot-path microbenchmarks: legacy per-access replay vs the compiled
# index-plan path, per placement policy plus an end-to-end campaign pair.
bench-hotpath:
	$(GO) test -run='^$$' -bench=HotPath -benchtime=10x .

# Short fixed-scale trajectory snapshot (per-campaign HWM/mean/pWCET and
# wall time); regenerate and commit BENCH_PR5.json when touching the hot
# path (BENCH_JSON=path overrides the output file). CI runs this, asserts
# the results are bit-identical to the previous PR's committed snapshot
# via bench-compare, and uploads the JSON as an artifact.
BENCH_JSON ?= BENCH_PR5.json
bench-json:
	$(GO) run ./cmd/paperbench -short -json $(BENCH_JSON)

# Resumed-run determinism gate input: the same trajectory regenerated with
# every campaign interrupted at a mid-campaign checkpoint and resumed
# (paperbench -resume-check). bench-compare against the committed
# snapshots must stay bit-identical -- the checkpoint/resume contract,
# measured over the whole evaluation suite.
bench-json-resumed:
	$(GO) run ./cmd/paperbench -short -resume-check -json $(BENCH_JSON)

# Determinism-trajectory gate: per-campaign HWM/mean/pWCET quantiles of
# the new snapshot must be bit-identical to the committed previous one
# (wall-time and environment fields exempt).
bench-compare:
	sh scripts/bench-compare.sh

# Paper-scale regeneration (REPRO_WORKERS=N to size the engine pool).
full-bench:
	REPRO_FULL=1 $(GO) test -bench=. -benchtime=1x -timeout=4h -v .
