# Development targets; CI (.github/workflows/ci.yml) runs `make verify`
# equivalents on every push.

GO ?= go

.PHONY: build test test-short race vet verify bench full-bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The tier-1 gate plus vet and the race detector.
verify: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -v .

# Paper-scale regeneration (REPRO_WORKERS=N to size the worker pool).
full-bench:
	REPRO_FULL=1 $(GO) test -bench=. -benchtime=1x -timeout=4h -v .
