// Hot-path microbenchmarks: the per-run replay loop, legacy per-access
// placement hashing vs the compiled index-plan path (PR 4), per placement
// policy, plus an end-to-end MBPTA campaign pair. CI runs these with
// -bench=HotPath -benchtime=1x as a smoke; run with a real -benchtime to
// measure. The compiled path is bit-exact to the legacy one (see the
// differential tests in internal/sim and internal/core), so the ratio of
// the two numbers is pure throughput.
package randmod

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hotPathSetup builds the paper platform for an L1 placement kind and the
// trace of a representative EEMBC-like workload, both ready to replay.
func hotPathSetup(b *testing.B, kind placement.Kind) (*sim.Core, trace.Trace, *trace.Compiled) {
	b.Helper()
	w, err := workload.ByName("tblook01")
	if err != nil {
		b.Fatal(err)
	}
	tr := w.Build(workload.DefaultLayout())
	spec := core.PlatformFor(kind)
	p, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr, spec.LineBytes)
	if err != nil {
		b.Fatal(err)
	}
	return p, tr, ct
}

// BenchmarkHotPathLegacy measures the pre-PR-4 per-run replay loop: one
// placement-policy hash per access (plus a Benes walk for RM).
func BenchmarkHotPathLegacy(b *testing.B) {
	for _, kind := range placement.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			p, tr, _ := hotPathSetup(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reseed(prng.Derive(0xBE7C4, i))
				p.Run(tr)
			}
			b.ReportMetric(float64(len(tr)), "accesses/op")
		})
	}
}

// BenchmarkHotPathCompiled measures the compiled replay: per run, index
// plans over the trace's unique lines (rebuilt only for randomized
// placements after the first run), then monomorphic-kernel array-lookup
// replay. The steady state must report 0 allocs/op: the first run's plan
// allocation happens in the warm-up before the timer.
func BenchmarkHotPathCompiled(b *testing.B) {
	for _, kind := range placement.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			p, _, ct := hotPathSetup(b, kind)
			p.Reseed(prng.Derive(0xBE7C4, 0))
			p.RunCompiled(ct) // warm-up: allocate the index plans
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reseed(prng.Derive(0xBE7C4, i))
				p.RunCompiled(ct)
			}
			b.ReportMetric(float64(ct.Len()), "accesses/op")
		})
	}
}

// BenchmarkHotPathCampaignLegacy replays a whole MBPTA campaign through
// the pre-PR-4 hot loop (sequential, legacy sim.Core.Run), the baseline
// the PR's >= 1.5x throughput target is measured against.
func BenchmarkHotPathCampaignLegacy(b *testing.B) {
	p, tr, _ := hotPathSetup(b, placement.RM)
	const runs = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for run := 0; run < runs; run++ {
			p.Reseed(prng.Derive(0x9A9E6, run))
			p.Run(tr)
		}
	}
	b.ReportMetric(float64(runs*len(tr)), "accesses/op")
}

// BenchmarkHotPathBaselineLegacy replays the deterministic HWM baseline
// protocol (per-run randomized layout, trace rebuilt every run) through
// the pre-PR-4 loop. Unlike MBPTA there is no build-once amortization,
// so this pair documents that routing baselines through the compiled
// path is at worst a wash: the per-run trace build dominates.
func BenchmarkHotPathBaselineLegacy(b *testing.B) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		b.Fatal(err)
	}
	spec := core.PlatformFor(placement.Modulo)
	p, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	const runs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for run := 0; run < runs; run++ {
			seed := prng.Derive(0x9A9E6^0xDE7, run)
			layout := workload.RandomizedLayout(prng.New(seed))
			p.Reseed(seed)
			p.Run(w.Build(layout))
		}
	}
}

// BenchmarkHotPathBaselineCompiled is the same baseline campaign through
// the Engine, which compiles each per-run trace before replaying it.
func BenchmarkHotPathBaselineCompiled(b *testing.B) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(core.WithWorkers(1))
	req := core.Request{
		Spec: core.PlatformFor(placement.Modulo), Workload: w,
		Runs: 10, MasterSeed: 0x9A9E6, Baseline: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathCampaignCompiled runs the same campaign through the
// Engine, which routes every run over the compiled path; workers are
// pinned to 1 so the ratio to the legacy number isolates the hot-loop
// speedup from parallelism.
func BenchmarkHotPathCampaignCompiled(b *testing.B) {
	w, err := workload.ByName("tblook01")
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(core.WithWorkers(1))
	req := core.Request{
		Spec: core.PlatformFor(placement.RM), Workload: w,
		Runs: 40, MasterSeed: 0x9A9E6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(req.Runs*res.Trace.Accesses), "accesses/op")
	}
}
