// Package randmod is the public API of the Random Modulo reproduction: a
// library for building MBPTA-compliant randomized cache platforms
// (Random Modulo and hash-based random placement), running measurement
// campaigns over workloads on a LEON3-like timing simulator, and deriving
// probabilistic WCET estimates with the MBPTA statistical pipeline.
//
// Reproduces: Hernandez, Abella, Gianarro, Andersson, Cazorla, "Random
// Modulo: a New Processor Cache Design for Real-Time Critical Systems",
// DAC 2016.
//
// # Quick start
//
// The front door is the Engine: one shared simulation worker pool serving
// any number of campaigns, with context cancellation, progress events,
// and deterministic batching.
//
//	eng := randmod.NewEngine() // GOMAXPROCS-sized shared pool
//	w, _ := randmod.WorkloadByName("tblook01")
//	res, err := eng.Run(ctx, randmod.Request{
//		Spec:       randmod.PaperPlatform(randmod.RM),
//		Workload:   w,
//		Runs:       1000,
//		MasterSeed: 1,
//		Analyze:    true,
//	})
//	fmt.Println("hwm:", res.HWM(), "pWCET@1e-15:", res.Analysis.PWCET15)
//
// Many campaigns schedule over the same pool with Engine.RunBatch; per-
// campaign results are bit-identical to running each Request alone, for
// any pool size. Cancelling ctx aborts mid-campaign with an error
// wrapping context.Canceled and the partial measurement vector in the
// Result. The legacy one-shot entry points (Campaign.Run, RunAndAnalyze)
// remain as deprecated shims over a private single-campaign engine.
//
// The heavy lifting lives in the internal packages (placement policies,
// Benes networks, the cache and platform simulator, EVT and i.i.d.
// statistics, hardware-cost models); this package re-exports the stable
// surface a downstream user needs.
package randmod

import (
	"context"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/hwcost"
	"repro/internal/iid"
	"repro/internal/placement"
	"repro/internal/security"
	"repro/internal/workload"
)

// Placement selects a cache set-placement function.
type Placement = placement.Kind

// Placement policies: the deterministic baselines, the prior
// MBPTA-compliant design (HRP), and the paper's contribution (RM).
const (
	Modulo  = placement.Modulo
	XORFold = placement.XORFold
	HRP     = placement.HRP
	RM      = placement.RM
	RMRot   = placement.RMRot
)

// Replacement selects a cache replacement policy.
type Replacement = cache.ReplacementKind

// Replacement policies; MBPTA platforms use Random.
const (
	LRU    = cache.LRU
	Random = cache.Random
	FIFO   = cache.FIFO
	PLRU   = cache.PLRU
)

// PlatformSpec describes the simulated platform.
type PlatformSpec = core.PlatformSpec

// CacheSetup selects the policies of one cache level of a PlatformSpec.
type CacheSetup = core.CacheSetup

// WriteSetup optionally overrides a cache level's write arrangement (the
// zero value keeps the platform convention: write-through no-allocate
// L1s, write-back L2).
type WriteSetup = core.WriteSetup

// Write arrangements.
const (
	WriteDefault        = core.WriteDefault
	WriteThroughNoAlloc = core.WriteThroughNoAlloc
	WriteThroughAlloc   = core.WriteThroughAlloc
	WriteBackAlloc      = core.WriteBackAlloc
)

// PaperPlatform returns the paper's evaluation platform with the given L1
// placement (16KB 4-way L1s, 128KB 4-way L2 partition, 32B lines; the L2
// uses hRP, everything random-replacement).
func PaperPlatform(l1 Placement) PlatformSpec { return core.PaperPlatform(l1) }

// DeterministicPlatform returns the COTS-like modulo+LRU baseline.
func DeterministicPlatform() PlatformSpec { return core.DeterministicPlatform() }

// Workload is a benchmark program (a deterministic trace generator).
type Workload = workload.Workload

// Layout fixes the memory placement of a workload's objects.
type Layout = workload.Layout

// DefaultLayout returns the fixed memory layout campaigns use unless a
// Request (or WireRequest) carries a Layout override.
func DefaultLayout() Layout { return workload.DefaultLayout() }

// Workloads returns all built-in workloads: the eleven EEMBC-Automotive-
// like kernels and the paper's three synthetic footprints.
func Workloads() []Workload { return workload.All() }

// EEMBCWorkloads returns the eleven EEMBC-Automotive-like kernels.
func EEMBCWorkloads() []Workload { return workload.EEMBC() }

// WorkloadByName looks a workload up by name (e.g. "tblook01", "synth20k").
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// SyntheticWorkload builds the paper's synthetic vector kernel.
func SyntheticWorkload(footprintBytes, sweeps, strideBytes int) Workload {
	return workload.Synthetic(footprintBytes, sweeps, strideBytes)
}

// Engine is the context-aware service core of the library: a shared
// simulation worker pool that runs, batches, streams and cancels
// measurement campaigns. Construct one per process with NewEngine.
type Engine = core.Engine

// EngineOption configures NewEngine.
type EngineOption = core.EngineOption

// Request describes one campaign for the Engine; Result is its outcome
// (an embedded CampaignResult plus the optional MBPTA Analysis).
type (
	Request = core.Request
	Result  = core.Result
)

// Event is a progress notification (per-run completions and per-campaign
// summaries) delivered to the WithEvents sink; EventKind discriminates.
type (
	Event     = core.Event
	EventKind = core.EventKind
)

// WireRequest is the canonical JSON wire form of a Request -- the
// submission format of the campaign service (cmd/rmserved): placement by
// name, workload by name, runs/seed/layout fields. Its Fingerprint()
// method is the content address the service caches results under: by the
// determinism contract, equal fingerprints mean bit-identical Times, so
// repeat submissions are served without re-running. WireLayout is the
// JSON form of a Layout override.
type (
	WireRequest = core.WireRequest
	WireLayout  = core.WireLayout
)

// DecodeWireRequest reads one JSON-encoded WireRequest (unknown fields
// are rejected so typos fail loudly).
func DecodeWireRequest(r io.Reader) (WireRequest, error) { return core.DecodeWireRequest(r) }

// WireLayoutFrom converts a Layout to its JSON wire form.
func WireLayoutFrom(l Layout) WireLayout { return core.WireLayoutFrom(l) }

// Event kinds.
const (
	CampaignStarted  = core.CampaignStarted
	RunCompleted     = core.RunCompleted
	CampaignFinished = core.CampaignFinished
)

// Kind discriminates the campaign protocols a Request can carry: MBPTA
// measurement, the deterministic HWM baseline, or a security evaluation.
// Request.Kind reports the kind a given Request resolves to.
type Kind = core.Kind

// Campaign kinds.
const (
	KindMBPTA    = core.KindMBPTA
	KindBaseline = core.KindBaseline
	KindSecurity = core.KindSecurity
)

// KindNames lists the campaign kinds by wire name ("mbpta", "baseline",
// "security") -- what the service's /v1/kinds endpoint reports.
func KindNames() []string { return core.KindNames() }

// SecuritySpec configures a security-evaluation campaign: the attacker
// protocol, the attacked cache's replacement policy, and the attacker
// knobs (probe-pool size/stride, Prime+Probe trials, occupancy victim
// size). Attach one to Request.Security; the placement under attack
// comes from Request.Spec as usual.
type SecuritySpec = security.Spec

// SecurityResult is a security campaign's aggregate: the
// success-vs-effort curve, occupancy-channel accuracy and capacity, and
// the eviction-set construction rate. It arrives in Result.Security.
type SecurityResult = security.Result

// SecurityCurvePoint is one effort level of a SecurityResult curve.
type SecurityCurvePoint = security.CurvePoint

// SecurityProtocol selects the attacker protocol of a SecuritySpec.
type SecurityProtocol = security.Protocol

// Attacker protocols: group-testing eviction-set construction, the
// cache-occupancy channel, and end-to-end Prime+Probe.
const (
	EvictionSet = security.EvictionSet
	Occupancy   = security.Occupancy
	PrimeProbe  = security.PrimeProbe
)

// ParseSecurityProtocol resolves a protocol name or alias ("eviction",
// "occupancy", "prime+probe", ...) case-insensitively.
func ParseSecurityProtocol(s string) (SecurityProtocol, error) { return security.ParseProtocol(s) }

// SecurityProtocolNames lists the canonical protocol wire names.
func SecurityProtocolNames() []string { return security.ProtocolNames() }

// WireSecurity is the JSON wire form of a SecuritySpec inside a
// WireRequest -- the "security" block of a service submission.
type WireSecurity = core.WireSecurity

// NewEngine builds an Engine; by default it uses a GOMAXPROCS-sized
// worker pool, no events, and no default campaign scale.
func NewEngine(opts ...EngineOption) *Engine { return core.NewEngine(opts...) }

// WithWorkers sizes the Engine's shared worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) EngineOption { return core.WithWorkers(n) }

// WithEvents installs a progress sink; deliveries are serialized. The
// sink runs synchronously on the worker path: keep it fast, never block,
// and never call back into the Engine from it.
func WithEvents(sink func(Event)) EngineOption { return core.WithEvents(sink) }

// WithDefaultRuns sets the run count applied to Requests that leave Runs
// at zero — the Engine-level campaign scale.
func WithDefaultRuns(n int) EngineOption { return core.WithDefaultRuns(n) }

// WithCheckpointReplay makes the Engine execute every campaign as an
// interrupted-and-resumed pair (checkpoint past the midpoint, wire
// round-trip, resume). Results are bit-identical to plain runs by the
// resume contract; it exists so determinism gates can exercise the crash
// path continuously.
func WithCheckpointReplay() EngineOption { return core.WithCheckpointReplay() }

// Checkpoint is a campaign's streaming frontier frozen mid-flight: the
// covered-run index, merged accumulators, and the seed-derivation inputs
// needed to continue. Produced via Request.CheckpointEvery +
// Request.OnCheckpoint, serialized with Encode (versioned, checksummed),
// and consumed by Request.Resume — the resumed campaign's results are
// bit-identical to an uninterrupted run.
type Checkpoint = core.Checkpoint

// DecodeCheckpoint parses and verifies an Encode()d checkpoint blob. A
// blob that fails the magic, structural, or checksum checks returns a
// *CorruptCheckpointError.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) { return core.DecodeCheckpoint(b) }

// CorruptCheckpointError reports a checkpoint blob that failed
// verification; resuming from it is refused rather than risking silent
// divergence.
type CorruptCheckpointError = core.CorruptCheckpointError

// ResumeMismatchError reports a Resume checkpoint that belongs to a
// different campaign than the Request it was attached to (kind, seed,
// runs, or options differ).
type ResumeMismatchError = core.ResumeMismatchError

// PanicError is a worker panic recovered into a typed campaign failure:
// the campaign fails cleanly, the shared pool survives.
type PanicError = core.PanicError

// Campaign is a measurement campaign: one program, many runs, a fresh
// hardware seed per run. Set Workers to shard the runs across a pool of
// simulation workers (0 = GOMAXPROCS); Times is bit-identical for any
// worker count. Campaign.Run is the legacy blocking entry point; new
// code should submit Campaign.Request() (or a Request literal) to an
// Engine.
type Campaign = core.Campaign

// CampaignResult holds collected measurements and aggregate statistics.
type CampaignResult = core.CampaignResult

// LevelStats holds the exact per-level cache counters of a campaign,
// summed deterministically across worker shards.
type LevelStats = core.LevelStats

// HWMCampaign is the deterministic industrial-practice baseline
// (randomized memory layouts on a deterministic platform, high-water mark).
// It accepts the same Workers knob as Campaign.
type HWMCampaign = core.HWMCampaign

// ShardRuns fans a loop of independent, run-indexed simulations out over a
// worker pool; see core.ShardRuns for the determinism contract.
//
// Deprecated: use ShardRunsContext, which adds cancellation.
func ShardRuns[T any](workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return core.ShardRuns(workers, runs, build, do)
}

// ShardRunsContext is the context-aware ShardRuns: cancelling ctx aborts
// the sweep between runs and returns ctx.Err(); completed runs keep
// their run-indexed outputs.
func ShardRunsContext[T any](ctx context.Context, workers, runs int, build func() (T, error), do func(c T, run int) error) error {
	return core.ShardRunsContext(ctx, workers, runs, build, do)
}

// Analysis is the MBPTA pipeline output: i.i.d. tests, Gumbel fit, pWCET.
type Analysis = core.Analysis

// Analyze applies the MBPTA statistical pipeline to execution times.
func Analyze(times []float64) (Analysis, error) { return core.Analyze(times) }

// RunAndAnalyze runs a campaign and applies the MBPTA pipeline.
//
// Deprecated: set Request.Analyze and use Engine.Run, which adds
// cancellation, progress and pool sharing.
func RunAndAnalyze(c Campaign) (CampaignResult, Analysis, error) {
	return core.RunAndAnalyze(c)
}

// Standard per-run exceedance cutoffs (paper Section 4.3).
const (
	CutoffHigh = core.CutoffHigh // 1e-15: highest criticality levels
	CutoffLow  = core.CutoffLow  // 1e-12: lower criticality levels
)

// Gumbel is the extreme value distribution used by MBPTA.
type Gumbel = evt.Gumbel

// PWCET is a fitted probabilistic WCET model.
type PWCET = evt.PWCET

// WWResult, KSResult and ETResult are the MBPTA admissibility test
// reports.
type (
	WWResult = iid.WWResult
	KSResult = iid.KSResult
	ETResult = iid.ETResult
)

// HardwareASIC evaluates the ASIC cost model for the RM and hRP modules of
// a cache with the given number of sets (Table 1's design point is 128).
func HardwareASIC(sets int) hwcost.ASICReport {
	return hwcost.ASIC(hwcost.Generic45(), sets, placement.HashedAddressBits)
}

// HardwareFPGA evaluates the FPGA integration model at the paper's design
// point (Table 1's FPGA half).
func HardwareFPGA() hwcost.FPGAReport {
	return hwcost.FPGA(hwcost.DefaultFPGA(), 128, 1024, placement.HashedAddressBits)
}
