// Package randmod is the public API of the Random Modulo reproduction: a
// library for building MBPTA-compliant randomized cache platforms
// (Random Modulo and hash-based random placement), running measurement
// campaigns over workloads on a LEON3-like timing simulator, and deriving
// probabilistic WCET estimates with the MBPTA statistical pipeline.
//
// Reproduces: Hernandez, Abella, Gianarro, Andersson, Cazorla, "Random
// Modulo: a New Processor Cache Design for Real-Time Critical Systems",
// DAC 2016.
//
// # Quick start
//
//	w, _ := randmod.WorkloadByName("tblook01")
//	res, an, err := randmod.RunAndAnalyze(randmod.Campaign{
//		Spec:       randmod.PaperPlatform(randmod.RM),
//		Workload:   w,
//		Runs:       1000,
//		MasterSeed: 1,
//	})
//	fmt.Println("hwm:", res.HWM(), "pWCET@1e-15:", an.PWCET15)
//
// The heavy lifting lives in the internal packages (placement policies,
// Benes networks, the cache and platform simulator, EVT and i.i.d.
// statistics, hardware-cost models); this package re-exports the stable
// surface a downstream user needs.
package randmod

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/hwcost"
	"repro/internal/iid"
	"repro/internal/placement"
	"repro/internal/workload"
)

// Placement selects a cache set-placement function.
type Placement = placement.Kind

// Placement policies: the deterministic baselines, the prior
// MBPTA-compliant design (HRP), and the paper's contribution (RM).
const (
	Modulo  = placement.Modulo
	XORFold = placement.XORFold
	HRP     = placement.HRP
	RM      = placement.RM
	RMRot   = placement.RMRot
)

// Replacement selects a cache replacement policy.
type Replacement = cache.ReplacementKind

// Replacement policies; MBPTA platforms use Random.
const (
	LRU    = cache.LRU
	Random = cache.Random
	FIFO   = cache.FIFO
	PLRU   = cache.PLRU
)

// PlatformSpec describes the simulated platform.
type PlatformSpec = core.PlatformSpec

// PaperPlatform returns the paper's evaluation platform with the given L1
// placement (16KB 4-way L1s, 128KB 4-way L2 partition, 32B lines; the L2
// uses hRP, everything random-replacement).
func PaperPlatform(l1 Placement) PlatformSpec { return core.PaperPlatform(l1) }

// DeterministicPlatform returns the COTS-like modulo+LRU baseline.
func DeterministicPlatform() PlatformSpec { return core.DeterministicPlatform() }

// Workload is a benchmark program (a deterministic trace generator).
type Workload = workload.Workload

// Layout fixes the memory placement of a workload's objects.
type Layout = workload.Layout

// Workloads returns all built-in workloads: the eleven EEMBC-Automotive-
// like kernels and the paper's three synthetic footprints.
func Workloads() []Workload { return workload.All() }

// EEMBCWorkloads returns the eleven EEMBC-Automotive-like kernels.
func EEMBCWorkloads() []Workload { return workload.EEMBC() }

// WorkloadByName looks a workload up by name (e.g. "tblook01", "synth20k").
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// SyntheticWorkload builds the paper's synthetic vector kernel.
func SyntheticWorkload(footprintBytes, sweeps, strideBytes int) Workload {
	return workload.Synthetic(footprintBytes, sweeps, strideBytes)
}

// Campaign is a measurement campaign: one program, many runs, a fresh
// hardware seed per run. Set Workers to shard the runs across a pool of
// simulation workers (0 = GOMAXPROCS); Times is bit-identical for any
// worker count.
type Campaign = core.Campaign

// CampaignResult holds collected measurements and aggregate statistics.
type CampaignResult = core.CampaignResult

// LevelStats holds the exact per-level cache counters of a campaign,
// summed deterministically across worker shards.
type LevelStats = core.LevelStats

// HWMCampaign is the deterministic industrial-practice baseline
// (randomized memory layouts on a deterministic platform, high-water mark).
// It accepts the same Workers knob as Campaign.
type HWMCampaign = core.HWMCampaign

// ShardRuns fans a loop of independent, run-indexed simulations out over a
// worker pool; see core.ShardRuns for the determinism contract.
func ShardRuns[T any](workers, runs int, build func() (T, error), do func(ctx T, run int) error) error {
	return core.ShardRuns(workers, runs, build, do)
}

// Analysis is the MBPTA pipeline output: i.i.d. tests, Gumbel fit, pWCET.
type Analysis = core.Analysis

// Analyze applies the MBPTA statistical pipeline to execution times.
func Analyze(times []float64) (Analysis, error) { return core.Analyze(times) }

// RunAndAnalyze runs a campaign and applies the MBPTA pipeline.
func RunAndAnalyze(c Campaign) (CampaignResult, Analysis, error) {
	return core.RunAndAnalyze(c)
}

// Standard per-run exceedance cutoffs (paper Section 4.3).
const (
	CutoffHigh = core.CutoffHigh // 1e-15: highest criticality levels
	CutoffLow  = core.CutoffLow  // 1e-12: lower criticality levels
)

// Gumbel is the extreme value distribution used by MBPTA.
type Gumbel = evt.Gumbel

// PWCET is a fitted probabilistic WCET model.
type PWCET = evt.PWCET

// WWResult, KSResult and ETResult are the MBPTA admissibility test
// reports.
type (
	WWResult = iid.WWResult
	KSResult = iid.KSResult
	ETResult = iid.ETResult
)

// HardwareASIC evaluates the ASIC cost model for the RM and hRP modules of
// a cache with the given number of sets (Table 1's design point is 128).
func HardwareASIC(sets int) hwcost.ASICReport {
	return hwcost.ASIC(hwcost.Generic45(), sets, placement.HashedAddressBits)
}

// HardwareFPGA evaluates the FPGA integration model at the paper's design
// point (Table 1's FPGA half).
func HardwareFPGA() hwcost.FPGAReport {
	return hwcost.FPGA(hwcost.DefaultFPGA(), 128, 1024, placement.HashedAddressBits)
}
